// Unit tests for the expression engine.

#include <gtest/gtest.h>

#include "expr/expr.h"
#include "expr/value.h"
#include "storage/schema.h"

namespace cjoin {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() {
    schema_.AddInt32("qty").AddDouble("price").AddChar("city", 10).AddInt64(
        "key");
    row_.resize(schema_.row_size());
    schema_.SetInt32(row_.data(), 0, 7);
    schema_.SetDouble(row_.data(), 1, 19.5);
    schema_.SetChar(row_.data(), 2, "LYON");
    schema_.SetInt64(row_.data(), 3, 1234567890123LL);
  }

  ExprPtr Col(const char* name) {
    auto r = MakeColumnRef(schema_, name);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  Schema schema_;
  std::vector<uint8_t> row_;
};

// ------------------------------- Value --------------------------------------

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(int64_t{5}).is_numeric());
  EXPECT_TRUE(Value(2.5).is_numeric());
}

TEST(ValueTest, NumericCoercedCompare) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value(std::string("x")).Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

// ----------------------------- Expressions ----------------------------------

TEST_F(ExprTest, ColumnRefReadsTypedValues) {
  EXPECT_EQ(Col("qty")->Eval(schema_, row_.data()).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Col("price")->Eval(schema_, row_.data()).AsDouble(), 19.5);
  EXPECT_EQ(Col("city")->Eval(schema_, row_.data()).AsString(), "LYON");
  EXPECT_EQ(Col("key")->Eval(schema_, row_.data()).AsInt(), 1234567890123LL);
}

TEST_F(ExprTest, ColumnRefByMissingNameFails) {
  EXPECT_FALSE(MakeColumnRef(schema_, "nope").ok());
}

TEST_F(ExprTest, Comparisons) {
  auto check = [&](CmpOp op, int64_t rhs, bool expected) {
    ExprPtr e = MakeCompare(op, Col("qty"), MakeLiteral(Value(rhs)));
    EXPECT_EQ(e->EvalBool(schema_, row_.data()), expected)
        << CmpOpName(op) << " " << rhs;
  };
  check(CmpOp::kEq, 7, true);
  check(CmpOp::kEq, 8, false);
  check(CmpOp::kNe, 8, true);
  check(CmpOp::kLt, 8, true);
  check(CmpOp::kLt, 7, false);
  check(CmpOp::kLe, 7, true);
  check(CmpOp::kGt, 6, true);
  check(CmpOp::kGe, 7, true);
  check(CmpOp::kGe, 8, false);
}

TEST_F(ExprTest, MixedTypeComparison) {
  // qty(int32=7) > 6.5 (double)
  ExprPtr e = MakeCompare(CmpOp::kGt, Col("qty"), MakeLiteral(Value(6.5)));
  EXPECT_TRUE(e->EvalBool(schema_, row_.data()));
}

TEST_F(ExprTest, Between) {
  EXPECT_TRUE(MakeBetween(Col("qty"), Value(int64_t{7}), Value(int64_t{9}))
                  ->EvalBool(schema_, row_.data()));
  EXPECT_TRUE(MakeBetween(Col("qty"), Value(int64_t{1}), Value(int64_t{7}))
                  ->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakeBetween(Col("qty"), Value(int64_t{8}), Value(int64_t{9}))
                   ->EvalBool(schema_, row_.data()));
  // String between.
  EXPECT_TRUE(MakeBetween(Col("city"), Value("LA"), Value("NYC"))
                  ->EvalBool(schema_, row_.data()));
}

TEST_F(ExprTest, InList) {
  EXPECT_TRUE(MakeInList(Col("city"), {Value("PARIS"), Value("LYON")})
                  ->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakeInList(Col("city"), {Value("PARIS"), Value("NICE")})
                   ->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(
      MakeInList(Col("city"), {})->EvalBool(schema_, row_.data()));
}

TEST_F(ExprTest, PrefixMatch) {
  EXPECT_TRUE(MakePrefixMatch(Col("city"), "LY")
                  ->EvalBool(schema_, row_.data()));
  EXPECT_TRUE(MakePrefixMatch(Col("city"), "")
                  ->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakePrefixMatch(Col("city"), "LYONS")
                   ->EvalBool(schema_, row_.data()));
  // Non-string input never matches.
  EXPECT_FALSE(
      MakePrefixMatch(Col("qty"), "7")->EvalBool(schema_, row_.data()));
}

TEST_F(ExprTest, BooleanConnectives) {
  ExprPtr t = MakeCompare(CmpOp::kEq, Col("qty"), MakeLiteral(Value(7)));
  ExprPtr f = MakeCompare(CmpOp::kEq, Col("qty"), MakeLiteral(Value(8)));
  EXPECT_TRUE(MakeAnd(t, t)->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakeAnd(t, f)->EvalBool(schema_, row_.data()));
  EXPECT_TRUE(MakeOr(f, t)->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakeOr(f, f)->EvalBool(schema_, row_.data()));
  EXPECT_TRUE(MakeNot(f)->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakeNot(t)->EvalBool(schema_, row_.data()));
}

TEST_F(ExprTest, Arithmetic) {
  ExprPtr sum = MakeArith(ArithOp::kAdd, Col("qty"), MakeLiteral(Value(3)));
  EXPECT_EQ(sum->Eval(schema_, row_.data()).AsInt(), 10);
  ExprPtr prod =
      MakeArith(ArithOp::kMul, Col("qty"), Col("price"));
  EXPECT_DOUBLE_EQ(prod->Eval(schema_, row_.data()).AsDouble(), 136.5);
  ExprPtr diff = MakeArith(ArithOp::kSub, Col("qty"), MakeLiteral(Value(10)));
  EXPECT_EQ(diff->Eval(schema_, row_.data()).AsInt(), -3);
  ExprPtr quot =
      MakeArith(ArithOp::kDiv, Col("price"), MakeLiteral(Value(2)));
  EXPECT_DOUBLE_EQ(quot->Eval(schema_, row_.data()).AsDouble(), 9.75);
  // Division by zero yields NULL.
  ExprPtr div0 =
      MakeArith(ArithOp::kDiv, Col("qty"), MakeLiteral(Value(0)));
  EXPECT_TRUE(div0->Eval(schema_, row_.data()).is_null());
}

TEST_F(ExprTest, TrueLiteralAndConjunction) {
  EXPECT_TRUE(IsTrueLiteral(MakeTrue()));
  EXPECT_FALSE(IsTrueLiteral(MakeLiteral(Value(1))));
  EXPECT_TRUE(MakeTrue()->EvalBool(schema_, row_.data()));
  EXPECT_TRUE(IsTrueLiteral(MakeConjunction({})));

  ExprPtr t = MakeCompare(CmpOp::kEq, Col("qty"), MakeLiteral(Value(7)));
  ExprPtr f = MakeCompare(CmpOp::kEq, Col("qty"), MakeLiteral(Value(8)));
  EXPECT_TRUE(MakeConjunction({t})->EvalBool(schema_, row_.data()));
  EXPECT_FALSE(MakeConjunction({t, f})->EvalBool(schema_, row_.data()));
  EXPECT_TRUE(MakeConjunction({t, t, t})->EvalBool(schema_, row_.data()));
}

TEST_F(ExprTest, ToStringRendersSql) {
  ExprPtr e = MakeAnd(
      MakeCompare(CmpOp::kGe, Col("qty"), MakeLiteral(Value(1))),
      MakeBetween(Col("city"), Value("A"), Value("Z")));
  EXPECT_EQ(e->ToString(schema_),
            "((qty >= 1) AND (city BETWEEN 'A' AND 'Z'))");
}

TEST_F(ExprTest, CountMatchesUtility) {
  // Three rows with qty 1, 2, 3.
  Schema s;
  s.AddInt32("qty");
  std::vector<uint8_t> rows(3 * s.row_size());
  for (int i = 0; i < 3; ++i) {
    s.SetInt32(rows.data() + i * s.row_size(), 0, i + 1);
  }
  auto col = MakeColumnRef(0);
  ExprPtr ge2 = MakeCompare(CmpOp::kGe, col, MakeLiteral(Value(2)));
  EXPECT_EQ(CountMatches(*ge2, s, rows.data(), s.row_size(), 3), 2u);
}

}  // namespace
}  // namespace cjoin
