// Runtime behavior of the annotated mutex shim (common/mutex.h): the
// annotations are compile-time only, but the wrappers must still be
// correct std primitives underneath — mutual exclusion, shared/exclusive
// modes, relockable guards, and condvar wakeup/timeout semantics — on
// every compiler, including ones that compile the annotations away.

#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cjoin {
namespace {

TEST(MutexTest, TryLockReflectsHeldState) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockExcludesConcurrentIncrements) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lk(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, UniqueLockUnlockRelockRoundTrip) {
  Mutex mu;
  UniqueLock lk(&mu);
  EXPECT_TRUE(lk.held());
  EXPECT_FALSE(mu.TryLock());

  lk.Unlock();
  EXPECT_FALSE(lk.held());
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();

  lk.Lock();
  EXPECT_TRUE(lk.held());
  EXPECT_FALSE(mu.TryLock());
  // Destructor releases the re-taken lock; a leak would deadlock the
  // next test using a fresh mutex only by accident, so verify directly.
  lk.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex smu;
  {
    ReaderMutexLock r1(&smu);
    // A second reader must be admitted while the first is held.
    EXPECT_TRUE(smu.TryLockShared());
    smu.UnlockShared();
    // A writer must not.
    EXPECT_FALSE(smu.TryLock());
  }
  {
    WriterMutexLock w(&smu);
    EXPECT_FALSE(smu.TryLockShared());
    EXPECT_FALSE(smu.TryLock());
  }
  // Both guards released their mode on destruction.
  ASSERT_TRUE(smu.TryLock());
  smu.Unlock();
}

TEST(CondVarTest, NotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    MutexLock lk(&mu);
    while (!ready) {
      cv.Wait(mu);
    }
    woke.store(true);
  });

  {
    MutexLock lk(&mu);
    ready = true;
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lk(&mu);
  const auto st = cv.WaitFor(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(st, std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilPastDeadlineReturnsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lk(&mu);
  const auto st =
      cv.WaitUntil(mu, std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1));
  EXPECT_EQ(st, std::cv_status::timeout);
}

TEST(CondVarTest, MutexHeldAgainAfterWaitReturns) {
  // The adopt/release trick inside Wait must leave the caller owning the
  // mutex: after WaitFor returns, a TryLock from another thread fails.
  Mutex mu;
  CondVar cv;
  MutexLock lk(&mu);
  (void)cv.WaitFor(mu, std::chrono::milliseconds(1));
  std::atomic<bool> acquired{true};
  std::thread prober([&] { acquired.store(mu.TryLock()); });
  prober.join();
  EXPECT_FALSE(acquired.load());
}

}  // namespace
}  // namespace cjoin
