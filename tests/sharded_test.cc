// Tests for the sharded CJOIN execution subsystem: ShardManager
// hash-partitioning, cross-shard result equivalence against the
// single-operator path (byte-identical at one shard, multiset-identical
// at N), cancellation mid-lap on a sharded pool, update/snapshot
// visibility across shards, runtime re-sharding, and concurrent
// registration/cancellation at shards in {1, 2, 4}.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cjoin/sharded_operator.h"
#include "engine/query_engine.h"
#include "engine/shard_manager.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "storage/sim_disk.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

StarQuerySpec CountStar(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

StarQuerySpec RegionGroup(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.group_by.push_back(ColumnSource::Dim(1, 1));
  spec.group_by_labels.push_back("s_region");
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec.aggregates.push_back(AggregateSpec{
      AggFn::kSum, ColumnSource::Fact(3), nullptr, "amt"});
  spec.aggregates.push_back(AggregateSpec{
      AggFn::kAvg, ColumnSource::Fact(3), nullptr, "avg_amt"});
  return spec;
}

QueryEngine::Options EngineOptions(size_t shards) {
  QueryEngine::Options opts;
  opts.cjoin.max_concurrent_queries = 32;
  opts.cjoin.num_worker_threads = 2;
  opts.cjoin.pool_capacity = 8192;
  opts.cjoin_shards = shards;
  return opts;
}

Result<ResultSet> RunCJoin(QueryEngine& engine, StarQuerySpec spec) {
  QueryRequest req = QueryRequest::FromSpec(std::move(spec));
  req.policy = RoutePolicy::kCJoin;
  CJOIN_ASSIGN_OR_RETURN(auto ticket, engine.Execute(std::move(req)));
  return ticket->Wait();
}

// --------------------------- ShardManager -----------------------------------

TEST(ShardManagerTest, HashPartitionsEveryRowExactlyOnce) {
  auto ts = MakeTinyStar(2000);
  auto mgr = ShardManager::Make(*ts->star, 4);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ((*mgr)->num_shards(), 4u);
  EXPECT_TRUE((*mgr)->replicated());
  EXPECT_EQ((*mgr)->TotalShardRows(), 2000u);
  // Hash placement is balanced enough that no shard is empty or hoards
  // the table at this size.
  for (size_t s = 0; s < 4; ++s) {
    const uint64_t rows = (*mgr)->shard_star(s).fact().NumRows();
    EXPECT_GT(rows, 100u) << "shard " << s;
    EXPECT_LT(rows, 1500u) << "shard " << s;
  }
}

TEST(ShardManagerTest, SingleShardIsPassThrough) {
  auto ts = MakeTinyStar(100);
  auto mgr = ShardManager::Make(*ts->star, 1);
  ASSERT_TRUE(mgr.ok());
  EXPECT_FALSE((*mgr)->replicated());
  // No copy: the sole shard reads the source fact table itself.
  EXPECT_EQ(&(*mgr)->shard_star(0).fact(), ts->sales.get());
}

TEST(ShardManagerTest, PreservesMvccHeaders) {
  auto ts = MakeTinyStar(500);
  // Delete some rows and commit an append before sharding.
  const Schema& fs = ts->sales->schema();
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(ts->sales->MarkDeleted(RowId{0, i}, 7).ok());
  }
  auto mgr = ShardManager::Make(*ts->star, 3);
  ASSERT_TRUE(mgr.ok());
  // Visible-row count at snapshot 6 (before the delete) and at 7 must
  // match the source on the union of shards.
  for (SnapshotId snap : {SnapshotId{6}, SnapshotId{7}}) {
    uint64_t source_visible = 0;
    for (uint64_t i = 0; i < 500; ++i) {
      if (ts->sales->Header(RowId{0, i})->VisibleAt(snap)) ++source_visible;
    }
    uint64_t shard_visible = 0;
    for (size_t s = 0; s < 3; ++s) {
      const Table& t = (*mgr)->shard_star(s).fact();
      for (uint64_t i = 0; i < t.PartitionRows(0); ++i) {
        if (t.Header(RowId{0, i})->VisibleAt(snap)) ++shard_visible;
      }
    }
    EXPECT_EQ(shard_visible, source_visible) << "snapshot " << snap;
  }
  (void)fs;
}

// ------------------- Merge path vs single operator --------------------------

// The merging collector at one shard must be byte-identical to the plain
// single-operator path (same fold order, same finalization math).
TEST(ShardedOperatorTest, MergePathByteIdenticalAtOneShard) {
  auto ts = MakeTinyStar(3000);
  auto mgr = ShardManager::Make(*ts->star, 1);
  ASSERT_TRUE(mgr.ok());

  CJoinOperator::Options op_opts;
  op_opts.max_concurrent_queries = 8;
  op_opts.num_worker_threads = 2;
  op_opts.pool_capacity = 4096;

  CJoinOperator single(*ts->star, op_opts);
  ASSERT_TRUE(single.Start().ok());

  ShardedCJoinOperator::Options sopts;
  sopts.op = op_opts;
  sopts.force_merge_path = true;  // exercise the collector at N=1
  ShardedCJoinOperator sharded(*ts->star, (*mgr)->shard_stars(), sopts);
  ASSERT_TRUE(sharded.Start().ok());

  for (StarQuerySpec spec : {CountStar(*ts), RegionGroup(*ts)}) {
    auto h1 = single.Submit(spec);
    ASSERT_TRUE(h1.ok()) << h1.status().ToString();
    auto r1 = (*h1)->Wait();
    ASSERT_TRUE(r1.ok());

    auto h2 = sharded.Submit(spec, {});
    ASSERT_TRUE(h2.ok()) << h2.status().ToString();
    auto r2 = (*h2)->Wait();
    ASSERT_TRUE(r2.ok());

    r1->SortRows();
    r2->SortRows();
    EXPECT_EQ(r1->ToString(), r2->ToString());  // byte-identical
    EXPECT_EQ(r1->tuples_consumed, r2->tuples_consumed);
  }
  sharded.Stop();
  single.Stop();
}

// ---------------- Cross-shard equivalence on SSB Q1-Q4 -----------------------

TEST(ShardedEquivalenceTest, SsbQueriesAgreeAcrossShardCounts) {
  ssb::GenOptions gopts;
  gopts.scale_factor = 0.003;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    QueryEngine engine(EngineOptions(shards));
    ASSERT_TRUE(engine.RegisterStar("ssb", *db->star).ok());
    ASSERT_EQ(engine.ShardCount("ssb").value(), shards);
    for (const std::string& name : ssb::SsbQueries::AllNames()) {
      StarQuerySpec spec = queries.Canonical(name).value();
      const ResultSet ref = ReferenceEvaluate(spec);
      auto rs = RunCJoin(engine, spec);
      ASSERT_TRUE(rs.ok()) << name << " shards=" << shards << ": "
                           << rs.status().ToString();
      EXPECT_TRUE(rs->SameContents(ref))
          << name << " shards=" << shards << "\ngot:\n"
          << rs->ToString() << "want:\n"
          << ref.ToString();
    }
    engine.Shutdown();
  }
}

TEST(ShardedEquivalenceTest, BatchedProbeByteIdenticalToScalarOnSsb) {
  // The batched gather→prefetch→resolve probe path (probe_batch_size=32)
  // must be byte-identical to the scalar per-tuple loop
  // (probe_batch_size=1) on every SSB query, at 1 shard and 4 shards.
  ssb::GenOptions gopts;
  gopts.scale_factor = 0.003;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);

  for (size_t shards : {size_t{1}, size_t{4}}) {
    std::vector<std::string> outputs[2];  // [0]=scalar, [1]=batched
    for (int arm = 0; arm < 2; ++arm) {
      QueryEngine::Options opts = EngineOptions(shards);
      opts.cjoin.probe_batch_size = arm == 0 ? 1 : 32;
      QueryEngine engine(opts);
      ASSERT_TRUE(engine.RegisterStar("ssb", *db->star).ok());
      for (const std::string& name : ssb::SsbQueries::AllNames()) {
        StarQuerySpec spec = queries.Canonical(name).value();
        const ResultSet ref = ReferenceEvaluate(spec);
        auto rs = RunCJoin(engine, spec);
        ASSERT_TRUE(rs.ok()) << name << " shards=" << shards
                             << " arm=" << arm << ": "
                             << rs.status().ToString();
        EXPECT_TRUE(rs->SameContents(ref))
            << name << " shards=" << shards << " arm=" << arm;
        rs->SortRows();
        outputs[arm].push_back(rs->ToString());
      }
      engine.Shutdown();
    }
    ASSERT_EQ(outputs[0].size(), outputs[1].size());
    const auto names = ssb::SsbQueries::AllNames();
    for (size_t i = 0; i < outputs[0].size(); ++i) {
      EXPECT_EQ(outputs[0][i], outputs[1][i])
          << names[i] << " shards=" << shards
          << ": batched arm diverged from scalar arm";
    }
  }
}

// --------------------------- Cancellation -----------------------------------

TEST(ShardedCancelTest, CancelMidLapOnOneShardTerminatesTheQuery) {
  auto ts = MakeTinyStar(50000);
  // A slow shared disk keeps every shard's lap long enough that the
  // cancel lands mid-lap on all of them.
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts = EngineOptions(2);
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  auto t = engine.Execute(std::move(req));
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*t)->Cancel();
  auto rs = (*t)->Wait();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);

  // Every shard reclaimed its slot: the next query registers on all
  // shards and completes correctly.
  QueryRequest req2 = QueryRequest::FromSpec(CountStar(*ts));
  req2.policy = RoutePolicy::kCJoin;
  auto t2 = engine.Execute(std::move(req2));
  ASSERT_TRUE(t2.ok());
  auto rs2 = (*t2)->Wait();
  ASSERT_TRUE(rs2.ok()) << rs2.status().ToString();
  EXPECT_EQ(rs2->rows[0][0].AsInt(), 50000);
}

TEST(ShardedCancelTest, DeadlineExpiresAcrossShards) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts = EngineOptions(2);
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  req.timeout = std::chrono::milliseconds(100);
  auto t = engine.Execute(std::move(req));
  ASSERT_TRUE(t.ok());
  auto rs = (*t)->Wait();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
}

// --------------------- Updates & snapshot visibility -------------------------

TEST(ShardedUpdateTest, SnapshotSeesIdenticalDataOnEveryShard) {
  auto ts = MakeTinyStar(2000);
  QueryEngine engine(EngineOptions(2));
  ASSERT_TRUE(engine.RegisterStar("sales", *ts->star).ok());

  auto count_at = [&](SnapshotId snap) -> int64_t {
    StarQuerySpec spec = CountStar(*ts);
    spec.snapshot = snap;
    auto rs = RunCJoin(engine, spec);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.ok() ? rs->rows[0][0].AsInt() : -1;
  };
  auto count_now = [&]() -> int64_t {
    return count_at(kReadLatestSnapshot);
  };
  EXPECT_EQ(count_now(), 2000);

  // Delete rows with f_qty == 10 (200 of 2000); mirrored to both shards
  // at one commit snapshot.
  const Schema& fs = ts->sales->schema();
  auto qty10 = MakeCompare(CmpOp::kEq, MakeColumnRef(fs, "f_qty").value(),
                           MakeLiteral(Value(10)));
  auto del_snap = engine.DeleteFacts("sales", qty10);
  ASSERT_TRUE(del_snap.ok());
  EXPECT_EQ(count_now(), 1800);
  // A query registered at the pre-delete epoch reads the pre-delete data
  // on every shard: the counts (shard-wise sums) reproduce it exactly.
  EXPECT_EQ(count_at(*del_snap - 1), 2000);

  // Appends route to their hash shard under one commit; the count (sum
  // over both shards' laps) converges to include all of them.
  std::vector<std::vector<uint8_t>> rows;
  for (int i = 0; i < 7; ++i) {
    std::vector<uint8_t> p(fs.row_size());
    fs.SetInt32(p.data(), 0, i % 20 + 1);
    fs.SetInt32(p.data(), 1, i % 6 + 1);
    fs.SetInt32(p.data(), 2, 3);
    fs.SetInt32(p.data(), 3, 50);
    rows.push_back(std::move(p));
  }
  ASSERT_TRUE(engine.AppendFacts("sales", rows).ok());
  int64_t n = 0;
  for (int attempt = 0; attempt < 200; ++attempt) {
    n = count_now();
    if (n == 1807) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(n, 1807);
  // The old snapshot still reads the pre-delete, pre-append universe.
  EXPECT_EQ(count_at(*del_snap - 1), 2000);
}

// --------------------------- Re-sharding ------------------------------------

TEST(ShardedReshardTest, SetShardCountRebuildsThePool) {
  auto ts = MakeTinyStar(3000);
  QueryEngine engine(EngineOptions(1));
  ASSERT_TRUE(engine.RegisterStar("sales", *ts->star).ok());
  const ResultSet ref =
      ReferenceEvaluate(*NormalizeSpec(RegionGroup(*ts)));

  for (size_t shards : {size_t{3}, size_t{1}, size_t{4}}) {
    ASSERT_TRUE(engine.SetShardCount("sales", shards).ok());
    EXPECT_EQ(engine.ShardCount("sales").value(), shards);
    auto rs = RunCJoin(engine, RegionGroup(*ts));
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(rs->SameContents(ref)) << "shards=" << shards;
  }
  EXPECT_FALSE(engine.SetShardCount("sales", 0).ok());
  EXPECT_FALSE(engine.SetShardCount("nope", 2).ok());
}

// ------------------- Galaxy join over a sharded pool -------------------------

TEST(ShardedGalaxyTest, CustomAggregatorPathIsSerialized) {
  auto ts = MakeTinyStar(2000);
  QueryEngine engine(EngineOptions(2));
  ASSERT_TRUE(engine.RegisterStar("sales", *ts->star).ok());

  Schema rschema;
  rschema.AddInt32("r_pid").AddInt32("r_qty");
  auto returns = std::make_unique<Table>("returns", rschema);
  for (int i = 0; i < 600; ++i) {
    uint8_t* row = returns->AppendUninitialized();
    rschema.SetInt32(row, 0, i % 20 + 1);
    rschema.SetInt32(row, 1, i % 3 + 1);
  }
  auto star2 = StarSchema::Make(
      returns.get(), std::vector<StarSchema::DimensionByName>{
                         {ts->product.get(), "r_pid", "p_id"}});
  ASSERT_TRUE(star2.ok());
  ASSERT_TRUE(engine.RegisterStar("returns", std::move(*star2)).ok());

  QueryEngine::GalaxyJoinSpec gspec;
  gspec.left.schema = engine.FindStar("sales").value();
  gspec.left.dim_predicates.push_back(DimensionPredicate{0, MakeTrue()});
  gspec.right.schema = engine.FindStar("returns").value();
  gspec.left_join_col = 0;
  gspec.right_join_col = 0;
  gspec.group_by.push_back(
      {0, ColumnSource::Dim(0, 1), "p_cat"});
  gspec.aggregates.push_back({AggFn::kCount, 0, std::nullopt, "pairs"});

  auto rs = engine.ExecuteGalaxyJoin(gspec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 4u);  // cat0..cat3
  int64_t pairs = 0;
  for (const auto& row : rs->rows) pairs += row[1].AsInt();
  // Brute-force pair count: each product key joins (sales rows with pid)
  // x (returns rows with pid). 2000/20=100 sales, 600/20=30 returns per
  // key, 20 keys.
  EXPECT_EQ(pairs, 20 * 100 * 30);
}

// --------------- Concurrent registration / cancellation ----------------------

TEST(ShardedConcurrencyTest, ConcurrentSubmitAndCancelAcrossShardCounts) {
  auto ts = MakeTinyStar(5000);
  const ResultSet count_ref =
      ReferenceEvaluate(*NormalizeSpec(CountStar(*ts)));
  const ResultSet group_ref =
      ReferenceEvaluate(*NormalizeSpec(RegionGroup(*ts)));

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    QueryEngine engine(EngineOptions(shards));
    ASSERT_TRUE(engine.RegisterStar("sales", *ts->star).ok());
    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        for (int i = 0; i < 12; ++i) {
          const bool grouped = (w + i) % 2 == 0;
          QueryRequest req = QueryRequest::FromSpec(
              grouped ? RegionGroup(*ts) : CountStar(*ts));
          req.policy = RoutePolicy::kCJoin;
          auto t = engine.Execute(std::move(req));
          if (!t.ok()) {
            failed.store(true);
            continue;
          }
          if (i % 3 == w % 3) (*t)->Cancel();
          auto rs = (*t)->Wait();
          if (rs.ok()) {
            // Completed queries must be exact regardless of the races.
            if (!rs->SameContents(grouped ? group_ref : count_ref)) {
              failed.store(true);
            }
          } else if (rs.status().code() != StatusCode::kCancelled) {
            failed.store(true);
          }
        }
      });
    }
    for (auto& th : workers) th.join();
    EXPECT_FALSE(failed.load()) << "shards=" << shards;
    engine.Shutdown();
  }
}

}  // namespace
}  // namespace cjoin
