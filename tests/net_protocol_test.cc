// Wire-protocol tests: encode/decode round-trips for every frame type,
// ResultSet batching, incremental frame assembly, and — because bytes
// off a socket are hostile until proven otherwise — a battery of
// truncated / oversized / garbage payloads that must all fail with
// kInvalidArgument instead of crashing or allocating absurd amounts.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"

namespace cjoin {
namespace net {
namespace {

// Strips the 5-byte header of an encoded frame, checking it is
// well-formed, and returns the payload.
std::vector<uint8_t> Payload(const std::vector<uint8_t>& frame,
                             FrameType expect_type) {
  EXPECT_GE(frame.size(), kFrameHeaderSize);
  uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof(len));
  EXPECT_EQ(len, frame.size() - kFrameHeaderSize);
  EXPECT_EQ(frame[4], static_cast<uint8_t>(expect_type));
  return std::vector<uint8_t>(frame.begin() + kFrameHeaderSize, frame.end());
}

// ------------------------------ Round trips ---------------------------------

TEST(ProtocolRoundTrip, Hello) {
  HelloRequest req{"tenant-7"};
  auto got = DecodeHelloRequest(
      Payload(EncodeHelloRequest(req), FrameType::kHello));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->tenant, "tenant-7");

  HelloReply rep{42};
  auto got2 =
      DecodeHelloReply(Payload(EncodeHelloReply(rep), FrameType::kHello));
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got2->session_id, 42u);
}

TEST(ProtocolRoundTrip, Query) {
  QueryFrame f;
  f.id = 99;
  f.timeout_ns = 1500000000;
  f.priority = -3;
  f.policy = 2;  // RoutePolicy::kBaseline on the wire
  f.star = "ssb";
  f.sql = "SELECT COUNT(*) FROM lineorder WHERE lo_discount < 3";
  auto got = DecodeQuery(Payload(EncodeQuery(f), FrameType::kQuery));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->id, 99u);
  EXPECT_EQ(got->timeout_ns, 1500000000);
  EXPECT_EQ(got->priority, -3);
  EXPECT_EQ(got->policy, 2);
  EXPECT_EQ(got->star, "ssb");
  EXPECT_EQ(got->sql, f.sql);

  // A policy byte outside the RoutePolicy range must be rejected, not
  // cast blindly into the enum.
  QueryFrame bad = f;
  bad.policy = 9;
  auto rej = DecodeQuery(Payload(EncodeQuery(bad), FrameType::kQuery));
  ASSERT_FALSE(rej.ok());
  EXPECT_EQ(rej.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolRoundTrip, RowBatchAllValueKinds) {
  RowBatchFrame f;
  f.id = 7;
  f.first = true;
  f.columns = {"a", "b", "c", "d"};
  f.rows.push_back({Value(), Value(static_cast<int64_t>(-5)), Value(2.5),
                    Value(std::string("hi"))});
  f.rows.push_back({Value(static_cast<int64_t>(1)), Value(),
                    Value(std::string("")), Value(-0.0)});
  auto got = DecodeRowBatch(Payload(EncodeRowBatch(f), FrameType::kRowBatch));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->id, 7u);
  EXPECT_TRUE(got->first);
  EXPECT_EQ(got->columns, f.columns);
  ASSERT_EQ(got->rows.size(), 2u);
  EXPECT_TRUE(got->rows[0][0].is_null());
  EXPECT_EQ(got->rows[0][1].AsInt(), -5);
  EXPECT_EQ(got->rows[0][2].AsDouble(), 2.5);
  EXPECT_EQ(got->rows[0][3].AsString(), "hi");
  EXPECT_EQ(got->rows[1][2].AsString(), "");
}

TEST(ProtocolRoundTrip, QueryDoneErrorCancel) {
  QueryDoneFrame d;
  d.id = 3;
  d.total_rows = 1000;
  d.tuples_consumed = 123456;
  d.snapshot = 9;
  d.response_seconds = 0.125;
  auto got =
      DecodeQueryDone(Payload(EncodeQueryDone(d), FrameType::kQueryDone));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->total_rows, 1000u);
  EXPECT_EQ(got->tuples_consumed, 123456u);
  EXPECT_EQ(got->snapshot, 9u);
  EXPECT_EQ(got->response_seconds, 0.125);
  EXPECT_TRUE(got->trace_json.empty());  // v1-shaped frame: no tail

  ErrorFrame e;
  e.id = 4;
  e.code = StatusCode::kResourceExhausted;
  e.message = "tenant over quota";
  auto got2 = DecodeError(Payload(EncodeError(e), FrameType::kError));
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got2->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(got2->ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(got2->message, "tenant over quota");

  CancelFrame c{77};
  auto got3 = DecodeCancel(Payload(EncodeCancel(c), FrameType::kCancel));
  ASSERT_TRUE(got3.ok());
  EXPECT_EQ(got3->id, 77u);
}

TEST(ProtocolRoundTrip, IngestAndStats) {
  IngestFrame f;
  f.id = 11;
  f.star = "ssb";
  f.rows.push_back({Value(static_cast<int64_t>(1)), Value(std::string("x"))});
  f.rows.push_back({Value(static_cast<int64_t>(2)), Value(std::string("y"))});
  auto got = DecodeIngest(Payload(EncodeIngest(f), FrameType::kIngest));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->star, "ssb");
  ASSERT_EQ(got->rows.size(), 2u);
  EXPECT_EQ(got->rows[1][1].AsString(), "y");

  IngestReply r{11, 5, 2};
  auto got2 =
      DecodeIngestReply(Payload(EncodeIngestReply(r), FrameType::kIngest));
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(got2->snapshot, 5u);
  EXPECT_EQ(got2->rows_appended, 2u);

  StatsRequest sr{13};
  auto got3 =
      DecodeStatsRequest(Payload(EncodeStatsRequest(sr), FrameType::kStats));
  ASSERT_TRUE(got3.ok());
  EXPECT_EQ(got3->id, 13u);

  StatsReply sp{13, "{\"snapshot\":1}"};
  auto got4 = DecodeStatsReply(Payload(EncodeStatsReply(sp), FrameType::kStats));
  ASSERT_TRUE(got4.ok());
  EXPECT_EQ(got4->json, "{\"snapshot\":1}");
}

TEST(ProtocolRoundTrip, QueryDoneTraceTail) {
  // v2 optional tail: present round-trips intact...
  QueryDoneFrame d;
  d.id = 21;
  d.total_rows = 4;
  d.response_seconds = 0.5;
  d.trace_json =
      "{\"route\":\"cjoin\",\"spans\":[{\"kind\":\"stage\","
      "\"label\":\"pre\"}]}";
  auto got =
      DecodeQueryDone(Payload(EncodeQueryDone(d), FrameType::kQueryDone));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->id, 21u);
  EXPECT_EQ(got->trace_json, d.trace_json);

  // ...absent leaves the field empty and costs no bytes.
  QueryDoneFrame bare;
  bare.id = 22;
  auto got2 =
      DecodeQueryDone(Payload(EncodeQueryDone(bare), FrameType::kQueryDone));
  ASSERT_TRUE(got2.ok());
  EXPECT_TRUE(got2->trace_json.empty());
  EXPECT_LT(EncodeQueryDone(bare).size(), EncodeQueryDone(d).size());

  // Trailing garbage after the fixed fields must still fail the tail
  // string's own bounds check, not decode as a trace.
  std::vector<uint8_t> payload =
      Payload(EncodeQueryDone(bare), FrameType::kQueryDone);
  payload.push_back(0xFF);  // truncated length word
  EXPECT_FALSE(DecodeQueryDone(payload).ok());
  // A hostile length word claiming more bytes than present also fails.
  std::vector<uint8_t> hostile =
      Payload(EncodeQueryDone(bare), FrameType::kQueryDone);
  for (uint8_t b : {0xFF, 0xFF, 0xFF, 0x7F}) hostile.push_back(b);
  EXPECT_FALSE(DecodeQueryDone(hostile).ok());
}

// ----------------------------- Result batching ------------------------------

ResultSet MakeResult(size_t rows) {
  ResultSet rs;
  rs.columns = {"k", "v"};
  for (size_t i = 0; i < rows; ++i) {
    rs.rows.push_back(
        {Value(static_cast<int64_t>(i)), Value(static_cast<double>(i) / 2)});
  }
  rs.tuples_consumed = rows * 10;
  return rs;
}

TEST(ResultBatching, EmptyResultStillSendsHeaderBatch) {
  auto frames = EncodeResultBatches(5, MakeResult(0), 128);
  ASSERT_EQ(frames.size(), 1u);
  auto got = DecodeRowBatch(Payload(frames[0], FrameType::kRowBatch));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->first);
  EXPECT_EQ(got->columns.size(), 2u);
  EXPECT_TRUE(got->rows.empty());
}

TEST(ResultBatching, SplitsAndReassembles) {
  const ResultSet rs = MakeResult(1000);
  auto frames = EncodeResultBatches(5, rs, 128);
  EXPECT_EQ(frames.size(), (1000 + 127) / 128);
  size_t total = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    auto got = DecodeRowBatch(Payload(frames[i], FrameType::kRowBatch));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->id, 5u);
    EXPECT_EQ(got->first, i == 0);
    EXPECT_EQ(got->columns.empty(), i != 0);
    for (const auto& row : got->rows) {
      EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(total));
      ++total;
    }
  }
  EXPECT_EQ(total, 1000u);
}

// ----------------------------- Frame assembly -------------------------------

TEST(FrameAssemblerTest, ByteAtATime) {
  auto frame = EncodeQuery(QueryFrame{1, 0, 0, 0, "s", "select 1"});
  FrameAssembler asm_;
  Frame out;
  for (size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(asm_.Next(&out));
    ASSERT_TRUE(asm_.Feed(&frame[i], 1).ok());
  }
  ASSERT_TRUE(asm_.Next(&out));
  EXPECT_EQ(out.type, FrameType::kQuery);
  EXPECT_FALSE(asm_.Next(&out));
  EXPECT_EQ(asm_.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, ManyFramesOneFeed) {
  std::vector<uint8_t> stream;
  for (int i = 0; i < 10; ++i) {
    auto f = EncodeCancel(CancelFrame{static_cast<uint64_t>(i)});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameAssembler asm_;
  ASSERT_TRUE(asm_.Feed(stream.data(), stream.size()).ok());
  Frame out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(asm_.Next(&out));
    auto c = DecodeCancel(out.payload);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c->id, static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(asm_.Next(&out));
}

TEST(FrameAssemblerTest, HostileLengthRejectedBeforeAllocation) {
  // Header claiming a payload far over kMaxFramePayload.
  uint8_t hdr[kFrameHeaderSize] = {0xff, 0xff, 0xff, 0xff,
                                   static_cast<uint8_t>(FrameType::kQuery)};
  FrameAssembler asm_;
  Status st = asm_.Feed(hdr, sizeof(hdr));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

// ------------------------------ Hostile decode ------------------------------

TEST(HostileDecode, TruncationsNeverCrash) {
  // Every well-formed frame, truncated at every length, must decode to
  // kInvalidArgument (or, for a prefix that happens to be self-consistent,
  // still a clean Result) — never crash or throw.
  const std::vector<std::vector<uint8_t>> frames = {
      EncodeHelloRequest(HelloRequest{"t"}),
      EncodeQuery(QueryFrame{1, 5, 2, 1, "star", "select 1"}),
      EncodeRowBatch(RowBatchFrame{
          1, true, {"c"}, {{Value(static_cast<int64_t>(1))}}}),
      EncodeError(ErrorFrame{1, StatusCode::kAborted, "x"}),
      EncodeIngest(IngestFrame{1, "s", {{Value(1.5)}}}),
  };
  for (const auto& f : frames) {
    const std::vector<uint8_t> payload(f.begin() + kFrameHeaderSize, f.end());
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      std::vector<uint8_t> trunc(payload.begin(), payload.begin() + cut);
      (void)DecodeHelloRequest(trunc);
      (void)DecodeQuery(trunc);
      (void)DecodeRowBatch(trunc);
      (void)DecodeError(trunc);
      (void)DecodeIngest(trunc);
    }
  }
  SUCCEED();
}

TEST(HostileDecode, WrongMagicOrVersion) {
  auto frame = EncodeHelloRequest(HelloRequest{"t"});
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderSize, frame.end());
  payload[0] ^= 0xff;  // corrupt magic
  EXPECT_EQ(DecodeHelloRequest(payload).status().code(),
            StatusCode::kInvalidArgument);

  payload[0] ^= 0xff;  // restore; corrupt version
  payload[4] = 0x7f;
  EXPECT_EQ(DecodeHelloRequest(payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HostileDecode, AbsurdStringLengthRejected) {
  WireWriter w;
  w.PutU64(1);                    // id
  w.PutI64(0);                    // timeout
  w.PutI32(0);                    // priority
  w.PutU32(0xffffffffu);          // star "length"
  auto got = DecodeQuery(w.Take());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(HostileDecode, RowCountOverflowRejected) {
  // A batch claiming 2^32-1 rows with a near-empty payload must be
  // rejected by the claimed-count vs remaining-bytes check, not attempt a
  // 4-billion-entry reserve.
  WireWriter w;
  w.PutU64(1);            // id
  w.PutU8(1);             // first
  w.PutU16(1);            // 1 column
  w.PutString("c");
  w.PutU32(0xffffffffu);  // row count
  w.PutU16(1);            // row width
  auto got = DecodeRowBatch(w.Take());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(HostileDecode, BadValueKindTagRejected) {
  WireWriter w;
  w.PutU64(1);     // id
  w.PutString("s");
  w.PutU32(1);     // 1 row
  w.PutU16(1);     // row width
  w.PutU8(250);    // bogus value kind
  auto got = DecodeIngest(w.Take());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(HostileDecode, TrailingGarbageRejected) {
  auto frame = EncodeCancel(CancelFrame{1});
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderSize, frame.end());
  payload.push_back(0xab);
  EXPECT_EQ(DecodeCancel(payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HostileDecode, ErrorCodeOutOfRangeRejected) {
  WireWriter w;
  w.PutU64(1);
  w.PutU16(200);  // not a StatusCode
  w.PutString("m");
  EXPECT_EQ(DecodeError(w.Take()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace net
}  // namespace cjoin
