#include "tests/test_util.h"

#include <cstdio>

namespace cjoin {
namespace testing {

std::unique_ptr<TinyStar> MakeTinyStar(uint64_t num_facts, int num_products,
                                       int num_stores,
                                       uint32_t fact_partitions) {
  auto ts = std::make_unique<TinyStar>();

  Schema pschema;
  pschema.AddInt32("p_id").AddChar("p_cat", 8).AddInt32("p_price");
  ts->product = std::make_unique<Table>("product", pschema);
  for (int p = 1; p <= num_products; ++p) {
    uint8_t* row = ts->product->AppendUninitialized();
    char cat[9];
    std::snprintf(cat, sizeof(cat), "cat%d", p % 4);
    pschema.SetInt32(row, 0, p);
    pschema.SetChar(row, 1, cat);
    pschema.SetInt32(row, 2, p * 100);
  }

  Schema sschema;
  sschema.AddInt32("s_id").AddChar("s_region", 8);
  ts->store = std::make_unique<Table>("store", sschema);
  for (int s = 1; s <= num_stores; ++s) {
    uint8_t* row = ts->store->AppendUninitialized();
    char region[9];
    std::snprintf(region, sizeof(region), "R%d", s % 3);
    sschema.SetInt32(row, 0, s);
    sschema.SetChar(row, 1, region);
  }

  Schema fschema;
  fschema.AddInt32("f_pid").AddInt32("f_sid").AddInt32("f_qty").AddInt32(
      "f_amount");
  Table::Options fopts;
  fopts.rows_per_page = 128;  // several pages even for small tables
  fopts.num_partitions = fact_partitions;
  ts->sales = std::make_unique<Table>("sales", fschema, fopts);
  for (uint64_t i = 0; i < num_facts; ++i) {
    uint8_t* row = ts->sales->AppendUninitialized(
        static_cast<uint32_t>(i % fact_partitions));
    fschema.SetInt32(row, 0, static_cast<int32_t>(i % num_products) + 1);
    fschema.SetInt32(row, 1, static_cast<int32_t>(i % num_stores) + 1);
    fschema.SetInt32(row, 2, static_cast<int32_t>(i % 10) + 1);
    fschema.SetInt32(row, 3, static_cast<int32_t>(i % 100) * 10);
  }

  auto star = StarSchema::Make(
      ts->sales.get(),
      std::vector<StarSchema::DimensionByName>{
          {ts->product.get(), "f_pid", "p_id"},
          {ts->store.get(), "f_sid", "s_id"},
      });
  ts->star = std::make_unique<StarSchema>(std::move(star).value());
  return ts;
}

ResultSet ReferenceEvaluate(const StarQuerySpec& spec) {
  const StarSchema& star = *spec.schema;

  // Selected rows of each referenced dimension, keyed by PK.
  std::vector<std::map<int64_t, const uint8_t*>> selected(
      star.num_dimensions());
  std::vector<bool> referenced(star.num_dimensions(), false);
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    referenced[dp.dim_index] = true;
    const DimensionDef& def = star.dimension(dp.dim_index);
    const Table& dim = *def.table;
    for (uint32_t p = 0; p < dim.num_partitions(); ++p) {
      for (uint64_t i = 0; i < dim.PartitionRows(p); ++i) {
        const RowId id{p, i};
        if (!dim.Header(id)->VisibleAt(spec.snapshot)) continue;
        const uint8_t* row = dim.RowPayload(id);
        if (!dp.predicate->EvalBool(dim.schema(), row)) continue;
        selected[dp.dim_index][dim.schema().GetIntAny(row, def.dim_pk_col)] =
            row;
      }
    }
  }

  std::unique_ptr<StarAggregator> agg = MakeSortAggregator(spec);
  const Table& fact = star.fact();
  const Schema& fschema = fact.schema();

  std::vector<uint32_t> parts = spec.partitions;
  if (parts.empty()) {
    for (uint32_t p = 0; p < fact.num_partitions(); ++p) parts.push_back(p);
  }

  std::vector<const uint8_t*> dim_rows(star.num_dimensions(), nullptr);
  for (uint32_t p : parts) {
    for (uint64_t i = 0; i < fact.PartitionRows(p); ++i) {
      const RowId id{p, i};
      if (!fact.Header(id)->VisibleAt(spec.snapshot)) continue;
      const uint8_t* row = fact.RowPayload(id);
      if (spec.fact_predicate != nullptr &&
          !spec.fact_predicate->EvalBool(fschema, row)) {
        continue;
      }
      bool pass = true;
      for (size_t d = 0; d < star.num_dimensions(); ++d) {
        dim_rows[d] = nullptr;
        if (!referenced[d]) continue;
        const int64_t fk =
            fschema.GetIntAny(row, star.dimension(d).fact_fk_col);
        auto it = selected[d].find(fk);
        if (it == selected[d].end()) {
          pass = false;
          break;
        }
        dim_rows[d] = it->second;
      }
      if (!pass) continue;
      agg->Consume(row, dim_rows.data());
    }
  }
  return agg->Finish();
}

}  // namespace testing
}  // namespace cjoin
