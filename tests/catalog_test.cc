// Unit tests for the star schema catalog and query-spec validation.

#include <gtest/gtest.h>

#include "catalog/query_spec.h"
#include "catalog/star_schema.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(100); }
  std::unique_ptr<TinyStar> ts_;
};

TEST_F(CatalogTest, StarSchemaWiring) {
  const StarSchema& star = *ts_->star;
  EXPECT_EQ(star.num_dimensions(), 2u);
  EXPECT_EQ(star.fact().name(), "sales");
  EXPECT_EQ(star.dimension(0).table->name(), "product");
  EXPECT_EQ(star.dimension(1).table->name(), "store");
  auto d = star.FindDimension("store");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 1u);
  EXPECT_FALSE(star.FindDimension("warehouse").ok());
}

TEST_F(CatalogTest, MakeRejectsBadJoinColumns) {
  auto bad = StarSchema::Make(
      ts_->sales.get(),
      std::vector<StarSchema::DimensionByName>{
          {ts_->product.get(), "f_pid", "p_cat"}});  // PK is CHAR
  EXPECT_FALSE(bad.ok());
  auto missing = StarSchema::Make(
      ts_->sales.get(),
      std::vector<StarSchema::DimensionByName>{
          {ts_->product.get(), "no_such_col", "p_id"}});
  EXPECT_FALSE(missing.ok());
  EXPECT_FALSE(StarSchema::Make(nullptr, std::vector<DimensionDef>{}).ok());
}

TEST_F(CatalogTest, GalaxyRegistry) {
  Galaxy g;
  auto star1 = StarSchema::Make(
      ts_->sales.get(), std::vector<StarSchema::DimensionByName>{
                            {ts_->product.get(), "f_pid", "p_id"}});
  ASSERT_TRUE(star1.ok());
  ASSERT_TRUE(g.AddStar("sales", std::move(star1).value()).ok());
  EXPECT_TRUE(g.FindStar("sales").ok());
  EXPECT_FALSE(g.FindStar("other").ok());
  auto star2 = StarSchema::Make(
      ts_->sales.get(), std::vector<StarSchema::DimensionByName>{
                            {ts_->store.get(), "f_sid", "s_id"}});
  ASSERT_TRUE(star2.ok());
  EXPECT_FALSE(g.AddStar("sales", std::move(star2).value()).ok())
      << "duplicate names must be rejected";
  EXPECT_EQ(g.num_stars(), 1u);
}

StarQuerySpec BaseSpec(const StarSchema* star) {
  StarQuerySpec spec;
  spec.schema = star;
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

TEST_F(CatalogTest, ValidateAcceptsMinimalSpec) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  EXPECT_TRUE(ValidateSpec(spec).ok());
}

TEST_F(CatalogTest, ValidateRejectsBadDimensionIndex) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.dim_predicates.push_back(DimensionPredicate{5, MakeTrue()});
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST_F(CatalogTest, ValidateRejectsNullPredicate) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.dim_predicates.push_back(DimensionPredicate{0, nullptr});
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST_F(CatalogTest, ValidateRejectsUnreferencedGroupByDimension) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.group_by.push_back(ColumnSource::Dim(0, 1));
  spec.group_by_labels.push_back("p_cat");
  EXPECT_FALSE(ValidateSpec(spec).ok());
  // NormalizeSpec fixes it by adding a TRUE predicate entry.
  auto fixed = NormalizeSpec(spec);
  ASSERT_TRUE(fixed.ok());
  ASSERT_EQ(fixed->dim_predicates.size(), 1u);
  EXPECT_EQ(fixed->dim_predicates[0].dim_index, 0u);
  EXPECT_TRUE(IsTrueLiteral(fixed->dim_predicates[0].predicate));
  EXPECT_TRUE(ValidateSpec(*fixed).ok());
}

TEST_F(CatalogTest, ValidateRejectsSumWithoutInput) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kSum, std::nullopt, nullptr, "s"});
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST_F(CatalogTest, ValidateRejectsDoubleInput) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.aggregates.push_back(AggregateSpec{
      AggFn::kSum, ColumnSource::Fact(2),
      MakeColumnRef(2), "s"});
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST_F(CatalogTest, ValidateRejectsBadPartition) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.partitions.push_back(99);
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST_F(CatalogTest, NormalizeMergesDuplicatePredicates) {
  const Schema& pschema = ts_->product->schema();
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  auto col = MakeColumnRef(pschema, "p_price").value();
  spec.dim_predicates.push_back(DimensionPredicate{
      0, MakeCompare(CmpOp::kGe, col, MakeLiteral(Value(200)))});
  spec.dim_predicates.push_back(DimensionPredicate{
      0, MakeCompare(CmpOp::kLe, col, MakeLiteral(Value(900)))});
  auto norm = NormalizeSpec(spec);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->dim_predicates.size(), 1u);
  // The merged predicate is the conjunction: row price 500 passes, 100
  // and 1000 fail.
  const Schema& ps = ts_->product->schema();
  std::vector<uint8_t> row(ps.row_size());
  ps.SetInt32(row.data(), 2, 500);
  EXPECT_TRUE(norm->dim_predicates[0].predicate->EvalBool(ps, row.data()));
  ps.SetInt32(row.data(), 2, 100);
  EXPECT_FALSE(norm->dim_predicates[0].predicate->EvalBool(ps, row.data()));
}

TEST_F(CatalogTest, NormalizeSynthesizesLabels) {
  StarQuerySpec spec = BaseSpec(ts_->star.get());
  spec.aggregates[0].label.clear();
  spec.group_by.push_back(ColumnSource::Dim(1, 1));  // s_region
  auto norm = NormalizeSpec(spec);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->group_by_labels.size(), 1u);
  EXPECT_EQ(norm->group_by_labels[0], "s_region");
  EXPECT_EQ(norm->aggregates[0].label, "COUNT(*)");
}

TEST_F(CatalogTest, NormalizeDedupsPartitions) {
  auto ts = MakeTinyStar(100, 10, 4, /*fact_partitions=*/4);
  StarQuerySpec spec = BaseSpec(ts->star.get());
  spec.partitions = {2, 1, 2, 1, 3};
  auto norm = NormalizeSpec(spec);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->partitions, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(AggFnTest, Names) {
  EXPECT_STREQ(AggFnName(AggFn::kCount), "COUNT");
  EXPECT_STREQ(AggFnName(AggFn::kSum), "SUM");
  EXPECT_STREQ(AggFnName(AggFn::kMin), "MIN");
  EXPECT_STREQ(AggFnName(AggFn::kMax), "MAX");
  EXPECT_STREQ(AggFnName(AggFn::kAvg), "AVG");
}

}  // namespace
}  // namespace cjoin
