// Unit tests for aggregation operators and result sets, including the
// hash-vs-sort aggregator equivalence property.

#include <gtest/gtest.h>

#include "exec/aggregation.h"
#include "exec/key_row_map.h"
#include "exec/result_set.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

// ------------------------------ ResultSet -----------------------------------

TEST(ResultSetTest, SortAndRender) {
  ResultSet rs;
  rs.columns = {"k", "v"};
  rs.rows = {{Value("b"), Value(int64_t{2})}, {Value("a"), Value(int64_t{1})}};
  rs.SortRows();
  EXPECT_EQ(rs.rows[0][0].AsString(), "a");
  const std::string rendered = rs.ToString();
  EXPECT_NE(rendered.find("k\tv"), std::string::npos);
  EXPECT_NE(rendered.find("'a'\t1"), std::string::npos);
}

TEST(ResultSetTest, SameContentsIsOrderInsensitive) {
  ResultSet a, b;
  a.columns = b.columns = {"x"};
  a.rows = {{Value(1)}, {Value(2)}};
  b.rows = {{Value(2)}, {Value(1)}};
  EXPECT_TRUE(a.SameContents(b));
  b.rows.push_back({Value(3)});
  EXPECT_FALSE(a.SameContents(b));
  ResultSet c;
  c.columns = {"y"};
  c.rows = a.rows;
  EXPECT_FALSE(a.SameContents(c));
}

TEST(ResultSetTest, ToStringTruncates) {
  ResultSet rs;
  rs.columns = {"x"};
  for (int i = 0; i < 10; ++i) rs.rows.push_back({Value(i)});
  const std::string s = rs.ToString(3);
  EXPECT_NE(s.find("7 more"), std::string::npos);
}

// ------------------------------ KeyRowMap -----------------------------------

TEST(KeyRowMapTest, InsertFindGrow) {
  KeyRowMap m(4);
  std::vector<uint8_t> arena(1000);
  for (int64_t k = 0; k < 500; ++k) {
    m.Insert(k * 7, arena.data() + k);
  }
  EXPECT_EQ(m.size(), 500u);
  for (int64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(m.Find(k * 7), arena.data() + k);
  }
  EXPECT_EQ(m.Find(3), nullptr);
  EXPECT_EQ(m.Find(-1), nullptr);
}

TEST(KeyRowMapTest, NegativeKeys) {
  KeyRowMap m;
  uint8_t x;
  m.Insert(-42, &x);
  EXPECT_EQ(m.Find(-42), &x);
}

// ----------------------------- Aggregation ----------------------------------

class AggregationTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(1000); }

  StarQuerySpec SpecWith(std::vector<ColumnSource> group_by,
                         std::vector<AggregateSpec> aggs) {
    StarQuerySpec spec;
    spec.schema = ts_->star.get();
    spec.group_by = std::move(group_by);
    spec.aggregates = std::move(aggs);
    auto norm = NormalizeSpec(std::move(spec));
    EXPECT_TRUE(norm.ok()) << norm.status().ToString();
    return std::move(norm).value();
  }

  /// Feeds every fact row (with joined dim rows) to the aggregator.
  void FeedAll(const StarQuerySpec& spec, StarAggregator* agg) {
    const StarSchema& star = *spec.schema;
    const Table& fact = star.fact();
    const Schema& fs = fact.schema();
    // Build key->row maps for both dimensions.
    std::vector<KeyRowMap> maps;
    for (size_t d = 0; d < star.num_dimensions(); ++d) {
      const Table& dim = *star.dimension(d).table;
      KeyRowMap m(dim.NumRows());
      for (uint64_t i = 0; i < dim.NumRows(); ++i) {
        const uint8_t* row = dim.RowPayload(RowId{0, i});
        m.Insert(dim.schema().GetIntAny(row, star.dimension(d).dim_pk_col),
                 row);
      }
      maps.push_back(std::move(m));
    }
    std::vector<const uint8_t*> dims(star.num_dimensions());
    for (uint64_t i = 0; i < fact.NumRows(); ++i) {
      const uint8_t* row = fact.RowPayload(RowId{0, i});
      for (size_t d = 0; d < star.num_dimensions(); ++d) {
        dims[d] = maps[d].Find(
            fs.GetIntAny(row, star.dimension(d).fact_fk_col));
      }
      agg->Consume(row, dims.data());
    }
  }

  std::unique_ptr<TinyStar> ts_;
};

TEST_F(AggregationTest, GlobalCount) {
  StarQuerySpec spec = SpecWith(
      {}, {AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"}});
  auto agg = MakeHashAggregator(spec);
  FeedAll(spec, agg.get());
  ResultSet rs = agg->Finish();
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1000);
  EXPECT_EQ(rs.tuples_consumed, 1000u);
}

TEST_F(AggregationTest, EmptyInputGlobalAggregates) {
  StarQuerySpec spec = SpecWith(
      {},
      {AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"},
       AggregateSpec{AggFn::kSum, ColumnSource::Fact(3), nullptr, "s"}});
  auto agg = MakeHashAggregator(spec);
  ResultSet rs = agg->Finish();
  ASSERT_EQ(rs.num_rows(), 1u);  // SQL: one row for global aggregates
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());  // SUM of nothing is NULL
}

TEST_F(AggregationTest, EmptyInputGroupByYieldsNoRows) {
  StarQuerySpec spec = SpecWith(
      {ColumnSource::Dim(1, 1)},
      {AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"}});
  auto agg = MakeHashAggregator(spec);
  ResultSet rs = agg->Finish();
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(AggregationTest, SumMinMaxAvgOverFactColumn) {
  // f_amount = (i % 100) * 10 over 1000 rows: each residue appears 10x.
  StarQuerySpec spec = SpecWith(
      {},
      {AggregateSpec{AggFn::kSum, ColumnSource::Fact(3), nullptr, "sum"},
       AggregateSpec{AggFn::kMin, ColumnSource::Fact(3), nullptr, "min"},
       AggregateSpec{AggFn::kMax, ColumnSource::Fact(3), nullptr, "max"},
       AggregateSpec{AggFn::kAvg, ColumnSource::Fact(3), nullptr, "avg"}});
  auto agg = MakeHashAggregator(spec);
  FeedAll(spec, agg.get());
  ResultSet rs = agg->Finish();
  ASSERT_EQ(rs.num_rows(), 1u);
  const int64_t expected_sum = 10 * (99 * 100 / 2) * 10;  // 10*sum(0..99)*10
  EXPECT_EQ(rs.rows[0][0].AsInt(), expected_sum);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 0);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 990);
  EXPECT_DOUBLE_EQ(rs.rows[0][3].AsDouble(),
                   static_cast<double>(expected_sum) / 1000.0);
}

TEST_F(AggregationTest, GroupByDimensionColumn) {
  // Group by s_region ("R0","R1","R2"); stores 1..6 cycle regions 1,2,0,...
  StarQuerySpec spec = SpecWith(
      {ColumnSource::Dim(1, 1)},
      {AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"}});
  auto agg = MakeHashAggregator(spec);
  FeedAll(spec, agg.get());
  ResultSet rs = agg->Finish();
  ASSERT_EQ(rs.num_rows(), 3u);
  rs.SortRows();
  int64_t total = 0;
  for (const auto& row : rs.rows) total += row[1].AsInt();
  EXPECT_EQ(total, 1000);
  EXPECT_EQ(rs.rows[0][0].AsString(), "R0");
}

TEST_F(AggregationTest, FactExpressionInput) {
  const Schema& fs = ts_->sales->schema();
  ExprPtr profit = MakeArith(
      ArithOp::kMul, MakeColumnRef(fs, "f_qty").value(),
      MakeColumnRef(fs, "f_amount").value());
  StarQuerySpec spec = SpecWith(
      {}, {AggregateSpec{AggFn::kSum, std::nullopt, profit, "s"}});
  auto agg = MakeHashAggregator(spec);
  FeedAll(spec, agg.get());
  ResultSet rs = agg->Finish();
  int64_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    expected += static_cast<int64_t>(i % 10 + 1) * ((i % 100) * 10);
  }
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), expected);
}

TEST_F(AggregationTest, HashAndSortAggregatorsAgree) {
  // Property: both implementations produce identical contents on a
  // multi-column group-by with several aggregate kinds.
  StarQuerySpec spec = SpecWith(
      {ColumnSource::Dim(0, 1), ColumnSource::Dim(1, 1)},  // p_cat, s_region
      {AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"},
       AggregateSpec{AggFn::kSum, ColumnSource::Fact(3), nullptr, "sum"},
       AggregateSpec{AggFn::kMin, ColumnSource::Fact(2), nullptr, "min"},
       AggregateSpec{AggFn::kMax, ColumnSource::Dim(0, 2), nullptr, "max"},
       AggregateSpec{AggFn::kAvg, ColumnSource::Fact(3), nullptr, "avg"}});
  auto hash_agg = MakeHashAggregator(spec);
  auto sort_agg = MakeSortAggregator(spec);
  FeedAll(spec, hash_agg.get());
  FeedAll(spec, sort_agg.get());
  ResultSet h = hash_agg->Finish();
  ResultSet s = sort_agg->Finish();
  EXPECT_GT(h.num_rows(), 1u);
  EXPECT_TRUE(h.SameContents(s))
      << "hash:\n" << h.ToString() << "sort:\n" << s.ToString();
}

TEST_F(AggregationTest, ManyGroupsForceRehash) {
  // Group by a fact column with 100 distinct values and verify totals.
  StarQuerySpec spec = SpecWith(
      {ColumnSource::Fact(3)},
      {AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"}});
  auto agg = MakeHashAggregator(spec);
  FeedAll(spec, agg.get());
  ResultSet rs = agg->Finish();
  EXPECT_EQ(rs.num_rows(), 100u);
  for (const auto& row : rs.rows) EXPECT_EQ(row[1].AsInt(), 10);
}

TEST_F(AggregationTest, NullDimRowContributesNull) {
  StarQuerySpec spec = SpecWith(
      {}, {AggregateSpec{AggFn::kMax, ColumnSource::Dim(0, 2), nullptr,
                         "maxp"}});
  auto agg = MakeHashAggregator(spec);
  const uint8_t* dims[2] = {nullptr, nullptr};
  const uint8_t* fact = ts_->sales->RowPayload(RowId{0, 0});
  agg->Consume(fact, dims);
  ResultSet rs = agg->Finish();
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

}  // namespace
}  // namespace cjoin
