// Unit tests for the SSB substrate: calendar math, generated data shape,
// referential integrity, query construction, and template selectivity.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/ssb_schema.h"
#include "tests/test_util.h"

namespace cjoin {
namespace ssb {
namespace {

// ------------------------------ Calendar ------------------------------------

TEST(CalendarTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  // 1992-01-01 was a Wednesday, 8035 days after the epoch.
  EXPECT_EQ(DaysFromCivil(1992, 1, 1), 8035);
}

TEST(CalendarTest, RoundTripAcrossRange) {
  for (int64_t z = DaysFromCivil(1992, 1, 1); z <= DaysFromCivil(1998, 12, 31);
       z += 13) {
    int y;
    unsigned m, d;
    CivilFromDays(z, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), z);
    EXPECT_GE(m, 1u);
    EXPECT_LE(m, 12u);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 31u);
  }
}

TEST(CalendarTest, LeapYears) {
  // 1992 and 1996 are leap years within the SSB range.
  EXPECT_EQ(DaysFromCivil(1992, 3, 1) - DaysFromCivil(1992, 2, 1), 29);
  EXPECT_EQ(DaysFromCivil(1993, 3, 1) - DaysFromCivil(1993, 2, 1), 28);
  EXPECT_EQ(DaysFromCivil(1996, 3, 1) - DaysFromCivil(1996, 2, 1), 29);
}

TEST(CalendarTest, SsbDateRangeIs2557Days) {
  // The SSB spec says 2556, but the actual calendar span contains two
  // leap days (1992, 1996): 5 x 365 + 2 x 366 = 2557.
  EXPECT_EQ(DaysFromCivil(1998, 12, 31) - DaysFromCivil(1992, 1, 1) + 1,
            2557);
}

// ----------------------------- Cardinalities ---------------------------------

TEST(CardinalityTest, ScalesWithSf) {
  const SsbCardinalities c1 = CardinalitiesFor(1.0);
  EXPECT_EQ(c1.dates, 2557u);
  EXPECT_EQ(c1.customers, 30000u);
  EXPECT_EQ(c1.suppliers, 2000u);
  EXPECT_EQ(c1.parts, 200000u);
  EXPECT_EQ(c1.lineorders, 6000000u);

  const SsbCardinalities c10 = CardinalitiesFor(10.0);
  EXPECT_EQ(c10.customers, 300000u);
  // PART grows logarithmically: 200000 * (1 + floor(log2(10))) = 800000.
  EXPECT_EQ(c10.parts, 800000u);

  const SsbCardinalities small = CardinalitiesFor(0.01);
  EXPECT_EQ(small.dates, 2557u);  // fixed regardless of sf
  EXPECT_EQ(small.customers, 300u);
  EXPECT_EQ(small.lineorders, 60000u);
}

// ------------------------------ Generator ------------------------------------

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GenOptions opts;
    opts.scale_factor = 0.01;
    opts.seed = 7;
    db_ = Generate(opts).value().release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static SsbDatabase* db_;
};
SsbDatabase* GeneratorTest::db_ = nullptr;

TEST_F(GeneratorTest, TableSizesMatchCardinalities) {
  const SsbCardinalities c = CardinalitiesFor(0.01);
  EXPECT_EQ(db_->date->NumRows(), c.dates);
  EXPECT_EQ(db_->customer->NumRows(), c.customers);
  EXPECT_EQ(db_->supplier->NumRows(), c.suppliers);
  EXPECT_EQ(db_->part->NumRows(), c.parts);
  EXPECT_EQ(db_->lineorder->NumRows(), c.lineorders);
  EXPECT_GT(db_->TotalBytes(), 0u);
}

TEST_F(GeneratorTest, DateDimensionIsCorrectCalendar) {
  const Schema& s = db_->date->schema();
  const int year_col = s.ColumnIndex("d_year");
  const int key_col = s.ColumnIndex("d_datekey");
  ASSERT_GE(year_col, 0);
  // First row is 1992-01-01, a Wednesday.
  const uint8_t* first = db_->date->RowPayload(RowId{0, 0});
  EXPECT_EQ(s.GetInt32(first, static_cast<size_t>(key_col)), 19920101);
  EXPECT_EQ(s.GetChar(first, static_cast<size_t>(s.ColumnIndex("d_dayofweek"))),
            "Wednesday");
  // Last row is 1998-12-31.
  const uint8_t* last =
      db_->date->RowPayload(RowId{0, db_->date->NumRows() - 1});
  EXPECT_EQ(s.GetInt32(last, static_cast<size_t>(key_col)), 19981231);
  // Years span 1992..1998.
  std::set<int32_t> years;
  for (uint64_t i = 0; i < db_->date->NumRows(); ++i) {
    years.insert(s.GetInt32(db_->date->RowPayload(RowId{0, i}),
                            static_cast<size_t>(year_col)));
  }
  EXPECT_EQ(years.size(), 7u);
  EXPECT_EQ(*years.begin(), 1992);
  EXPECT_EQ(*years.rbegin(), 1998);
}

TEST_F(GeneratorTest, NationsAndRegionsConsistent) {
  std::map<std::string, std::string> nation_region;
  for (const NationInfo& n : Nations()) {
    nation_region[n.nation] = n.region;
  }
  EXPECT_EQ(nation_region.size(), 25u);
  const Schema& s = db_->customer->schema();
  const size_t nat = static_cast<size_t>(s.ColumnIndex("c_nation"));
  const size_t reg = static_cast<size_t>(s.ColumnIndex("c_region"));
  const size_t city = static_cast<size_t>(s.ColumnIndex("c_city"));
  for (uint64_t i = 0; i < db_->customer->NumRows(); ++i) {
    const uint8_t* row = db_->customer->RowPayload(RowId{0, i});
    const std::string nation(s.GetChar(row, nat));
    ASSERT_TRUE(nation_region.count(nation)) << nation;
    EXPECT_EQ(std::string(s.GetChar(row, reg)), nation_region[nation]);
    // City = nation truncated/padded to 9 chars + digit.
    const std::string c(s.GetChar(row, city));
    ASSERT_EQ(c.size(), 10u);
    EXPECT_TRUE(isdigit(c.back()));
  }
}

TEST_F(GeneratorTest, PartHierarchyConsistent) {
  const Schema& s = db_->part->schema();
  const size_t mfgr = static_cast<size_t>(s.ColumnIndex("p_mfgr"));
  const size_t cat = static_cast<size_t>(s.ColumnIndex("p_category"));
  const size_t brand = static_cast<size_t>(s.ColumnIndex("p_brand1"));
  for (uint64_t i = 0; i < db_->part->NumRows(); i += 7) {
    const uint8_t* row = db_->part->RowPayload(RowId{0, i});
    const std::string m(s.GetChar(row, mfgr));
    const std::string c(s.GetChar(row, cat));
    const std::string b(s.GetChar(row, brand));
    EXPECT_EQ(c.substr(0, m.size()), m);  // category extends mfgr
    EXPECT_EQ(b.substr(0, c.size()), c);  // brand extends category
  }
}

TEST_F(GeneratorTest, LineorderForeignKeysResolve) {
  const Schema& s = db_->lineorder->schema();
  const size_t cust = static_cast<size_t>(s.ColumnIndex("lo_custkey"));
  const size_t part = static_cast<size_t>(s.ColumnIndex("lo_partkey"));
  const size_t supp = static_cast<size_t>(s.ColumnIndex("lo_suppkey"));
  const size_t date = static_cast<size_t>(s.ColumnIndex("lo_orderdate"));
  std::set<int32_t> datekeys;
  const Schema& ds = db_->date->schema();
  for (uint64_t i = 0; i < db_->date->NumRows(); ++i) {
    datekeys.insert(ds.GetInt32(db_->date->RowPayload(RowId{0, i}), 0));
  }
  for (uint64_t i = 0; i < db_->lineorder->NumRows(); i += 97) {
    const uint8_t* row = db_->lineorder->RowPayload(RowId{0, i});
    EXPECT_GE(s.GetInt32(row, cust), 1);
    EXPECT_LE(s.GetInt32(row, cust),
              static_cast<int32_t>(db_->customer->NumRows()));
    EXPECT_GE(s.GetInt32(row, part), 1);
    EXPECT_LE(s.GetInt32(row, part),
              static_cast<int32_t>(db_->part->NumRows()));
    EXPECT_GE(s.GetInt32(row, supp), 1);
    EXPECT_LE(s.GetInt32(row, supp),
              static_cast<int32_t>(db_->supplier->NumRows()));
    EXPECT_TRUE(datekeys.count(s.GetInt32(row, date)));
  }
}

TEST_F(GeneratorTest, RevenueFormulaHolds) {
  const Schema& s = db_->lineorder->schema();
  const size_t price = static_cast<size_t>(s.ColumnIndex("lo_extendedprice"));
  const size_t disc = static_cast<size_t>(s.ColumnIndex("lo_discount"));
  const size_t rev = static_cast<size_t>(s.ColumnIndex("lo_revenue"));
  for (uint64_t i = 0; i < db_->lineorder->NumRows(); i += 101) {
    const uint8_t* row = db_->lineorder->RowPayload(RowId{0, i});
    const int32_t p = s.GetInt32(row, price);
    const int32_t d = s.GetInt32(row, disc);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 10);
    EXPECT_EQ(s.GetInt32(row, rev), p * (100 - d) / 100);
  }
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  GenOptions opts;
  opts.scale_factor = 0.002;
  opts.seed = 99;
  auto a = Generate(opts).value();
  auto b = Generate(opts).value();
  ASSERT_EQ(a->lineorder->NumRows(), b->lineorder->NumRows());
  const Schema& s = a->lineorder->schema();
  for (uint64_t i = 0; i < a->lineorder->NumRows(); i += 53) {
    for (size_t c = 0; c < s.num_columns(); ++c) {
      if (s.column(c).type == DataType::kChar) continue;
      EXPECT_EQ(s.GetIntAny(a->lineorder->RowPayload(RowId{0, i}), c),
                s.GetIntAny(b->lineorder->RowPayload(RowId{0, i}), c))
          << "row " << i << " col " << c;
      break;  // first numeric column suffices per row
    }
  }
}

TEST(GeneratorOptionsTest, RejectsBadArgs) {
  GenOptions bad;
  bad.scale_factor = 0;
  EXPECT_FALSE(Generate(bad).ok());
  bad.scale_factor = 0.01;
  bad.num_fact_partitions = 0;
  EXPECT_FALSE(Generate(bad).ok());
}

TEST(GeneratorPartitionTest, PartitionsByYear) {
  GenOptions opts;
  opts.scale_factor = 0.002;
  opts.num_fact_partitions = 7;
  auto db = Generate(opts).value();
  EXPECT_EQ(db->lineorder->num_partitions(), 7u);
  // Every partition holds only its year range (partition p = year-1992 for
  // 7 partitions) and all partitions are non-empty at this size.
  const Schema& s = db->lineorder->schema();
  const size_t date_col = static_cast<size_t>(s.ColumnIndex("lo_orderdate"));
  for (uint32_t p = 0; p < 7; ++p) {
    EXPECT_GT(db->lineorder->PartitionRows(p), 0u);
    for (uint64_t i = 0; i < db->lineorder->PartitionRows(p); i += 11) {
      const int32_t dk =
          s.GetInt32(db->lineorder->RowPayload(RowId{p, i}), date_col);
      EXPECT_EQ((dk / 10000 - 1992), static_cast<int32_t>(p));
    }
  }
}

// ------------------------------- Queries -------------------------------------

class SsbQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GenOptions opts;
    opts.scale_factor = 0.005;
    db_ = Generate(opts).value().release();
    queries_ = new SsbQueries(*db_);
  }
  static void TearDownTestSuite() {
    delete queries_;
    delete db_;
  }
  static SsbDatabase* db_;
  static SsbQueries* queries_;
};
SsbDatabase* SsbQueryTest::db_ = nullptr;
SsbQueries* SsbQueryTest::queries_ = nullptr;

TEST_F(SsbQueryTest, AllThirteenQueriesBuildAndValidate) {
  for (const std::string& name : SsbQueries::AllNames()) {
    auto q = queries_->Canonical(name);
    ASSERT_TRUE(q.ok()) << name << ": " << q.status().ToString();
    EXPECT_TRUE(ValidateSpec(*q).ok()) << name;
    EXPECT_EQ(q->label, name);
  }
  EXPECT_FALSE(queries_->Canonical("Q9.9").ok());
}

TEST_F(SsbQueryTest, CanonicalQueriesProduceExpectedShape) {
  auto q42 = queries_->Canonical("Q4.2").value();
  EXPECT_EQ(q42.group_by.size(), 3u);       // d_year, s_nation, p_category
  EXPECT_EQ(q42.dim_predicates.size(), 4u);  // all four dims referenced
  EXPECT_EQ(q42.aggregates.size(), 1u);
  auto q11 = queries_->Canonical("Q1.1").value();
  EXPECT_TRUE(q11.group_by.empty());
  EXPECT_NE(q11.fact_predicate, nullptr);
  auto res = testing::ReferenceEvaluate(q11);
  ASSERT_EQ(res.num_rows(), 1u);  // global aggregate
}

TEST_F(SsbQueryTest, CanonicalResultsAreNonTrivial) {
  // Q2.1 on generated data must produce groups and a positive revenue sum.
  auto q = queries_->Canonical("Q2.1").value();
  ResultSet rs = testing::ReferenceEvaluate(q);
  ASSERT_GT(rs.num_rows(), 0u);
  int64_t total = 0;
  for (const auto& row : rs.rows) {
    total += row.back().AsInt();
  }
  EXPECT_GT(total, 0);
}

TEST_F(SsbQueryTest, TemplateSelectivityIsRespected) {
  Rng rng(5);
  for (double s : {0.001, 0.01, 0.1}) {
    auto q = queries_->FromTemplate("Q3.1", s, rng);
    ASSERT_TRUE(q.ok());
    // Measure actual selectivity of each non-TRUE dimension predicate.
    for (const DimensionPredicate& dp : q->dim_predicates) {
      if (IsTrueLiteral(dp.predicate)) continue;
      const Table& dim = *db_->star->dimension(dp.dim_index).table;
      uint64_t hits = 0;
      for (uint64_t i = 0; i < dim.NumRows(); ++i) {
        if (dp.predicate->EvalBool(dim.schema(),
                                   dim.RowPayload(RowId{0, i}))) {
          ++hits;
        }
      }
      const double actual =
          static_cast<double>(hits) / static_cast<double>(dim.NumRows());
      // Exact up to rounding to >= 1 row.
      const double expected = std::max(
          s, 1.0 / static_cast<double>(dim.NumRows()));
      EXPECT_NEAR(actual, expected, expected * 0.5 + 1e-9)
          << "dim " << dp.dim_index << " s=" << s;
    }
  }
}

TEST_F(SsbQueryTest, TemplateRejectsBadSelectivity) {
  Rng rng(1);
  EXPECT_FALSE(queries_->FromTemplate("Q2.1", 0.0, rng).ok());
  EXPECT_FALSE(queries_->FromTemplate("Q2.1", 1.5, rng).ok());
}

TEST_F(SsbQueryTest, WorkloadSamplesTemplates) {
  Rng rng(11);
  auto wl = queries_->MakeWorkload(25, 0.01, rng);
  ASSERT_TRUE(wl.ok());
  ASSERT_EQ(wl->size(), 25u);
  std::set<std::string> seen;
  for (const StarQuerySpec& spec : *wl) {
    EXPECT_TRUE(ValidateSpec(spec).ok());
    seen.insert(spec.label.substr(0, spec.label.find('#')));
  }
  EXPECT_GT(seen.size(), 3u) << "workload should mix templates";
  // Q1.x excluded by default (paper §6.1.2).
  for (const auto& name : seen) {
    EXPECT_NE(name.substr(0, 2), "Q1") << name;
  }
}

TEST_F(SsbQueryTest, WorkloadCanIncludeQ1Templates) {
  Rng rng(13);
  auto wl = queries_->MakeWorkload(5, 0.01, rng, {"Q1.1", "Q1.2"});
  ASSERT_TRUE(wl.ok());
  for (const StarQuerySpec& spec : *wl) {
    EXPECT_NE(spec.fact_predicate, nullptr);
  }
}

}  // namespace
}  // namespace ssb
}  // namespace cjoin
