// Unit tests for the storage engine: schemas/row layout, tables with MVCC
// and partitions, the continuous scan (wrap-around, pass events, frozen
// sizes), SimDisk, and table persistence.

#include <cstdio>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "storage/continuous_scan.h"
#include "storage/schema.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "storage/table_file.h"

namespace cjoin {
namespace {

Schema TestSchema() {
  Schema s;
  s.AddInt32("a").AddInt64("b").AddChar("name", 10).AddDouble("x");
  return s;
}

// ------------------------------- Schema -------------------------------------

TEST(SchemaTest, OffsetsAndAlignment) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column(0).offset, 0u);
  EXPECT_EQ(s.column(1).offset, 8u);   // int64 aligned to 8
  EXPECT_EQ(s.column(2).offset, 16u);  // char follows
  EXPECT_EQ(s.column(3).offset % 8, 0u);
  EXPECT_EQ(s.row_size() % 8, 0u);
}

TEST(SchemaTest, FieldRoundtrip) {
  Schema s = TestSchema();
  std::vector<uint8_t> row(s.row_size());
  s.SetInt32(row.data(), 0, -42);
  s.SetInt64(row.data(), 1, int64_t{1} << 40);
  s.SetChar(row.data(), 2, "hi");
  s.SetDouble(row.data(), 3, 2.5);
  EXPECT_EQ(s.GetInt32(row.data(), 0), -42);
  EXPECT_EQ(s.GetInt64(row.data(), 1), int64_t{1} << 40);
  EXPECT_EQ(s.GetChar(row.data(), 2), "hi");
  EXPECT_DOUBLE_EQ(s.GetDouble(row.data(), 3), 2.5);
}

TEST(SchemaTest, CharTruncatesAndPads) {
  Schema s = TestSchema();
  std::vector<uint8_t> row(s.row_size());
  s.SetChar(row.data(), 2, "exactly10!");  // 10 chars fits
  EXPECT_EQ(s.GetChar(row.data(), 2), "exactly10!");
  s.SetChar(row.data(), 2, "this is too long");
  EXPECT_EQ(s.GetChar(row.data(), 2), "this is to");
  s.SetChar(row.data(), 2, "x");
  EXPECT_EQ(s.GetChar(row.data(), 2), "x");
}

TEST(SchemaTest, ColumnLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndex("name"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_TRUE(s.FindColumn("b").ok());
  EXPECT_FALSE(s.FindColumn("zzz").ok());
}

TEST(SchemaTest, GetIntAnyWidensInt32) {
  Schema s = TestSchema();
  std::vector<uint8_t> row(s.row_size());
  s.SetInt32(row.data(), 0, 123);
  s.SetInt64(row.data(), 1, 456);
  EXPECT_EQ(s.GetIntAny(row.data(), 0), 123);
  EXPECT_EQ(s.GetIntAny(row.data(), 1), 456);
}

TEST(SchemaTest, ToStringDescribes) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ToString(),
            "(a INT32, b INT64, name CHAR(10), x DOUBLE)");
}

// -------------------------------- Table -------------------------------------

TEST(TableTest, AppendAndRead) {
  Table t("t", TestSchema(), Table::Options{.rows_per_page = 4});
  const Schema& s = t.schema();
  for (int i = 0; i < 10; ++i) {
    uint8_t* row = t.AppendUninitialized();
    s.SetInt32(row, 0, i);
  }
  EXPECT_EQ(t.NumRows(), 10u);
  EXPECT_EQ(t.NumPages(0), 3u);  // 4 + 4 + 2
  EXPECT_EQ(t.PageRows(0, 2), 2u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.GetInt32(t.RowPayload(RowId{0, i}), 0),
              static_cast<int32_t>(i));
  }
}

TEST(TableTest, AppendRowCopiesPayload) {
  Table t("t", TestSchema());
  const Schema& s = t.schema();
  std::vector<uint8_t> payload(s.row_size());
  s.SetInt32(payload.data(), 0, 77);
  const RowId id = t.AppendRow(payload.data());
  s.SetInt32(payload.data(), 0, 0);  // mutate the source
  EXPECT_EQ(s.GetInt32(t.RowPayload(id), 0), 77);
}

TEST(TableTest, PartitionsAreIndependent) {
  Table t("t", TestSchema(), Table::Options{.rows_per_page = 4,
                                            .num_partitions = 3});
  const Schema& s = t.schema();
  for (int i = 0; i < 9; ++i) {
    uint8_t* row = t.AppendUninitialized(static_cast<uint32_t>(i % 3));
    s.SetInt32(row, 0, i);
  }
  EXPECT_EQ(t.NumRows(), 9u);
  EXPECT_EQ(t.PartitionRows(0), 3u);
  EXPECT_EQ(t.PartitionRows(1), 3u);
  EXPECT_EQ(t.PartitionRows(2), 3u);
  EXPECT_EQ(s.GetInt32(t.RowPayload(RowId{1, 0}), 0), 1);
}

TEST(TableTest, MvccVisibility) {
  Table t("t", TestSchema());
  RowId id;
  t.AppendUninitialized(0, /*xmin=*/5, &id);
  const RowHeader* hdr = t.Header(id);
  EXPECT_FALSE(hdr->VisibleAt(4));
  EXPECT_TRUE(hdr->VisibleAt(5));
  EXPECT_TRUE(hdr->VisibleAt(100));
  ASSERT_TRUE(t.MarkDeleted(id, 10).ok());
  EXPECT_TRUE(t.Header(id)->VisibleAt(9));
  EXPECT_FALSE(t.Header(id)->VisibleAt(10));
  // Double delete fails.
  EXPECT_FALSE(t.MarkDeleted(id, 12).ok());
}

TEST(TableTest, MarkDeletedRejectsBadXmax) {
  Table t("t", TestSchema());
  RowId id;
  t.AppendUninitialized(0, /*xmin=*/5, &id);
  EXPECT_FALSE(t.MarkDeleted(id, 5).ok());  // xmax must exceed xmin
}

TEST(TableTest, VisibleToAllFastPath) {
  Table t("t", TestSchema());
  RowId id;
  t.AppendUninitialized(0, 0, &id);
  EXPECT_TRUE(t.Header(id)->VisibleToAll());
  RowId id2;
  t.AppendUninitialized(0, 3, &id2);
  EXPECT_FALSE(t.Header(id2)->VisibleToAll());
}

// --------------------------- ContinuousScan ---------------------------------

Table MakeNumberedTable(uint64_t rows, uint32_t partitions = 1,
                        size_t rows_per_page = 8) {
  Schema s;
  s.AddInt64("v");
  Table t("nums", std::move(s),
          Table::Options{rows_per_page, partitions});
  for (uint64_t i = 0; i < rows; ++i) {
    uint8_t* row = t.AppendUninitialized(
        static_cast<uint32_t>(i % partitions));
    t.schema().SetInt64(row, 0, static_cast<int64_t>(i));
  }
  return t;
}

TEST(ContinuousScanTest, EmptyTableProducesNothing) {
  Table t = MakeNumberedTable(0);
  ContinuousScan scan(t);
  ScanEvent ev;
  EXPECT_FALSE(scan.Next(&ev));
}

TEST(ContinuousScanTest, WrapsAroundInSameOrder) {
  Table t = MakeNumberedTable(20);
  ContinuousScan scan(t, ContinuousScan::Options{.max_run_rows = 7});
  std::vector<int64_t> lap1, lap2;
  ScanEvent ev;
  while (lap2.size() < 20) {
    ASSERT_TRUE(scan.Next(&ev));
    if (ev.kind != ScanEvent::Kind::kRows) continue;
    for (size_t i = 0; i < ev.count; ++i) {
      const uint8_t* payload =
          ev.base + i * t.row_stride() + sizeof(RowHeader);
      const int64_t v = t.schema().GetInt64(payload, 0);
      if (lap1.size() < 20) {
        lap1.push_back(v);
      } else {
        lap2.push_back(v);
      }
    }
  }
  EXPECT_EQ(lap1, lap2);  // §3.3.3 property 1: identical order per lap
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(lap1[i], i);
}

TEST(ContinuousScanTest, PassEventsBracketPartitions) {
  Table t = MakeNumberedTable(12, /*partitions=*/3);
  ContinuousScan scan(t, ContinuousScan::Options{.max_run_rows = 100});
  ScanEvent ev;
  std::vector<std::pair<ScanEvent::Kind, uint32_t>> seq;
  for (int i = 0; i < 9; ++i) {  // 3 partitions x (start, rows, end)
    ASSERT_TRUE(scan.Next(&ev));
    seq.emplace_back(ev.kind, ev.partition);
  }
  for (uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(seq[p * 3].first, ScanEvent::Kind::kPassStart);
    EXPECT_EQ(seq[p * 3 + 1].first, ScanEvent::Kind::kRows);
    EXPECT_EQ(seq[p * 3 + 2].first, ScanEvent::Kind::kPassEnd);
    EXPECT_EQ(seq[p * 3].second, p);
  }
  EXPECT_EQ(scan.table_laps(), 1u);
  EXPECT_EQ(scan.partition_lap(0), 1u);
}

TEST(ContinuousScanTest, RunsRespectPageBoundaries) {
  Table t = MakeNumberedTable(20, 1, /*rows_per_page=*/8);
  ContinuousScan scan(t, ContinuousScan::Options{.max_run_rows = 100});
  ScanEvent ev;
  std::vector<size_t> run_sizes;
  while (run_sizes.size() < 3) {
    ASSERT_TRUE(scan.Next(&ev));
    if (ev.kind == ScanEvent::Kind::kRows) run_sizes.push_back(ev.count);
  }
  EXPECT_EQ(run_sizes, (std::vector<size_t>{8, 8, 4}));
}

TEST(ContinuousScanTest, RowsAppendedMidLapAppearNextLap) {
  Table t = MakeNumberedTable(10);
  ContinuousScan scan(t, ContinuousScan::Options{.max_run_rows = 4});
  ScanEvent ev;
  // Consume the pass-start and the first run.
  ASSERT_TRUE(scan.Next(&ev));
  ASSERT_EQ(ev.kind, ScanEvent::Kind::kPassStart);
  ASSERT_TRUE(scan.Next(&ev));
  ASSERT_EQ(ev.kind, ScanEvent::Kind::kRows);
  EXPECT_EQ(scan.frozen_size(0), 10u);

  // Append mid-lap: invisible until the wrap.
  uint8_t* row = t.AppendUninitialized();
  t.schema().SetInt64(row, 0, 999);

  uint64_t rows_this_lap = ev.count;
  while (scan.table_laps() == 0) {
    ASSERT_TRUE(scan.Next(&ev));
    if (ev.kind == ScanEvent::Kind::kRows) rows_this_lap += ev.count;
  }
  EXPECT_EQ(rows_this_lap, 10u);
  EXPECT_EQ(scan.frozen_size(0), 11u);  // refrozen at wrap
}

TEST(ContinuousScanTest, TickAdvancesMonotonically) {
  Table t = MakeNumberedTable(10);
  ContinuousScan scan(t, ContinuousScan::Options{.max_run_rows = 3});
  ScanEvent ev;
  uint64_t expected_tick = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(scan.Next(&ev));
    if (ev.kind != ScanEvent::Kind::kRows) continue;
    EXPECT_EQ(ev.first_tick, expected_tick);
    expected_tick += ev.count;
  }
}

TEST(SinglePassScanTest, VisitsEveryRowOnce) {
  Table t = MakeNumberedTable(25, /*partitions=*/2);
  SinglePassScan scan(t);
  ScanEvent ev;
  uint64_t total = 0;
  while (scan.Next(&ev)) total += ev.count;
  EXPECT_EQ(total, 25u);
  // Exhausted scans stay exhausted.
  EXPECT_FALSE(scan.Next(&ev));
}

TEST(SinglePassScanTest, PartitionPruning) {
  Table t = MakeNumberedTable(30, /*partitions=*/3);
  SinglePassScan scan(t, ContinuousScan::Options{}, {2});
  ScanEvent ev;
  uint64_t total = 0;
  while (scan.Next(&ev)) {
    EXPECT_EQ(ev.partition, 2u);
    total += ev.count;
  }
  EXPECT_EQ(total, t.PartitionRows(2));
}

// -------------------------------- SimDisk -----------------------------------

TEST(SimDiskTest, DisabledIsFree) {
  SimDisk::Options o;
  o.enabled = false;
  SimDisk disk(o);
  disk.Acquire(1, 1 << 30);
  EXPECT_EQ(disk.BusySeconds(), 0.0);
}

TEST(SimDiskTest, ChargesTransferTime) {
  SimDisk::Options o;
  o.bandwidth_bytes_per_sec = 100e6;
  o.seek_time = std::chrono::microseconds(0);
  SimDisk disk(o);
  disk.Acquire(1, 10'000'000);  // 0.1 s of transfer
  EXPECT_NEAR(disk.BusySeconds(), 0.1, 0.01);
}

TEST(SimDiskTest, SeeksChargedOnReaderSwitch) {
  SimDisk::Options o;
  o.bandwidth_bytes_per_sec = 1e12;  // transfers ~free
  o.seek_time = std::chrono::microseconds(100);
  SimDisk disk(o);
  disk.Acquire(1, 10);
  disk.Acquire(1, 10);  // same reader: no new seek
  disk.Acquire(2, 10);
  disk.Acquire(1, 10);
  EXPECT_EQ(disk.SeekCount(), 3u);  // initial + two switches
}

// ------------------------------- TableFile ----------------------------------

TEST(TableFileTest, SaveLoadRoundtrip) {
  Table t("roundtrip", TestSchema(),
          Table::Options{.rows_per_page = 4, .num_partitions = 2});
  const Schema& s = t.schema();
  for (int i = 0; i < 11; ++i) {
    RowId id;
    uint8_t* row = t.AppendUninitialized(static_cast<uint32_t>(i % 2),
                                         /*xmin=*/i % 3 == 0 ? 2 : 0, &id);
    s.SetInt32(row, 0, i);
    s.SetInt64(row, 1, i * 100);
    s.SetChar(row, 2, "row" + std::to_string(i));
    s.SetDouble(row, 3, i * 0.5);
    if (i == 4) {
      ASSERT_TRUE(t.MarkDeleted(id, 7).ok());
    }
  }

  const std::string path = ::testing::TempDir() + "/cjoin_table_test.bin";
  ASSERT_TRUE(SaveTable(t, path).ok());
  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& t2 = **loaded;

  EXPECT_EQ(t2.name(), "roundtrip");
  EXPECT_TRUE(t2.schema() == t.schema());
  EXPECT_EQ(t2.NumRows(), t.NumRows());
  ASSERT_EQ(t2.num_partitions(), 2u);
  for (uint32_t p = 0; p < 2; ++p) {
    ASSERT_EQ(t2.PartitionRows(p), t.PartitionRows(p));
    for (uint64_t i = 0; i < t.PartitionRows(p); ++i) {
      const RowId id{p, i};
      EXPECT_EQ(s.GetInt32(t2.RowPayload(id), 0),
                s.GetInt32(t.RowPayload(id), 0));
      EXPECT_EQ(s.GetChar(t2.RowPayload(id), 2),
                s.GetChar(t.RowPayload(id), 2));
      EXPECT_EQ(t2.Header(id)->xmin, t.Header(id)->xmin);
      EXPECT_EQ(t2.Header(id)->xmax, t.Header(id)->xmax);
    }
  }
  std::remove(path.c_str());
}

TEST(TableFileTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/cjoin_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a table file at all", f);
  fclose(f);
  EXPECT_FALSE(LoadTable(path).ok());
  std::remove(path.c_str());
}

TEST(TableFileTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadTable("/nonexistent/dir/nope.bin").ok());
}

}  // namespace
}  // namespace cjoin
