// Tests for the QueryEngine facade: SQL parsing, CJOIN/baseline routing,
// galaxy joins, and snapshot-isolated updates flowing through the live
// pipeline.

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "engine/sql_parser.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

// ------------------------------ SQL parser ----------------------------------

class SqlParserTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(500); }
  std::unique_ptr<TinyStar> ts_;
};

TEST_F(SqlParserTest, ParsesGroupByAggregate) {
  auto spec = ParseStarQuery(
      *ts_->star,
      "SELECT s_region, COUNT(*) AS n, SUM(f_amount) AS amt "
      "FROM sales, store WHERE f_sid = s_id GROUP BY s_region");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->group_by.size(), 1u);
  EXPECT_EQ(spec->aggregates.size(), 2u);
  EXPECT_EQ(spec->aggregates[0].fn, AggFn::kCount);
  EXPECT_EQ(spec->aggregates[0].label, "n");
  EXPECT_EQ(spec->aggregates[1].fn, AggFn::kSum);
  // Result equals the reference evaluation.
  ResultSet ref = ReferenceEvaluate(*spec);
  EXPECT_EQ(ref.tuples_consumed, 500u);
}

TEST_F(SqlParserTest, ClassifiesPredicatesByTable) {
  auto spec = ParseStarQuery(
      *ts_->star,
      "SELECT COUNT(*) FROM sales, store, product "
      "WHERE f_sid = s_id AND f_pid = p_id AND s_region = 'R1' "
      "AND p_price BETWEEN 200 AND 900 AND f_qty < 5");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->dim_predicates.size(), 2u);
  ASSERT_NE(spec->fact_predicate, nullptr);
  // Cross-check semantics via reference evaluation vs hand filter.
  ResultSet ref = ReferenceEvaluate(*spec);
  ASSERT_EQ(ref.num_rows(), 1u);
  EXPECT_GT(ref.rows[0][0].AsInt(), 0);
}

TEST_F(SqlParserTest, SupportsExpressionsAndOr) {
  auto spec = ParseStarQuery(
      *ts_->star,
      "SELECT SUM(f_amount - f_qty * 10) AS adj FROM sales, product "
      "WHERE f_pid = p_id AND (p_cat = 'cat1' OR p_cat = 'cat2')");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->aggregates.size(), 1u);
  EXPECT_NE(spec->aggregates[0].fact_expr, nullptr);
  EXPECT_EQ(spec->dim_predicates.size(), 1u);
}

TEST_F(SqlParserTest, SupportsInAndLike) {
  auto spec = ParseStarQuery(
      *ts_->star,
      "SELECT COUNT(*) FROM sales, store "
      "WHERE f_sid = s_id AND s_region IN ('R0', 'R2')");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto spec2 = ParseStarQuery(
      *ts_->star,
      "SELECT COUNT(*) FROM sales, product "
      "WHERE f_pid = p_id AND p_cat LIKE 'cat%'");
  ASSERT_TRUE(spec2.ok()) << spec2.status().ToString();
  // Everything matches 'cat%'.
  ResultSet ref = ReferenceEvaluate(*spec2);
  EXPECT_EQ(ref.rows[0][0].AsInt(), 500);
}

TEST_F(SqlParserTest, AcceptsOrderByAndSemicolon) {
  auto spec = ParseStarQuery(
      *ts_->star,
      "SELECT s_region, COUNT(*) FROM sales, store WHERE f_sid = s_id "
      "GROUP BY s_region ORDER BY s_region ASC;");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
}

TEST_F(SqlParserTest, RejectsMalformedQueries) {
  const char* bad[] = {
      "SELEKT * FROM sales",
      "SELECT COUNT(*) FROM nowhere",
      "SELECT COUNT(*) FROM store WHERE s_id = 1",        // no fact table
      "SELECT COUNT(*) FROM sales, store",                // unjoined dim
      "SELECT COUNT(*) FROM sales WHERE f_qty = s_id",    // mixed predicate
      "SELECT s_region FROM sales, store WHERE f_sid = s_id",  // not grouped
      "SELECT SUM(*) FROM sales",                         // * not for SUM
      "SELECT COUNT(*) FROM sales WHERE f_qty LIKE 'a_b%'",  // bad pattern
      "SELECT COUNT(*) FROM sales WHERE nope = 1",
      "SELECT COUNT(*) FROM sales WHERE f_qty BETWEEN 1",  // truncated
      "SELECT COUNT(*) FROM sales WHERE f_qty = 'x",       // open string
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseStarQuery(*ts_->star, sql).ok()) << sql;
  }
}

TEST_F(SqlParserTest, SsbQ42ParsesAndMatchesBuilder) {
  ssb::GenOptions gopts;
  gopts.scale_factor = 0.003;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  auto parsed = ParseStarQuery(
      *db->star,
      "SELECT d_year, s_nation, p_category, "
      "SUM(lo_revenue - lo_supplycost) AS profit "
      "FROM lineorder, date, customer, supplier, part "
      "WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey "
      "AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey "
      "AND c_region = 'AMERICA' AND s_region = 'AMERICA' "
      "AND (d_year = 1997 OR d_year = 1998) "
      "AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') "
      "GROUP BY d_year, s_nation, p_category");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  StarQuerySpec built = queries.Canonical("Q4.2").value();
  ResultSet a = ReferenceEvaluate(*parsed);
  ResultSet b = ReferenceEvaluate(built);
  EXPECT_TRUE(a.SameContents(b))
      << "parsed:\n" << a.ToString() << "built:\n" << b.ToString();
}

// ------------------------------ QueryEngine ---------------------------------

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ts_ = MakeTinyStar(2000);
    QueryEngine::Options opts;
    opts.cjoin.max_concurrent_queries = 32;
    opts.cjoin.num_worker_threads = 2;
    opts.cjoin.pool_capacity = 4096;
    engine_ = std::make_unique<QueryEngine>(opts);
    auto star = StarSchema::Make(
        ts_->sales.get(), std::vector<StarSchema::DimensionByName>{
                              {ts_->product.get(), "f_pid", "p_id"},
                              {ts_->store.get(), "f_sid", "s_id"}});
    ASSERT_TRUE(star.ok());
    ASSERT_TRUE(engine_->RegisterStar("sales", std::move(*star)).ok());
  }

  std::unique_ptr<TinyStar> ts_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, SqlThroughCJoinMatchesBaseline) {
  const char* sql =
      "SELECT s_region, COUNT(*) AS n, SUM(f_amount) AS amt "
      "FROM sales, store WHERE f_sid = s_id AND s_region <> 'R1' "
      "GROUP BY s_region";
  QueryRequest creq = QueryRequest::Sql("sales", sql);
  creq.policy = RoutePolicy::kCJoin;
  auto ticket = engine_->Execute(std::move(creq));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  auto rs = (*ticket)->Wait();
  ASSERT_TRUE(rs.ok());
  QueryRequest breq = QueryRequest::Sql("sales", sql);
  breq.policy = RoutePolicy::kBaseline;
  auto bticket = engine_->Execute(std::move(breq));
  ASSERT_TRUE(bticket.ok()) << bticket.status().ToString();
  auto baseline = (*bticket)->Wait();
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(rs->SameContents(*baseline))
      << "cjoin:\n" << rs->ToString() << "baseline:\n"
      << baseline->ToString();
}

TEST_F(QueryEngineTest, RegisterDuplicateFails) {
  auto star = StarSchema::Make(
      ts_->sales.get(), std::vector<StarSchema::DimensionByName>{
                            {ts_->store.get(), "f_sid", "s_id"}});
  ASSERT_TRUE(star.ok());
  EXPECT_FALSE(engine_->RegisterStar("sales", std::move(*star)).ok());
}

TEST_F(QueryEngineTest, SubmitUnregisteredSchemaFails) {
  auto other = MakeTinyStar(10);
  StarQuerySpec spec;
  spec.schema = other->star.get();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  EXPECT_FALSE(engine_->Execute(QueryRequest::FromSpec(spec)).ok());
}

TEST_F(QueryEngineTest, UpdatesAreSnapshotIsolated) {
  // Count rows via CJOIN, then delete some and append others; old and new
  // snapshot queries disagree exactly by the visible changes.
  const char* sql = "SELECT COUNT(*) AS n FROM sales";
  auto count_now = [&]() -> int64_t {
    QueryRequest req = QueryRequest::Sql("sales", sql);
    req.policy = RoutePolicy::kCJoin;
    auto t = engine_->Execute(std::move(req));
    EXPECT_TRUE(t.ok());
    auto rs = (*t)->Wait();
    EXPECT_TRUE(rs.ok());
    return rs->rows[0][0].AsInt();
  };
  EXPECT_EQ(count_now(), 2000);

  // Delete all rows with f_qty == 10 (that's 200 of 2000).
  const Schema& fs = ts_->sales->schema();
  auto qty10 =
      MakeCompare(CmpOp::kEq, MakeColumnRef(fs, "f_qty").value(),
                  MakeLiteral(Value(10)));
  auto del_snap = engine_->DeleteFacts("sales", qty10);
  ASSERT_TRUE(del_snap.ok());
  EXPECT_EQ(count_now(), 1800);

  // Old-snapshot query still sees them.
  StarQuerySpec old_spec;
  old_spec.schema = engine_->FindStar("sales").value();
  old_spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  old_spec.snapshot = *del_snap - 1;
  QueryRequest old_req = QueryRequest::FromSpec(old_spec);
  old_req.policy = RoutePolicy::kCJoin;
  auto h_old = engine_->Execute(std::move(old_req));
  ASSERT_TRUE(h_old.ok());
  auto rs_old = (*h_old)->Wait();
  ASSERT_TRUE(rs_old.ok());
  EXPECT_EQ(rs_old->rows[0][0].AsInt(), 2000);

  // Append 5 fresh rows; visible to new queries after the scan re-freezes.
  std::vector<std::vector<uint8_t>> rows;
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> payload(fs.row_size());
    fs.SetInt32(payload.data(), 0, 1);
    fs.SetInt32(payload.data(), 1, 1);
    fs.SetInt32(payload.data(), 2, 3);
    fs.SetInt32(payload.data(), 3, 50);
    rows.push_back(std::move(payload));
  }
  ASSERT_TRUE(engine_->AppendFacts("sales", rows).ok());
  // The appended rows enter the scan at the next lap freeze; poll briefly.
  int64_t n = 0;
  for (int attempt = 0; attempt < 50; ++attempt) {
    n = count_now();
    if (n == 1805) break;
  }
  EXPECT_EQ(n, 1805);
}

TEST_F(QueryEngineTest, GalaxyJoinAcrossTwoStars) {
  // Second star: "returns" fact sharing the product dimension.
  Schema rschema;
  rschema.AddInt32("r_pid").AddInt32("r_qty");
  auto returns = std::make_unique<Table>("returns", rschema);
  for (int i = 0; i < 600; ++i) {
    uint8_t* row = returns->AppendUninitialized();
    rschema.SetInt32(row, 0, i % 20 + 1);  // same product keys
    rschema.SetInt32(row, 1, i % 3 + 1);
  }
  auto star2 = StarSchema::Make(
      returns.get(), std::vector<StarSchema::DimensionByName>{
                         {ts_->product.get(), "r_pid", "p_id"}});
  ASSERT_TRUE(star2.ok());
  ASSERT_TRUE(engine_->RegisterStar("returns", std::move(*star2)).ok());

  // Join sales and returns on product key; count pairs and sum quantities
  // per product category.
  QueryEngine::GalaxyJoinSpec gspec;
  gspec.left.schema = engine_->FindStar("sales").value();
  gspec.left.dim_predicates.push_back(DimensionPredicate{0, MakeTrue()});
  gspec.right.schema = engine_->FindStar("returns").value();
  gspec.left_join_col = 0;   // f_pid
  gspec.right_join_col = 0;  // r_pid
  gspec.group_by.push_back(
      {0, ColumnSource::Dim(0, 1), "p_cat"});  // left star's product cat
  gspec.aggregates.push_back(
      {AggFn::kCount, 0, std::nullopt, "pairs"});
  gspec.aggregates.push_back(
      {AggFn::kSum, 1, ColumnSource::Fact(1), "ret_qty"});

  auto rs = engine_->ExecuteGalaxyJoin(gspec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 4u);  // cat0..cat3

  // Independent check: brute-force the join.
  std::map<std::string, std::pair<int64_t, int64_t>> expected;
  const Schema& fs = ts_->sales->schema();
  const Schema& ps = ts_->product->schema();
  for (uint64_t i = 0; i < ts_->sales->NumRows(); ++i) {
    const int32_t pid = fs.GetInt32(ts_->sales->RowPayload(RowId{0, i}), 0);
    for (uint64_t j = 0; j < returns->NumRows(); ++j) {
      const uint8_t* rrow = returns->RowPayload(RowId{0, j});
      if (rschema.GetInt32(rrow, 0) != pid) continue;
      const uint8_t* prow = ts_->product->RowPayload(
          RowId{0, static_cast<uint64_t>(pid - 1)});
      const std::string cat(ps.GetChar(prow, 1));
      expected[cat].first += 1;
      expected[cat].second += rschema.GetInt32(rrow, 1);
    }
  }
  rs->SortRows();
  ASSERT_EQ(expected.size(), rs->num_rows());
  size_t idx = 0;
  for (const auto& [cat, counts] : expected) {
    EXPECT_EQ(rs->rows[idx][0].AsString(), cat);
    EXPECT_EQ(rs->rows[idx][1].AsInt(), counts.first);
    EXPECT_EQ(rs->rows[idx][2].AsInt(), counts.second);
    ++idx;
  }
}

TEST_F(QueryEngineTest, AppendValidatesInput) {
  std::vector<std::vector<uint8_t>> bad_rows;
  bad_rows.emplace_back(3);  // wrong payload size
  EXPECT_FALSE(engine_->AppendFacts("sales", bad_rows).ok());
  EXPECT_FALSE(engine_->AppendFacts("nope", {}).ok());
  EXPECT_FALSE(engine_->DeleteFacts("sales", nullptr).ok());
}

}  // namespace
}  // namespace cjoin
