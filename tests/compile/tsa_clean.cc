// Positive control for the thread-safety gate (ctest
// `annotations_positive_compile`): the same shape as tsa_violation.cc
// but correctly locked, compiled with the identical flags
//   -Wthread-safety -Werror=thread-safety-analysis.
// It must compile cleanly; if it fails, the gate is rejecting valid
// code (annotation macros broken, shim types mis-annotated) rather
// than catching violations, which distinguishes "gate works" from
// "gate rejects everything".

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Add(int delta) EXCLUDES(mu_) {
    cjoin::MutexLock lk(&mu_);
    value_ += delta;
  }

  int Drain() EXCLUDES(mu_) {
    cjoin::MutexLock lk(&mu_);
    return DrainLocked();
  }

  int SharedPeek() const EXCLUDES(mu_) {
    cjoin::ReaderMutexLock lk(&shared_mu_);
    return cached_;
  }

  void SharedPublish(int v) EXCLUDES(shared_mu_) {
    cjoin::WriterMutexLock lk(&shared_mu_);
    cached_ = v;
  }

 private:
  int DrainLocked() REQUIRES(mu_) {
    const int v = value_;
    value_ = 0;
    return v;
  }

  mutable cjoin::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
  mutable cjoin::SharedMutex shared_mu_;
  int cached_ GUARDED_BY(shared_mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  c.SharedPublish(2);
  return c.Drain() + c.SharedPeek() - 3;
}
