// Negative control for the thread-safety gate (registered as ctest
// `annotations_negative_compile` with WILL_FAIL): this snippet touches a
// GUARDED_BY member without holding its mutex and calls a REQUIRES
// method unlocked, so it must FAIL to compile under
//   -Wthread-safety -Werror=thread-safety-analysis.
// If it ever compiles, the gate is inert (flags dropped, macros compiled
// away, or the analysis disabled) and the ctest run flags it.

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Add(int delta) EXCLUDES(mu_) {
    // VIOLATION 1: writing a GUARDED_BY member with mu_ not held.
    value_ += delta;
  }

  int Drain() EXCLUDES(mu_) {
    // VIOLATION 2: calling a REQUIRES(mu_) method with mu_ not held.
    return DrainLocked();
  }

 private:
  int DrainLocked() REQUIRES(mu_) {
    const int v = value_;
    value_ = 0;
    return v;
  }

  cjoin::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Drain();
}
