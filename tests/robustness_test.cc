// Robustness tests: storage-engine concurrency (readers during appends
// and deletes — the RCU page directory contract), SQL parser round-trips,
// and engine behaviour under mixed read/update load through the live
// CJOIN pipeline.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "engine/sql_parser.h"
#include "storage/continuous_scan.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

// ------------------------- Storage concurrency -------------------------------

TEST(StorageConcurrencyTest, ReadersSeeConsistentRowsDuringAppends) {
  Schema schema;
  schema.AddInt64("a").AddInt64("b");  // invariant: b == a * 3
  Table t("grow", schema, Table::Options{.rows_per_page = 64});
  // Seed rows so readers have something from the start.
  std::vector<uint8_t> payload(schema.row_size());
  for (int64_t i = 0; i < 100; ++i) {
    schema.SetInt64(payload.data(), 0, i);
    schema.SetInt64(payload.data(), 1, i * 3);
    t.AppendRow(payload.data());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t n = t.PartitionRows(0);
        for (uint64_t i = 0; i < n; i += 17) {
          const uint8_t* row = t.RowPayload(RowId{0, i});
          const int64_t a = schema.GetInt64(row, 0);
          const int64_t b = schema.GetInt64(row, 1);
          if (b != a * 3) {
            bad.store(true);
            return;
          }
        }
      }
    });
  }
  // Single writer appends 20k rows, forcing many page-directory swaps.
  for (int64_t i = 100; i < 20100; ++i) {
    schema.SetInt64(payload.data(), 0, i);
    schema.SetInt64(payload.data(), 1, i * 3);
    t.AppendRow(payload.data());
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(bad.load()) << "reader observed a torn row";
  EXPECT_EQ(t.NumRows(), 20100u);
}

TEST(StorageConcurrencyTest, ConcurrentDeletesAreExactlyOnce) {
  Schema schema;
  schema.AddInt64("v");
  Table t("del", schema);
  std::vector<uint8_t> payload(schema.row_size());
  for (int64_t i = 0; i < 4000; ++i) {
    schema.SetInt64(payload.data(), 0, i);
    t.AppendRow(payload.data());
  }
  // Several threads race to delete the same rows; exactly one must win
  // per row (MarkDeleted is CAS-based).
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < 4000; ++i) {
        if (t.MarkDeleted(RowId{0, i}, static_cast<SnapshotId>(5 + w)).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load(), 4000);
  for (uint64_t i = 0; i < 4000; ++i) {
    EXPECT_LT(t.Header(RowId{0, i})->LoadXmax(), 9u);
  }
}

TEST(StorageConcurrencyTest, ContinuousScanDuringAppends) {
  Schema schema;
  schema.AddInt64("v");
  Table t("scanned", schema, Table::Options{.rows_per_page = 32});
  std::vector<uint8_t> payload(schema.row_size());
  for (int64_t i = 0; i < 500; ++i) {
    schema.SetInt64(payload.data(), 0, i);
    t.AppendRow(payload.data());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::vector<uint8_t> p(schema.row_size());
    for (int64_t i = 500; i < 5500 && !stop.load(); ++i) {
      schema.SetInt64(p.data(), 0, i);
      t.AppendRow(p.data());
    }
  });
  // Scan continuously; within a lap the frozen size must be respected and
  // every delivered row must be fully written (values in range).
  ContinuousScan scan(t, ContinuousScan::Options{.max_run_rows = 64});
  ScanEvent ev;
  uint64_t rows_seen = 0;
  while (scan.table_laps() < 25) {
    ASSERT_TRUE(scan.Next(&ev));
    if (ev.kind != ScanEvent::Kind::kRows) continue;
    ASSERT_LE(ev.first_index + ev.count, ev.partition_size);
    for (size_t i = 0; i < ev.count; ++i) {
      const uint8_t* payload_ptr =
          ev.base + i * t.row_stride() + sizeof(RowHeader);
      const int64_t v = schema.GetInt64(payload_ptr, 0);
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 5500);
    }
    rows_seen += ev.count;
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(rows_seen, 500u * 25u - 500u);
}

// ---------------------------- Parser round trips ------------------------------

class ParserRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(400); }
  std::unique_ptr<TinyStar> ts_;
};

TEST_F(ParserRoundTripTest, EquivalentFormsAgree) {
  // Pairs of differently-spelled but semantically equal queries.
  const std::pair<const char*, const char*> pairs[] = {
      {"SELECT COUNT(*) FROM sales, store WHERE f_sid = s_id AND "
       "s_region = 'R1'",
       "SELECT COUNT(*) FROM sales, store WHERE s_region = 'R1' AND "
       "s_id = f_sid"},  // join side order flipped
      {"SELECT COUNT(*) FROM sales WHERE f_qty >= 3 AND f_qty <= 7",
       "SELECT COUNT(*) FROM sales WHERE f_qty BETWEEN 3 AND 7"},
      {"SELECT COUNT(*) FROM sales, product WHERE f_pid = p_id AND "
       "(p_cat = 'cat1' OR p_cat = 'cat2')",
       "SELECT COUNT(*) FROM sales, product WHERE f_pid = p_id AND "
       "p_cat IN ('cat1', 'cat2')"},
      {"SELECT COUNT(*) FROM sales WHERE NOT (f_qty > 5)",
       "SELECT COUNT(*) FROM sales WHERE f_qty <= 5"},
      {"SELECT SUM(f_amount + 0) AS s FROM sales",
       "SELECT SUM(f_amount * 1) AS s FROM sales"},
  };
  for (const auto& [a, b] : pairs) {
    auto sa = ParseStarQuery(*ts_->star, a);
    auto sb = ParseStarQuery(*ts_->star, b);
    ASSERT_TRUE(sa.ok()) << a << ": " << sa.status().ToString();
    ASSERT_TRUE(sb.ok()) << b << ": " << sb.status().ToString();
    ResultSet ra = ReferenceEvaluate(*sa);
    ResultSet rb = ReferenceEvaluate(*sb);
    EXPECT_TRUE(ra.SameContents(rb))
        << a << "\nvs\n" << b << "\n" << ra.ToString() << rb.ToString();
  }
}

TEST_F(ParserRoundTripTest, WhitespaceAndCaseInsensitivity) {
  auto a = ParseStarQuery(*ts_->star,
                          "select count(*) from sales, store "
                          "where f_sid = s_id group by s_region");
  // Lowercase keywords accepted; grouping column must be selected or not —
  // here group-by without selecting it is fine.
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = ParseStarQuery(
      *ts_->star,
      "  SELECT\n\tCOUNT( * )\nFROM  sales ,  store\nWHERE f_sid=s_id\n"
      "GROUP  BY  s_region  ;");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(
      ReferenceEvaluate(*a).SameContents(ReferenceEvaluate(*b)));
}

TEST_F(ParserRoundTripTest, NumericLiteralForms) {
  auto q = ParseStarQuery(
      *ts_->star,
      "SELECT COUNT(*) FROM sales WHERE f_amount > -10 AND f_qty < 7.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ResultSet rs = ReferenceEvaluate(*q);
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_GT(rs.rows[0][0].AsInt(), 0);
}

// ------------------------ Engine under mixed load -----------------------------

TEST(EngineMixedLoadTest, QueriesDuringUpdateStorm) {
  auto ts = MakeTinyStar(3000);
  QueryEngine::Options opts;
  opts.cjoin.max_concurrent_queries = 16;
  opts.cjoin.num_worker_threads = 2;
  QueryEngine engine(opts);
  {
    auto star = StarSchema::Make(
        ts->sales.get(), std::vector<StarSchema::DimensionByName>{
                             {ts->product.get(), "f_pid", "p_id"},
                             {ts->store.get(), "f_sid", "s_id"}});
    ASSERT_TRUE(star.ok());
    ASSERT_TRUE(engine.RegisterStar("sales", std::move(*star)).ok());
  }
  const Schema& fs = ts->sales->schema();

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  // Update storm: alternating small appends and deletes.
  std::thread updater([&] {
    int round = 0;
    while (!stop.load()) {
      if (round % 2 == 0) {
        std::vector<std::vector<uint8_t>> rows;
        for (int i = 0; i < 5; ++i) {
          std::vector<uint8_t> p(fs.row_size());
          fs.SetInt32(p.data(), 0, 1);
          fs.SetInt32(p.data(), 1, 1);
          fs.SetInt32(p.data(), 2, round % 10 + 1);
          fs.SetInt32(p.data(), 3, 10);
          rows.push_back(std::move(p));
        }
        if (!engine.AppendFacts("sales", rows).ok()) failed.store(true);
      } else {
        // Delete a tiny slice (rows with this round's amount value).
        auto pred = MakeCompare(
            CmpOp::kEq, MakeColumnRef(fs, "f_amount").value(),
            MakeLiteral(Value((round % 100) * 10)));
        if (!engine.DeleteFacts("sales", pred).ok()) failed.store(true);
      }
      ++round;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Queries must never fail and must be exact at their effective
  // snapshot (the engine caps the requested snapshot at the scan's
  // covered bound; the result must then equal the reference evaluated at
  // that same snapshot). When two queries end up on the same effective
  // snapshot, their results must additionally be mutually consistent.
  for (int i = 0; i < 30; ++i) {
    const SnapshotId snap = engine.CurrentSnapshot();
    StarQuerySpec global;
    global.schema = engine.FindStar("sales").value();
    global.aggregates.push_back(
        AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
    global.snapshot = snap;
    StarQuerySpec by_region = global;
    by_region.group_by.push_back(ColumnSource::Dim(1, 1));
    by_region.group_by_labels.push_back("s_region");

    QueryRequest req1 = QueryRequest::FromSpec(global);
    req1.policy = RoutePolicy::kCJoin;
    QueryRequest req2 = QueryRequest::FromSpec(by_region);
    req2.policy = RoutePolicy::kCJoin;
    auto h1 = engine.Execute(std::move(req1));
    auto h2 = engine.Execute(std::move(req2));
    ASSERT_TRUE(h1.ok());
    ASSERT_TRUE(h2.ok());
    const SnapshotId eff1 = (*h1)->snapshot();
    const SnapshotId eff2 = (*h2)->snapshot();
    auto r1 = (*h1)->Wait();
    auto r2 = (*h2)->Wait();
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());

    // Per-query exactness: referenced counts at the effective snapshot.
    StarQuerySpec ref1 = global;
    ref1.snapshot = eff1;
    ResultSet want1 =
        ReferenceEvaluate(NormalizeSpec(std::move(ref1)).value());
    EXPECT_EQ(r1->rows[0][0].AsInt(), want1.rows[0][0].AsInt())
        << "effective snapshot " << eff1;

    int64_t sum = 0;
    for (const auto& row : r2->rows) sum += row[1].AsInt();
    StarQuerySpec ref2 = global;  // global count at q2's snapshot
    ref2.snapshot = eff2;
    ResultSet want2 =
        ReferenceEvaluate(NormalizeSpec(std::move(ref2)).value());
    EXPECT_EQ(sum, want2.rows[0][0].AsInt())
        << "effective snapshot " << eff2;

    if (eff1 == eff2) {
      EXPECT_EQ(sum, r1->rows[0][0].AsInt()) << "snapshot " << eff1;
    }
  }
  stop.store(true);
  updater.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace cjoin
