// The router feedback loop: the per-route EWMA least-squares calibrator
// (fit convergence, warm-up thresholds, decay, seqlock consistency), the
// Router's calibrated decisions correcting deliberately mispriced static
// coefficients, the deterministic exploration policy, the engine wiring
// (completion observers feed the calibrator on every route; re-sharding
// and quota changes decay the fits), and EXPLAIN ROUTE consistency with
// Execute() under identical load inputs.

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "engine/route_feedback.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

RouteObservation Obs(RouteChoice route, double work, double wall,
                     double queue_wait = 0.0) {
  RouteObservation o;
  o.route = route;
  o.work_units = work;
  o.wall_seconds = wall;
  o.queue_wait_seconds = queue_wait;
  return o;
}

// ------------------------------ Calibrator ----------------------------------

TEST(RouteCalibratorTest, FitConvergesToLinearModel) {
  CalibrationOptions opts;
  opts.min_observations = 8;
  RouteCalibrator cal(opts);

  // service = 3e-6 * work + 1e-3, observed at varying operating points.
  for (int i = 0; i < 32; ++i) {
    const double work = 1000.0 + 500.0 * (i % 7);
    cal.Observe(Obs(RouteChoice::kCJoin, work, 3e-6 * work + 1e-3));
  }
  const CalibrationSnapshot snap = cal.Snapshot();
  EXPECT_TRUE(snap.cjoin.warm);
  EXPECT_FALSE(snap.baseline.warm);
  EXPECT_NEAR(snap.cjoin.alpha, 3e-6, 1e-7);
  EXPECT_NEAR(snap.cjoin.beta, 1e-3, 2e-4);
  EXPECT_EQ(snap.cjoin.observations, 32u);
  // Prediction at an unseen operating point.
  EXPECT_NEAR(snap.cjoin.PredictSeconds(10000.0), 0.031, 0.003);
  // Once the fit settles, its prediction error collapses.
  EXPECT_LT(snap.cjoin.rel_error, 0.1);
}

TEST(RouteCalibratorTest, ColdUntilMinObservationsAndAfterDecay) {
  CalibrationOptions opts;
  opts.min_observations = 10;
  opts.stale_decay = 0.25;
  RouteCalibrator cal(opts);

  for (int i = 0; i < 9; ++i) {
    cal.Observe(Obs(RouteChoice::kBaseline, 5000.0, 0.01));
  }
  EXPECT_FALSE(cal.Snapshot().baseline.warm);
  cal.Observe(Obs(RouteChoice::kBaseline, 5000.0, 0.01));
  EXPECT_TRUE(cal.Snapshot().baseline.warm);

  // A re-shard / quota change ages the evidence below the threshold; the
  // fitted line survives as the best available guess.
  cal.Decay();
  const CalibrationSnapshot snap = cal.Snapshot();
  EXPECT_FALSE(snap.baseline.warm);
  EXPECT_GT(snap.baseline.alpha + snap.baseline.beta, 0.0);
  EXPECT_EQ(snap.decays, 1u);
  EXPECT_LT(snap.baseline.evidence, 10.0);

  // Regression: a long-running route (mass far above the threshold)
  // must STILL drop below warm on Decay() — the mass is clamped to the
  // threshold before the decay multiply, so stale evidence from the old
  // timing regime cannot keep steering decisions.
  for (int i = 0; i < 200; ++i) {
    cal.Observe(Obs(RouteChoice::kBaseline, 5000.0, 0.01));
  }
  ASSERT_TRUE(cal.Snapshot().baseline.warm);
  cal.Decay();
  EXPECT_FALSE(cal.Snapshot().baseline.warm);
}

TEST(RouteCalibratorTest, ConstantWorkFallsBackToRatioEstimator) {
  CalibrationOptions opts;
  opts.min_observations = 4;
  RouteCalibrator cal(opts);
  // One operating point only: least squares is degenerate; the ratio
  // estimator through the origin is the supportable model.
  for (int i = 0; i < 8; ++i) {
    cal.Observe(Obs(RouteChoice::kCJoin, 2000.0, 0.02));
  }
  const CalibrationSnapshot snap = cal.Snapshot();
  EXPECT_TRUE(snap.cjoin.warm);
  EXPECT_NEAR(snap.cjoin.PredictSeconds(2000.0), 0.02, 1e-4);
  EXPECT_NEAR(snap.cjoin.PredictSeconds(4000.0), 0.04, 1e-3);
}

TEST(RouteCalibratorTest, QueueWaitExcludedFromServiceFit) {
  CalibrationOptions opts;
  opts.min_observations = 4;
  RouteCalibrator cal(opts);
  // Wall clock 1.01s, but a full second of it was pool-queue residence:
  // the fit must learn ~10ms of service, not ~1s.
  for (int i = 0; i < 8; ++i) {
    cal.Observe(Obs(RouteChoice::kBaseline, 1000.0, 1.01, 1.0));
  }
  EXPECT_NEAR(cal.Snapshot().baseline.PredictSeconds(1000.0), 0.01, 1e-3);
}

TEST(RouteCalibratorTest, NonPositiveObservationsDropped) {
  RouteCalibrator cal;
  cal.Observe(Obs(RouteChoice::kCJoin, 0.0, 0.01));
  cal.Observe(Obs(RouteChoice::kCJoin, 100.0, 0.0));
  cal.Observe(Obs(RouteChoice::kCJoin, 100.0, 0.5, 1.0));  // service <= 0
  EXPECT_EQ(cal.Snapshot().cjoin.observations, 0u);
  EXPECT_EQ(cal.Stats().observations_dropped, 3u);
}

// Seqlock: concurrent observers, decayers, and snapshot readers must
// always see an internally consistent published state (runs under TSan
// in CI).
TEST(RouteCalibratorTest, SnapshotConsistentUnderConcurrentWriters) {
  CalibrationOptions opts;
  opts.min_observations = 4;
  RouteCalibrator cal(opts);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 4000 && !stop.load(); ++i) {
        const RouteChoice route =
            w == 0 ? RouteChoice::kCJoin : RouteChoice::kBaseline;
        // Exact line per route: cjoin t = 2e-6*x, baseline t = 8e-6*x.
        const double work = 1000.0 + (i % 5) * 100.0;
        const double scale = w == 0 ? 2e-6 : 8e-6;
        cal.Observe(Obs(route, work, scale * work));
        if (i % 512 == 0) cal.Decay();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const CalibrationSnapshot snap = cal.Snapshot();
        // Every published fit lies on (or near) its route's exact line;
        // a torn read would mix the two routes' statistics.
        for (const RouteModelSnapshot* m : {&snap.cjoin, &snap.baseline}) {
          if (!std::isfinite(m->alpha) || !std::isfinite(m->beta) ||
              m->alpha < 0.0 || m->evidence < 0.0) {
            failed.store(true);
          }
        }
        if (snap.cjoin.observations > 4 && snap.cjoin.alpha > 4e-6) {
          failed.store(true);  // cjoin fit contaminated by baseline data
        }
        if (snap.baseline.observations > 4 && snap.baseline.alpha != 0.0 &&
            snap.baseline.alpha < 4e-6) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
}

// ------------------------- Router + calibrator ------------------------------

class CalibratedRouterTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(50000); }

  StarQuerySpec PriceQuery(int min_price) {
    StarQuerySpec spec;
    spec.schema = ts_->star.get();
    const Schema& ps = ts_->product->schema();
    spec.dim_predicates.push_back(DimensionPredicate{
        0, MakeCompare(CmpOp::kGe, MakeColumnRef(ps, "p_price").value(),
                       MakeLiteral(Value(min_price)))});
    spec.aggregates.push_back(
        AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
    return *NormalizeSpec(std::move(spec));
  }

  std::unique_ptr<TinyStar> ts_;
};

TEST_F(CalibratedRouterTest, WarmFitsOverrideMispricedStaticCoefficients) {
  // Statics mispriced >= 4x in CJOIN's favor: the lone selective query —
  // truly better on the private plan — misroutes to CJOIN.
  RouterOptions opts;
  opts.cjoin_fixed_cost = 4096.0 / 16.0;
  opts.cjoin_tuple_weight = 1.5 / 8.0;
  opts.calibration.min_observations = 4;
  Router router(opts);
  RouteCalibrator cal(opts.calibration);
  router.set_calibrator(&cal);

  const StarQuerySpec spec = PriceQuery(2000);
  const RouteDecision cold = router.Decide(spec, RouteInputs{});
  ASSERT_EQ(cold.choice, RouteChoice::kCJoin) << "statics not mispriced";
  EXPECT_FALSE(cold.calibrated);
  EXPECT_EQ(cold.static_cjoin_cost, cold.cjoin_cost);
  ASSERT_GT(cold.cjoin_work_units, 0.0);
  ASSERT_GT(cold.baseline_work_units, 0.0);

  // Observed reality: CJOIN takes 100ms at this operating point, the
  // baseline 5ms. Feed both fits past the warm threshold.
  for (int i = 0; i < 6; ++i) {
    cal.Observe(Obs(RouteChoice::kCJoin, cold.cjoin_work_units, 0.100));
    cal.Observe(Obs(RouteChoice::kBaseline, cold.baseline_work_units, 0.005));
  }

  const RouteDecision warm = router.Decide(spec, RouteInputs{});
  EXPECT_TRUE(warm.calibrated);
  EXPECT_EQ(warm.choice, RouteChoice::kBaseline)
      << "calibration failed to correct the mispriced statics";
  // Static units survive alongside the calibrated seconds...
  EXPECT_LT(warm.static_cjoin_cost, warm.static_baseline_cost);
  EXPECT_NEAR(warm.cjoin_cost, 0.100, 0.02);
  EXPECT_NEAR(warm.baseline_cost, 0.005, 0.002);
  // ...and EXPLAIN renders both.
  const std::string text = warm.ToString();
  EXPECT_NE(text.find("static"), std::string::npos);
  EXPECT_NE(text.find("calibrated"), std::string::npos);
}

TEST_F(CalibratedRouterTest, ExplorationFlipsEveryNthDecisionToColdRoute) {
  RouterOptions opts;
  opts.calibration.min_observations = 4;
  opts.calibration.explore_every = 4;
  Router router(opts);
  RouteCalibrator cal(opts.calibration);
  router.set_calibrator(&cal);

  // Unselective count: statically CJOIN. Warm only the CJOIN fit.
  StarQuerySpec spec;
  spec.schema = ts_->star.get();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec = *NormalizeSpec(std::move(spec));
  const RouteDecision d0 = router.Decide(spec, RouteInputs{});
  ASSERT_EQ(d0.choice, RouteChoice::kCJoin);
  for (int i = 0; i < 6; ++i) {
    cal.Observe(Obs(RouteChoice::kCJoin, d0.cjoin_work_units, 0.05));
  }
  ASSERT_TRUE(cal.Snapshot().cjoin.warm);

  // Probes never explore and never advance the exploration clock.
  for (int i = 0; i < 10; ++i) {
    const RouteDecision probe =
        router.Decide(spec, RouteInputs{}, DecideMode::kProbe);
    EXPECT_EQ(probe.choice, RouteChoice::kCJoin);
    EXPECT_FALSE(probe.explored);
  }

  // Execute-path decisions: every 4th flips to the cold baseline.
  int explored = 0;
  for (int i = 0; i < 8; ++i) {
    const RouteDecision d = router.Decide(spec, RouteInputs{});
    if (d.explored) {
      ++explored;
      EXPECT_EQ(d.choice, RouteChoice::kBaseline);
    } else {
      EXPECT_EQ(d.choice, RouteChoice::kCJoin);
    }
  }
  EXPECT_EQ(explored, 2);
  const RouterStats stats = cal.Stats();
  EXPECT_EQ(stats.explored_decisions, 2u);
  EXPECT_EQ(stats.decisions_cjoin + stats.decisions_baseline, 9u);
}

// Regression: exploration must not flip a query toward a route whose
// admission probe says the gate would shed it (tenant or engine-wide
// budget exhausted, no wait-queue room) — the flip would be a
// user-visible kResourceExhausted, and a shed query produces no
// observation, so the cold fit would never warm and the failures would
// repeat forever.
TEST_F(CalibratedRouterTest, ExplorationSkipsRouteThatWouldShed) {
  RouterOptions opts;
  opts.calibration.min_observations = 4;
  opts.calibration.explore_every = 2;
  Router router(opts);
  RouteCalibrator cal(opts.calibration);
  router.set_calibrator(&cal);

  // Selective query: statically baseline. Warm the baseline fit only,
  // so exploration wants to flip toward the cold CJOIN route.
  const StarQuerySpec spec = PriceQuery(2000);
  const RouteDecision d0 = router.Decide(spec, RouteInputs{});
  ASSERT_EQ(d0.choice, RouteChoice::kBaseline);
  for (int i = 0; i < 6; ++i) {
    cal.Observe(Obs(RouteChoice::kBaseline, d0.baseline_work_units, 0.005));
  }

  // The admission probe reports CJOIN would shed (covers both the
  // tenant quota and engine-wide exhaustion by OTHER tenants, which a
  // tenant-local slot count cannot see): never explore.
  RouteInputs shedding;
  shedding.cjoin_would_shed = true;
  for (int i = 0; i < 8; ++i) {
    const RouteDecision d = router.Decide(spec, shedding);
    EXPECT_FALSE(d.explored);
    EXPECT_EQ(d.choice, RouteChoice::kBaseline);
  }
  EXPECT_EQ(cal.Stats().explored_decisions, 0u);

  // With the gate open again, exploration resumes.
  int explored = 0;
  for (int i = 0; i < 8; ++i) {
    if (router.Decide(spec, RouteInputs{}).explored) ++explored;
  }
  EXPECT_GT(explored, 0);
}

// ------------------------------ Engine wiring --------------------------------

/// A completed CJOIN query's slot is released at delivery but its
/// registration is cleaned up slightly later; spin until the operator's
/// in-flight count drains so subsequent routing decisions see an idle
/// operator deterministically.
void DrainInFlight(QueryEngine& engine, const char* star) {
  auto op = engine.OperatorFor(star);
  ASSERT_TRUE(op.ok());
  for (int spin = 0; (*op)->InFlight() > 0 && spin < 2000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ((*op)->InFlight(), 0u);
}

StarQuerySpec CountStar(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

StarQuerySpec PriceQuery(const TinyStar& ts, int min_price) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  const Schema& ps = ts.product->schema();
  spec.dim_predicates.push_back(DimensionPredicate{
      0, MakeCompare(CmpOp::kGe, MakeColumnRef(ps, "p_price").value(),
                     MakeLiteral(Value(min_price)))});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

TEST(EngineFeedbackTest, CompletionObserversFeedBothRoutesToWarm) {
  auto ts = MakeTinyStar(50000);
  QueryEngine::Options eopts;
  eopts.router.calibration.min_observations = 4;
  eopts.router.calibration.explore_every = 0;  // deterministic routing
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  // Unselective counts route to CJOIN, selective prices to the baseline;
  // every successful kAuto completion must land in the calibrator.
  for (int i = 0; i < 5; ++i) {
    auto t = engine.Execute(QueryRequest::FromSpec(CountStar(*ts)));
    ASSERT_TRUE(t.ok());
    ASSERT_EQ((*t)->route(), RouteChoice::kCJoin);
    ASSERT_TRUE((*t)->Wait().ok());
  }
  DrainInFlight(engine, "tiny");
  for (int i = 0; i < 5; ++i) {
    auto t = engine.Execute(QueryRequest::FromSpec(PriceQuery(*ts, 2000)));
    ASSERT_TRUE(t.ok());
    ASSERT_EQ((*t)->route(), RouteChoice::kBaseline);
    ASSERT_TRUE((*t)->Wait().ok());
  }

  const RouterStats stats = engine.GetRouterStats();
  EXPECT_EQ(stats.calibration.cjoin.observations, 5u);
  EXPECT_EQ(stats.calibration.baseline.observations, 5u);
  EXPECT_TRUE(stats.calibration.BothWarm());
  EXPECT_GE(stats.decisions_cjoin, 5u);
  EXPECT_GE(stats.decisions_baseline, 5u);
  EXPECT_GT(stats.calibration.cjoin.last_service_seconds, 0.0);

  // With both routes warm the next decision compares fitted seconds.
  auto explain = engine.ExplainRoute(CountStar(*ts));
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->calibrated);
  EXPECT_GT(explain->cjoin_cost, 0.0);
  EXPECT_GT(explain->baseline_cost, 0.0);
  EXPECT_GT(explain->static_cjoin_cost, explain->cjoin_cost)
      << "calibrated seconds should be far below static tuple units";

  // Forced-policy queries must NOT feed the calibrator (they carry no
  // cost-model evidence).
  QueryRequest forced = QueryRequest::FromSpec(CountStar(*ts));
  forced.policy = RoutePolicy::kCJoin;
  auto ft = engine.Execute(std::move(forced));
  ASSERT_TRUE(ft.ok());
  ASSERT_TRUE((*ft)->Wait().ok());
  EXPECT_EQ(engine.GetRouterStats().calibration.cjoin.observations, 5u);
}

TEST(EngineFeedbackTest, ReshardAndQuotaChangesDecayFits) {
  auto ts = MakeTinyStar(20000);
  QueryEngine::Options eopts;
  eopts.router.calibration.min_observations = 2;
  eopts.router.calibration.explore_every = 0;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  for (int i = 0; i < 3; ++i) {
    auto t = engine.Execute(QueryRequest::FromSpec(CountStar(*ts)));
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Wait().ok());
  }
  ASSERT_TRUE(engine.GetRouterStats().calibration.cjoin.warm);

  // Re-sharding shifts the timing regime: evidence ages out of warm.
  ASSERT_TRUE(engine.SetShardCount("tiny", 2).ok());
  RouterStats stats = engine.GetRouterStats();
  EXPECT_EQ(stats.calibration.decays, 1u);
  EXPECT_FALSE(stats.calibration.cjoin.warm);

  // So does a quota rebalance.
  TenantQuota quota;
  quota.max_inflight_cjoin = 8;
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());
  EXPECT_EQ(engine.GetRouterStats().calibration.decays, 2u);
}

// ------------------- EXPLAIN ROUTE == Execute() consistency ------------------

// The probe must report the same decision Execute() would make under
// identical load inputs. (The old code sampled the admission state once
// for the costs and again for the admission verdict, so the two lines
// of one EXPLAIN could describe different instants.)
TEST(ExplainConsistencyTest, ProbeMatchesExecuteOnIdleEngine) {
  auto ts = MakeTinyStar(50000);
  QueryEngine::Options eopts;
  // Static-only: the decision depends only on the (idle) load inputs.
  eopts.router.calibration.enabled = false;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  for (const StarQuerySpec& spec :
       {CountStar(*ts), PriceQuery(*ts, 2000), PriceQuery(*ts, 1100)}) {
    // Identical load inputs for the probe and the execution: let the
    // previous iteration's CJOIN registration finish cleaning up.
    DrainInFlight(engine, "tiny");
    auto explain = engine.ExplainRoute(spec);
    ASSERT_TRUE(explain.ok()) << explain.status().ToString();

    auto ticket = engine.Execute(QueryRequest::FromSpec(spec));
    ASSERT_TRUE(ticket.ok());
    const RouteDecision& executed = (*ticket)->decision();

    EXPECT_EQ(executed.choice, explain->choice);
    EXPECT_DOUBLE_EQ(executed.static_cjoin_cost, explain->static_cjoin_cost);
    EXPECT_DOUBLE_EQ(executed.static_baseline_cost,
                     explain->static_baseline_cost);
    EXPECT_EQ(executed.inflight, explain->inflight);
    EXPECT_EQ(executed.baseline_queued, explain->baseline_queued);
    // The probe's admission verdict matches what Execute() then got.
    EXPECT_EQ(explain->admission.rfind("admitted", 0), 0u)
        << explain->admission;
    EXPECT_EQ(executed.admission.rfind("admitted", 0), 0u)
        << executed.admission;
    ASSERT_TRUE((*ticket)->Wait().ok());
  }
}

}  // namespace
}  // namespace cjoin
