// Tests for the unified asynchronous query API: Execute()/QueryTicket on
// both routes, cooperative cancellation (mid-lap bit-vector slot
// reclamation and reuse), deadline expiry, baseline pool priorities, and
// cost-based kAuto routing end to end.

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "storage/sim_disk.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

/// Selective product query: p_price >= `min_price`.
StarQuerySpec PriceQuery(const TinyStar& ts, int min_price) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  const Schema& ps = ts.product->schema();
  spec.dim_predicates.push_back(DimensionPredicate{
      0, MakeCompare(CmpOp::kGe, MakeColumnRef(ps, "p_price").value(),
                     MakeLiteral(Value(min_price)))});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

StarQuerySpec CountStar(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

bool WaitForPhase(QueryHandle* handle, QueryPhase phase,
                  std::chrono::milliseconds timeout) {
  const auto limit = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < limit) {
    if (static_cast<int>(handle->phase()) >= static_cast<int>(phase)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// ----------------------- Uniform Execute() semantics ------------------------

TEST(ExecuteTest, BothRoutesReturnTicketsWithCorrectResults) {
  auto ts = MakeTinyStar(2000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  StarQuerySpec spec = PriceQuery(*ts, 1500);
  const ResultSet ref = ReferenceEvaluate(*NormalizeSpec(spec));

  for (RoutePolicy policy : {RoutePolicy::kCJoin, RoutePolicy::kBaseline}) {
    QueryRequest req = QueryRequest::FromSpec(spec);
    req.policy = policy;
    auto ticket = engine.Execute(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    EXPECT_TRUE((*ticket)->decision().forced);
    auto rs = (*ticket)->Wait();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs->num_rows(), 1u);
    EXPECT_EQ(rs->rows[0][0].AsInt(), ref.rows[0][0].AsInt());
    EXPECT_GT((*ticket)->ResponseSeconds(), 0.0);
    const RouteChoice expect = policy == RoutePolicy::kCJoin
                                   ? RouteChoice::kCJoin
                                   : RouteChoice::kBaseline;
    EXPECT_EQ((*ticket)->route(), expect);
  }
}

TEST(ExecuteTest, SqlRequestsWork) {
  auto ts = MakeTinyStar(1000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::Sql(
      "tiny", "SELECT COUNT(*) AS n FROM sales");
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  auto rs = (*ticket)->Wait();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1000);
}

TEST(ExecuteTest, ForcedPoliciesAgreeOnSql) {
  auto ts = MakeTinyStar(1000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  for (RoutePolicy policy : {RoutePolicy::kCJoin, RoutePolicy::kBaseline}) {
    QueryRequest req =
        QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
    req.policy = policy;
    auto t = engine.Execute(std::move(req));
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    auto rs = (*t)->Wait();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows[0][0].AsInt(), 1000);
  }
}

// --------------------------- Cancellation -----------------------------------

// The acceptance-criteria test: a cancelled CJOIN query is deregistered
// mid-lap and its bit-vector slot (query id) is released and reused by
// the next query.
TEST(CancelTest, MidLapCancelFreesAndReusesBitVectorSlot) {
  auto ts = MakeTinyStar(50000);
  // One query id total: reuse is only possible if cancellation released
  // the slot. A slow simulated disk keeps the lap long enough that the
  // cancel lands mid-lap.
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.max_concurrent_queries = 1;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  auto t1 = engine.Execute(std::move(req));
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  const uint32_t slot = (*t1)->query_id();

  // Let it register (mid-lap, not completed), then cancel.
  ASSERT_TRUE(WaitForPhase((*t1)->cjoin_handle(), QueryPhase::kRegistered,
                           std::chrono::seconds(10)));
  (*t1)->Cancel();
  auto rs1 = (*t1)->Wait();
  ASSERT_FALSE(rs1.ok());
  EXPECT_EQ(rs1.status().code(), StatusCode::kCancelled);
  EXPECT_EQ((*t1)->cjoin_handle()->phase(), QueryPhase::kCancelled);

  // The next query can only be admitted if the slot was reclaimed; it
  // must get the same id and run to a correct completion.
  QueryRequest req2 = QueryRequest::FromSpec(CountStar(*ts));
  req2.policy = RoutePolicy::kCJoin;
  auto t2 = engine.Execute(std::move(req2));
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_EQ((*t2)->query_id(), slot);
  auto rs2 = (*t2)->Wait();
  ASSERT_TRUE(rs2.ok()) << rs2.status().ToString();
  EXPECT_EQ(rs2->rows[0][0].AsInt(), 50000);

  auto op = engine.OperatorFor("tiny");
  ASSERT_TRUE(op.ok());
  const auto stats = (*op)->GetStats();
  EXPECT_EQ(stats.queries_cancelled, 1u);
  EXPECT_EQ(stats.queries_completed, 1u);
}

TEST(CancelTest, BaselineCancelledWhileQueued) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.baseline_workers = 1;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  // Occupy the single worker with a disk-bound query.
  QueryRequest slow = QueryRequest::FromSpec(CountStar(*ts));
  slow.policy = RoutePolicy::kBaseline;
  QatOptions slow_opts;
  slow_opts.disk = &disk;
  slow.baseline_options = slow_opts;
  auto blocker = engine.Execute(std::move(slow));
  ASSERT_TRUE(blocker.ok());

  // The queued query is cancelled before a worker picks it up.
  QueryRequest queued = QueryRequest::FromSpec(CountStar(*ts));
  queued.policy = RoutePolicy::kBaseline;
  auto victim = engine.Execute(std::move(queued));
  ASSERT_TRUE(victim.ok());
  (*victim)->Cancel();
  const auto cancel_at = std::chrono::steady_clock::now();
  auto rs = (*victim)->Wait();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
  // Resolved promptly by the pool's sweeper — NOT after the disk-bound
  // blocker (~600ms) releases the only worker.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - cancel_at)
                .count(),
            300);

  auto brs = (*blocker)->Wait();
  ASSERT_TRUE(brs.ok()) << brs.status().ToString();
}

// ------------------------------ Deadlines -----------------------------------

TEST(DeadlineTest, CJoinQueryExpiresMidLap) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;  // lap >> 100ms
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  req.timeout = std::chrono::milliseconds(100);
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  auto rs = (*ticket)->Wait();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, BaselineQueryExpiresMidScan) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kBaseline;
  req.timeout = std::chrono::milliseconds(100);
  QatOptions qopts;
  qopts.disk = &disk;
  req.baseline_options = qopts;
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  auto rs = (*ticket)->Wait();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, AlreadyExpiredDeadlineResolvesThroughTicketOnBothRoutes) {
  auto ts = MakeTinyStar(1000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  // Uniform-ticket contract: Execute() succeeds, Wait() reports the
  // expiry — identically on both routes.
  for (RoutePolicy policy : {RoutePolicy::kCJoin, RoutePolicy::kBaseline}) {
    QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
    req.policy = policy;
    req.deadline_ns = 1;  // epoch start: long past
    auto ticket = engine.Execute(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    auto rs = (*ticket)->Wait();
    ASSERT_FALSE(rs.ok());
    EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  }
}

// ------------------------------ Priorities ----------------------------------

TEST(PriorityTest, HigherPriorityBaselineJobRunsFirst) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 4.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.baseline_workers = 1;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QatOptions slow_opts;
  slow_opts.disk = &disk;

  auto submit = [&](int priority) {
    QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
    req.policy = RoutePolicy::kBaseline;
    req.priority = priority;
    req.baseline_options = slow_opts;
    auto t = engine.Execute(std::move(req));
    EXPECT_TRUE(t.ok());
    return std::move(*t);
  };

  auto blocker = submit(0);  // occupies the single worker
  auto low = submit(0);      // queued first...
  auto high = submit(5);     // ...but outranked

  auto hrs = high->Wait();
  ASSERT_TRUE(hrs.ok()) << hrs.status().ToString();
  // When the high-priority job finished, the low one had not started
  // (single worker, disk-bound job ahead of it).
  EXPECT_FALSE(low->Ready());
  ASSERT_TRUE(low->Wait().ok());
  ASSERT_TRUE(blocker->Wait().ok());
}

// ---------------------------- kAuto routing ---------------------------------

// Acceptance criterion: kAuto demonstrably sends at least one query to
// each engine — baseline for a lone selective query, CJOIN once the
// operator has concurrent work to share.
TEST(AutoRoutingTest, SelectiveIdleToBaselineConcurrentToCJoin) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;  // CJOIN laps are slow; baseline runs at
                             // memory speed (no baseline disk configured)
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  const StarQuerySpec selective = PriceQuery(*ts, 2000);  // sel = 0.05
  const ResultSet ref = ReferenceEvaluate(*NormalizeSpec(selective));

  // 1. Idle operator: the selective query takes the private plan.
  {
    QueryRequest req = QueryRequest::FromSpec(selective);
    auto ticket = engine.Execute(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    EXPECT_EQ((*ticket)->route(), RouteChoice::kBaseline);
    EXPECT_FALSE((*ticket)->decision().forced);
    auto rs = (*ticket)->Wait();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows[0][0].AsInt(), ref.rows[0][0].AsInt());
  }

  // 2. Load the operator with in-flight queries; now the shared scan is
  //    amortized and the same selective query routes to CJOIN.
  std::vector<std::unique_ptr<QueryTicket>> background;
  for (int i = 0; i < 4; ++i) {
    QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
    req.policy = RoutePolicy::kCJoin;
    auto t = engine.Execute(std::move(req));
    ASSERT_TRUE(t.ok());
    background.push_back(std::move(*t));
  }
  {
    QueryRequest req = QueryRequest::FromSpec(selective);
    auto ticket = engine.Execute(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    EXPECT_EQ((*ticket)->route(), RouteChoice::kCJoin);
    EXPECT_GE((*ticket)->decision().inflight, 1u);
    auto rs = (*ticket)->Wait();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows[0][0].AsInt(), ref.rows[0][0].AsInt());
  }
  for (auto& t : background) {
    ASSERT_TRUE(t->Wait().ok());
  }
}

// ----------------------------- Galaxy joins ---------------------------------

TEST(GalaxyTest, DeadlineAppliesToBothSides) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryEngine::GalaxyJoinSpec gspec;
  gspec.left.schema = engine.FindStar("tiny").value();
  gspec.right.schema = engine.FindStar("tiny").value();
  gspec.left_join_col = 0;
  gspec.right_join_col = 0;
  gspec.aggregates.push_back({AggFn::kCount, 0, std::nullopt, "n"});
  gspec.deadline_ns = QueryRuntime::NowNs() +
                      std::chrono::nanoseconds(std::chrono::milliseconds(80))
                          .count();
  auto rs = engine.ExecuteGalaxyJoin(gspec);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace cjoin
