// Unit tests for CJOIN's internal components: dimension hash tables with
// bit-vectors, the epoch tracker, tuple slot layout, filter ordering, and
// the bit-vector invariants of §3.2.1 under query id reuse.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "cjoin/dim_hash_table.h"
#include "cjoin/epoch_tracker.h"
#include "cjoin/filter.h"
#include "cjoin/tuple_slot.h"
#include "common/tuple_pool.h"

namespace cjoin {
namespace {

// --------------------------- DimensionHashTable ------------------------------

class DimHashTableTest : public ::testing::Test {
 protected:
  static constexpr size_t kWidth = 2;  // 128 query ids
  DimensionHashTable ht_{kWidth, 16};
  uint8_t rows_[64] = {};
};

TEST_F(DimHashTableTest, InsertAndProbe) {
  auto* e = ht_.InsertOrGet(42, &rows_[0]);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key, 42);
  EXPECT_EQ(e->row, &rows_[0]);
  EXPECT_EQ(ht_.size(), 1u);

  cjoin::ReaderMutexLock lk(&ht_.mutex());
  const auto* found = ht_.ProbeLocked(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->row, &rows_[0]);
  EXPECT_EQ(ht_.ProbeLocked(43), nullptr);
}

TEST_F(DimHashTableTest, InsertIsIdempotentPerKey) {
  auto* a = ht_.InsertOrGet(7, &rows_[0]);
  DimensionHashTable::SetEntryBit(a, 3, true);
  auto* b = ht_.InsertOrGet(7, &rows_[1]);  // same key: existing entry
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->row, &rows_[0]) << "row pointer of first insert wins";
  EXPECT_TRUE(bitops::TestBit(b->bits, 3));
  EXPECT_EQ(ht_.size(), 1u);
}

TEST_F(DimHashTableTest, NewEntriesInheritComplement) {
  // b_Dj semantics (§3.2.1): a tuple not in the table behaves as selected
  // by queries that do NOT reference this dimension. New entries must
  // start from that vector.
  ht_.SetComplementBit(5, true);   // query 5 does not reference this dim
  ht_.SetComplementBit(9, false);  // query 9 references it
  auto* e = ht_.InsertOrGet(1, &rows_[0]);
  EXPECT_TRUE(bitops::TestBit(e->bits, 5));
  EXPECT_FALSE(bitops::TestBit(e->bits, 9));
}

TEST_F(DimHashTableTest, GrowsAndKeepsEntries) {
  for (int64_t k = 0; k < 1000; ++k) {
    auto* e = ht_.InsertOrGet(k, &rows_[k % 64]);
    DimensionHashTable::SetEntryBit(e, static_cast<size_t>(k % 128), true);
  }
  EXPECT_EQ(ht_.size(), 1000u);
  cjoin::ReaderMutexLock lk(&ht_.mutex());
  for (int64_t k = 0; k < 1000; ++k) {
    const auto* e = ht_.ProbeLocked(k);
    ASSERT_NE(e, nullptr) << k;
    EXPECT_TRUE(bitops::TestBit(e->bits, static_cast<size_t>(k % 128)));
  }
}

TEST_F(DimHashTableTest, SetBitForAllEntries) {
  for (int64_t k = 0; k < 50; ++k) ht_.InsertOrGet(k, &rows_[0]);
  ht_.SetBitForAllEntries(17, true);
  size_t set_count = 0;
  ht_.ForEachEntry([&](const DimensionHashTable::Entry& e) {
    if (bitops::TestBit(e.bits, 17)) ++set_count;
  });
  EXPECT_EQ(set_count, 50u);
  ht_.SetBitForAllEntries(17, false);
  ht_.ForEachEntry([&](const DimensionHashTable::Entry& e) {
    EXPECT_FALSE(bitops::TestBit(e.bits, 17));
  });
}

TEST_F(DimHashTableTest, RemoveDeadEntriesKeepsLiveOnes) {
  // Query 2 references the dim and selects keys 0..9; query 4 does not
  // reference it (complement bit set).
  ht_.SetComplementBit(2, false);
  ht_.SetComplementBit(4, true);
  for (int64_t k = 0; k < 20; ++k) {
    auto* e = ht_.InsertOrGet(k, &rows_[0]);
    if (k < 10) DimensionHashTable::SetEntryBit(e, 2, true);
  }
  uint64_t active[2] = {};
  bitops::SetBit(active, 2);
  bitops::SetBit(active, 4);
  // Entries 10..19 carry only the complement pattern => dead.
  const size_t removed = ht_.RemoveDeadEntries(active);
  EXPECT_EQ(removed, 10u);
  EXPECT_EQ(ht_.size(), 10u);
  cjoin::ReaderMutexLock lk(&ht_.mutex());
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_NE(ht_.ProbeLocked(k), nullptr) << k;
  }
  for (int64_t k = 10; k < 20; ++k) {
    EXPECT_EQ(ht_.ProbeLocked(k), nullptr) << k;
  }
}

TEST_F(DimHashTableTest, ConcurrentProbesDuringBitUpdates) {
  // Admission updates bits while filters probe (§3.3.1).
  for (int64_t k = 0; k < 256; ++k) ht_.InsertOrGet(k, &rows_[0]);
  std::atomic<bool> stop{false};
  std::thread prober([&] {
    uint64_t acc[kWidth];
    while (!stop.load()) {
      cjoin::ReaderMutexLock lk(&ht_.mutex());
      for (int64_t k = 0; k < 256; k += 7) {
        const auto* e = ht_.ProbeLocked(k);
        ASSERT_NE(e, nullptr);
        bitops::Fill(acc, kWidth, ~uint64_t{0});
        bitops::AndIntoAtomicSrc(acc, e->bits, kWidth);
      }
    }
  });
  for (int round = 0; round < 200; ++round) {
    const size_t qid = static_cast<size_t>(round % 128);
    ht_.SetBitForAllEntries(qid, round % 2 == 0);
    ht_.SetComplementBit(qid, round % 2 == 1);
  }
  // Structural change under probes too.
  for (int64_t k = 256; k < 512; ++k) ht_.InsertOrGet(k, &rows_[0]);
  stop.store(true);
  prober.join();
  EXPECT_EQ(ht_.size(), 512u);
}

TEST_F(DimHashTableTest, ProbeBatchMatchesScalarProbe) {
  // Element-wise identity with ProbeLocked on an interleaved hit/miss
  // mix, at a size spanning several internal kMaxBatch rounds.
  for (int64_t k = 0; k < 1000; k += 2) ht_.InsertOrGet(k, &rows_[0]);

  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 1000; ++k) keys.push_back(k);  // 50% misses
  std::vector<const DimensionHashTable::Entry*> got(keys.size());

  cjoin::ReaderMutexLock lk(&ht_.mutex());
  ht_.ProbeBatchLocked(keys.data(), got.data(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(got[i], ht_.ProbeLocked(keys[i])) << "key " << keys[i];
  }
}

TEST_F(DimHashTableTest, ProbeBatchHandlesDuplicatesAndShortBatches) {
  ht_.InsertOrGet(5, &rows_[0]);
  const int64_t keys[] = {5, -5, 5, 5};
  const DimensionHashTable::Entry* got[4];
  cjoin::ReaderMutexLock lk(&ht_.mutex());
  ht_.ProbeBatchLocked(keys, got, 4);
  EXPECT_NE(got[0], nullptr);
  EXPECT_EQ(got[1], nullptr);
  EXPECT_EQ(got[0], got[2]);
  EXPECT_EQ(got[0], got[3]);
  ht_.ProbeBatchLocked(keys, got, 0);  // n=0 is a no-op
}

TEST_F(DimHashTableTest, InsertBatchMatchesInsertOrGet) {
  ht_.SetComplementBit(11, true);
  // Pre-seed some keys scalar-ly; the batch must return the existing
  // entries for them and create the rest, across a growth boundary.
  for (int64_t k = 0; k < 100; k += 3) ht_.InsertOrGet(k, &rows_[0]);
  const size_t pre = ht_.size();

  std::vector<int64_t> keys;
  std::vector<const uint8_t*> rows;
  for (int64_t k = 0; k < 300; ++k) {
    keys.push_back(k);
    rows.push_back(&rows_[k % 64]);
  }
  // Duplicate inside the batch itself.
  keys.push_back(7);
  rows.push_back(&rows_[63]);
  std::vector<DimensionHashTable::Entry*> ents(keys.size());
  ht_.InsertBatch(keys.data(), rows.data(), ents.data(), keys.size());

  EXPECT_EQ(ht_.size(), 300u);
  EXPECT_GT(ht_.size(), pre);
  cjoin::ReaderMutexLock lk(&ht_.mutex());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(ents[i], nullptr) << i;
    EXPECT_EQ(ents[i], ht_.ProbeLocked(keys[i])) << keys[i];
    EXPECT_EQ(ents[i]->key, keys[i]);
    EXPECT_TRUE(bitops::TestBit(ents[i]->bits, 11))
        << "new entries inherit the complement";
  }
  // In-batch duplicate resolved to one entry.
  EXPECT_EQ(ents.back(), ents[7]);
  EXPECT_EQ(ents[7]->row, &rows_[7 % 64]) << "first row wins";
}

TEST_F(DimHashTableTest, RemoveDeadEntriesRepairsCollisionChains) {
  // Regression for open-addressed deletion: fill the table close to its
  // load-factor bound so linear-probe chains are long, remove an
  // interleaved half, and verify every survivor — including ones that
  // were displaced PAST removed keys — is still reachable, both via
  // scalar and batched probes.
  ht_.SetComplementBit(1, false);
  const int64_t kN = 350;  // ~68% of the 512-slot table after growth
  for (int64_t k = 0; k < kN; ++k) {
    auto* e = ht_.InsertOrGet(k * 1024, &rows_[0]);  // clustered keys
    if (k % 2 == 0) DimensionHashTable::SetEntryBit(e, 1, true);
  }
  uint64_t active[2] = {};
  bitops::SetBit(active, 1);
  const size_t removed = ht_.RemoveDeadEntries(active);
  EXPECT_EQ(removed, static_cast<size_t>(kN / 2));

  std::vector<int64_t> keys;
  for (int64_t k = 0; k < kN; ++k) keys.push_back(k * 1024);
  std::vector<const DimensionHashTable::Entry*> got(keys.size());
  {
    cjoin::ReaderMutexLock lk(&ht_.mutex());
    ht_.ProbeBatchLocked(keys.data(), got.data(), keys.size());
    for (int64_t k = 0; k < kN; ++k) {
      const auto* e = ht_.ProbeLocked(k * 1024);
      EXPECT_EQ(got[static_cast<size_t>(k)], e) << k;
      if (k % 2 == 0) {
        ASSERT_NE(e, nullptr) << "survivor lost at key " << k * 1024;
        EXPECT_EQ(e->key, k * 1024);
      } else {
        EXPECT_EQ(e, nullptr) << "removed key still present: " << k * 1024;
      }
    }
  }
  // A second GC pass (reusing the table-owned scratch) removes nothing.
  EXPECT_EQ(ht_.RemoveDeadEntries(active), 0u);
}

TEST_F(DimHashTableTest, RehashPreservesCollisionChains) {
  // Grow across several rehashes with adversarially clustered keys and
  // verify batched and scalar probes agree on every key afterwards.
  ht_.SetComplementBit(0, false);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k < 2000; ++k) {
    const int64_t key = (k % 2 == 0) ? k : k * (1 << 20);
    keys.push_back(key);
    auto* e = ht_.InsertOrGet(key, &rows_[0]);
    DimensionHashTable::SetEntryBit(e, static_cast<size_t>(k % 128), true);
  }
  EXPECT_EQ(ht_.size(), 2000u);
  std::vector<const DimensionHashTable::Entry*> got(keys.size());
  cjoin::ReaderMutexLock lk(&ht_.mutex());
  ht_.ProbeBatchLocked(keys.data(), got.data(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(got[i], nullptr) << keys[i];
    EXPECT_EQ(got[i], ht_.ProbeLocked(keys[i]));
    EXPECT_TRUE(bitops::TestBit(got[i]->bits, i % 128));
  }
}

TEST_F(DimHashTableTest, ConcurrentBatchProbesDuringInsertAndGc) {
  // TSan-covered stress of the full concurrency contract: filter-side
  // batched probes under the shared lock, racing the Pipeline Manager's
  // bit flips (shared lock + atomics) and structural changes — batched
  // inserts, rehashes, and GC passes (exclusive lock).
  ht_.SetComplementBit(3, false);
  for (int64_t k = 0; k < 128; ++k) {
    auto* e = ht_.InsertOrGet(k, &rows_[0]);
    DimensionHashTable::SetEntryBit(e, 3, true);  // keys 0..127 stay live
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> probers;
  for (int t = 0; t < 3; ++t) {
    probers.emplace_back([&] {
      int64_t keys[DimensionHashTable::kMaxBatch];
      const DimensionHashTable::Entry* out[DimensionHashTable::kMaxBatch];
      uint64_t acc[kWidth];
      int64_t base = 0;
      while (!stop.load()) {
        for (size_t i = 0; i < DimensionHashTable::kMaxBatch; ++i) {
          keys[i] = (base + static_cast<int64_t>(i) * 3) % 4096;
        }
        base += 17;
        cjoin::ReaderMutexLock lk(&ht_.mutex());
        ht_.ProbeBatchLocked(keys, out, DimensionHashTable::kMaxBatch);
        for (size_t i = 0; i < DimensionHashTable::kMaxBatch; ++i) {
          if (keys[i] < 128) {
            ASSERT_NE(out[i], nullptr) << keys[i];
          }
          if (out[i] != nullptr) {
            bitops::Fill(acc, kWidth, ~uint64_t{0});
            bitops::AndIntoAtomicSrc(acc, out[i]->bits, kWidth);
          }
        }
      }
    });
  }
  uint64_t active[kWidth] = {};
  bitops::SetBit(active, 3);
  int64_t next = 128;
  for (int round = 0; round < 60; ++round) {
    // Batched inserts of transient keys (bit 3 left clear => GC bait).
    int64_t keys[DimensionHashTable::kMaxBatch];
    const uint8_t* rows[DimensionHashTable::kMaxBatch];
    DimensionHashTable::Entry* ents[DimensionHashTable::kMaxBatch];
    for (size_t i = 0; i < DimensionHashTable::kMaxBatch; ++i) {
      keys[i] = next++ % 4096;
      rows[i] = &rows_[0];
    }
    ht_.InsertBatch(keys, rows, ents, DimensionHashTable::kMaxBatch);
    const size_t qid = static_cast<size_t>(round % 128);
    if (qid != 3) ht_.SetBitForAllEntries(qid, round % 2 == 0);
    if (round % 10 == 9) ht_.RemoveDeadEntries(active);
  }
  ht_.RemoveDeadEntries(active);
  stop.store(true);
  for (auto& t : probers) t.join();
  EXPECT_EQ(ht_.size(), 128u) << "only the bit-3 keys survive GC";
}

// ------------------------------ EpochTracker ---------------------------------

TEST(EpochTrackerTest, CompleteRequiresCloseAndBalance) {
  EpochTracker t(64);
  t.AddProduced(0, 10);
  EXPECT_FALSE(t.Complete(0)) << "not closed yet";
  t.Close(0);
  EXPECT_FALSE(t.Complete(0)) << "nothing retired";
  t.AddRetired(0, 4);
  t.AddRetired(0, 6);
  EXPECT_TRUE(t.Complete(0));
}

TEST(EpochTrackerTest, EmptyEpochCompletesOnClose) {
  EpochTracker t(64);
  t.Close(3);
  EXPECT_TRUE(t.Complete(3));
}

TEST(EpochTrackerTest, RecycleResetsRingCell) {
  EpochTracker t(4);  // tiny ring: epoch 5 shares a cell with epoch 1
  t.AddProduced(1, 2);
  t.Close(1);
  t.AddRetired(1, 2);
  EXPECT_TRUE(t.Complete(1));
  t.Recycle(1);
  EXPECT_FALSE(t.Complete(5)) << "recycled cell must start fresh";
  t.Close(5);
  EXPECT_TRUE(t.Complete(5));
}

TEST(EpochTrackerTest, ConcurrentRetiresBalance) {
  EpochTracker t(16);
  constexpr uint64_t kPerThread = 10000;
  t.AddProduced(7, 4 * kPerThread);
  t.Close(7);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t] {
      for (uint64_t n = 0; n < kPerThread; ++n) t.AddRetired(7, 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(t.Complete(7));
}

// ------------------------------- TupleSlot -----------------------------------

TEST(TupleSlotTest, LayoutAccessorsDoNotOverlap) {
  constexpr size_t kDims = 4, kWords = 4;
  TuplePool pool(16, SlotStride(kDims, kWords));
  auto* slot = static_cast<TupleSlot*>(pool.Acquire());
  slot->fact_row = reinterpret_cast<const uint8_t*>(0x1234);
  slot->epoch = 99;
  slot->kind = SlotKind::kData;
  for (size_t d = 0; d < kDims; ++d) {
    slot->dim_rows()[d] = reinterpret_cast<const uint8_t*>(0x1000 + d);
  }
  uint64_t* bits = slot->bits(kDims);
  bitops::Zero(bits, kWords);
  bitops::SetBit(bits, 0);
  bitops::SetBit(bits, 255);

  // Nothing clobbered anything else.
  EXPECT_EQ(slot->fact_row, reinterpret_cast<const uint8_t*>(0x1234));
  EXPECT_EQ(slot->epoch, 99u);
  for (size_t d = 0; d < kDims; ++d) {
    EXPECT_EQ(slot->dim_rows()[d],
              reinterpret_cast<const uint8_t*>(0x1000 + d));
  }
  EXPECT_TRUE(bitops::TestBit(bits, 0));
  EXPECT_TRUE(bitops::TestBit(bits, 255));
  EXPECT_EQ(bitops::PopCount(bits, kWords), 2u);
  // The bits region ends exactly at the stride.
  const uint8_t* end = reinterpret_cast<const uint8_t*>(bits + kWords);
  EXPECT_LE(end, reinterpret_cast<const uint8_t*>(slot) +
                     SlotStride(kDims, kWords));
  pool.Release(slot);
}

/// Stride parameterized over (dims, words) combinations.
class SlotStrideTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SlotStrideTest, StrideCoversAllFields) {
  const auto [dims, words] = GetParam();
  EXPECT_EQ(SlotStride(dims, words),
            sizeof(TupleSlot) + dims * sizeof(const uint8_t*) +
                words * sizeof(uint64_t));
  EXPECT_EQ(SlotStride(dims, words) % 8, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, SlotStrideTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{4, 4},
                      std::pair<size_t, size_t>{8, 16}));

// ----------------------------- FilterOrderRef --------------------------------

TEST(FilterOrderTest, PublishIsVisibleToReaders) {
  Filter f1, f2;
  f1.dim_index = 0;
  f2.dim_index = 1;
  FilterOrderRef ref(std::make_shared<const FilterOrder>(
      FilterOrder{&f1, &f2}));
  EXPECT_EQ((*ref.Acquire())[0], &f1);
  ref.Publish(std::make_shared<const FilterOrder>(FilterOrder{&f2, &f1}));
  EXPECT_EQ((*ref.Acquire())[0], &f2);
}

TEST(FilterOrderTest, DropRateAndDecay) {
  Filter f;
  f.tuples_in.store(1000);
  f.tuples_dropped.store(250);
  EXPECT_DOUBLE_EQ(f.DropRate(), 0.25);
  f.DecayStats();
  EXPECT_EQ(f.tuples_in.load(), 500u);
  EXPECT_EQ(f.tuples_dropped.load(), 125u);
  Filter empty;
  EXPECT_DOUBLE_EQ(empty.DropRate(), 0.0);
}

TEST(FilterOrderTest, ConcurrentAcquirePublish) {
  Filter f1, f2, f3;
  FilterOrderRef ref(
      std::make_shared<const FilterOrder>(FilterOrder{&f1, &f2, &f3}));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto order = ref.Acquire();
        ASSERT_EQ(order->size(), 3u);
        size_t sum = 0;
        for (const Filter* f : *order) sum += f->dim_index;
        ASSERT_EQ(sum, f1.dim_index + f2.dim_index + f3.dim_index);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    FilterOrder next = {&f3, &f1, &f2};
    if (i % 2 == 0) std::swap(next[0], next[2]);
    ref.Publish(std::make_shared<const FilterOrder>(std::move(next)));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace cjoin
