// Unit tests for CJOIN's internal components: dimension hash tables with
// bit-vectors, the epoch tracker, tuple slot layout, filter ordering, and
// the bit-vector invariants of §3.2.1 under query id reuse.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "cjoin/dim_hash_table.h"
#include "cjoin/epoch_tracker.h"
#include "cjoin/filter.h"
#include "cjoin/tuple_slot.h"
#include "common/tuple_pool.h"

namespace cjoin {
namespace {

// --------------------------- DimensionHashTable ------------------------------

class DimHashTableTest : public ::testing::Test {
 protected:
  static constexpr size_t kWidth = 2;  // 128 query ids
  DimensionHashTable ht_{kWidth, 16};
  uint8_t rows_[64] = {};
};

TEST_F(DimHashTableTest, InsertAndProbe) {
  auto* e = ht_.InsertOrGet(42, &rows_[0]);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key, 42);
  EXPECT_EQ(e->row, &rows_[0]);
  EXPECT_EQ(ht_.size(), 1u);

  std::shared_lock<std::shared_mutex> lk(ht_.mutex());
  const auto* found = ht_.ProbeLocked(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->row, &rows_[0]);
  EXPECT_EQ(ht_.ProbeLocked(43), nullptr);
}

TEST_F(DimHashTableTest, InsertIsIdempotentPerKey) {
  auto* a = ht_.InsertOrGet(7, &rows_[0]);
  DimensionHashTable::SetEntryBit(a, 3, true);
  auto* b = ht_.InsertOrGet(7, &rows_[1]);  // same key: existing entry
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->row, &rows_[0]) << "row pointer of first insert wins";
  EXPECT_TRUE(bitops::TestBit(b->bits, 3));
  EXPECT_EQ(ht_.size(), 1u);
}

TEST_F(DimHashTableTest, NewEntriesInheritComplement) {
  // b_Dj semantics (§3.2.1): a tuple not in the table behaves as selected
  // by queries that do NOT reference this dimension. New entries must
  // start from that vector.
  ht_.SetComplementBit(5, true);   // query 5 does not reference this dim
  ht_.SetComplementBit(9, false);  // query 9 references it
  auto* e = ht_.InsertOrGet(1, &rows_[0]);
  EXPECT_TRUE(bitops::TestBit(e->bits, 5));
  EXPECT_FALSE(bitops::TestBit(e->bits, 9));
}

TEST_F(DimHashTableTest, GrowsAndKeepsEntries) {
  for (int64_t k = 0; k < 1000; ++k) {
    auto* e = ht_.InsertOrGet(k, &rows_[k % 64]);
    DimensionHashTable::SetEntryBit(e, static_cast<size_t>(k % 128), true);
  }
  EXPECT_EQ(ht_.size(), 1000u);
  std::shared_lock<std::shared_mutex> lk(ht_.mutex());
  for (int64_t k = 0; k < 1000; ++k) {
    const auto* e = ht_.ProbeLocked(k);
    ASSERT_NE(e, nullptr) << k;
    EXPECT_TRUE(bitops::TestBit(e->bits, static_cast<size_t>(k % 128)));
  }
}

TEST_F(DimHashTableTest, SetBitForAllEntries) {
  for (int64_t k = 0; k < 50; ++k) ht_.InsertOrGet(k, &rows_[0]);
  ht_.SetBitForAllEntries(17, true);
  size_t set_count = 0;
  ht_.ForEachEntry([&](const DimensionHashTable::Entry& e) {
    if (bitops::TestBit(e.bits, 17)) ++set_count;
  });
  EXPECT_EQ(set_count, 50u);
  ht_.SetBitForAllEntries(17, false);
  ht_.ForEachEntry([&](const DimensionHashTable::Entry& e) {
    EXPECT_FALSE(bitops::TestBit(e.bits, 17));
  });
}

TEST_F(DimHashTableTest, RemoveDeadEntriesKeepsLiveOnes) {
  // Query 2 references the dim and selects keys 0..9; query 4 does not
  // reference it (complement bit set).
  ht_.SetComplementBit(2, false);
  ht_.SetComplementBit(4, true);
  for (int64_t k = 0; k < 20; ++k) {
    auto* e = ht_.InsertOrGet(k, &rows_[0]);
    if (k < 10) DimensionHashTable::SetEntryBit(e, 2, true);
  }
  uint64_t active[2] = {};
  bitops::SetBit(active, 2);
  bitops::SetBit(active, 4);
  // Entries 10..19 carry only the complement pattern => dead.
  const size_t removed = ht_.RemoveDeadEntries(active);
  EXPECT_EQ(removed, 10u);
  EXPECT_EQ(ht_.size(), 10u);
  std::shared_lock<std::shared_mutex> lk(ht_.mutex());
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_NE(ht_.ProbeLocked(k), nullptr) << k;
  }
  for (int64_t k = 10; k < 20; ++k) {
    EXPECT_EQ(ht_.ProbeLocked(k), nullptr) << k;
  }
}

TEST_F(DimHashTableTest, ConcurrentProbesDuringBitUpdates) {
  // Admission updates bits while filters probe (§3.3.1).
  for (int64_t k = 0; k < 256; ++k) ht_.InsertOrGet(k, &rows_[0]);
  std::atomic<bool> stop{false};
  std::thread prober([&] {
    uint64_t acc[kWidth];
    while (!stop.load()) {
      std::shared_lock<std::shared_mutex> lk(ht_.mutex());
      for (int64_t k = 0; k < 256; k += 7) {
        const auto* e = ht_.ProbeLocked(k);
        ASSERT_NE(e, nullptr);
        bitops::Fill(acc, kWidth, ~uint64_t{0});
        bitops::AndIntoAtomicSrc(acc, e->bits, kWidth);
      }
    }
  });
  for (int round = 0; round < 200; ++round) {
    const size_t qid = static_cast<size_t>(round % 128);
    ht_.SetBitForAllEntries(qid, round % 2 == 0);
    ht_.SetComplementBit(qid, round % 2 == 1);
  }
  // Structural change under probes too.
  for (int64_t k = 256; k < 512; ++k) ht_.InsertOrGet(k, &rows_[0]);
  stop.store(true);
  prober.join();
  EXPECT_EQ(ht_.size(), 512u);
}

// ------------------------------ EpochTracker ---------------------------------

TEST(EpochTrackerTest, CompleteRequiresCloseAndBalance) {
  EpochTracker t(64);
  t.AddProduced(0, 10);
  EXPECT_FALSE(t.Complete(0)) << "not closed yet";
  t.Close(0);
  EXPECT_FALSE(t.Complete(0)) << "nothing retired";
  t.AddRetired(0, 4);
  t.AddRetired(0, 6);
  EXPECT_TRUE(t.Complete(0));
}

TEST(EpochTrackerTest, EmptyEpochCompletesOnClose) {
  EpochTracker t(64);
  t.Close(3);
  EXPECT_TRUE(t.Complete(3));
}

TEST(EpochTrackerTest, RecycleResetsRingCell) {
  EpochTracker t(4);  // tiny ring: epoch 5 shares a cell with epoch 1
  t.AddProduced(1, 2);
  t.Close(1);
  t.AddRetired(1, 2);
  EXPECT_TRUE(t.Complete(1));
  t.Recycle(1);
  EXPECT_FALSE(t.Complete(5)) << "recycled cell must start fresh";
  t.Close(5);
  EXPECT_TRUE(t.Complete(5));
}

TEST(EpochTrackerTest, ConcurrentRetiresBalance) {
  EpochTracker t(16);
  constexpr uint64_t kPerThread = 10000;
  t.AddProduced(7, 4 * kPerThread);
  t.Close(7);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t] {
      for (uint64_t n = 0; n < kPerThread; ++n) t.AddRetired(7, 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(t.Complete(7));
}

// ------------------------------- TupleSlot -----------------------------------

TEST(TupleSlotTest, LayoutAccessorsDoNotOverlap) {
  constexpr size_t kDims = 4, kWords = 4;
  TuplePool pool(16, SlotStride(kDims, kWords));
  auto* slot = static_cast<TupleSlot*>(pool.Acquire());
  slot->fact_row = reinterpret_cast<const uint8_t*>(0x1234);
  slot->epoch = 99;
  slot->kind = SlotKind::kData;
  for (size_t d = 0; d < kDims; ++d) {
    slot->dim_rows()[d] = reinterpret_cast<const uint8_t*>(0x1000 + d);
  }
  uint64_t* bits = slot->bits(kDims);
  bitops::Zero(bits, kWords);
  bitops::SetBit(bits, 0);
  bitops::SetBit(bits, 255);

  // Nothing clobbered anything else.
  EXPECT_EQ(slot->fact_row, reinterpret_cast<const uint8_t*>(0x1234));
  EXPECT_EQ(slot->epoch, 99u);
  for (size_t d = 0; d < kDims; ++d) {
    EXPECT_EQ(slot->dim_rows()[d],
              reinterpret_cast<const uint8_t*>(0x1000 + d));
  }
  EXPECT_TRUE(bitops::TestBit(bits, 0));
  EXPECT_TRUE(bitops::TestBit(bits, 255));
  EXPECT_EQ(bitops::PopCount(bits, kWords), 2u);
  // The bits region ends exactly at the stride.
  const uint8_t* end = reinterpret_cast<const uint8_t*>(bits + kWords);
  EXPECT_LE(end, reinterpret_cast<const uint8_t*>(slot) +
                     SlotStride(kDims, kWords));
  pool.Release(slot);
}

/// Stride parameterized over (dims, words) combinations.
class SlotStrideTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SlotStrideTest, StrideCoversAllFields) {
  const auto [dims, words] = GetParam();
  EXPECT_EQ(SlotStride(dims, words),
            sizeof(TupleSlot) + dims * sizeof(const uint8_t*) +
                words * sizeof(uint64_t));
  EXPECT_EQ(SlotStride(dims, words) % 8, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, SlotStrideTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{4, 4},
                      std::pair<size_t, size_t>{8, 16}));

// ----------------------------- FilterOrderRef --------------------------------

TEST(FilterOrderTest, PublishIsVisibleToReaders) {
  Filter f1, f2;
  f1.dim_index = 0;
  f2.dim_index = 1;
  FilterOrderRef ref(std::make_shared<const FilterOrder>(
      FilterOrder{&f1, &f2}));
  EXPECT_EQ((*ref.Acquire())[0], &f1);
  ref.Publish(std::make_shared<const FilterOrder>(FilterOrder{&f2, &f1}));
  EXPECT_EQ((*ref.Acquire())[0], &f2);
}

TEST(FilterOrderTest, DropRateAndDecay) {
  Filter f;
  f.tuples_in.store(1000);
  f.tuples_dropped.store(250);
  EXPECT_DOUBLE_EQ(f.DropRate(), 0.25);
  f.DecayStats();
  EXPECT_EQ(f.tuples_in.load(), 500u);
  EXPECT_EQ(f.tuples_dropped.load(), 125u);
  Filter empty;
  EXPECT_DOUBLE_EQ(empty.DropRate(), 0.0);
}

TEST(FilterOrderTest, ConcurrentAcquirePublish) {
  Filter f1, f2, f3;
  FilterOrderRef ref(
      std::make_shared<const FilterOrder>(FilterOrder{&f1, &f2, &f3}));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto order = ref.Acquire();
        ASSERT_EQ(order->size(), 3u);
        size_t sum = 0;
        for (const Filter* f : *order) sum += f->dim_index;
        ASSERT_EQ(sum, f1.dim_index + f2.dim_index + f3.dim_index);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    FilterOrder next = {&f3, &f1, &f2};
    if (i % 2 == 0) std::swap(next[0], next[2]);
    ref.Publish(std::make_shared<const FilterOrder>(std::move(next)));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace cjoin
