// Unit tests for the query-at-a-time baseline engine, cross-checked
// against the independent reference evaluator.

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/qat_engine.h"
#include "common/clock.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

StarQuerySpec CountByRegion(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.group_by.push_back(ColumnSource::Dim(1, 1));  // s_region
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kSum, ColumnSource::Fact(3), nullptr, "amt"});
  return NormalizeSpec(std::move(spec)).value();
}

TEST(QatEngineTest, MatchesReferenceOnTinyStar) {
  auto ts = MakeTinyStar(2000);
  StarQuerySpec spec = CountByRegion(*ts);
  QatStats stats;
  auto rs = ExecuteStarQuery(spec, QatOptions{}, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ResultSet ref = ReferenceEvaluate(spec);
  EXPECT_TRUE(rs->SameContents(ref))
      << "got:\n" << rs->ToString() << "want:\n" << ref.ToString();
  EXPECT_EQ(stats.fact_rows_scanned, 2000u);
  EXPECT_EQ(stats.fact_rows_output, 2000u);  // TRUE predicates only
}

TEST(QatEngineTest, DimensionPredicateFilters) {
  auto ts = MakeTinyStar(2000);
  StarQuerySpec spec = CountByRegion(*ts);
  const Schema& ss = ts->store->schema();
  spec.dim_predicates.clear();
  spec.dim_predicates.push_back(DimensionPredicate{
      1, MakeCompare(CmpOp::kEq, MakeColumnRef(ss, "s_region").value(),
                     MakeLiteral(Value("R1")))});
  spec = NormalizeSpec(std::move(spec)).value();
  QatStats stats;
  auto rs = ExecuteStarQuery(spec, QatOptions{}, &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->SameContents(ReferenceEvaluate(spec)));
  EXPECT_LT(stats.fact_rows_output, stats.fact_rows_scanned);
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "R1");
}

TEST(QatEngineTest, FactPredicateApplied) {
  auto ts = MakeTinyStar(2000);
  StarQuerySpec spec = CountByRegion(*ts);
  const Schema& fs = ts->sales->schema();
  spec.fact_predicate =
      MakeCompare(CmpOp::kGe, MakeColumnRef(fs, "f_qty").value(),
                  MakeLiteral(Value(8)));
  spec = NormalizeSpec(std::move(spec)).value();
  auto rs = ExecuteStarQuery(spec, QatOptions{});
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->SameContents(ReferenceEvaluate(spec)));
}

TEST(QatEngineTest, PartitionPruning) {
  auto ts = MakeTinyStar(3000, 20, 6, /*fact_partitions=*/3);
  StarQuerySpec spec = CountByRegion(*ts);
  spec.partitions = {0, 2};
  spec = NormalizeSpec(std::move(spec)).value();
  QatStats stats;
  auto rs = ExecuteStarQuery(spec, QatOptions{}, &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->SameContents(ReferenceEvaluate(spec)));
  EXPECT_EQ(stats.fact_rows_scanned,
            ts->sales->PartitionRows(0) + ts->sales->PartitionRows(2));
}

TEST(QatEngineTest, SnapshotIsolation) {
  auto ts = MakeTinyStar(100);
  // Delete the first 10 fact rows as of snapshot 5; append 10 rows at
  // snapshot 8.
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ts->sales->MarkDeleted(RowId{0, i}, 5).ok());
  }
  const Schema& fs = ts->sales->schema();
  for (int i = 0; i < 10; ++i) {
    uint8_t* row = ts->sales->AppendUninitialized(0, /*xmin=*/8);
    fs.SetInt32(row, 0, 1);
    fs.SetInt32(row, 1, 1);
    fs.SetInt32(row, 2, 1);
    fs.SetInt32(row, 3, 100);
  }

  StarQuerySpec spec = CountByRegion(*ts);
  auto count_at = [&](SnapshotId snap) {
    StarQuerySpec s2 = spec;
    s2.snapshot = snap;
    auto rs = ExecuteStarQuery(s2, QatOptions{});
    EXPECT_TRUE(rs.ok());
    int64_t n = 0;
    for (const auto& row : rs->rows) n += row[1].AsInt();
    EXPECT_TRUE(rs->SameContents(ReferenceEvaluate(s2)));
    return n;
  };
  EXPECT_EQ(count_at(4), 100);        // before the delete
  EXPECT_EQ(count_at(5), 90);         // delete visible
  EXPECT_EQ(count_at(8), 100);        // appended rows visible
  EXPECT_EQ(count_at(kReadLatestSnapshot), 100);
}

TEST(QatEngineTest, PerTupleOverheadSlowsExecution) {
  auto ts = MakeTinyStar(20000);
  StarQuerySpec spec = CountByRegion(*ts);
  QatOptions fast, slow;
  slow.per_tuple_overhead = 256;
  // Wall-clock comparison: take each variant's best of three so a
  // descheduling blip (parallel ctest under TSan) cannot invert it.
  auto best_of = [&](const QatOptions& opts) {
    double best = 1e9;
    for (int i = 0; i < 3; ++i) {
      Stopwatch w;
      EXPECT_TRUE(ExecuteStarQuery(spec, opts).ok());
      best = std::min(best, w.ElapsedSeconds());
    }
    return best;
  };
  EXPECT_GT(best_of(slow), best_of(fast));
}

TEST(QatEngineTest, RejectsInvalidSpec) {
  auto ts = MakeTinyStar(10);
  StarQuerySpec bad;
  bad.schema = ts->star.get();
  bad.dim_predicates.push_back(DimensionPredicate{9, MakeTrue()});
  EXPECT_FALSE(ExecuteStarQuery(bad, QatOptions{}).ok());
}

TEST(QatEngineTest, SsbCanonicalQueriesMatchReference) {
  ssb::GenOptions opts;
  opts.scale_factor = 0.003;
  auto db = ssb::Generate(opts).value();
  ssb::SsbQueries queries(*db);
  for (const std::string& name : ssb::SsbQueries::AllNames()) {
    StarQuerySpec spec = queries.Canonical(name).value();
    auto rs = ExecuteStarQuery(spec, QatOptions{});
    ASSERT_TRUE(rs.ok()) << name;
    ResultSet ref = ReferenceEvaluate(spec);
    EXPECT_TRUE(rs->SameContents(ref))
        << name << "\ngot:\n" << rs->ToString() << "want:\n"
        << ref.ToString();
  }
}

}  // namespace
}  // namespace cjoin
