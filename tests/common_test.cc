// Unit tests for the common runtime: Status/Result, bit-vector operations,
// bounded queues, the bitmap tuple pool, hashing, and the PRNG.

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/tuple_pool.h"

namespace cjoin {
namespace {

// --------------------------- Status / Result -------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIOError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  CJOIN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

// ------------------------------ BitVector ----------------------------------

TEST(BitVectorTest, SetTestClear) {
  BitVector bv(100);
  EXPECT_TRUE(bv.none());
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(99));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Test(63));
  EXPECT_EQ(bv.count(), 3u);
}

TEST(BitVectorTest, SetAllRespectsWidth) {
  BitVector bv(70);
  bv.SetAll();
  EXPECT_EQ(bv.count(), 70u);
  BitVector bv64(64);
  bv64.SetAll();
  EXPECT_EQ(bv64.count(), 64u);
}

TEST(BitVectorTest, CopyAndMoveSemantics) {
  BitVector a(300);  // beyond inline storage
  a.Set(7);
  a.Set(299);
  BitVector b = a;
  EXPECT_EQ(a, b);
  BitVector c = std::move(a);
  EXPECT_EQ(c, b);
  EXPECT_TRUE(c.Test(299));
  b.Clear(7);
  EXPECT_NE(c, b);
}

TEST(BitVectorTest, ToStringOrdersBitZeroFirst) {
  BitVector bv(4);
  bv.Set(1);
  EXPECT_EQ(bv.ToString(), "0100");
}

/// Property sweep over widths crossing word boundaries.
class BitVectorWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorWidthTest, CountMatchesSetBits) {
  const size_t width = GetParam();
  BitVector bv(width);
  Rng rng(width);
  std::set<size_t> expected;
  for (int i = 0; i < 200; ++i) {
    const size_t bit = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(width) - 1));
    if (rng.Bernoulli(0.5)) {
      bv.Set(bit);
      expected.insert(bit);
    } else {
      bv.Clear(bit);
      expected.erase(bit);
    }
  }
  EXPECT_EQ(bv.count(), expected.size());
  for (size_t b = 0; b < width; ++b) {
    EXPECT_EQ(bv.Test(b), expected.count(b) > 0) << "bit " << b;
  }
  // ForEachSetBit visits exactly the expected set, in order.
  std::vector<size_t> visited;
  bitops::ForEachSetBit(bv.words(), bv.size_words(),
                        [&](size_t b) { visited.push_back(b); });
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
  EXPECT_EQ(std::set<size_t>(visited.begin(), visited.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWidthTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           255, 256, 257, 1000));

TEST(BitopsTest, AndIntoDetectsZero) {
  uint64_t a[2] = {0b1010, 0};
  uint64_t b[2] = {0b0110, 0};
  EXPECT_TRUE(bitops::AndInto(a, b, 2));
  EXPECT_EQ(a[0], 0b0010u);
  uint64_t c[2] = {0b0100, 0};
  EXPECT_FALSE(bitops::AndInto(a, c, 2));
  EXPECT_TRUE(bitops::IsZero(a, 2));
}

TEST(BitopsTest, AndNotIsZeroIsSubsetTest) {
  uint64_t a[1] = {0b0011};
  uint64_t superset[1] = {0b0111};
  uint64_t disjoint[1] = {0b1100};
  EXPECT_TRUE(bitops::AndNotIsZero(a, superset, 1));
  EXPECT_FALSE(bitops::AndNotIsZero(a, disjoint, 1));
}

TEST(BitopsTest, AtomicBitOpsVisibleAcrossThreads) {
  constexpr size_t kBits = 256;
  uint64_t words[4] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&words, t] {
      for (size_t b = static_cast<size_t>(t); b < kBits; b += 4) {
        bitops::AtomicSetBit(words, b);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bitops::PopCount(words, 4), kBits);
}

// ------------------------------- Queue -------------------------------------

TEST(QueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(QueueTest, CloseDrainsThenEmpty) {
  BoundedQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(QueueTest, BatchTransfer) {
  BoundedQueue<int> q(4);  // smaller than the batch: forces chunking
  std::vector<int> in = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::thread consumer([&q] {
    std::vector<int> got;
    while (got.size() < 9) {
      q.PopBatch(got, 3);
    }
    EXPECT_EQ(got.size(), 9u);
    for (int i = 0; i < 9; ++i) EXPECT_EQ(got[i], i + 1);
  });
  EXPECT_EQ(q.PushBatch(in), 9u);
  consumer.join();
}

TEST(QueueTest, TryPopNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(7);
  EXPECT_EQ(q.TryPop().value(), 7);
}

TEST(QueueTest, PopWithTimeoutTimesOut) {
  BoundedQueue<int> q(2);
  auto v = q.PopWithTimeout(std::chrono::milliseconds(5));
  EXPECT_FALSE(v.has_value());
  q.Push(1);
  EXPECT_EQ(q.PopWithTimeout(std::chrono::milliseconds(5)).value(), 1);
}

TEST(QueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2500;
  BoundedQueue<int> q(64);
  std::atomic<int64_t> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : threads) t.join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<int64_t>(total) * (total - 1) / 2);
}

TEST(QueueTest, HysteresisStillDeliversLastItems) {
  // With a deep wake threshold, a lone final item must still be consumable
  // (timed waits make the watermark a hint, not a correctness condition).
  BoundedQueue<int>::Options opts;
  opts.capacity = 64;
  opts.consumer_wake_depth = 32;
  BoundedQueue<int> q(opts);
  std::thread consumer([&q] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Push(99);  // below the watermark: consumer wakes via timed recheck
  consumer.join();
}

// ----------------------------- TuplePool ------------------------------------

TEST(TuplePoolTest, AcquireReleaseRoundtrip) {
  TuplePool pool(64, 48);
  void* a = pool.Acquire();
  void* b = pool.Acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_TRUE(pool.Owns(a));
  EXPECT_EQ(pool.InUse(), 2u);
  pool.Release(a);
  pool.Release(b);
  EXPECT_EQ(pool.InUse(), 0u);
}

TEST(TuplePoolTest, StrideIsAligned) {
  TuplePool pool(8, 13);
  EXPECT_EQ(pool.stride() % 8, 0u);
  void* p = pool.Acquire();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  pool.Release(p);
}

TEST(TuplePoolTest, ExhaustionHandsOutAllSlots) {
  constexpr size_t kCap = 100;
  TuplePool pool(kCap, 16);
  std::set<void*> slots;
  for (size_t i = 0; i < kCap; ++i) {
    void* p = pool.TryAcquire();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(slots.insert(p).second) << "duplicate slot";
  }
  EXPECT_EQ(pool.TryAcquire(), nullptr);
  for (void* p : slots) pool.Release(p);
  EXPECT_EQ(pool.InUse(), 0u);
}

TEST(TuplePoolTest, BlockedAcquireWakesOnRelease) {
  TuplePool pool(1, 16);
  void* held = pool.Acquire();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    void* p = pool.Acquire();
    got.store(true);
    pool.Release(p);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  pool.Release(held);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(TuplePoolTest, ConcurrentChurn) {
  constexpr size_t kCap = 128;
  TuplePool pool(kCap, 32);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool] {
      Rng rng(std::hash<std::thread::id>{}(std::this_thread::get_id()));
      for (int i = 0; i < 5000; ++i) {
        void* p = pool.Acquire();
        ASSERT_NE(p, nullptr);
        // Touch the slot to catch aliasing.
        *static_cast<uint64_t*>(p) = reinterpret_cast<uint64_t>(p);
        ASSERT_EQ(*static_cast<uint64_t*>(p), reinterpret_cast<uint64_t>(p));
        pool.Release(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.InUse(), 0u);
}

// ------------------------------ Hash / Rng ----------------------------------

TEST(HashTest, Mix64Distributes) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, HashBytesMatchesForEqualInput) {
  const std::string a = "hello world";
  EXPECT_EQ(HashBytes(a.data(), a.size()), HashString(a));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RunningStatTest, MeanAndStddev) {
  RunningStat st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(v);
  EXPECT_EQ(st.count(), 8);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

}  // namespace
}  // namespace cjoin
