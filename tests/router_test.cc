// Unit tests for the §3.2.3 cost-based Router: selectivity estimation
// from the catalog's dimension tables and the CJOIN/baseline choice as a
// function of selectivity and operator load.

#include <gtest/gtest.h>

#include "catalog/query_spec.h"
#include "engine/router.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(50000); }

  /// A query referencing `product` with p_price >= `min_price` (TinyStar
  /// prices are p*100 for p in [1, 20], uniformly hit by fact rows).
  StarQuerySpec PriceQuery(int min_price) {
    StarQuerySpec spec;
    spec.schema = ts_->star.get();
    const Schema& ps = ts_->product->schema();
    spec.dim_predicates.push_back(DimensionPredicate{
        0, MakeCompare(CmpOp::kGe, MakeColumnRef(ps, "p_price").value(),
                       MakeLiteral(Value(min_price)))});
    spec.aggregates.push_back(
        AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
    return *NormalizeSpec(std::move(spec));
  }

  StarQuerySpec CountStar() {
    StarQuerySpec spec;
    spec.schema = ts_->star.get();
    spec.aggregates.push_back(
        AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
    return *NormalizeSpec(std::move(spec));
  }

  std::unique_ptr<TinyStar> ts_;
  Router router_;
};

TEST_F(RouterTest, EstimatesSelectivityFromDimensionPredicates) {
  // p_price >= 2000 matches exactly 1 of 20 products.
  StarQuerySpec spec = PriceQuery(2000);
  uint64_t build_rows = 0;
  const double sel = router_.EstimateSelectivity(spec, &build_rows);
  EXPECT_NEAR(sel, 0.05, 1e-9);
  EXPECT_EQ(build_rows, 1u);

  // TRUE predicates are free and fully unselective.
  StarQuerySpec all = CountStar();
  EXPECT_NEAR(router_.EstimateSelectivity(all), 1.0, 1e-9);
}

TEST_F(RouterTest, MultiplePredicatesMultiply) {
  StarQuerySpec spec = PriceQuery(1100);  // 10 of 20 products: 0.5
  const Schema& ss = ts_->store->schema();
  spec.dim_predicates.push_back(DimensionPredicate{
      1, MakeCompare(CmpOp::kEq, MakeColumnRef(ss, "s_region").value(),
                     MakeLiteral(Value("R1")))});
  spec = *NormalizeSpec(std::move(spec));
  // Stores 1..6 have region R<s%3>: R1 matches stores 1 and 4 → 2/6.
  const double sel = router_.EstimateSelectivity(spec);
  EXPECT_NEAR(sel, 0.5 * (2.0 / 6.0), 1e-9);
}

// Regression: the estimator must stride-sample under the query's
// snapshot. Deleted dimension rows used to pass the trivial-predicate
// path (frac = 1.0 with no sampling) and inflate dim_build_rows, so
// post-GC estimates skewed routes toward stale cardinalities.
TEST_F(RouterTest, EstimatorExcludesDeletedDimensionRowsUnderSnapshot) {
  // Delete the matching half of `product` (p >= 11, i.e. p_price >= 1100)
  // at snapshot 2.
  for (uint64_t i = 10; i < 20; ++i) {
    ASSERT_TRUE(ts_->product->MarkDeleted(RowId{0, i}, 2).ok());
  }

  // A reader at the pre-delete snapshot still sees the old estimate.
  StarQuerySpec old_snap = PriceQuery(1100);
  old_snap.snapshot = 1;
  uint64_t build = 0;
  EXPECT_NEAR(router_.EstimateSelectivity(old_snap, &build), 0.5, 1e-9);
  EXPECT_EQ(build, 10u);

  // A reader at the latest snapshot finds no matching visible row.
  StarQuerySpec fresh = PriceQuery(1100);
  EXPECT_NEAR(router_.EstimateSelectivity(fresh, &build), 0.0, 1e-9);
  EXPECT_EQ(build, 0u);

  // Trivial (TRUE) predicates price only the visible rows too: half the
  // dimension is gone, so the join passes half the fact rows and the
  // baseline build side halves.
  StarQuerySpec trivial;
  trivial.schema = ts_->star.get();
  trivial.dim_predicates.push_back(DimensionPredicate{0, MakeTrue()});
  trivial.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  trivial = *NormalizeSpec(std::move(trivial));
  EXPECT_NEAR(router_.EstimateSelectivity(trivial, &build), 0.5, 1e-9);
  EXPECT_EQ(build, 10u);
}

// Regression: sub-sample-size dimensions must not hit stride edge cases —
// 0-row dimensions are skipped, 1- and 2-row ones are fully scanned with
// a stride clamped to [1, total].
TEST(RouterSmallDimTest, ZeroOneAndTwoRowDimensions) {
  Router router;
  for (int num_stores : {1, 2}) {
    auto ts = MakeTinyStar(100, /*num_products=*/1, num_stores);
    StarQuerySpec spec;
    spec.schema = ts->star.get();
    const Schema& ss = ts->store->schema();
    // s_region = "R1" matches store 1 only (region R<s%3>).
    spec.dim_predicates.push_back(DimensionPredicate{
        1, MakeCompare(CmpOp::kEq, MakeColumnRef(ss, "s_region").value(),
                       MakeLiteral(Value("R1")))});
    spec.aggregates.push_back(
        AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
    spec = *NormalizeSpec(std::move(spec));
    uint64_t build = 0;
    const double sel = router.EstimateSelectivity(spec, &build);
    EXPECT_NEAR(sel, 1.0 / num_stores, 1e-9) << num_stores << " stores";
    EXPECT_EQ(build, 1u);
  }

  // A 0-row dimension contributes nothing (and must not divide by zero).
  auto ts = MakeTinyStar(100, /*num_products=*/1, /*num_stores=*/2);
  Table empty("empty", ts->store->schema());
  auto star = StarSchema::Make(
      ts->sales.get(), std::vector<StarSchema::DimensionByName>{
                           {ts->product.get(), "f_pid", "p_id"},
                           {&empty, "f_sid", "s_id"},
                       });
  ASSERT_TRUE(star.ok());
  StarSchema star_schema = std::move(*star);
  StarQuerySpec spec;
  spec.schema = &star_schema;
  spec.dim_predicates.push_back(DimensionPredicate{1, MakeTrue()});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec = *NormalizeSpec(std::move(spec));
  uint64_t build = 123;
  EXPECT_NEAR(router.EstimateSelectivity(spec, &build), 1.0, 1e-9);
  EXPECT_EQ(build, 0u);
}

TEST_F(RouterTest, SelectiveIdleQueryRoutesToBaseline) {
  RouteDecision d = router_.Decide(PriceQuery(2000), /*inflight=*/0);
  EXPECT_EQ(d.choice, RouteChoice::kBaseline);
  EXPECT_FALSE(d.forced);
  EXPECT_EQ(d.inflight, 0u);
  EXPECT_LT(d.baseline_cost, d.cjoin_cost);
  EXPECT_EQ(d.fact_rows, 50000u);
}

TEST_F(RouterTest, SelectiveQueryRoutesToCJoinUnderLoad) {
  RouteDecision d = router_.Decide(PriceQuery(2000), /*inflight=*/4);
  EXPECT_EQ(d.choice, RouteChoice::kCJoin);
  EXPECT_LT(d.cjoin_cost, d.baseline_cost);
  EXPECT_EQ(d.inflight, 4u);
}

TEST_F(RouterTest, UnselectiveQueryRoutesToCJoinEvenWhenIdle) {
  RouteDecision d = router_.Decide(CountStar(), /*inflight=*/0);
  EXPECT_EQ(d.choice, RouteChoice::kCJoin);
}

TEST_F(RouterTest, ShardsDivideTheSharedScanCost) {
  // Each of N pipeline instances laps only ~1/N of the fact table, so the
  // CJOIN cost shrinks with the shard count (same query, same load).
  const RouteDecision d1 = router_.Decide(PriceQuery(2000), RouteInputs{});
  RouteInputs four;
  four.shards = 4;
  const RouteDecision d4 = router_.Decide(PriceQuery(2000), four);
  EXPECT_EQ(d4.shards, 4u);
  EXPECT_LT(d4.cjoin_cost, d1.cjoin_cost);
  // At 4 shards the shared pipeline beats the private plan even when the
  // operator is idle and the query is selective.
  EXPECT_EQ(d1.choice, RouteChoice::kBaseline);
  EXPECT_EQ(d4.choice, RouteChoice::kCJoin);
}

TEST_F(RouterTest, BaselineQueueDepthPenalizesBaselineRoute) {
  // A lone selective query prefers the private plan on an idle pool...
  const RouteDecision idle = router_.Decide(PriceQuery(2000), 0);
  ASSERT_EQ(idle.choice, RouteChoice::kBaseline);
  // ...but a deep baseline backlog (the static part of the ROADMAP's
  // router-feedback item) inflates the wait and flips the choice.
  RouteInputs busy;
  busy.baseline_queued = 64;
  busy.baseline_workers = 2;
  const RouteDecision backlogged = router_.Decide(PriceQuery(2000), busy);
  EXPECT_EQ(backlogged.baseline_queued, 64u);
  EXPECT_GT(backlogged.baseline_cost, idle.baseline_cost);
  EXPECT_EQ(backlogged.choice, RouteChoice::kCJoin);
}

TEST_F(RouterTest, DecisionRendersForExplain) {
  RouteDecision d = router_.Decide(PriceQuery(2000), 0);
  const std::string s = d.ToString();
  EXPECT_NE(s.find("route: baseline"), std::string::npos);
  EXPECT_NE(s.find("selectivity"), std::string::npos);
  EXPECT_NE(s.find("cost(cjoin)"), std::string::npos);
}

TEST_F(RouterTest, RouteNames) {
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kAuto), "auto");
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kCJoin), "cjoin");
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kBaseline), "baseline");
  EXPECT_STREQ(RouteChoiceName(RouteChoice::kCJoin), "CJOIN");
  EXPECT_STREQ(RouteChoiceName(RouteChoice::kBaseline), "baseline");
}

}  // namespace
}  // namespace cjoin
