// Shared test fixtures and an independent reference evaluator.

#ifndef CJOIN_TESTS_TEST_UTIL_H_
#define CJOIN_TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/query_spec.h"
#include "catalog/star_schema.h"
#include "exec/aggregation.h"
#include "exec/result_set.h"
#include "storage/table.h"

namespace cjoin {
namespace testing {

/// A tiny hand-built star schema: fact "sales" with dimensions "product"
/// and "store", small enough that expected results are hand-checkable.
///
///   product(p_id INT32, p_cat CHAR(8), p_price INT32)   x num_products
///   store(s_id INT32, s_region CHAR(8))                 x num_stores
///   sales(f_pid INT32, f_sid INT32, f_qty INT32, f_amount INT32)
struct TinyStar {
  std::unique_ptr<Table> product;
  std::unique_ptr<Table> store;
  std::unique_ptr<Table> sales;
  std::unique_ptr<StarSchema> star;
};

/// Builds the tiny star with deterministic contents.
/// Fact row i: pid = i % num_products + 1, sid = i % num_stores + 1,
/// qty = i % 10 + 1, amount = (i % 100) * 10.
/// Product p: cat = "cat<p%4>", price = p * 100.
/// Store s: region = "R<s%3>".
std::unique_ptr<TinyStar> MakeTinyStar(uint64_t num_facts = 1000,
                                       int num_products = 20,
                                       int num_stores = 6,
                                       uint32_t fact_partitions = 1);

/// Independent reference evaluation of a normalized star query: full
/// nested scans with std::map join indexes, feeding the *sort-based*
/// aggregator (a different code path than the pipeline's hash
/// aggregation). Ignores SimDisk; honors snapshots/partitions/predicates.
ResultSet ReferenceEvaluate(const StarQuerySpec& spec);

}  // namespace testing
}  // namespace cjoin

#endif  // CJOIN_TESTS_TEST_UTIL_H_
