// End-to-end tests of the CJOIN operator: correctness against the
// reference evaluator, concurrent query admission, the filtering
// invariant, snapshots, partitions with early termination, pipeline
// configurations, adaptive ordering, and shutdown behaviour.

#include <algorithm>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "baseline/qat_engine.h"
#include "cjoin/cjoin_operator.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

CJoinOperator::Options SmallOptions() {
  CJoinOperator::Options o;
  o.max_concurrent_queries = 64;
  o.num_worker_threads = 2;
  o.batch_size = 32;
  o.queue_capacity = 16;
  o.pool_capacity = 4096;
  o.scan_run_rows = 64;
  return o;
}

StarQuerySpec CountByRegion(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.group_by.push_back(ColumnSource::Dim(1, 1));  // s_region
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kSum, ColumnSource::Fact(3), nullptr, "amt"});
  spec.label = "count_by_region";
  return spec;
}

StarQuerySpec RegionFiltered(const TinyStar& ts, const std::string& region) {
  StarQuerySpec spec = CountByRegion(ts);
  const Schema& ss = ts.store->schema();
  spec.dim_predicates.push_back(DimensionPredicate{
      1, MakeCompare(CmpOp::kEq, MakeColumnRef(ss, "s_region").value(),
                     MakeLiteral(Value(region)))});
  spec.label = "region_" + region;
  return spec;
}

TEST(CJoinOperatorTest, SingleQueryMatchesReference) {
  auto ts = MakeTinyStar(2000);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());

  auto handle = op.Submit(CountByRegion(*ts));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto rs = (*handle)->Wait();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  ResultSet ref = ReferenceEvaluate(
      NormalizeSpec(CountByRegion(*ts)).value());
  EXPECT_TRUE(rs->SameContents(ref))
      << "got:\n" << rs->ToString() << "want:\n" << ref.ToString();
  EXPECT_EQ(rs->tuples_consumed, 2000u);
  op.Stop();
}

TEST(CJoinOperatorTest, CompletionObserverReleasedAfterDelivery) {
  // Regression test (found by the ASan/LeakSanitizer CI job): the
  // engine's deferred-admission observer captures an owning reference
  // back to the ticket state whose handle owns this runtime, so a
  // retained observer closes a shared_ptr cycle
  // (DeferredQuery -> QueryHandle -> QueryRuntime -> observer ->
  // DeferredQuery) and leaks every wait-queued CJOIN query. Deliver()
  // must destroy the observer — and everything it captured — after its
  // single invocation, even while the handle is still alive.
  auto ts = MakeTinyStar(500);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());

  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> observed = token;
  CJoinOperator::SubmitOptions so;
  so.completion_observer = [token = std::move(token)](
                               const Result<ResultSet>& result) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*token, 7);
  };
  auto handle = op.Submit(CountByRegion(*ts), std::move(so));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ASSERT_TRUE((*handle)->Wait().ok());

  // The observer ran before the promise resolved, so by the time Wait()
  // returns its captured state must already be gone.
  EXPECT_TRUE(observed.expired())
      << "completion_observer (and its captures) retained after delivery";
  op.Stop();
}

TEST(CJoinOperatorTest, QueryWithDimensionPredicate) {
  auto ts = MakeTinyStar(3000);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());
  StarQuerySpec spec = RegionFiltered(*ts, "R2");
  auto handle = op.Submit(spec);
  ASSERT_TRUE(handle.ok());
  auto rs = (*handle)->Wait();
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(spec)).value())));
  op.Stop();
}

TEST(CJoinOperatorTest, FactPredicateAndExpressionAggregate) {
  auto ts = MakeTinyStar(2500);
  const Schema& fs = ts->sales->schema();
  StarQuerySpec spec;
  spec.schema = ts->star.get();
  spec.fact_predicate =
      MakeCompare(CmpOp::kLt, MakeColumnRef(fs, "f_qty").value(),
                  MakeLiteral(Value(5)));
  spec.aggregates.push_back(AggregateSpec{
      AggFn::kSum, std::nullopt,
      MakeArith(ArithOp::kMul, MakeColumnRef(fs, "f_qty").value(),
                MakeColumnRef(fs, "f_amount").value()),
      "weighted"});
  spec.label = "fact_pred";

  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());
  auto handle = op.Submit(spec);
  ASSERT_TRUE(handle.ok());
  auto rs = (*handle)->Wait();
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(spec)).value())));
  op.Stop();
}

TEST(CJoinOperatorTest, ManyConcurrentQueriesAllCorrect) {
  auto ts = MakeTinyStar(4000);
  CJoinOperator::Options opts = SmallOptions();
  opts.num_worker_threads = 3;
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  // A mix of query shapes submitted together.
  std::vector<StarQuerySpec> specs;
  specs.push_back(CountByRegion(*ts));
  specs.push_back(RegionFiltered(*ts, "R0"));
  specs.push_back(RegionFiltered(*ts, "R1"));
  specs.push_back(RegionFiltered(*ts, "R2"));
  const Schema& ps = ts->product->schema();
  for (int cat = 0; cat < 4; ++cat) {
    StarQuerySpec spec = CountByRegion(*ts);
    spec.dim_predicates.push_back(DimensionPredicate{
        0,
        MakeCompare(CmpOp::kEq, MakeColumnRef(ps, "p_cat").value(),
                    MakeLiteral(Value("cat" + std::to_string(cat))))});
    spec.label = "cat" + std::to_string(cat);
    specs.push_back(std::move(spec));
  }

  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (const StarQuerySpec& spec : specs) {
    auto h = op.Submit(spec);
    ASSERT_TRUE(h.ok());
    handles.push_back(std::move(*h));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    auto rs = handles[i]->Wait();
    ASSERT_TRUE(rs.ok()) << specs[i].label;
    ResultSet ref =
        ReferenceEvaluate(NormalizeSpec(StarQuerySpec(specs[i])).value());
    EXPECT_TRUE(rs->SameContents(ref))
        << specs[i].label << "\ngot:\n" << rs->ToString() << "want:\n"
        << ref.ToString();
  }
  const CJoinOperator::Stats stats = op.GetStats();
  EXPECT_EQ(stats.queries_completed, specs.size());
  EXPECT_EQ(stats.active_queries, 0u);
  op.Stop();
}

TEST(CJoinOperatorTest, StaggeredAdmissionSharesTheScan) {
  // Queries submitted while others are mid-flight must still see exactly
  // one full lap each.
  auto ts = MakeTinyStar(6000);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());

  auto h1 = op.Submit(CountByRegion(*ts));
  ASSERT_TRUE(h1.ok());
  // Let the first query make progress before the others arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  auto h2 = op.Submit(RegionFiltered(*ts, "R1"));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto h3 = op.Submit(RegionFiltered(*ts, "R2"));
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(h3.ok());

  for (auto* h : {&*h1, &*h2, &*h3}) {
    auto rs = (*h)->Wait();
    ASSERT_TRUE(rs.ok());
  }
  // Each query consumed exactly the full fact table once.
  auto rs1 = ReferenceEvaluate(NormalizeSpec(CountByRegion(*ts)).value());
  EXPECT_EQ(rs1.tuples_consumed, 6000u);
  op.Stop();
}

TEST(CJoinOperatorTest, SequentialReuseOfQueryIds) {
  // More queries than maxConc, sequentially: ids get reused and the
  // bit-vector invariant must survive reuse (DESIGN.md §5).
  auto ts = MakeTinyStar(500);
  CJoinOperator::Options opts = SmallOptions();
  opts.max_concurrent_queries = 2;  // forces heavy id reuse
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  for (int round = 0; round < 8; ++round) {
    // Alternate a referencing and a non-referencing query per dimension.
    StarQuerySpec spec = (round % 2 == 0)
                             ? RegionFiltered(*ts, "R" + std::to_string(round % 3))
                             : CountByRegion(*ts);
    auto h = op.Submit(spec);
    ASSERT_TRUE(h.ok());
    auto rs = (*h)->Wait();
    ASSERT_TRUE(rs.ok());
    EXPECT_TRUE(rs->SameContents(
        ReferenceEvaluate(NormalizeSpec(std::move(spec)).value())))
        << "round " << round;
  }
  op.Stop();
}

TEST(CJoinOperatorTest, SnapshotIsolationAcrossQueries) {
  auto ts = MakeTinyStar(600);
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(ts->sales->MarkDeleted(RowId{0, i}, 5).ok());
  }
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());

  StarQuerySpec old_snap = CountByRegion(*ts);
  old_snap.snapshot = 4;
  StarQuerySpec new_snap = CountByRegion(*ts);
  new_snap.snapshot = 5;

  auto h_old = op.Submit(old_snap);
  auto h_new = op.Submit(new_snap);
  ASSERT_TRUE(h_old.ok());
  ASSERT_TRUE(h_new.ok());
  auto rs_old = (*h_old)->Wait();
  auto rs_new = (*h_new)->Wait();
  ASSERT_TRUE(rs_old.ok());
  ASSERT_TRUE(rs_new.ok());
  EXPECT_EQ(rs_old->tuples_consumed, 600u);
  EXPECT_EQ(rs_new->tuples_consumed, 550u);
  EXPECT_TRUE(rs_old->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(old_snap)).value())));
  EXPECT_TRUE(rs_new->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(new_snap)).value())));
  op.Stop();
}

TEST(CJoinOperatorTest, PartitionLimitedQueriesTerminateEarly) {
  auto ts = MakeTinyStar(3000, 20, 6, /*fact_partitions=*/4);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());

  StarQuerySpec all = CountByRegion(*ts);
  StarQuerySpec sub = CountByRegion(*ts);
  sub.partitions = {1, 3};
  sub.label = "partitions_1_3";

  auto h_all = op.Submit(all);
  auto h_sub = op.Submit(sub);
  ASSERT_TRUE(h_all.ok());
  ASSERT_TRUE(h_sub.ok());
  auto rs_all = (*h_all)->Wait();
  auto rs_sub = (*h_sub)->Wait();
  ASSERT_TRUE(rs_all.ok());
  ASSERT_TRUE(rs_sub.ok());
  EXPECT_TRUE(rs_all->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(all)).value())));
  EXPECT_TRUE(rs_sub->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(sub)).value())));
  EXPECT_EQ(rs_sub->tuples_consumed,
            ts->sales->PartitionRows(1) + ts->sales->PartitionRows(3));
  op.Stop();
}

TEST(CJoinOperatorTest, VerticalConfigurationMatchesHorizontal) {
  auto ts = MakeTinyStar(2500);
  StarQuerySpec spec = RegionFiltered(*ts, "R1");

  CJoinOperator::Options vopts = SmallOptions();
  vopts.config = PipelineConfig::kVertical;
  vopts.num_worker_threads = 2;  // one per stage (2 dims)
  CJoinOperator vop(*ts->star, vopts);
  ASSERT_TRUE(vop.Start().ok());
  auto vh = vop.Submit(spec);
  ASSERT_TRUE(vh.ok());
  auto vrs = (*vh)->Wait();
  ASSERT_TRUE(vrs.ok());
  EXPECT_TRUE(vrs->SameContents(
      ReferenceEvaluate(NormalizeSpec(std::move(spec)).value())));
  vop.Stop();
}

TEST(CJoinOperatorTest, AdaptiveOrderingReordersBySelectivity) {
  // Dimension 0 predicate selects almost nothing; dimension 1 predicate
  // selects everything. The optimizer should float dim 0 forward.
  auto ts = MakeTinyStar(20000, 100, 6);
  const Schema& ps = ts->product->schema();

  CJoinOperator::Options opts = SmallOptions();
  opts.adaptive_ordering = true;
  opts.reorder_interval = std::chrono::milliseconds(5);
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  // Force an initial order of {0, 1} or {1, 0}; run a highly selective
  // product predicate repeatedly and check the final order puts the
  // selective filter (dim 0 = product) first.
  StarQuerySpec spec;
  spec.schema = ts->star.get();
  spec.dim_predicates.push_back(DimensionPredicate{
      0, MakeCompare(CmpOp::kEq, MakeColumnRef(ps, "p_id").value(),
                     MakeLiteral(Value(1)))});
  // Reference the store dimension with TRUE so both filters engage.
  spec.dim_predicates.push_back(DimensionPredicate{1, MakeTrue()});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});

  for (int i = 0; i < 3; ++i) {
    auto h = op.Submit(spec);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE((*h)->Wait().ok());
  }
  const CJoinOperator::Stats stats = op.GetStats();
  ASSERT_EQ(stats.filter_order.size(), 2u);
  EXPECT_EQ(stats.filter_order[0], 0u)
      << "highly selective product filter should be probed first";
  op.Stop();
}

TEST(CJoinOperatorTest, SubmissionTimeRecorded) {
  auto ts = MakeTinyStar(2000);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());
  auto h = op.Submit(CountByRegion(*ts));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE((*h)->Wait().ok());
  EXPECT_GT((*h)->SubmissionSeconds(), 0.0);
  EXPECT_GT((*h)->ResponseSeconds(), (*h)->SubmissionSeconds());
  EXPECT_EQ((*h)->phase(), QueryPhase::kCompleted);
  op.Stop();
}

TEST(CJoinOperatorTest, StopAbortsInFlightQueries) {
  auto ts = MakeTinyStar(200000, 50, 6);
  CJoinOperator::Options opts = SmallOptions();
  opts.num_worker_threads = 1;
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());
  auto h = op.Submit(CountByRegion(*ts));
  ASSERT_TRUE(h.ok());
  op.Stop();  // don't wait for the lap to finish
  auto rs = (*h)->Wait();
  // Either it raced to completion or it was aborted; both are clean ends.
  if (!rs.ok()) {
    EXPECT_EQ(rs.status().code(), StatusCode::kAborted);
  }
}

TEST(CJoinOperatorTest, SubmitRejectsWrongSchema) {
  auto ts1 = MakeTinyStar(100);
  auto ts2 = MakeTinyStar(100);
  CJoinOperator op(*ts1->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());
  auto h = op.Submit(CountByRegion(*ts2));
  EXPECT_FALSE(h.ok());
  op.Stop();
}

TEST(CJoinOperatorTest, EmptyFactTableCompletesImmediately) {
  auto ts = MakeTinyStar(0);
  CJoinOperator op(*ts->star, SmallOptions());
  ASSERT_TRUE(op.Start().ok());
  auto h = op.Submit(CountByRegion(*ts));
  ASSERT_TRUE(h.ok());
  auto rs = (*h)->Wait();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->tuples_consumed, 0u);
  EXPECT_EQ(rs->num_rows(), 0u);  // group-by over nothing
  op.Stop();
}

TEST(CJoinOperatorTest, GarbageCollectionShrinksDimTables) {
  auto ts = MakeTinyStar(1000, 100, 6);
  CJoinOperator::Options opts = SmallOptions();
  opts.gc_dimension_tuples = true;
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  auto h = op.Submit(RegionFiltered(*ts, "R1"));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE((*h)->Wait().ok());
  // After cleanup the store dimension's entries should be collected.
  // (Cleanup is asynchronous: poll briefly.)
  bool emptied = false;
  for (int i = 0; i < 100 && !emptied; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    emptied = op.GetStats().dim_table_sizes[1] == 0;
  }
  EXPECT_TRUE(emptied) << "dead dimension entries were not collected";
  op.Stop();
}

TEST(CJoinOperatorTest, HighConcurrencySmokeWithSsbWorkload) {
  ssb::GenOptions gopts;
  gopts.scale_factor = 0.002;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  Rng rng(3);
  auto workload = queries.MakeWorkload(40, 0.05, rng).value();

  CJoinOperator::Options opts;
  opts.max_concurrent_queries = 64;
  opts.num_worker_threads = 3;
  opts.pool_capacity = 8192;
  CJoinOperator op(*db->star, opts);
  ASSERT_TRUE(op.Start().ok());

  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (const StarQuerySpec& spec : workload) {
    auto h = op.Submit(spec);
    ASSERT_TRUE(h.ok());
    handles.push_back(std::move(*h));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    auto rs = handles[i]->Wait();
    ASSERT_TRUE(rs.ok()) << workload[i].label;
    ResultSet ref = ReferenceEvaluate(workload[i]);
    EXPECT_TRUE(rs->SameContents(ref)) << workload[i].label;
  }
  op.Stop();
}

}  // namespace
}  // namespace cjoin
