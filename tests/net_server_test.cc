// Loopback integration tests for the network serving front-end: a real
// CjoinServer on an ephemeral 127.0.0.1 port, driven by real CjoinClient
// sockets. Covers concurrent streaming sessions, mid-query disconnect
// (which must cancel the engine ticket and release its CJOIN
// registration), admission shedding over the wire, live INGEST, hostile
// bytes, and graceful engine drain. Runs under the TSan CI job — the
// server's event-loop / worker / poller handoffs are the point.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "storage/sim_disk.h"
#include "tests/test_util.h"

namespace cjoin {
namespace net {
namespace {

using cjoin::testing::MakeTinyStar;
using cjoin::testing::TinyStar;

constexpr const char* kCountSql = "SELECT COUNT(*) AS n FROM sales";

/// Engine + server over the tiny star; `slow` swaps in a SimDisk slow
/// enough that queries stay in flight while the test disconnects/floods.
struct Loopback {
  explicit Loopback(uint64_t facts = 2000, bool slow = false,
                    size_t batch_rows = 512) {
    ts = MakeTinyStar(facts);
    if (slow) {
      SimDisk::Options dopts;
      dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
      disk = std::make_unique<SimDisk>(dopts);
    }
    QueryEngine::Options eopts;
    if (disk) eopts.cjoin.disk = disk.get();
    engine = std::make_unique<QueryEngine>(eopts);
    EXPECT_TRUE(engine->RegisterStar("tiny", *ts->star).ok());

    CjoinServer::Options sopts;
    sopts.batch_rows = batch_rows;
    server = std::make_unique<CjoinServer>(engine.get(), sopts);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  CjoinClient::Options ClientOpts(const std::string& tenant = "") const {
    CjoinClient::Options copts;
    copts.port = server->port();
    copts.tenant = tenant;
    return copts;
  }

  std::unique_ptr<TinyStar> ts;
  std::unique_ptr<SimDisk> disk;
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<CjoinServer> server;
};

/// Polls until the engine reports no outstanding work (the admission
/// totals are the ground truth for "every registration released").
bool DrainsToIdle(QueryEngine& engine, std::chrono::seconds timeout) {
  const auto limit = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < limit) {
    const auto stats = engine.AdmissionStats();
    if (stats.total_cjoin_inflight == 0 && stats.total_baseline_in_system == 0 &&
        stats.total_waiting == 0) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(NetServerTest, HelloQueryRoundTrip) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_GT(client.session_id(), 0u);

  auto qr = client.Query("tiny", kCountSql);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  ASSERT_EQ(qr->result.rows.size(), 1u);
  EXPECT_EQ(qr->result.columns[0], "n");
  EXPECT_EQ(qr->result.rows[0][0].AsInt(), 2000);
  EXPECT_GT(qr->response_seconds, 0.0);
}

TEST(NetServerTest, GroupByStreamsInMultipleBatches) {
  Loopback lb(/*facts=*/2000, /*slow=*/false, /*batch_rows=*/4);
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  size_t batches = 0, header_batches = 0;
  auto qr = client.Query(
      "tiny",
      "SELECT f_pid, SUM(f_amount) AS amt FROM sales GROUP BY f_pid",
      /*timeout_ns=*/0, [&](const RowBatchFrame& b) {
        ++batches;
        if (b.first) ++header_batches;
        EXPECT_LE(b.rows.size(), 4u);
      });
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  EXPECT_EQ(qr->result.rows.size(), 20u);  // 20 products
  EXPECT_EQ(header_batches, 1u);
  EXPECT_GE(batches, 5u);  // 20 rows / 4 per batch
  EXPECT_EQ(qr->result.columns.size(), 2u);
}

TEST(NetServerTest, QueriesMultiplexOnOneConnection) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  // Put several queries in flight before collecting any outcome; replies
  // demultiplex by request id.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = client.StartQuery("tiny", kCountSql);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (uint64_t id : ids) {
    auto qr = client.Await(id);
    ASSERT_TRUE(qr.ok()) << qr.status().ToString();
    EXPECT_EQ(qr->result.rows[0][0].AsInt(), 2000);
  }
}

TEST(NetServerTest, SixteenConcurrentConnectionsStream) {
  Loopback lb(/*facts=*/5000);
  constexpr int kClients = 16;
  constexpr int kQueriesEach = 4;
  std::atomic<int> ok{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      CjoinClient client(lb.ClientOpts("tenant" + std::to_string(t % 4)));
      ASSERT_TRUE(client.Connect().ok());
      for (int q = 0; q < kQueriesEach; ++q) {
        auto qr = client.Query(
            "tiny", "SELECT f_pid, COUNT(*) AS n FROM sales GROUP BY f_pid");
        ASSERT_TRUE(qr.ok()) << qr.status().ToString();
        EXPECT_EQ(qr->result.rows.size(), 20u);
        ++ok;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kClients * kQueriesEach);
  EXPECT_TRUE(DrainsToIdle(*lb.engine, std::chrono::seconds(10)));

  const CjoinServer::Stats stats = lb.server->GetStats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.queries_ok, static_cast<uint64_t>(kClients * kQueriesEach));
  EXPECT_EQ(stats.rows_streamed,
            static_cast<uint64_t>(kClients * kQueriesEach * 20));
}

TEST(NetServerTest, DisconnectMidQueryCancelsTicket) {
  Loopback lb(/*facts=*/50000, /*slow=*/true);

  {
    CjoinClient client(lb.ClientOpts());
    ASSERT_TRUE(client.Connect().ok());
    // Slow disk: these queries take seconds; the hard close below lands
    // mid-flight.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          client.StartQuery("tiny", kCountSql, 0, RoutePolicy::kCJoin).ok());
    }
    // Wait until the engine actually has them registered.
    const auto limit = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (lb.engine->AdmissionStats().total_cjoin_inflight +
                   lb.engine->AdmissionStats().total_baseline_in_system ==
               0 &&
           std::chrono::steady_clock::now() < limit) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    client.Close();  // no goodbye: the client died
  }

  // The disconnect must cancel the tickets and release every CJOIN
  // bit-vector registration — long before the queries would have finished.
  EXPECT_TRUE(DrainsToIdle(*lb.engine, std::chrono::seconds(10)));
}

TEST(NetServerTest, ExplicitCancelFrame) {
  Loopback lb(/*facts=*/50000, /*slow=*/true);
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  auto id = client.StartQuery("tiny", kCountSql, 0, RoutePolicy::kCJoin);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.Cancel(*id).ok());
  auto qr = client.Await(*id);
  ASSERT_FALSE(qr.ok());
  EXPECT_EQ(qr.status().code(), StatusCode::kCancelled)
      << qr.status().ToString();
  EXPECT_TRUE(DrainsToIdle(*lb.engine, std::chrono::seconds(10)));
}

TEST(NetServerTest, OverQuotaTenantShedsWithResourceExhausted) {
  Loopback lb(/*facts=*/50000, /*slow=*/true);
  TenantQuota quota;
  quota.max_inflight_cjoin = 2;
  ASSERT_TRUE(lb.engine->SetTenantQuota("greedy", quota).ok());

  CjoinClient client(lb.ClientOpts("greedy"));
  ASSERT_TRUE(client.Connect().ok());

  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = client.StartQuery("tiny", kCountSql, 0, RoutePolicy::kCJoin);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // The excess queries resolve immediately as shed tickets; their ERROR
  // frames carry kResourceExhausted over the wire. The admitted two are
  // still grinding on the slow disk — cancel them via disconnect.
  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    auto qr = client.Await(ids[ids.size() - 1 - i]);
    if (!qr.ok() && qr.status().code() == StatusCode::kResourceExhausted) {
      ++shed;
    } else {
      ADD_FAILURE() << "request " << ids[ids.size() - 1 - i]
                    << " not shed: "
                    << (qr.ok() ? "completed OK" : qr.status().ToString());
    }
  }
  EXPECT_EQ(shed, 6);
  client.Close();
  EXPECT_TRUE(DrainsToIdle(*lb.engine, std::chrono::seconds(10)));
}

TEST(NetServerTest, IngestBecomesVisibleAfterSnapshotAdvances) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  auto before = client.Query("tiny", kCountSql);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->result.rows[0][0].AsInt(), 2000);

  // sales(f_pid, f_sid, f_qty, f_amount) — all INT32.
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value(1), Value(1), Value(5), Value(100)});
  }
  auto snap = client.Ingest("tiny", rows);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_GT(*snap, before->snapshot);

  // The continuous scan applies the append at its next commit point; new
  // queries see the rows once their snapshot covers the commit.
  int64_t count = 0;
  const auto limit = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < limit) {
    auto qr = client.Query("tiny", kCountSql);
    ASSERT_TRUE(qr.ok()) << qr.status().ToString();
    count = qr->result.rows[0][0].AsInt();
    if (count == 2010) break;
  }
  EXPECT_EQ(count, 2010);
}

TEST(NetServerTest, IngestTypeMismatchRejected) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  // f_qty is INT32; a string Value must be rejected row-by-row, not
  // crash the server or corrupt the table.
  auto snap = client.Ingest(
      "tiny", {{Value(1), Value(1), Value(std::string("lots")), Value(3)}});
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kInvalidArgument);

  auto qr = client.Query("tiny", kCountSql);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->result.rows[0][0].AsInt(), 2000);
}

TEST(NetServerTest, MalformedSqlSurfacesAsInvalidArgument) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  auto qr = client.Query("tiny", "SELEC COUNT(* FROM sales WHERE");
  ASSERT_FALSE(qr.ok());
  EXPECT_EQ(qr.status().code(), StatusCode::kInvalidArgument);

  // The connection survives a bad query; the next one works.
  auto qr2 = client.Query("tiny", kCountSql);
  ASSERT_TRUE(qr2.ok()) << qr2.status().ToString();
  EXPECT_EQ(qr2->result.rows[0][0].AsInt(), 2000);
}

TEST(NetServerTest, UnknownStarSurfacesAsError) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());
  auto qr = client.Query("nope", kCountSql);
  ASSERT_FALSE(qr.ok());
  EXPECT_FALSE(qr.status().code() == StatusCode::kOk);
}

TEST(NetServerTest, StatsReportsCounters) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Query("tiny", kCountSql).ok());

  auto js = client.Stats();
  ASSERT_TRUE(js.ok()) << js.status().ToString();
  EXPECT_NE(js->find("\"queries_ok\":1"), std::string::npos) << *js;
  EXPECT_NE(js->find("\"connections_active\":1"), std::string::npos) << *js;
}

TEST(NetServerTest, StatsEmbedsMetricsRegistry) {
  obs::SetMetricsEnabled(true);
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Query("tiny", kCountSql).ok());

  // v2: the legacy flat keys stay, and the full registry snapshot rides
  // along under "metrics" (per-route counters + latency histograms).
  auto js = client.Stats();
  ASSERT_TRUE(js.ok()) << js.status().ToString();
  EXPECT_NE(js->find("\"snapshot\":"), std::string::npos) << *js;
  EXPECT_NE(js->find("\"metrics\":{"), std::string::npos) << *js;
  EXPECT_NE(js->find("queries_total"), std::string::npos) << *js;
  EXPECT_NE(js->find("query_latency_ns"), std::string::npos) << *js;
}

TEST(NetServerTest, QueryDoneCarriesSpanTrace) {
  obs::SetMetricsEnabled(true);
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());

  auto qr = client.Query("tiny", kCountSql);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  // The wire trace must cover the query end to end: admission, the
  // pipeline stages, and the server's own streaming span.
  EXPECT_NE(qr->trace_json.find("\"spans\":["), std::string::npos)
      << qr->trace_json;
  EXPECT_NE(qr->trace_json.find("admission"), std::string::npos)
      << qr->trace_json;
  EXPECT_NE(qr->trace_json.find("net_stream"), std::string::npos)
      << qr->trace_json;
  EXPECT_EQ(client.last_trace(), qr->trace_json);
}

/// Bare TCP socket for hostile-peer tests (no handshake, no protocol).
class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void Send(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
  }
  /// Reads until the peer closes; returns everything received.
  std::vector<uint8_t> DrainUntilClose() {
    std::vector<uint8_t> all;
    uint8_t buf[4096];
    while (true) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.insert(all.end(), buf, buf + n);
    }
    return all;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(NetServerTest, QueryBeforeHelloIsAProtocolError) {
  Loopback lb;
  RawSocket raw(lb.server->port());
  ASSERT_TRUE(raw.connected());

  QueryFrame q;
  q.id = 1;
  q.star = "tiny";
  q.sql = kCountSql;
  raw.Send(EncodeQuery(q));

  // The server answers with a connection-level ERROR (id 0) and closes.
  const std::vector<uint8_t> bytes = raw.DrainUntilClose();
  FrameAssembler asm_;
  ASSERT_TRUE(asm_.Feed(bytes.data(), bytes.size()).ok());
  Frame f;
  ASSERT_TRUE(asm_.Next(&f));
  ASSERT_EQ(f.type, FrameType::kError);
  auto err = DecodeError(f.payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->id, 0u);

  // The server itself is fine.
  CjoinClient good(lb.ClientOpts());
  ASSERT_TRUE(good.Connect().ok());
  EXPECT_TRUE(good.Query("tiny", kCountSql).ok());
}

TEST(NetServerTest, GarbageBytesCloseConnectionNotServer) {
  Loopback lb;
  CjoinClient good(lb.ClientOpts());
  ASSERT_TRUE(good.Connect().ok());

  // A hostile peer spraying a frame header whose length word is absurd:
  // the assembler rejects it before allocating, the server drops only
  // that connection.
  {
    RawSocket hostile(lb.server->port());
    ASSERT_TRUE(hostile.connected());
    hostile.Send({0xff, 0xff, 0xff, 0xff, 0x02});
    (void)hostile.DrainUntilClose();  // server hangs up
  }

  auto qr = good.Query("tiny", kCountSql);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  EXPECT_EQ(qr->result.rows[0][0].AsInt(), 2000);
}

// ------------------------------ Graceful drain ------------------------------

TEST(NetServerTest, ShutdownDrainsInFlightThenSheds) {
  Loopback lb;
  CjoinClient client(lb.ClientOpts());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Query("tiny", kCountSql).ok());

  // Drain with nothing outstanding: immediate, clean.
  EXPECT_TRUE(lb.engine->Shutdown(std::chrono::seconds(5)));
  EXPECT_TRUE(lb.engine->draining());

  // Post-drain submissions shed with kAborted through the normal ticket
  // path (wire clients see an ERROR frame, not a hang).
  auto qr = client.Query("tiny", kCountSql);
  ASSERT_FALSE(qr.ok());
}

TEST(NetServerDrainTest, DrainWaitsForInFlightQueries) {
  auto ts = MakeTinyStar(50000);
  // Slow enough that the drain is still in progress when the late query
  // is submitted below (~1 s of scan at this bandwidth).
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req = QueryRequest::Sql("tiny", kCountSql);
  req.policy = RoutePolicy::kCJoin;
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok());

  // Drain in the background; it must wait for the slow in-flight query.
  std::atomic<bool> drained{false};
  std::thread drainer(
      [&] { drained = engine.Shutdown(std::chrono::seconds(60)); });

  // While draining, new submissions shed as kAborted tickets (uniform
  // contract: Execute still returns a ticket, the ticket carries the
  // error) — wire clients see an ERROR frame, not a hang.
  const auto limit = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!engine.draining() && std::chrono::steady_clock::now() < limit) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(engine.draining());
  auto late = engine.Execute(QueryRequest::Sql("tiny", kCountSql));
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  auto late_rs = (*late)->Wait();
  ASSERT_FALSE(late_rs.ok());
  EXPECT_EQ(late_rs.status().code(), StatusCode::kAborted)
      << late_rs.status().ToString();

  drainer.join();
  EXPECT_TRUE(drained);

  // The in-flight query completed (not aborted) and its result is intact.
  ASSERT_TRUE((*ticket)->Ready());
  auto rs = (*ticket)->Wait();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 50000);

  // After the drain completes the engine is hard-stopped: Execute now
  // fails outright.
  auto post = engine.Execute(QueryRequest::Sql("tiny", kCountSql));
  EXPECT_FALSE(post.ok());
}

}  // namespace
}  // namespace net
}  // namespace cjoin
