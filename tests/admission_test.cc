// Admission control & multi-tenant scheduling: quota exhaustion rejects
// with kResourceExhausted without blocking any submitter (the ROADMAP's
// id-freelist fix), a second tenant stays serviceable under another
// tenant's flood, weighted-fair baseline draining, quota release on
// cancel / deadline across shard counts, the bounded deadline-aware
// admission wait queue, and live SetTenantQuota re-configuration.

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "storage/sim_disk.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

StarQuerySpec CountStar(const TinyStar& ts) {
  StarQuerySpec spec;
  spec.schema = ts.star.get();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  return spec;
}

/// One CJOIN-forced submission for `tenant`.
Result<std::unique_ptr<QueryTicket>> SubmitCJoin(QueryEngine& engine,
                                                 const TinyStar& ts,
                                                 const std::string& tenant) {
  QueryRequest req = QueryRequest::FromSpec(CountStar(ts));
  req.policy = RoutePolicy::kCJoin;
  req.tenant = tenant;
  return engine.Execute(std::move(req));
}

const AdmissionController::TenantStats* FindTenant(
    const AdmissionController::Stats& stats, const std::string& name) {
  for (const auto& t : stats.tenants) {
    if (t.tenant == name) return &t;
  }
  return nullptr;
}

// ------------------- The overload acceptance criterion ----------------------

// With a 4-slot quota and 64 concurrent submissions from one tenant,
// the excess tickets complete immediately with kResourceExhausted (no
// submitter blocks), a second tenant's queries still admit and finish,
// and all quota is released after cancel/completion.
class OverloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OverloadTest, FloodShedsExcessOtherTenantUnaffectedQuotaReleased) {
  const size_t shards = GetParam();
  auto ts = MakeTinyStar(50000);
  // Slow enough that none of the admitted queries completes (and thus
  // releases quota) during the submission burst.
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  eopts.cjoin_shards = shards;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_inflight_cjoin = 4;
  ASSERT_TRUE(engine.SetTenantQuota("aggro", quota).ok());

  // 64 concurrent submissions from 8 threads.
  std::mutex mu;
  std::vector<std::unique_ptr<QueryTicket>> tickets;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto ticket = SubmitCJoin(engine, *ts, "aggro");
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        std::lock_guard<std::mutex> lk(mu);
        tickets.push_back(std::move(*ticket));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(tickets.size(), 64u);

  // Exactly the quota admitted; every excess ticket is already terminal
  // with kResourceExhausted — no submitter ever blocked on the freelist.
  size_t admitted = 0, rejected = 0;
  for (auto& ticket : tickets) {
    if (ticket->Ready()) {
      auto rs = ticket->Wait();
      ASSERT_FALSE(rs.ok());
      EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted)
          << rs.status().ToString();
      ++rejected;
    } else {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 4u);
  EXPECT_EQ(rejected, 60u);

  // The flood does not starve another tenant.
  auto calm = SubmitCJoin(engine, *ts, "calm");
  ASSERT_TRUE(calm.ok());
  auto calm_rs = (*calm)->Wait();
  ASSERT_TRUE(calm_rs.ok()) << calm_rs.status().ToString();
  EXPECT_EQ(calm_rs->rows[0][0].AsInt(), 50000);

  // Cancel the admitted queries: every slot returns.
  for (auto& ticket : tickets) {
    if (!ticket->Ready()) ticket->Cancel();
  }
  for (auto& ticket : tickets) {
    if (!ticket->Ready()) (void)ticket->Wait();
  }
  const auto stats = engine.AdmissionStats();
  const auto* aggro = FindTenant(stats, "aggro");
  ASSERT_NE(aggro, nullptr);
  EXPECT_EQ(aggro->inflight_cjoin, 0u);
  EXPECT_EQ(aggro->admitted, 4u);
  EXPECT_EQ(aggro->released, 4u);
  EXPECT_EQ(aggro->shed, 60u);

  // ... and are immediately reusable.
  std::vector<std::unique_ptr<QueryTicket>> fresh;
  for (int i = 0; i < 4; ++i) {
    auto ticket = SubmitCJoin(engine, *ts, "aggro");
    ASSERT_TRUE(ticket.ok());
    EXPECT_FALSE((*ticket)->Ready()) << "resubmission into a freed slot "
                                        "was shed";
    fresh.push_back(std::move(*ticket));
  }
  for (auto& ticket : fresh) {
    ticket->Cancel();
    (void)ticket->Wait();
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, OverloadTest,
                         ::testing::Values<size_t>(1, 4));

// ------------------- Weighted-fair baseline draining ------------------------

TEST(WeightedFairTest, HigherWeightTenantDrainsFirst) {
  auto ts = MakeTinyStar(20000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.baseline_workers = 1;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota light;  // the favored tenant
  light.weight = 4.0;
  ASSERT_TRUE(engine.SetTenantQuota("light", light).ok());
  TenantQuota heavy;
  heavy.weight = 1.0;
  ASSERT_TRUE(engine.SetTenantQuota("heavy", heavy).ok());

  // Occupy the single worker so everything below queues first.
  QueryRequest blocker = QueryRequest::FromSpec(CountStar(*ts));
  blocker.policy = RoutePolicy::kBaseline;
  QatOptions slow;
  slow.disk = &disk;
  blocker.baseline_options = slow;
  auto blocker_ticket = engine.Execute(std::move(blocker));
  ASSERT_TRUE(blocker_ticket.ok());

  // "heavy" floods the queue first; "light" submits after — under the
  // seed's FIFO order light would drain last.
  QatOptions busy;  // CPU-bound, ~ms per job, so the order is observable
  busy.per_tuple_overhead = 512;
  auto submit = [&](const std::string& tenant) {
    QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
    req.policy = RoutePolicy::kBaseline;
    req.tenant = tenant;
    req.baseline_options = busy;
    auto ticket = engine.Execute(std::move(req));
    EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
    return std::move(*ticket);
  };
  std::vector<std::unique_ptr<QueryTicket>> heavy_tickets, light_tickets;
  for (int i = 0; i < 6; ++i) heavy_tickets.push_back(submit("heavy"));
  for (int i = 0; i < 6; ++i) light_tickets.push_back(submit("light"));

  for (auto& t : heavy_tickets) ASSERT_TRUE(t->Wait().ok());
  for (auto& t : light_tickets) ASSERT_TRUE(t->Wait().ok());
  ASSERT_TRUE((*blocker_ticket)->Wait().ok());

  // Completion instants: submissions were near-simultaneous, so response
  // time ranks completion order. Weight 4 should pull "light" ahead of
  // the earlier-submitted "heavy" backlog on the shared worker.
  auto mean_response = [](auto& tickets) {
    double sum = 0.0;
    for (auto& t : tickets) sum += t->ResponseSeconds();
    return sum / static_cast<double>(tickets.size());
  };
  EXPECT_LT(mean_response(light_tickets), mean_response(heavy_tickets));
}

// ---------------- Quota release on cancel / deadline ------------------------

class ReleaseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ReleaseTest, CancelAndDeadlineReturnSlots) {
  const size_t shards = GetParam();
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  eopts.cjoin_shards = shards;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_inflight_cjoin = 2;
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  auto q2 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok() && q2.ok());
  ASSERT_FALSE((*q1)->Ready());
  ASSERT_FALSE((*q2)->Ready());

  // Over quota: shed, not blocked.
  auto q3 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q3.ok());
  ASSERT_TRUE((*q3)->Ready());
  EXPECT_EQ((*q3)->Wait().status().code(), StatusCode::kResourceExhausted);

  // Cancellation returns the slot...
  (*q1)->Cancel();
  EXPECT_EQ((*q1)->Wait().status().code(), StatusCode::kCancelled);

  // ... so the next submission admits; give it a short deadline.
  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  req.tenant = "t";
  req.timeout = std::chrono::milliseconds(100);
  auto q4 = engine.Execute(std::move(req));
  ASSERT_TRUE(q4.ok());
  ASSERT_FALSE((*q4)->Ready()) << "freed slot was not granted";

  // Deadline expiry also returns the slot.
  EXPECT_EQ((*q4)->Wait().status().code(), StatusCode::kDeadlineExceeded);
  {
    const auto stats = engine.AdmissionStats();
    const auto* t = FindTenant(stats, "t");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->inflight_cjoin, 1u);  // only q2 remains
  }

  (*q2)->Cancel();
  (void)(*q2)->Wait();
  const auto stats = engine.AdmissionStats();
  const auto* t = FindTenant(stats, "t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->inflight_cjoin, 0u);
  EXPECT_EQ(t->released, t->admitted);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ReleaseTest,
                         ::testing::Values<size_t>(1, 4));

// ---------------------- Live quota re-configuration -------------------------

TEST(LiveQuotaTest, SetTenantQuotaRebalancesLiveEngine) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota one;
  one.max_inflight_cjoin = 1;
  ASSERT_TRUE(engine.SetTenantQuota("t", one).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok());
  ASSERT_FALSE((*q1)->Ready());
  auto q2 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ((*q2)->Wait().status().code(), StatusCode::kResourceExhausted);

  // Raise the budget on the live engine: the next submissions admit
  // while q1 is still in flight.
  TenantQuota three;
  three.max_inflight_cjoin = 3;
  ASSERT_TRUE(engine.SetTenantQuota("t", three).ok());
  auto q3 = SubmitCJoin(engine, *ts, "t");
  auto q4 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q3.ok() && q4.ok());
  EXPECT_FALSE((*q3)->Ready());
  EXPECT_FALSE((*q4)->Ready());
  auto q5 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q5.ok());
  EXPECT_EQ((*q5)->Wait().status().code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(engine.GetTenantQuota("t").max_inflight_cjoin, 3u);

  for (auto* q : {&q1, &q3, &q4}) {
    (**q)->Cancel();
    (void)(**q)->Wait();
  }
}

TEST(LiveQuotaTest, RateLimitShedsAndUnlimitedRestores) {
  auto ts = MakeTinyStar(1000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota slow_rate;
  slow_rate.rate_per_sec = 0.001;  // one token, refills ~never
  slow_rate.burst = 1.0;
  ASSERT_TRUE(engine.SetTenantQuota("t", slow_rate).ok());

  auto submit_baseline = [&] {
    QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
    req.policy = RoutePolicy::kBaseline;
    req.tenant = "t";
    return engine.Execute(std::move(req));
  };
  auto q1 = submit_baseline();
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE((*q1)->Wait().ok());

  auto q2 = submit_baseline();
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ((*q2)->Wait().status().code(), StatusCode::kResourceExhausted);

  // EXPLAIN ROUTE surfaces the shed verdict without consuming quota.
  auto explain = engine.ExplainRoute(CountStar(*ts), "t");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->tenant, "t");
  EXPECT_EQ(explain->admission.rfind("shed", 0), 0u) << explain->admission;

  TenantQuota unlimited;
  ASSERT_TRUE(engine.SetTenantQuota("t", unlimited).ok());
  auto q3 = submit_baseline();
  ASSERT_TRUE(q3.ok());
  EXPECT_TRUE((*q3)->Wait().ok());
}

// --------------------- Baseline queue caps ----------------------------------

TEST(BaselineCapTest, TenantAndPoolQueueCapsShed) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.baseline_workers = 1;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_queued_baseline = 2;  // queued + running
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto submit = [&](bool slow) {
    QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
    req.policy = RoutePolicy::kBaseline;
    req.tenant = "t";
    if (slow) {
      QatOptions qopts;
      qopts.disk = &disk;
      req.baseline_options = qopts;
    }
    return engine.Execute(std::move(req));
  };
  auto running = submit(true);
  ASSERT_TRUE(running.ok());
  auto queued = submit(false);
  ASSERT_TRUE(queued.ok());
  auto shed = submit(false);
  ASSERT_TRUE(shed.ok());
  ASSERT_TRUE((*shed)->Ready());
  EXPECT_EQ((*shed)->Wait().status().code(),
            StatusCode::kResourceExhausted);

  ASSERT_TRUE((*running)->Wait().ok());
  ASSERT_TRUE((*queued)->Wait().ok());

  // Quota fully released afterwards.
  const auto stats = engine.AdmissionStats();
  const auto* t = FindTenant(stats, "t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->baseline_in_system, 0u);
}

// --------------------- The bounded CJOIN wait queue -------------------------

TEST(WaitQueueTest, ParkedSubmissionGrantedWhenSlotFrees) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_inflight_cjoin = 1;
  quota.max_wait_queue = 1;
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok());
  ASSERT_FALSE((*q1)->Ready());

  // Slot full, wait queue open: parked, not shed.
  auto q2 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE((*q2)->Ready());
  EXPECT_EQ((*q2)->decision().admission.rfind("queued", 0), 0u)
      << (*q2)->decision().admission;

  // Wait queue full: shed.
  auto q3 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ((*q3)->Wait().status().code(), StatusCode::kResourceExhausted);

  // Freeing the slot grants the parked submission, which then runs to a
  // correct completion.
  (*q1)->Cancel();
  (void)(*q1)->Wait();
  auto rs = (*q2)->Wait();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 50000);

  const auto stats = engine.AdmissionStats();
  const auto* t = FindTenant(stats, "t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->inflight_cjoin, 0u);
  EXPECT_EQ(t->waiting, 0u);
}

// Regression: when the *engine-wide* CJOIN bound (== the id freelist
// size) parked the waiter, the grant must not run inline on the pipeline
// thread that is still mid-delivery — that thread has not recycled the
// completed query's id yet, so an inline re-submission would stall on a
// freelist only it can refill and then shed a waiter that was just
// granted a slot. The service thread submits instead, and the id
// recycles concurrently.
TEST(WaitQueueTest, GrantAcrossEngineWideBoundReusesRecycledId) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  eopts.cjoin.max_concurrent_queries = 2;  // freelist == engine bound == 2
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;  // slots unlimited: only the engine bound binds
  quota.max_wait_queue = 1;
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  auto q2 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok() && q2.ok());
  ASSERT_FALSE((*q1)->Ready());
  ASSERT_FALSE((*q2)->Ready());

  auto q3 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE((*q3)->Ready());
  EXPECT_EQ((*q3)->decision().admission.rfind("queued", 0), 0u)
      << (*q3)->decision().admission;

  (*q1)->Cancel();
  (void)(*q1)->Wait();
  auto rs = (*q3)->Wait();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 50000);

  (*q2)->Cancel();
  (void)(*q2)->Wait();
}

TEST(WaitQueueTest, ParkedSubmissionTimesOutAndRespectsDeadline) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_inflight_cjoin = 1;
  quota.max_wait_queue = 2;
  quota.max_wait_ns = 100'000'000;  // 100ms
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok());

  // Wait-queue timeout: kResourceExhausted once max_wait elapses.
  auto q2 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ((*q2)->Wait().status().code(), StatusCode::kResourceExhausted);

  // Deadline-aware: a query deadline earlier than max_wait wins and
  // surfaces as kDeadlineExceeded.
  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  req.tenant = "t";
  req.timeout = std::chrono::milliseconds(30);
  auto q3 = engine.Execute(std::move(req));
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ((*q3)->Wait().status().code(), StatusCode::kDeadlineExceeded);

  // A parked submission can also be cancelled directly.
  auto q4 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q4.ok());
  EXPECT_FALSE((*q4)->Ready());
  (*q4)->Cancel();
  EXPECT_EQ((*q4)->Wait().status().code(), StatusCode::kCancelled);

  (*q1)->Cancel();
  (void)(*q1)->Wait();
}

// -------------- Deadline checked at grant time (regression) -----------------

// A wait-queue grant can be *collected* while the waiter's deadline is
// still in the future, but *executed* after it expired (the service
// thread runs grant actions sequentially, and an earlier grant's
// deferred pipeline submission can run long). The slot consumed for the
// expired waiter must be returned at grant time — not briefly held
// until the pipeline's deadline fan-out reclaims it — and the grant
// must fail with kDeadlineExceeded. Runs under TSan in CI.
TEST(GrantDeadlineTest, ExpiredGrantReturnsSlotWithoutReachingPipeline) {
  AdmissionController::Options opts;
  opts.max_total_cjoin = 2;
  opts.default_quota.max_wait_queue = 4;
  AdmissionController ctrl(opts);

  ASSERT_EQ(ctrl.TryAdmit("t", RouteChoice::kCJoin).outcome,
            AdmissionOutcome::kAdmitted);
  ASSERT_EQ(ctrl.TryAdmit("t", RouteChoice::kCJoin).outcome,
            AdmissionOutcome::kAdmitted);

  // W1's grant models a slow deferred submission: it stalls the service
  // thread's grant batch well past W2's deadline.
  std::promise<Status> w1_promise, w2_promise;
  auto w1 = ctrl.TryAdmit(
      "t", RouteChoice::kCJoin, /*deadline_ns=*/0, [&] {
        return [&](Status st) {
          if (st.ok()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            ctrl.Release("t", RouteChoice::kCJoin);
          }
          w1_promise.set_value(std::move(st));
        };
      });
  ASSERT_EQ(w1.outcome, AdmissionOutcome::kQueued);

  const int64_t deadline =
      QueryRuntime::NowNs() + 60'000'000;  // 60ms: expires under W1's stall
  auto w2 = ctrl.TryAdmit("t", RouteChoice::kCJoin, deadline, [&] {
    return [&](Status st) {
      if (st.ok()) ctrl.Release("t", RouteChoice::kCJoin);
      w2_promise.set_value(std::move(st));
    };
  });
  ASSERT_EQ(w2.outcome, AdmissionOutcome::kQueued);

  // Free both slots: the service thread grants W1 (which stalls), then
  // must notice W2's deadline expired before its grant ran.
  ctrl.Release("t", RouteChoice::kCJoin);
  ctrl.Release("t", RouteChoice::kCJoin);

  EXPECT_TRUE(w1_promise.get_future().get().ok());
  const Status w2_status = w2_promise.get_future().get();
  EXPECT_EQ(w2_status.code(), StatusCode::kDeadlineExceeded)
      << w2_status.ToString();

  // The briefly-consumed slot came back (W1 released its own).
  const auto stats = ctrl.GetStats();
  EXPECT_EQ(stats.total_cjoin_inflight, 0u);
  EXPECT_EQ(stats.total_waiting, 0u);
}

// Engine-level companion: a deadline that expires while the submission
// is parked resolves kDeadlineExceeded through the ticket without ever
// binding a pipeline handle (query_id stays unset).
TEST(GrantDeadlineTest, ExpiredParkedTicketNeverBindsHandle) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_inflight_cjoin = 1;
  quota.max_wait_queue = 2;
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok());
  ASSERT_FALSE((*q1)->Ready());

  QueryRequest req = QueryRequest::FromSpec(CountStar(*ts));
  req.policy = RoutePolicy::kCJoin;
  req.tenant = "t";
  req.timeout = std::chrono::milliseconds(40);
  auto q2 = engine.Execute(std::move(req));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ((*q2)->Wait().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ((*q2)->query_id(), UINT32_MAX) << "expired parked submission "
                                              "bound a pipeline handle";

  (*q1)->Cancel();
  (void)(*q1)->Wait();
  const auto stats = engine.AdmissionStats();
  const auto* t = FindTenant(stats, "t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->inflight_cjoin, 0u);
}

// --------------------- EXPLAIN ROUTE admission view -------------------------

TEST(ExplainAdmissionTest, VerdictCarriesTenantStateWithoutConsumingQuota) {
  auto ts = MakeTinyStar(50000);
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 1.0 * 1024 * 1024;
  SimDisk disk(dopts);
  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  TenantQuota quota;
  quota.max_inflight_cjoin = 2;
  ASSERT_TRUE(engine.SetTenantQuota("t", quota).ok());

  auto q1 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q1.ok());

  for (int i = 0; i < 3; ++i) {
    auto explain = engine.ExplainRoute(CountStar(*ts), "t");
    ASSERT_TRUE(explain.ok());
    EXPECT_EQ(explain->tenant, "t");
    EXPECT_EQ(explain->tenant_inflight_cjoin, 1u);
    EXPECT_EQ(explain->tenant_cjoin_slots, 2u);
    EXPECT_FALSE(explain->admission.empty());
    // The rendering names the tenant and the admission verdict.
    const std::string text = explain->ToString();
    EXPECT_NE(text.find("tenant"), std::string::npos);
    EXPECT_NE(text.find("admission"), std::string::npos);
  }

  // Probing never consumed a slot: a real submission still admits.
  auto q2 = SubmitCJoin(engine, *ts, "t");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE((*q2)->Ready());

  for (auto* q : {&q1, &q2}) {
    (**q)->Cancel();
    (void)(**q)->Wait();
  }
}

}  // namespace
}  // namespace cjoin
