// Tests for the observability subsystem: log-bucketed histogram bucket
// math and quantile error bounds, sharded counter exactness under
// concurrent writers (the TSan job runs this binary), registry rendering
// and label-cardinality capping, and end-to-end per-query span traces on
// both routes at 1 and 4 shards.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/slow_query_log.h"
#include "obs/watchdog.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using obs::LatencyHistogram;
using obs::LatencySnapshot;
using obs::QueryTrace;
using obs::SpanKind;
using obs::TraceSpan;
using testing::MakeTinyStar;

// ------------------------------ Histogram ------------------------------------

TEST(HistogramTest, BucketRoundTrip) {
  // Every probe value must land inside its own bucket's [lo, hi] range,
  // and bucket indices must be monotone in the value.
  const uint64_t probes[] = {0,    1,    7,     8,     9,       100,
                             1023, 1024, 65537, 1u << 30, ~uint64_t{0}};
  uint32_t prev_idx = 0;
  for (uint64_t v : probes) {
    const uint32_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::BucketLowerBound(idx), v) << v;
    EXPECT_GE(LatencyHistogram::BucketUpperBound(idx), v) << v;
    EXPECT_GE(idx, prev_idx) << v;
    prev_idx = idx;
  }
}

TEST(HistogramTest, BucketWidthBounded) {
  // Log-bucket guarantee: relative width <= 1/8 = 12.5% past the exact
  // low range.
  for (uint32_t idx = LatencyHistogram::kSubCount;
       idx + 1 < LatencyHistogram::kBuckets; ++idx) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(idx);
    const uint64_t hi = LatencyHistogram::BucketUpperBound(idx);
    ASSERT_GT(hi, 0u);
    ASSERT_GE(hi, lo);
    EXPECT_LE(hi - lo + 1, lo / 8 + (lo % 8 != 0 ? 1 : 0))
        << "bucket " << idx << " [" << lo << "," << hi << "]";
  }
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  obs::SetMetricsEnabled(true);
  auto hist = std::make_unique<LatencyHistogram>();
  for (uint64_t v = 1; v <= 1000; ++v) hist->Record(v);

  const LatencySnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum_ns, 500500u);
  EXPECT_EQ(snap.min_ns, 1u);
  // Each quantile is the upper edge of its bucket: overshoot <= 12.5%.
  EXPECT_GE(snap.p50_ns, 500u);
  EXPECT_LE(snap.p50_ns, 563u);
  EXPECT_GE(snap.p90_ns, 900u);
  EXPECT_LE(snap.p90_ns, 1013u);
  EXPECT_GE(snap.p99_ns, 990u);
  EXPECT_LE(snap.p99_ns, 1114u);
  EXPECT_GE(snap.max_ns, 1000u);
  EXPECT_LE(snap.max_ns, 1125u);
}

TEST(HistogramTest, EmptyAndZeroRecords) {
  auto hist = std::make_unique<LatencyHistogram>();
  const LatencySnapshot empty = hist->Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p50_ns, 0u);
  EXPECT_EQ(empty.mean_ns(), 0.0);

  hist->RecordSeconds(0.0);
  hist->RecordSeconds(-1.0);  // clamps to 0, never underflows
  EXPECT_EQ(hist->Count(), 2u);
  EXPECT_EQ(hist->Snapshot().p50_ns, 0u);
}

// ------------------------------- Counter -------------------------------------

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  obs::SetMetricsEnabled(true);
  obs::Counter counter;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, DisabledRecordingIsNoOp) {
  obs::Counter counter;
  obs::Gauge gauge;
  auto hist = std::make_unique<LatencyHistogram>();
  obs::SetMetricsEnabled(false);
  counter.Add(7);
  gauge.Set(7);
  hist->Record(7);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(hist->Count(), 0u);
}

// ------------------------------- Registry ------------------------------------

TEST(RegistryTest, StablePointersPerLabelSet) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("reqs", "help", "route=\"x\"");
  obs::Counter* b = reg.GetCounter("reqs", "help", "route=\"x\"");
  obs::Counter* c = reg.GetCounter("reqs", "help", "route=\"y\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RegistryTest, RenderingContainsFamilies) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry reg;
  reg.GetCounter("widgets_total", "widgets", obs::LabelPair("kind", "a"))
      ->Add(3);
  reg.GetGauge("depth", "queue depth")->Set(5);
  reg.GetHistogram("lat_ns", "latency")->Record(1000);

  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("widgets_total"), std::string::npos);
  EXPECT_NE(json.find("depth"), std::string::npos);
  EXPECT_NE(json.find("lat_ns"), std::string::npos);
  EXPECT_NE(json.find("p99"), std::string::npos);

  const std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE widgets_total counter"), std::string::npos);
  EXPECT_NE(prom.find("kind=\"a\""), std::string::npos);
  EXPECT_NE(prom.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lat_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
}

TEST(RegistryTest, LabelCardinalityCapped) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry reg;
  // Register far past the cap; the registry must stop growing and
  // collapse the excess into one overflow child.
  obs::Counter* first =
      reg.GetCounter("t_total", "h", obs::LabelPair("tenant", "t0"));
  obs::Counter* overflow1 = nullptr;
  obs::Counter* overflow2 = nullptr;
  for (size_t i = 1; i < obs::MetricsRegistry::kMaxChildrenPerFamily + 40;
       ++i) {
    obs::Counter* c = reg.GetCounter(
        "t_total", "h", obs::LabelPair("tenant", "t" + std::to_string(i)));
    if (i == obs::MetricsRegistry::kMaxChildrenPerFamily + 10) overflow1 = c;
    if (i == obs::MetricsRegistry::kMaxChildrenPerFamily + 20) overflow2 = c;
  }
  ASSERT_NE(overflow1, nullptr);
  EXPECT_EQ(overflow1, overflow2);  // everything past the cap collapses
  EXPECT_NE(first, overflow1);
}

// ------------------------------ QueryTrace -----------------------------------

TEST(QueryTraceTest, SpansRenderAndOverflowCounts) {
  QueryTrace trace;
  trace.set_route("cjoin");
  trace.set_tenant("acme");
  const int64_t t0 = obs::NowNs();
  trace.AddSpan(SpanKind::kAdmission, "admitted", t0, t0 + 1000);
  trace.BeginSpan(SpanKind::kStage, "pre", t0 + 1000);
  trace.EndSpan(SpanKind::kStage, "pre", t0 + 5000);
  trace.Annotate("note", t0 + 6000);

  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].kind, SpanKind::kAdmission);
  EXPECT_EQ(spans[1].end_ns, t0 + 5000);

  const std::string text = trace.Render();
  EXPECT_NE(text.find("admission"), std::string::npos);
  EXPECT_NE(text.find("pre"), std::string::npos);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"route\":\"cjoin\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);

  // Overflow: the cap holds, extra spans count instead of growing.
  for (size_t i = 0; i < QueryTrace::kMaxSpans + 10; ++i) {
    trace.Annotate("spam", t0);
  }
  EXPECT_EQ(trace.Spans().size(), QueryTrace::kMaxSpans);
  EXPECT_GT(trace.dropped(), 0u);
}

// Spans recorded by a full engine query, by kind.
bool HasKind(const std::vector<TraceSpan>& spans, SpanKind kind) {
  for (const TraceSpan& s : spans) {
    if (s.kind == kind) return true;
  }
  return false;
}

bool HasStage(const std::vector<TraceSpan>& spans, const std::string& label) {
  for (const TraceSpan& s : spans) {
    if (s.kind == SpanKind::kStage && label == s.label) return true;
  }
  return false;
}

TEST(QueryTraceTest, CJoinRouteTraceCompleteSingleShard) {
  obs::SetMetricsEnabled(true);
  auto ts = MakeTinyStar(2000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  req.policy = RoutePolicy::kCJoin;
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_TRUE((*ticket)->Wait().ok());

  const auto trace = (*ticket)->trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_STREQ(trace->route(), "cjoin");
  const std::vector<TraceSpan> spans = trace->Spans();
  EXPECT_TRUE(HasKind(spans, SpanKind::kAdmission));
  // The query's own control tuples bound per-stage residency:
  // preprocessor and distributor at minimum.
  EXPECT_TRUE(HasStage(spans, "pre"));
  EXPECT_TRUE(HasStage(spans, "dist"));
  // Closed spans only: every recorded span must have an end.
  for (const TraceSpan& s : spans) {
    EXPECT_GE(s.end_ns, s.start_ns) << s.label;
  }
}

TEST(QueryTraceTest, CJoinRouteTraceCompleteShardedWithMerge) {
  obs::SetMetricsEnabled(true);
  auto ts = MakeTinyStar(4000);
  QueryEngine::Options eopts;
  eopts.cjoin_shards = 4;
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  req.policy = RoutePolicy::kCJoin;
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  auto rs = (*ticket)->Wait();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  const auto trace = (*ticket)->trace();
  ASSERT_NE(trace, nullptr);
  const std::vector<TraceSpan> spans = trace->Spans();
  EXPECT_TRUE(HasKind(spans, SpanKind::kShard));
  EXPECT_TRUE(HasKind(spans, SpanKind::kMerge));
}

TEST(QueryTraceTest, BaselineRouteTraceComplete) {
  obs::SetMetricsEnabled(true);
  auto ts = MakeTinyStar(1000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  req.policy = RoutePolicy::kBaseline;
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_TRUE((*ticket)->Wait().ok());

  const auto trace = (*ticket)->trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_STREQ(trace->route(), "baseline");
  const std::vector<TraceSpan> spans = trace->Spans();
  EXPECT_TRUE(HasKind(spans, SpanKind::kAdmission));
  EXPECT_TRUE(HasKind(spans, SpanKind::kBaselineQueue));
  EXPECT_TRUE(HasKind(spans, SpanKind::kBaselineRun));
}

TEST(QueryTraceTest, NoTraceWhenMetricsDisabled) {
  auto ts = MakeTinyStar(500);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  obs::SetMetricsEnabled(false);
  QueryRequest req =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  auto ticket = engine.Execute(std::move(req));
  obs::SetMetricsEnabled(true);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_TRUE((*ticket)->Wait().ok());
  EXPECT_EQ((*ticket)->trace(), nullptr);
}

// Engine completions must feed the per-route latency histograms the
// acceptance criteria expose via STATS / \metrics.
TEST(RegistryTest, EngineRecordsPerRouteLatency) {
  obs::SetMetricsEnabled(true);
  auto ts = MakeTinyStar(1000);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  obs::LatencyHistogram* cjoin_lat =
      obs::MetricsRegistry::Global().GetHistogram(
          "query_latency_ns", "Query latency by route",
          obs::LabelPair("route", "cjoin"));
  const uint64_t before = cjoin_lat->Count();

  QueryRequest req =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  req.policy = RoutePolicy::kCJoin;
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE((*ticket)->Wait().ok());

  EXPECT_GT(cjoin_lat->Count(), before);
}

// --------------------------- Flight recorder ---------------------------------

// Structural JSON check (no parser dependency): every brace/bracket
// balances outside of strings and strings terminate. A Chrome trace
// that passes this loads in Perfetto barring semantic issues the
// substring assertions cover.
bool JsonBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(FlightRecorderTest, RingWrapsWithoutGrowing) {
  obs::SetMetricsEnabled(true);
  obs::FlightRing* ring =
      obs::FlightRecorder::Global().RegisterCurrentThread("wrap-test");
  ASSERT_NE(ring, nullptr);
  const uint64_t start = ring->head.load();

  const size_t n = obs::FlightRing::kCapacity + 257;
  for (size_t i = 0; i < n; ++i) {
    obs::RecordEvent(obs::EventKind::kLap, "wrap",
                     static_cast<uint32_t>(i));
  }
  // Head is monotonic past capacity; storage stays the fixed array.
  EXPECT_EQ(ring->head.load(), start + n);

  // Every live slot was overwritten by this loop: args must all be from
  // the final kCapacity writes.
  for (const obs::FlightEvent& e : ring->events) {
    const uint64_t meta = e.meta.load();
    ASSERT_EQ(static_cast<obs::EventKind>(meta & 0xff),
              obs::EventKind::kLap);
    EXPECT_GE(meta >> 32, n - obs::FlightRing::kCapacity);
  }
}

TEST(FlightRecorderTest, MultithreadedEventsStayOrderedPerThread) {
  obs::SetMetricsEnabled(true);
  constexpr int kThreads = 4;
  constexpr uint32_t kEvents = 1000;
  std::vector<obs::FlightRing*> rings(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &rings] {
      rings[t] = obs::FlightRecorder::Global().RegisterCurrentThread(
          "mt" + std::to_string(t));
      for (uint32_t i = 0; i < kEvents; ++i) {
        obs::RecordEvent(obs::EventKind::kQueuePush, "mt", i);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Each thread got its own ring; within a ring the slots written by
  // the loop are in program order: args increase, timestamps never go
  // backwards.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(rings[t], nullptr);
    ASSERT_EQ(rings[t]->head.load(), kEvents);
    int64_t prev_ts = 0;
    for (uint32_t i = 0; i < kEvents; ++i) {
      const obs::FlightEvent& e = rings[t]->events[i];
      EXPECT_EQ(e.meta.load() >> 32, i);
      EXPECT_GE(e.ts_ns.load(), prev_ts);
      prev_ts = e.ts_ns.load();
    }
    for (int u = t + 1; u < kThreads; ++u) {
      EXPECT_NE(rings[t], rings[u]);
    }
  }

  // The dump names every thread's track.
  const std::string json = obs::FlightRecorder::Global().DumpChromeTrace();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(json.find("mt" + std::to_string(t)), std::string::npos);
  }
}

TEST(FlightRecorderTest, DumpIsValidChromeTraceJson) {
  obs::SetMetricsEnabled(true);
  obs::FlightRecorder::Global().RegisterCurrentThread("dump-test");
  // A wake/sleep pair (renders as one complete "X" slice), an instant,
  // and a retained query trace (renders as async "b"/"e" events).
  const int64_t t0 = obs::NowNs();
  obs::RecordEvent(obs::EventKind::kStageWake, "stage0", 128);
  obs::RecordEvent(obs::EventKind::kStageSleep, "stage0");
  obs::RecordEvent(obs::EventKind::kRoute, "cjoin");
  auto trace = std::make_shared<obs::QueryTrace>();
  trace->set_route("cjoin");
  trace->AddSpan(SpanKind::kStage, "pre", t0, t0 + 1000000);
  obs::FlightRecorder::Global().NoteQueryTrace(trace);

  const std::string json = obs::FlightRecorder::Global().DumpChromeTrace();
  EXPECT_TRUE(JsonBalanced(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("dump-test"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // busy slice
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  // Async query spans come in balanced begin/end pairs.
  size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"b\"", pos)) != std::string::npos) {
    ++begins;
    pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"e\"", pos)) != std::string::npos) {
    ++ends;
    pos += 8;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

// ------------------------------ Watchdog -------------------------------------

TEST(WatchdogTest, TripsOnStalledStageAndRearms) {
  obs::Watchdog::Options opts;
  opts.stall_after = std::chrono::milliseconds(0);
  obs::Watchdog dog(opts);
  uint64_t progress = 10;
  uint64_t backlog = 1;
  dog.AddSampler([&](std::vector<obs::Watchdog::StageSample>& stages,
                     std::vector<obs::Watchdog::QueueSample>&) {
    stages.push_back({"teststage", progress, backlog, 0});
  });

  EXPECT_EQ(dog.Poll(), 0u);  // first sighting arms the timer
  EXPECT_EQ(dog.Poll(), 1u);  // frozen progress + backlog => stall
  EXPECT_EQ(dog.Poll(), 0u);  // one trip per incident
  EXPECT_EQ(dog.trips(), 1u);

  progress += 5;              // progress resumes: re-arm
  EXPECT_EQ(dog.Poll(), 0u);
  EXPECT_EQ(dog.Poll(), 1u);  // frozen again => second incident
  EXPECT_EQ(dog.trips(), 2u);

  backlog = 0;                // idle, not stalled: never trips
  EXPECT_EQ(dog.Poll(), 0u);
  EXPECT_EQ(dog.Poll(), 0u);
}

TEST(WatchdogTest, TripsOnSaturatedQueueAfterConsecutiveSamples) {
  obs::Watchdog::Options opts;
  opts.saturation_fraction = 0.9;
  opts.saturation_periods = 3;
  obs::Watchdog dog(opts);
  size_t depth = 16;
  dog.AddSampler([&](std::vector<obs::Watchdog::StageSample>&,
                     std::vector<obs::Watchdog::QueueSample>& queues) {
    queues.push_back({"testq", depth, 16});
  });

  EXPECT_EQ(dog.Poll(), 0u);
  EXPECT_EQ(dog.Poll(), 0u);
  EXPECT_EQ(dog.Poll(), 1u);  // third consecutive hot sample
  EXPECT_EQ(dog.Poll(), 0u);  // still hot: already tripped

  depth = 1;                  // drains: re-arm
  EXPECT_EQ(dog.Poll(), 0u);
  depth = 16;
  EXPECT_EQ(dog.Poll(), 0u);  // hot streak restarts from 1
  EXPECT_EQ(dog.Poll(), 0u);
  EXPECT_EQ(dog.Poll(), 1u);
}

TEST(WatchdogTest, TripsOnImminentDeadline) {
  obs::Watchdog::Options opts;
  opts.stall_after = std::chrono::milliseconds(60000);
  obs::Watchdog dog(opts);
  uint64_t poll_count = 0;
  dog.AddSampler([&](std::vector<obs::Watchdog::StageSample>& stages,
                     std::vector<obs::Watchdog::QueueSample>&) {
    // Progress advances every poll (no stall); the earliest queued
    // deadline sits well inside the 60s stall window.
    stages.push_back(
        {"admq", ++poll_count, 3, obs::NowNs() + 1000000});
  });
  EXPECT_EQ(dog.Poll(), 1u);  // deadline_backlog
  EXPECT_EQ(dog.Poll(), 0u);  // once per incident
}

// ----------------------------- Slow-query log --------------------------------

TEST(SlowQueryLogTest, CapturesAboveThresholdOnly) {
  obs::SetMetricsEnabled(true);
  auto ts = MakeTinyStar(500);
  QueryEngine::Options eopts;
  eopts.slow_query_threshold = std::chrono::hours(1);  // nothing qualifies
  QueryEngine engine(eopts);
  ASSERT_TRUE(engine.RegisterStar("tiny", *ts->star).ok());

  QueryRequest req =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  auto ticket = engine.Execute(std::move(req));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE((*ticket)->Wait().ok());
  EXPECT_EQ(engine.slow_query_log().total_captured(), 0u);

  // Lower the bar at runtime: every completion is now "slow".
  engine.set_slow_query_threshold(std::chrono::nanoseconds(1));
  QueryRequest req2 =
      QueryRequest::Sql("tiny", "SELECT COUNT(*) AS n FROM sales");
  auto ticket2 = engine.Execute(std::move(req2));
  ASSERT_TRUE(ticket2.ok());
  ASSERT_TRUE((*ticket2)->Wait().ok());

  ASSERT_GE(engine.slow_query_log().total_captured(), 1u);
  const auto entries = engine.slow_query_log().Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_GT(entries[0].latency_ns, 0);
  EXPECT_FALSE(entries[0].route.empty());
  EXPECT_FALSE(entries[0].trace_json.empty());
  EXPECT_FALSE(entries[0].rendered.empty());
  EXPECT_TRUE(JsonBalanced(engine.slow_query_log().ToJson()));
}

TEST(SlowQueryLogTest, BoundedEvictionNewestFirst) {
  obs::SlowQueryLog log(2);
  for (int i = 1; i <= 5; ++i) {
    obs::QueryTrace trace;
    trace.set_route("cjoin");
    log.Record(i * 1000, trace);
  }
  EXPECT_EQ(log.total_captured(), 5u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);  // capacity caps retention
  EXPECT_EQ(entries[0].latency_ns, 5000);  // newest first
  EXPECT_EQ(entries[1].latency_ns, 4000);
  log.Clear();
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.total_captured(), 5u);  // lifetime count survives Clear
}

}  // namespace
}  // namespace cjoin
