// Edge-case tests: galaxy-join corner cases, append-visibility bounds
// (covered_snapshot), operator statistics, and empty-input behaviour.

#include <thread>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

class EngineEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ts_ = MakeTinyStar(500);
    QueryEngine::Options opts;
    opts.cjoin.max_concurrent_queries = 8;
    opts.cjoin.num_worker_threads = 2;
    engine_ = std::make_unique<QueryEngine>(opts);
    auto star = StarSchema::Make(
        ts_->sales.get(), std::vector<StarSchema::DimensionByName>{
                              {ts_->product.get(), "f_pid", "p_id"},
                              {ts_->store.get(), "f_sid", "s_id"}});
    ASSERT_TRUE(star.ok());
    ASSERT_TRUE(engine_->RegisterStar("sales", std::move(*star)).ok());
  }

  std::unique_ptr<TinyStar> ts_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EngineEdgeTest, GalaxyJoinWithEmptySideYieldsEmptyGroups) {
  // Second star whose fact table is empty.
  Schema rschema;
  rschema.AddInt32("r_pid").AddInt32("r_qty");
  Table returns("returns", rschema);
  auto star2 = StarSchema::Make(
      &returns, std::vector<StarSchema::DimensionByName>{
                    {ts_->product.get(), "r_pid", "p_id"}});
  ASSERT_TRUE(star2.ok());
  ASSERT_TRUE(engine_->RegisterStar("returns", std::move(*star2)).ok());

  QueryEngine::GalaxyJoinSpec g;
  g.left.schema = engine_->FindStar("sales").value();
  g.right.schema = engine_->FindStar("returns").value();
  g.left_join_col = 0;
  g.right_join_col = 0;
  g.group_by.push_back({0, ColumnSource::Dim(0, 1), "cat"});
  g.aggregates.push_back({AggFn::kCount, 0, std::nullopt, "n"});
  auto rs = engine_->ExecuteGalaxyJoin(g);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->num_rows(), 0u);

  // Global-aggregate shape over an empty join yields the SQL global row.
  QueryEngine::GalaxyJoinSpec g2 = g;
  g2.group_by.clear();
  auto rs2 = engine_->ExecuteGalaxyJoin(g2);
  ASSERT_TRUE(rs2.ok());
  ASSERT_EQ(rs2->num_rows(), 1u);
  EXPECT_EQ(rs2->rows[0][0].AsInt(), 0);
}

TEST_F(EngineEdgeTest, GalaxyJoinValidatesSpec) {
  QueryEngine::GalaxyJoinSpec g;
  g.left.schema = engine_->FindStar("sales").value();
  g.right.schema = engine_->FindStar("sales").value();
  g.left_join_col = 999;  // out of range
  g.right_join_col = 0;
  EXPECT_FALSE(engine_->ExecuteGalaxyJoin(g).ok());
  g.left_join_col = 0;
  g.aggregates.push_back({AggFn::kCount, 7, std::nullopt, "n"});  // bad side
  EXPECT_FALSE(engine_->ExecuteGalaxyJoin(g).ok());
}

TEST_F(EngineEdgeTest, SelfGalaxyJoinOnSameStar) {
  // Joining a star with itself (orders-to-orders on product key) is legal:
  // both sub-queries run in the same CJOIN operator concurrently.
  QueryEngine::GalaxyJoinSpec g;
  g.left.schema = engine_->FindStar("sales").value();
  g.right.schema = engine_->FindStar("sales").value();
  const Schema& fs = ts_->sales->schema();
  // Restrict both sides to shrink the quadratic pairing.
  g.left.fact_predicate =
      MakeCompare(CmpOp::kEq, MakeColumnRef(fs, "f_qty").value(),
                  MakeLiteral(Value(1)));
  g.right.fact_predicate =
      MakeCompare(CmpOp::kEq, MakeColumnRef(fs, "f_qty").value(),
                  MakeLiteral(Value(2)));
  g.left_join_col = 0;   // f_pid
  g.right_join_col = 0;  // f_pid
  g.aggregates.push_back({AggFn::kCount, 0, std::nullopt, "pairs"});
  auto rs = engine_->ExecuteGalaxyJoin(g);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->num_rows(), 1u);
  // Brute force: pairs of rows with qty 1 and qty 2 sharing a product.
  int64_t expected = 0;
  for (uint64_t i = 0; i < ts_->sales->NumRows(); ++i) {
    const uint8_t* a = ts_->sales->RowPayload(RowId{0, i});
    if (fs.GetInt32(a, 2) != 1) continue;
    for (uint64_t j = 0; j < ts_->sales->NumRows(); ++j) {
      const uint8_t* b = ts_->sales->RowPayload(RowId{0, j});
      if (fs.GetInt32(b, 2) != 2) continue;
      if (fs.GetInt32(a, 0) == fs.GetInt32(b, 0)) ++expected;
    }
  }
  EXPECT_EQ(rs->rows[0][0].AsInt(), expected);
}

TEST_F(EngineEdgeTest, AppendVisibilityIsImmediateWhenIdle) {
  // With the pipeline quiescent, the Preprocessor re-freezes at the next
  // admission, so a query submitted after AppendFacts sees the new rows
  // right away (no lap-staleness polling needed).
  auto count = [&]() -> int64_t {
    QueryRequest req =
        QueryRequest::Sql("sales", "SELECT COUNT(*) AS n FROM sales");
    req.policy = RoutePolicy::kCJoin;
    auto t = engine_->Execute(std::move(req));
    EXPECT_TRUE(t.ok());
    auto rs = (*t)->Wait();
    EXPECT_TRUE(rs.ok());
    return rs->rows[0][0].AsInt();
  };
  EXPECT_EQ(count(), 500);

  const Schema& fs = ts_->sales->schema();
  std::vector<std::vector<uint8_t>> rows;
  for (int i = 0; i < 7; ++i) {
    std::vector<uint8_t> p(fs.row_size());
    fs.SetInt32(p.data(), 0, 1);
    fs.SetInt32(p.data(), 1, 1);
    fs.SetInt32(p.data(), 2, 1);
    fs.SetInt32(p.data(), 3, 10);
    rows.push_back(std::move(p));
  }
  ASSERT_TRUE(engine_->AppendFacts("sales", rows).ok());
  // Give the (idle) preprocessor a moment to drain the previous query's
  // teardown, then the very next query must see all 507 rows.
  int64_t n = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    n = count();
    if (n == 507) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(n, 507);
}

TEST_F(EngineEdgeTest, OperatorStatsReflectActivity) {
  auto op = engine_->OperatorFor("sales");
  ASSERT_TRUE(op.ok());
  QueryRequest req = QueryRequest::Sql(
      "sales",
      "SELECT COUNT(*) FROM sales, store WHERE f_sid = s_id AND "
      "s_region = 'R1'");
  req.policy = RoutePolicy::kCJoin;
  auto h = engine_->Execute(std::move(req));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE((*h)->Wait().ok());
  const CJoinOperator::Stats stats = (*op)->GetStats();
  EXPECT_GE(stats.rows_scanned, 500u);
  EXPECT_GE(stats.queries_completed, 1u);
  EXPECT_EQ(stats.filter_order.size(), 2u);
  EXPECT_EQ(stats.dim_table_sizes.size(), 2u);
  EXPECT_EQ(stats.filter_tuples_in.size(), 2u);
  EXPECT_GT(stats.manager_iterations, 0u);
}

TEST_F(EngineEdgeTest, BaselineAndCJoinAgreeAfterUpdates) {
  const Schema& fs = ts_->sales->schema();
  ASSERT_TRUE(engine_
                  ->DeleteFacts("sales",
                                MakeCompare(
                                    CmpOp::kLt,
                                    MakeColumnRef(fs, "f_qty").value(),
                                    MakeLiteral(Value(3))))
                  .ok());
  const char* sql =
      "SELECT s_region, COUNT(*) AS n FROM sales, store "
      "WHERE f_sid = s_id GROUP BY s_region";
  QueryRequest breq = QueryRequest::Sql("sales", sql);
  breq.policy = RoutePolicy::kBaseline;
  auto bt = engine_->Execute(std::move(breq));
  ASSERT_TRUE(bt.ok());
  auto baseline = (*bt)->Wait();
  ASSERT_TRUE(baseline.ok());
  QueryRequest creq = QueryRequest::Sql("sales", sql);
  creq.policy = RoutePolicy::kCJoin;
  auto h = engine_->Execute(std::move(creq));
  ASSERT_TRUE(h.ok());
  auto rs = (*h)->Wait();
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->SameContents(*baseline))
      << "cjoin:\n" << rs->ToString() << "baseline:\n"
      << baseline->ToString();
}

}  // namespace
}  // namespace cjoin
