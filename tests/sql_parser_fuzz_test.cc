// Hostile-input tests for the SQL parser: the serving front-end feeds it
// bytes straight off the network, so malformed, truncated, and garbage
// statements must come back as kInvalidArgument — never an assert, throw,
// crash, or unbounded recursion.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/sql_parser.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::TinyStar;

class SqlParserFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override { ts_ = MakeTinyStar(10); }

  /// Must return a clean error — never crash, never throw.
  void ExpectRejected(const std::string& sql) {
    auto spec = ParseStarQuery(*ts_->star, sql);
    ASSERT_FALSE(spec.ok()) << "accepted: " << sql;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument)
        << spec.status().ToString() << " for: " << sql;
  }

  std::unique_ptr<TinyStar> ts_;
};

TEST_F(SqlParserFuzzTest, EmptyAndWhitespace) {
  ExpectRejected("");
  ExpectRejected("   \t\n  ");
  ExpectRejected(";");
}

TEST_F(SqlParserFuzzTest, TruncatedStatements) {
  // Every prefix of a valid statement must fail cleanly (the full text
  // itself parses — checked last).
  const std::string valid =
      "SELECT f_pid, SUM(f_amount) AS amt FROM sales, product "
      "WHERE f_pid = p_id AND p_price >= 300 GROUP BY f_pid";
  for (size_t len = 0; len < valid.size(); ++len) {
    auto spec = ParseStarQuery(*ts_->star, valid.substr(0, len));
    if (spec.ok()) continue;  // some prefixes are complete statements
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
  EXPECT_TRUE(ParseStarQuery(*ts_->star, valid).ok());
}

TEST_F(SqlParserFuzzTest, GarbageTokens) {
  ExpectRejected("SELEC COUNT(*) FROM sales");
  ExpectRejected("SELECT COUNT(*) FORM sales");
  ExpectRejected("SELECT FROM sales");
  ExpectRejected("SELECT COUNT(*) FROM");
  ExpectRejected("SELECT COUNT(*) FROM no_such_table");
  ExpectRejected("SELECT nope FROM sales");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE f_qty = ");
  ExpectRejected("SELECT COUNT(*) FROM sales GROUP BY");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE f_qty @ 3");
  ExpectRejected("DROP TABLE sales");
  ExpectRejected("\x01\x02\x03\xff\xfe");
  ExpectRejected("SELECT \xf0\x9f\x92\xa9 FROM sales");
}

TEST_F(SqlParserFuzzTest, UnbalancedDelimiters) {
  ExpectRejected("SELECT COUNT(* FROM sales");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE (f_qty = 3");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE f_qty IN (1, 2");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE f_qty = 'unterminated");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE ((((f_qty = 3)");
}

TEST_F(SqlParserFuzzTest, MalformedNumericLiterals) {
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE f_qty = 1e");
  ExpectRejected("SELECT COUNT(*) FROM sales WHERE f_qty = 1.2.3");
  // Out-of-range integer literal: must be a clean error, not a throw
  // from std::stoll.
  ExpectRejected(
      "SELECT COUNT(*) FROM sales WHERE f_qty = "
      "99999999999999999999999999999999999");
}

TEST_F(SqlParserFuzzTest, DeepNestingIsBoundedNotAStackOverflow) {
  // 100k nested parens would blow the stack in a naive recursive-descent
  // parser; the depth cap must reject it cleanly instead.
  std::string sql = "SELECT COUNT(*) FROM sales WHERE ";
  sql += std::string(100000, '(');
  sql += "f_qty = 3";
  sql += std::string(100000, ')');
  ExpectRejected(sql);

  // NOT chains recurse through a different production.
  std::string nots = "SELECT COUNT(*) FROM sales WHERE ";
  for (int i = 0; i < 100000; ++i) nots += "NOT ";
  nots += "f_qty = 3";
  ExpectRejected(nots);

  // Moderate nesting (under the cap) still parses.
  std::string ok = "SELECT COUNT(*) FROM sales WHERE ";
  ok += std::string(50, '(');
  ok += "f_qty = 3";
  ok += std::string(50, ')');
  EXPECT_TRUE(ParseStarQuery(*ts_->star, ok).ok());
}

TEST_F(SqlParserFuzzTest, RandomByteSoup) {
  // Deterministic xorshift byte soup: none of it may crash the parser.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string sql;
    const size_t len = next() % 256;
    for (size_t i = 0; i < len; ++i) {
      sql.push_back(static_cast<char>(next() % 256));
    }
    auto spec = ParseStarQuery(*ts_->star, sql);
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Mutated fragments of a valid query: flip bytes one at a time.
  const std::string valid =
      "SELECT f_pid, SUM(f_amount) AS amt FROM sales, product "
      "WHERE f_pid = p_id AND p_price BETWEEN 100 AND 900 GROUP BY f_pid";
  for (size_t i = 0; i < valid.size(); ++i) {
    std::string mutated = valid;
    mutated[i] = static_cast<char>(next() % 256);
    auto spec = ParseStarQuery(*ts_->star, mutated);
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace cjoin
