// Property-based tests of the CJOIN operator (TEST_P sweeps).
//
// Core invariants checked across randomized query mixes, pipeline
// configurations and fact-table partitionings:
//   P1 (exactly-one-lap): every query consumes each relevant fact tuple
//       exactly once — results equal the independent reference evaluator
//       regardless of when the query latched onto the continuous scan.
//   P2 (isolation): concurrent queries never contaminate each other —
//       a query's result is independent of the surrounding mix.
//   P3 (churn): query ids can be reused indefinitely under load.

#include <thread>

#include <gtest/gtest.h>

#include "cjoin/cjoin_operator.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace cjoin {
namespace {

using testing::MakeTinyStar;
using testing::ReferenceEvaluate;
using testing::TinyStar;

/// Builds a randomized star query over the TinyStar schema.
StarQuerySpec RandomSpec(const TinyStar& ts, Rng& rng) {
  const Schema& ps = ts.product->schema();
  const Schema& ss = ts.store->schema();
  const Schema& fs = ts.sales->schema();

  StarQuerySpec spec;
  spec.schema = ts.star.get();

  // Random dimension predicates.
  if (rng.Bernoulli(0.7)) {
    const int64_t lo = rng.UniformInt(1, 15);
    spec.dim_predicates.push_back(DimensionPredicate{
        0, MakeBetween(MakeColumnRef(ps, "p_id").value(), Value(lo),
                       Value(lo + rng.UniformInt(0, 5)))});
  }
  if (rng.Bernoulli(0.6)) {
    spec.dim_predicates.push_back(DimensionPredicate{
        1, MakeCompare(CmpOp::kEq, MakeColumnRef(ss, "s_region").value(),
                       MakeLiteral(Value(
                           "R" + std::to_string(rng.UniformInt(0, 2)))))});
  }
  // Random fact predicate.
  if (rng.Bernoulli(0.4)) {
    spec.fact_predicate =
        MakeCompare(CmpOp::kGe, MakeColumnRef(fs, "f_qty").value(),
                    MakeLiteral(Value(rng.UniformInt(1, 9))));
  }
  // Random group-by shape.
  switch (rng.UniformInt(0, 2)) {
    case 0:
      break;  // global aggregate
    case 1:
      spec.group_by.push_back(ColumnSource::Dim(1, 1));  // s_region
      break;
    case 2:
      spec.group_by.push_back(ColumnSource::Dim(0, 1));  // p_cat
      spec.group_by.push_back(ColumnSource::Dim(1, 1));
      break;
  }
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kSum, ColumnSource::Fact(3), nullptr, "amt"});
  if (rng.Bernoulli(0.5)) {
    spec.aggregates.push_back(
        AggregateSpec{AggFn::kMax, ColumnSource::Fact(2), nullptr, "maxq"});
  }
  return spec;
}

struct PropertyParams {
  uint64_t seed;
  uint32_t partitions;
  bool vertical;
  size_t threads;
};

class CJoinPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(CJoinPropertyTest, RandomMixMatchesReference) {
  const PropertyParams p = GetParam();
  auto ts = MakeTinyStar(3000, 30, 6, p.partitions);
  Rng rng(p.seed);

  CJoinOperator::Options opts;
  opts.max_concurrent_queries = 16;
  opts.num_worker_threads = p.threads;
  opts.batch_size = 64;
  opts.pool_capacity = 4096;
  opts.scan_run_rows = 128;
  opts.config =
      p.vertical ? PipelineConfig::kVertical : PipelineConfig::kHorizontal;
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  // Waves of random queries with random stagger; P1/P2: every result must
  // match the reference, independent of the mix.
  std::vector<StarQuerySpec> specs;
  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (int wave = 0; wave < 3; ++wave) {
    for (int q = 0; q < 6; ++q) {
      StarQuerySpec spec = RandomSpec(*ts, rng);
      if (p.partitions > 1 && rng.Bernoulli(0.4)) {
        // Random partition subset (P1 must hold with early termination).
        for (uint32_t part = 0; part < p.partitions; ++part) {
          if (rng.Bernoulli(0.6)) spec.partitions.push_back(part);
        }
        if (spec.partitions.empty()) spec.partitions.push_back(0);
      }
      spec.label = "w" + std::to_string(wave) + "q" + std::to_string(q);
      auto h = op.Submit(spec);
      ASSERT_TRUE(h.ok()) << h.status().ToString();
      specs.push_back(std::move(spec));
      handles.push_back(std::move(*h));
      if (rng.Bernoulli(0.3)) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            rng.UniformInt(50, 500)));
      }
    }
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    auto rs = handles[i]->Wait();
    ASSERT_TRUE(rs.ok()) << specs[i].label;
    ResultSet ref =
        ReferenceEvaluate(NormalizeSpec(StarQuerySpec(specs[i])).value());
    EXPECT_TRUE(rs->SameContents(ref))
        << specs[i].label << "\ngot:\n" << rs->ToString() << "want:\n"
        << ref.ToString();
    EXPECT_EQ(rs->tuples_consumed, ref.tuples_consumed) << specs[i].label;
  }
  op.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CJoinPropertyTest,
    ::testing::Values(PropertyParams{1, 1, false, 1},
                      PropertyParams{2, 1, false, 3},
                      PropertyParams{3, 4, false, 2},
                      PropertyParams{4, 1, true, 2},
                      PropertyParams{5, 4, true, 4},
                      PropertyParams{6, 7, false, 4},
                      PropertyParams{7, 2, false, 2},
                      PropertyParams{8, 3, true, 3}),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      const PropertyParams& p = info.param;
      return "seed" + std::to_string(p.seed) + "_parts" +
             std::to_string(p.partitions) +
             (p.vertical ? "_vertical" : "_horizontal") + "_t" +
             std::to_string(p.threads);
    });

TEST(CJoinChurnTest, HundredsOfQueriesThroughFewIds) {
  // P3: sustained id reuse with tiny maxConc; every result correct.
  auto ts = MakeTinyStar(800, 20, 6);
  Rng rng(99);
  CJoinOperator::Options opts;
  opts.max_concurrent_queries = 4;
  opts.num_worker_threads = 2;
  opts.pool_capacity = 2048;
  opts.scan_run_rows = 64;
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  std::vector<StarQuerySpec> specs;
  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (int i = 0; i < 120; ++i) {
    StarQuerySpec spec = RandomSpec(*ts, rng);
    spec.label = "churn" + std::to_string(i);
    auto h = op.Submit(spec);  // blocks while all 4 ids are taken
    ASSERT_TRUE(h.ok());
    specs.push_back(std::move(spec));
    handles.push_back(std::move(*h));
    // Keep a small window in flight.
    while (handles.size() > 4) {
      auto rs = handles.front()->Wait();
      ASSERT_TRUE(rs.ok());
      const size_t idx = specs.size() - handles.size();
      EXPECT_TRUE(rs->SameContents(ReferenceEvaluate(
          NormalizeSpec(StarQuerySpec(specs[idx])).value())))
          << specs[idx].label;
      handles.erase(handles.begin());
    }
  }
  while (!handles.empty()) {
    auto rs = handles.front()->Wait();
    ASSERT_TRUE(rs.ok());
    const size_t idx = specs.size() - handles.size();
    EXPECT_TRUE(rs->SameContents(ReferenceEvaluate(
        NormalizeSpec(StarQuerySpec(specs[idx])).value())))
        << specs[idx].label;
    handles.erase(handles.begin());
  }
  const auto stats = op.GetStats();
  EXPECT_EQ(stats.queries_completed, 120u);
  op.Stop();
}

TEST(CJoinStressTest, ParallelSubmittersAndUpdatesViaSnapshots) {
  // Multiple submitter threads race Submit() while rows are deleted at
  // increasing snapshots; each query pins the snapshot current at its
  // submission, so its count must match the reference at that snapshot.
  auto ts = MakeTinyStar(2000, 20, 6);
  CJoinOperator::Options opts;
  opts.max_concurrent_queries = 32;
  opts.num_worker_threads = 3;
  opts.pool_capacity = 8192;
  CJoinOperator op(*ts->star, opts);
  ASSERT_TRUE(op.Start().ok());

  std::atomic<SnapshotId> snapshot{1};
  std::atomic<bool> fail{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 15 && !fail.load(); ++i) {
        StarQuerySpec spec;
        spec.schema = ts->star.get();
        spec.aggregates.push_back(
            AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
        spec.snapshot = snapshot.load();
        auto h = op.Submit(spec);
        if (!h.ok()) {
          fail.store(true);
          return;
        }
        auto rs = (*h)->Wait();
        if (!rs.ok()) {
          fail.store(true);
          return;
        }
        StarQuerySpec ref_spec = spec;
        ResultSet ref = ReferenceEvaluate(
            NormalizeSpec(std::move(ref_spec)).value());
        if (!rs->SameContents(ref)) fail.store(true);
      }
    });
  }
  // Concurrent deleter: each round removes rows at a fresh snapshot.
  std::thread deleter([&] {
    for (uint64_t i = 0; i < 200; ++i) {
      const SnapshotId next = snapshot.load() + 1;
      ASSERT_TRUE(ts->sales->MarkDeleted(RowId{0, i}, next).ok());
      snapshot.store(next);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  for (auto& t : submitters) t.join();
  deleter.join();
  EXPECT_FALSE(fail.load());
  op.Stop();
}

}  // namespace
}  // namespace cjoin
