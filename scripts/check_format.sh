#!/usr/bin/env bash
# Advisory clang-format check: reports files that differ from the
# committed .clang-format but always exits 0 (CI shows the drift in the
# job log without blocking the pipeline; see README "Correctness
# tooling"). Pass --fix to rewrite the files in place instead.
#
# Usage:
#   scripts/check_format.sh          # report drift
#   scripts/check_format.sh --fix    # apply formatting
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (advisory check)"
  exit 0
fi

mode="check"
if [ "${1:-}" = "--fix" ]; then
  mode="fix"
fi

files=$(git ls-files \
  'src/**/*.h' 'src/**/*.cc' \
  'tests/*.cc' 'tests/**/*.cc' \
  'bench/*.cc' 'bench/*.cpp' 'bench/*.h' \
  'tools/*.cpp' 'examples/*.cpp' 'fuzz/*.cc')

drifted=0
total=0
for f in $files; do
  total=$((total + 1))
  if [ "$mode" = "fix" ]; then
    "$CLANG_FORMAT" -i "$f"
  elif ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs-format: $f"
    drifted=$((drifted + 1))
  fi
done

if [ "$mode" = "fix" ]; then
  echo "check_format: formatted $total files"
else
  echo "check_format: $drifted of $total files drift from .clang-format (advisory)"
fi
exit 0
