// Ad-hoc dashboard: streams of SQL star queries arriving continuously —
// the "hundreds of reports for the same time period" workload of §1 —
// with partition pruning (§5) for date-restricted reports.
//
// The fact table is range-partitioned by order year; queries tagged with
// a year range scan only their partitions and terminate early at
// partition-pass boundaries instead of waiting for a full lap.
//
//   $ ./examples/adhoc_dashboard

#include <cstdio>
#include <string>

#include "engine/query_engine.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cjoin;

int main() {
  // 7 partitions: one per order year 1992..1998.
  ssb::GenOptions gopts;
  gopts.scale_factor = 0.005;
  gopts.num_fact_partitions = 7;
  auto db = ssb::Generate(gopts).value();

  QueryEngine::Options eopts;
  eopts.cjoin.max_concurrent_queries = 64;
  QueryEngine engine(eopts);
  auto star = StarSchema::Make(
      db->lineorder.get(),
      std::vector<StarSchema::DimensionByName>{
          {db->date.get(), "lo_orderdate", "d_datekey"},
          {db->customer.get(), "lo_custkey", "c_custkey"},
          {db->supplier.get(), "lo_suppkey", "s_suppkey"},
          {db->part.get(), "lo_partkey", "p_partkey"},
      });
  if (!star.ok() || !engine.RegisterStar("ssb", std::move(*star)).ok()) {
    return 1;
  }

  struct Report {
    const char* title;
    std::string sql;
    int first_year, last_year;  // partition pruning hint (-1 = all)
  };
  const Report reports[] = {
      {"Revenue by year (all data)",
       "SELECT d_year, SUM(lo_revenue) AS revenue FROM lineorder, date "
       "WHERE lo_orderdate = d_datekey GROUP BY d_year",
       -1, -1},
      {"1997 revenue by customer region",
       "SELECT c_region, SUM(lo_revenue) AS revenue "
       "FROM lineorder, date, customer "
       "WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey "
       "AND d_year = 1997 GROUP BY c_region",
       1997, 1997},
      {"1995-1996 shipping mix",
       "SELECT lo_shipmode, COUNT(*) AS orders FROM lineorder, date "
       "WHERE lo_orderdate = d_datekey AND d_year >= 1995 AND "
       "d_year <= 1996 GROUP BY lo_shipmode",
       1995, 1996},
      {"Asia supplier profit, 1998 only",
       "SELECT s_nation, SUM(lo_revenue - lo_supplycost) AS profit "
       "FROM lineorder, date, supplier "
       "WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey "
       "AND s_region = 'ASIA' AND d_year = 1998 GROUP BY s_nation",
       1998, 1998},
  };

  // All reports go through the unified Execute() API with a non-blocking
  // ticket each; kCJoin pins them to the shared pipeline so the
  // partition-pruned reports terminate early at pass boundaries (§5).
  std::vector<std::unique_ptr<QueryTicket>> tickets;
  for (const Report& r : reports) {
    auto spec = ParseStarQuery(*engine.FindStar("ssb").value(), r.sql);
    if (!spec.ok()) {
      std::fprintf(stderr, "parse '%s': %s\n", r.title,
                   spec.status().ToString().c_str());
      return 1;
    }
    if (r.first_year >= 0) {
      for (int y = r.first_year; y <= r.last_year; ++y) {
        spec->partitions.push_back(static_cast<uint32_t>(y - 1992));
      }
    }
    QueryRequest req = QueryRequest::FromSpec(std::move(*spec));
    req.policy = RoutePolicy::kCJoin;
    auto t = engine.Execute(std::move(req));
    if (!t.ok()) {
      std::fprintf(stderr, "execute: %s\n", t.status().ToString().c_str());
      return 1;
    }
    tickets.push_back(std::move(*t));
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    auto rs = tickets[i]->Wait();
    if (!rs.ok()) {
      std::fprintf(stderr, "%s\n", rs.status().ToString().c_str());
      return 1;
    }
    rs->SortRows();
    std::printf("=== %s  (%.2f ms, scanned %llu fact tuples)\n",
                reports[i].title, tickets[i]->ResponseSeconds() * 1e3,
                static_cast<unsigned long long>(rs->tuples_consumed));
    std::printf("%s\n", rs->ToString(8).c_str());
  }
  return 0;
}
