// Mixed queries and updates under snapshot isolation (paper §3.5).
//
// Appends and deletes run against the fact table while analytical
// queries execute in the CJOIN pipeline; each query sees exactly the
// snapshot that was current when it was submitted.
//
//   $ ./examples/updates_snapshots

#include <cstdio>

#include "engine/query_engine.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cjoin;

namespace {

int64_t CountAll(QueryEngine& engine) {
  QueryRequest req =
      QueryRequest::Sql("ssb", "SELECT COUNT(*) AS n FROM lineorder");
  req.policy = RoutePolicy::kCJoin;
  auto t = engine.Execute(std::move(req));
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  auto rs = (*t)->Wait();
  if (!rs.ok()) std::exit(1);
  return rs->rows[0][0].AsInt();
}

int64_t CountAtSnapshot(QueryEngine& engine, SnapshotId snap) {
  StarQuerySpec spec;
  spec.schema = engine.FindStar("ssb").value();
  spec.aggregates.push_back(
      AggregateSpec{AggFn::kCount, std::nullopt, nullptr, "n"});
  spec.snapshot = snap;
  QueryRequest req = QueryRequest::FromSpec(std::move(spec));
  req.policy = RoutePolicy::kCJoin;
  auto t = engine.Execute(std::move(req));
  if (!t.ok()) std::exit(1);
  auto rs = (*t)->Wait();
  if (!rs.ok()) std::exit(1);
  return rs->rows[0][0].AsInt();
}

}  // namespace

int main() {
  ssb::GenOptions gopts;
  gopts.scale_factor = 0.005;
  auto db = ssb::Generate(gopts).value();

  QueryEngine engine;
  auto star = StarSchema::Make(
      db->lineorder.get(),
      std::vector<StarSchema::DimensionByName>{
          {db->date.get(), "lo_orderdate", "d_datekey"},
          {db->customer.get(), "lo_custkey", "c_custkey"},
          {db->supplier.get(), "lo_suppkey", "s_suppkey"},
          {db->part.get(), "lo_partkey", "p_partkey"},
      });
  if (!star.ok() ||
      !engine.RegisterStar("ssb", std::move(*star)).ok()) {
    return 1;
  }

  const int64_t initial = CountAll(engine);
  std::printf("initial row count: %lld (snapshot %u)\n",
              static_cast<long long>(initial), engine.CurrentSnapshot());

  // Delete all 1992 orders in one transaction.
  const Schema& lo = db->lineorder->schema();
  ExprPtr year_1992 = MakeCompare(
      CmpOp::kLt, MakeColumnRef(lo, "lo_orderdate").value(),
      MakeLiteral(Value(19930101)));
  auto del_snap = engine.DeleteFacts("ssb", year_1992);
  if (!del_snap.ok()) return 1;
  std::printf("deleted 1992 orders at snapshot %u\n", *del_snap);

  const int64_t after_delete = CountAll(engine);
  const int64_t old_view = CountAtSnapshot(engine, *del_snap - 1);
  std::printf("new queries see:      %lld rows\n",
              static_cast<long long>(after_delete));
  std::printf("snapshot %u still sees: %lld rows (repeatable reads)\n",
              *del_snap - 1, static_cast<long long>(old_view));

  // Append a batch of fresh orders (one transaction).
  std::vector<std::vector<uint8_t>> fresh;
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> payload(lo.row_size());
    lo.SetInt32(payload.data(), 0, 90000000 + i);  // lo_orderkey
    lo.SetInt32(payload.data(), 1, 1);             // lo_linenumber
    lo.SetInt32(payload.data(), 2, 1);             // lo_custkey
    lo.SetInt32(payload.data(), 3, 1);             // lo_partkey
    lo.SetInt32(payload.data(), 4, 1);             // lo_suppkey
    lo.SetInt32(payload.data(), 5, 19980101);      // lo_orderdate
    lo.SetInt32(
        payload.data(),
        static_cast<size_t>(lo.ColumnIndex("lo_quantity")), 10);
    lo.SetInt32(
        payload.data(),
        static_cast<size_t>(lo.ColumnIndex("lo_extendedprice")), 5000);
    lo.SetInt32(payload.data(),
                static_cast<size_t>(lo.ColumnIndex("lo_revenue")), 4500);
    fresh.push_back(std::move(payload));
  }
  auto add_snap = engine.AppendFacts("ssb", fresh);
  if (!add_snap.ok()) return 1;
  std::printf("appended 1000 orders at snapshot %u\n", *add_snap);

  // The continuous scan picks appended rows up at its next lap; poll.
  int64_t now_count = 0;
  for (int i = 0; i < 200; ++i) {
    now_count = CountAll(engine);
    if (now_count == after_delete + 1000) break;
  }
  std::printf("new queries see:      %lld rows\n",
              static_cast<long long>(now_count));
  std::printf("snapshot %u still sees: %lld rows\n", *add_snap - 1,
              static_cast<long long>(CountAtSnapshot(engine, *add_snap - 1)));
  return now_count == after_delete + 1000 ? 0 : 1;
}
