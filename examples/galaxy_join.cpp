// Galaxy schema: fact-to-fact joins across two stars (paper §5).
//
// Two fact tables — `orders` and `shipments` — share dimensions and join
// on order id. The fact-to-fact query is evaluated by pivoting it into
// two star sub-queries, each running in its fact table's CJOIN operator
// (concurrently sharing work with any other in-flight star queries),
// whose result streams meet in a hash join.
//
//   $ ./examples/galaxy_join

#include <cstdio>

#include "engine/query_engine.h"

using namespace cjoin;

int main() {
  // Shared dimension: region.
  Schema region_schema;
  region_schema.AddInt32("r_id").AddChar("r_name", 8);
  Table region("region", region_schema);
  const char* names[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  for (int r = 1; r <= 4; ++r) {
    uint8_t* row = region.AppendUninitialized();
    region_schema.SetInt32(row, 0, r);
    region_schema.SetChar(row, 1, names[r - 1]);
  }

  // Star 1: orders(o_id, o_rid, o_value).
  Schema orders_schema;
  orders_schema.AddInt32("o_id").AddInt32("o_rid").AddInt32("o_value");
  Table orders("orders", orders_schema);
  for (int i = 0; i < 20000; ++i) {
    uint8_t* row = orders.AppendUninitialized();
    orders_schema.SetInt32(row, 0, i);
    orders_schema.SetInt32(row, 1, i % 4 + 1);
    orders_schema.SetInt32(row, 2, i % 500);
  }

  // Star 2: shipments(sh_order, sh_rid, sh_days). ~70% of orders shipped.
  Schema ship_schema;
  ship_schema.AddInt32("sh_order").AddInt32("sh_rid").AddInt32("sh_days");
  Table shipments("shipments", ship_schema);
  for (int i = 0; i < 20000; ++i) {
    if (i % 10 >= 7) continue;
    uint8_t* row = shipments.AppendUninitialized();
    ship_schema.SetInt32(row, 0, i);
    ship_schema.SetInt32(row, 1, i % 4 + 1);
    ship_schema.SetInt32(row, 2, i % 14 + 1);
  }

  QueryEngine engine;
  {
    auto star = StarSchema::Make(
        &orders, std::vector<StarSchema::DimensionByName>{
                     {&region, "o_rid", "r_id"}});
    if (!star.ok() ||
        !engine.RegisterStar("orders", std::move(*star)).ok()) {
      return 1;
    }
  }
  {
    auto star = StarSchema::Make(
        &shipments, std::vector<StarSchema::DimensionByName>{
                        {&region, "sh_rid", "r_id"}});
    if (!star.ok() ||
        !engine.RegisterStar("shipments", std::move(*star)).ok()) {
      return 1;
    }
  }

  // "Average shipping time and total order value per region, for shipped
  //  orders worth at least 250" — a fact-to-fact join of the two stars.
  QueryEngine::GalaxyJoinSpec spec;
  spec.left.schema = engine.FindStar("orders").value();
  spec.left.fact_predicate = MakeCompare(
      CmpOp::kGe,
      MakeColumnRef(orders_schema, "o_value").value(),
      MakeLiteral(Value(250)));
  spec.left.dim_predicates.push_back(DimensionPredicate{0, MakeTrue()});
  spec.right.schema = engine.FindStar("shipments").value();
  spec.left_join_col = 0;   // o_id
  spec.right_join_col = 0;  // sh_order

  spec.group_by.push_back(
      {0, ColumnSource::Dim(0, 1), "region"});  // region name via orders
  spec.aggregates.push_back({AggFn::kCount, 0, std::nullopt, "orders"});
  spec.aggregates.push_back(
      {AggFn::kSum, 0, ColumnSource::Fact(2), "total_value"});
  spec.aggregates.push_back(
      {AggFn::kAvg, 1, ColumnSource::Fact(2), "avg_ship_days"});

  // Both star sub-queries ride the unified Execute() lifecycle: give the
  // whole fact-to-fact join a generous deadline (it would complete with
  // kDeadlineExceeded instead of hanging if the pipeline ever stalled).
  spec.deadline_ns =
      QueryRuntime::NowNs() +
      std::chrono::nanoseconds(std::chrono::seconds(30)).count();

  auto rs = engine.ExecuteGalaxyJoin(spec);
  if (!rs.ok()) {
    std::fprintf(stderr, "%s\n", rs.status().ToString().c_str());
    return 1;
  }
  rs->SortRows();
  std::printf("shipped orders >= 250, by region:\n%s",
              rs->ToString().c_str());
  return rs->num_rows() == 4 ? 0 : 1;
}
