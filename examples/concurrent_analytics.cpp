// Concurrent ad-hoc analytics on the Star Schema Benchmark — the paper's
// motivating scenario (§1): many analysts issuing ad-hoc star queries at
// once, without "workload fear".
//
// Generates an SSB database, then runs the same 48-query ad-hoc workload
// two ways and compares wall-clock time and per-query latency spread:
//   1. through CJOIN, 32 queries at a time, sharing one plan;
//   2. through the conventional query-at-a-time executor, 32 worker
//      threads with private plans.
//
// Both run behind the same simulated warehouse disk (DESIGN.md §2): the
// paper's fact table is far larger than RAM, so concurrent private scans
// contend for one device while CJOIN's single continuous scan does not.
//
//   $ ./examples/concurrent_analytics [scale_factor]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "baseline/qat_engine.h"
#include "common/clock.h"
#include "engine/query_engine.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "storage/sim_disk.h"

using namespace cjoin;

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  constexpr size_t kQueries = 48;
  constexpr size_t kConcurrency = 32;

  std::printf("Generating SSB data at sf=%.3f ...\n", sf);
  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db_or = ssb::Generate(gopts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  std::printf("  lineorder: %llu rows, total %.1f MB\n",
              static_cast<unsigned long long>(db->lineorder->NumRows()),
              db->TotalBytes() / 1e6);

  ssb::SsbQueries queries(*db);
  Rng rng(2026);
  auto workload_or = queries.MakeWorkload(kQueries, 0.01, rng);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "%s\n", workload_or.status().ToString().c_str());
    return 1;
  }
  const auto workload = std::move(workload_or).value();

  // ---- CJOIN: one shared always-on plan ------------------------------------
  RunningStat cjoin_latency;
  double cjoin_seconds = 0;
  {
    SimDisk disk;
    CJoinOperator::Options opts;
    opts.max_concurrent_queries = kConcurrency;
    opts.num_worker_threads = 4;
    opts.disk = &disk;
    CJoinOperator op(*db->star, opts);
    if (!op.Start().ok()) return 1;
    Stopwatch total;
    std::vector<std::unique_ptr<QueryHandle>> handles;
    size_t next = 0, done = 0;
    while (done < workload.size()) {
      while (handles.size() < kConcurrency && next < workload.size()) {
        auto h = op.Submit(workload[next++]);
        if (!h.ok()) return 1;
        handles.push_back(std::move(*h));
      }
      for (size_t i = 0; i < handles.size();) {
        if (handles[i]->Ready()) {
          (void)handles[i]->Wait();
          cjoin_latency.Add(handles[i]->ResponseSeconds());
          handles[i] = std::move(handles.back());
          handles.pop_back();
          ++done;
        } else {
          ++i;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    cjoin_seconds = total.ElapsedSeconds();
    op.Stop();
  }

  // ---- Query-at-a-time: private plans ---------------------------------------
  RunningStat qat_latency;
  double qat_seconds = 0;
  {
    SimDisk disk;
    Stopwatch total;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kConcurrency; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= workload.size()) return;
          Stopwatch w;
          QatOptions qopts;
          qopts.disk = &disk;
          qopts.reader_id = i;  // private scans contend for the device
          auto rs = ExecuteStarQuery(workload[i], qopts);
          if (!rs.ok()) std::abort();
          std::lock_guard<std::mutex> lk(mu);
          qat_latency.Add(w.ElapsedSeconds());
        }
      });
    }
    for (auto& t : threads) t.join();
    qat_seconds = total.ElapsedSeconds();
  }

  std::printf("\n%zu ad-hoc star queries, %zu concurrent:\n", kQueries,
              kConcurrency);
  std::printf("  %-18s %8.2fs total   latency avg %6.1fms  max %6.1fms\n",
              "CJOIN (shared)", cjoin_seconds, cjoin_latency.mean() * 1e3,
              cjoin_latency.max() * 1e3);
  std::printf("  %-18s %8.2fs total   latency avg %6.1fms  max %6.1fms\n",
              "query-at-a-time", qat_seconds, qat_latency.mean() * 1e3,
              qat_latency.max() * 1e3);
  std::printf("  speedup: %.1fx\n", qat_seconds / cjoin_seconds);
  return 0;
}
