// Concurrent ad-hoc analytics on the Star Schema Benchmark — the paper's
// motivating scenario (§1): many analysts issuing ad-hoc star queries at
// once, without "workload fear".
//
// Generates an SSB database, then runs the same 48-query ad-hoc workload
// two ways and compares wall-clock time and per-query latency spread:
//   1. through CJOIN, 32 queries at a time, sharing one plan;
//   2. through the conventional query-at-a-time executor, 32 worker
//      threads with private plans.
//
// Both run behind the same simulated warehouse disk (DESIGN.md §2): the
// paper's fact table is far larger than RAM, so concurrent private scans
// contend for one device while CJOIN's single continuous scan does not.
//
//   $ ./examples/concurrent_analytics [scale_factor]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "baseline/qat_engine.h"
#include "common/clock.h"
#include "engine/query_engine.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "storage/sim_disk.h"

using namespace cjoin;

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  constexpr size_t kQueries = 48;
  constexpr size_t kConcurrency = 32;

  std::printf("Generating SSB data at sf=%.3f ...\n", sf);
  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db_or = ssb::Generate(gopts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  std::printf("  lineorder: %llu rows, total %.1f MB\n",
              static_cast<unsigned long long>(db->lineorder->NumRows()),
              db->TotalBytes() / 1e6);

  ssb::SsbQueries queries(*db);
  Rng rng(2026);
  auto workload_or = queries.MakeWorkload(kQueries, 0.01, rng);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "%s\n", workload_or.status().ToString().c_str());
    return 1;
  }
  const auto workload = std::move(workload_or).value();

  // Both phases drive the same unified QueryEngine::Execute() API; only
  // the routing policy differs. Each phase gets a fresh engine over a
  // fresh simulated disk so device state doesn't leak across runs.
  auto run_phase = [&](RoutePolicy policy, RunningStat* latency,
                       SimDisk* disk) -> double {
    QueryEngine::Options eopts;
    eopts.cjoin.max_concurrent_queries = kConcurrency;
    eopts.cjoin.num_worker_threads = 4;
    eopts.cjoin.disk = disk;
    eopts.baseline.disk = disk;
    eopts.baseline_workers = kConcurrency;
    QueryEngine engine(eopts);
    {
      auto star = StarSchema::Make(
          db->lineorder.get(),
          std::vector<StarSchema::DimensionByName>{
              {db->date.get(), "lo_orderdate", "d_datekey"},
              {db->customer.get(), "lo_custkey", "c_custkey"},
              {db->supplier.get(), "lo_suppkey", "s_suppkey"},
              {db->part.get(), "lo_partkey", "p_partkey"},
          });
      if (!star.ok() ||
          !engine.RegisterStar("ssb", std::move(*star)).ok()) {
        std::abort();
      }
    }

    Stopwatch total;
    std::vector<std::unique_ptr<QueryTicket>> tickets;
    size_t next = 0, done = 0;
    while (done < workload.size()) {
      while (tickets.size() < kConcurrency && next < workload.size()) {
        QueryRequest req = QueryRequest::FromSpec(workload[next]);
        req.policy = policy;
        if (policy == RoutePolicy::kBaseline) {
          // Private scans contend for the device (per-query reader id).
          QatOptions qopts;
          qopts.disk = disk;
          qopts.reader_id = next;
          req.baseline_options = qopts;
        }
        ++next;
        auto t = engine.Execute(std::move(req));
        if (!t.ok()) std::abort();
        tickets.push_back(std::move(*t));
      }
      for (size_t i = 0; i < tickets.size();) {
        if (tickets[i]->Ready()) {
          if (!tickets[i]->Wait().ok()) std::abort();
          latency->Add(tickets[i]->ResponseSeconds());
          tickets[i] = std::move(tickets.back());
          tickets.pop_back();
          ++done;
        } else {
          ++i;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return total.ElapsedSeconds();
  };

  // ---- CJOIN: one shared always-on plan ------------------------------------
  RunningStat cjoin_latency;
  double cjoin_seconds = 0;
  {
    SimDisk disk;
    cjoin_seconds = run_phase(RoutePolicy::kCJoin, &cjoin_latency, &disk);
  }

  // ---- Query-at-a-time: private plans ---------------------------------------
  RunningStat qat_latency;
  double qat_seconds = 0;
  {
    SimDisk disk;
    qat_seconds = run_phase(RoutePolicy::kBaseline, &qat_latency, &disk);
  }

  std::printf("\n%zu ad-hoc star queries, %zu concurrent:\n", kQueries,
              kConcurrency);
  std::printf("  %-18s %8.2fs total   latency avg %6.1fms  max %6.1fms\n",
              "CJOIN (shared)", cjoin_seconds, cjoin_latency.mean() * 1e3,
              cjoin_latency.max() * 1e3);
  std::printf("  %-18s %8.2fs total   latency avg %6.1fms  max %6.1fms\n",
              "query-at-a-time", qat_seconds, qat_latency.mean() * 1e3,
              qat_latency.max() * 1e3);
  std::printf("  speedup: %.1fx\n", qat_seconds / cjoin_seconds);
  return 0;
}
