// Quickstart: build a tiny star schema, start the engine, and run a few
// concurrent star queries through CJOIN — both via the structured
// StarQuerySpec API and via SQL text.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>

#include "engine/query_engine.h"

using namespace cjoin;

int main() {
  // ---- 1. Create tables -----------------------------------------------------
  // A star schema: fact table `sales` with dimensions `product` & `store`.
  Schema product_schema;
  product_schema.AddInt32("p_id").AddChar("p_cat", 8).AddInt32("p_price");
  Table product("product", product_schema);
  for (int p = 1; p <= 8; ++p) {
    uint8_t* row = product.AppendUninitialized();
    product_schema.SetInt32(row, 0, p);
    product_schema.SetChar(row, 1, p % 2 == 0 ? "gadget" : "widget");
    product_schema.SetInt32(row, 2, p * 100);
  }

  Schema store_schema;
  store_schema.AddInt32("s_id").AddChar("s_region", 8);
  Table store("store", store_schema);
  for (int s = 1; s <= 4; ++s) {
    uint8_t* row = store.AppendUninitialized();
    store_schema.SetInt32(row, 0, s);
    store_schema.SetChar(row, 1, s <= 2 ? "EAST" : "WEST");
  }

  Schema sales_schema;
  sales_schema.AddInt32("f_pid").AddInt32("f_sid").AddInt32("f_amount");
  Table sales("sales", sales_schema);
  for (int i = 0; i < 100000; ++i) {
    uint8_t* row = sales.AppendUninitialized();
    sales_schema.SetInt32(row, 0, i % 8 + 1);
    sales_schema.SetInt32(row, 1, i % 4 + 1);
    sales_schema.SetInt32(row, 2, i % 50 + 1);
  }

  // ---- 2. Register the star with the engine --------------------------------
  QueryEngine engine;
  auto star = StarSchema::Make(
      &sales, std::vector<StarSchema::DimensionByName>{
                  {&product, "f_pid", "p_id"},
                  {&store, "f_sid", "s_id"},
              });
  if (!star.ok()) {
    std::fprintf(stderr, "star: %s\n", star.status().ToString().c_str());
    return 1;
  }
  if (Status st = engine.RegisterStar("sales", std::move(*star)); !st.ok()) {
    std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- 3. Execute concurrent queries through the unified API ---------------
  // Every query goes through Execute() and returns the same non-blocking
  // QueryTicket; RoutePolicy::kCJoin pins them to the shared pipeline so
  // they all ride one physical plan (kAuto would let the cost-based
  // router pick per query).
  const char* queries[] = {
      "SELECT s_region, COUNT(*) AS n, SUM(f_amount) AS total "
      "FROM sales, store WHERE f_sid = s_id GROUP BY s_region",

      "SELECT p_cat, AVG(f_amount) AS avg_amount "
      "FROM sales, product WHERE f_pid = p_id AND p_price >= 300 "
      "GROUP BY p_cat",

      "SELECT COUNT(*) AS east_gadgets FROM sales, product, store "
      "WHERE f_pid = p_id AND f_sid = s_id AND p_cat = 'gadget' "
      "AND s_region = 'EAST'",
  };

  std::vector<std::unique_ptr<QueryTicket>> tickets;
  for (const char* sql : queries) {
    QueryRequest req = QueryRequest::Sql("sales", sql);
    req.policy = RoutePolicy::kCJoin;
    auto t = engine.Execute(std::move(req));
    if (!t.ok()) {
      std::fprintf(stderr, "execute: %s\n", t.status().ToString().c_str());
      return 1;
    }
    tickets.push_back(std::move(*t));
  }

  // ---- 4. Collect results ---------------------------------------------------
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto rs = tickets[i]->Wait();
    if (!rs.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", i,
                   rs.status().ToString().c_str());
      return 1;
    }
    rs->SortRows();
    std::printf("--- query %zu via %s (%.2f ms, %llu tuples consumed)\n%s\n",
                i + 1, RouteChoiceName(tickets[i]->route()),
                tickets[i]->ResponseSeconds() * 1e3,
                static_cast<unsigned long long>(rs->tuples_consumed),
                rs->ToString().c_str());
  }
  return 0;
}
