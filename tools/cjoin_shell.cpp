// cjoin_shell: a small interactive / batch SQL shell over an SSB
// database loaded from ssb_datagen output (or generated on the fly).
//
//   $ cjoin_shell --data /tmp/ssb            # from ssb_datagen files
//   $ cjoin_shell --sf 0.01                  # generate in memory
//   cjoin> SELECT d_year, SUM(lo_revenue) AS revenue
//      ...> FROM lineorder, date WHERE lo_orderdate = d_datekey
//      ...> GROUP BY d_year;
//
// Statements end with ';'. Meta commands: \route [auto|cjoin|baseline]
// selects the routing policy (\baseline is a legacy toggle), \shards [N]
// shows or re-shards the fact table across N parallel CJOIN pipelines,
// \stats prints pipeline statistics (per shard), \q quits. `EXPLAIN
// ROUTE <sql>` prints the cost-based router's estimates — including the
// shard count and baseline queue backlog — and the chosen path without
// running the query.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/clock.h"
#include "engine/query_engine.h"
#include "ssb/generator.h"
#include "storage/table_file.h"

using namespace cjoin;

namespace {

struct LoadedDb {
  // Either generated (owns everything via SsbDatabase) or loaded from
  // files (owns the five tables directly).
  std::unique_ptr<ssb::SsbDatabase> generated;
  std::vector<std::unique_ptr<Table>> loaded;

  const Table* Find(const std::string& name) const {
    if (generated != nullptr) {
      if (name == "date") return generated->date.get();
      if (name == "customer") return generated->customer.get();
      if (name == "supplier") return generated->supplier.get();
      if (name == "part") return generated->part.get();
      if (name == "lineorder") return generated->lineorder.get();
      return nullptr;
    }
    for (const auto& t : loaded) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }
};

Result<StarSchema> WireStar(const LoadedDb& db) {
  const Table* lo = db.Find("lineorder");
  const Table* d = db.Find("date");
  const Table* c = db.Find("customer");
  const Table* s = db.Find("supplier");
  const Table* p = db.Find("part");
  if (!lo || !d || !c || !s || !p) {
    return Status::NotFound("missing one of the five SSB tables");
  }
  return StarSchema::Make(
      lo, std::vector<StarSchema::DimensionByName>{
              {d, "lo_orderdate", "d_datekey"},
              {c, "lo_custkey", "c_custkey"},
              {s, "lo_suppkey", "s_suppkey"},
              {p, "lo_partkey", "p_partkey"},
          });
}

/// Case-insensitive prefix match; returns the remainder after the prefix
/// (skipping following whitespace) or nullptr.
const char* MatchPrefix(const std::string& text, const char* prefix) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  for (const char* p = prefix; *p != '\0'; ++p, ++i) {
    if (i >= text.size() ||
        std::toupper(static_cast<unsigned char>(text[i])) != *p) {
      return nullptr;
    }
  }
  if (i < text.size() &&
      !std::isspace(static_cast<unsigned char>(text[i]))) {
    return nullptr;
  }
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return text.c_str() + i;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--data") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sf F | --data DIR]\n", argv[0]);
      return 2;
    }
  }

  LoadedDb db;
  if (data_dir.empty()) {
    std::printf("generating SSB sf=%g in memory...\n", sf);
    ssb::GenOptions gopts;
    gopts.scale_factor = sf;
    auto g = ssb::Generate(gopts);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    db.generated = std::move(g).value();
  } else {
    for (const char* name :
         {"date", "customer", "supplier", "part", "lineorder"}) {
      auto t = LoadTable(data_dir + "/" + std::string(name) + ".cjtb");
      if (!t.ok()) {
        std::fprintf(stderr, "load %s: %s\n", name,
                     t.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded %-10s %9llu rows\n", name,
                  static_cast<unsigned long long>((*t)->NumRows()));
      db.loaded.push_back(std::move(*t));
    }
  }

  auto star = WireStar(db);
  if (!star.ok()) {
    std::fprintf(stderr, "%s\n", star.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine;
  if (Status st = engine.RegisterStar("ssb", std::move(*star)); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf(
      "CJOIN shell — star 'ssb' ready. End statements with ';'. "
      "\\route [auto|cjoin|baseline] selects the routing policy, "
      "\\shards [N] shows or re-shards the fact table across N parallel "
      "CJOIN pipelines (in-flight CJOIN queries abort), EXPLAIN ROUTE "
      "<sql> shows the optimizer choice (shard-aware costs), \\stats "
      "shows per-shard pipeline stats, \\q quits.\n");
  RoutePolicy policy = RoutePolicy::kAuto;
  std::string buffer;
  std::string line;
  while (true) {
    std::fputs(buffer.empty() ? "cjoin> " : "   ...> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q" || line == "\\quit") break;
      if (line == "\\baseline") {  // legacy toggle
        policy = policy == RoutePolicy::kBaseline ? RoutePolicy::kCJoin
                                                  : RoutePolicy::kBaseline;
        std::printf("routing policy: %s\n", RoutePolicyName(policy));
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\ROUTE")) {
        if (std::strcmp(arg, "auto") == 0) {
          policy = RoutePolicy::kAuto;
        } else if (std::strcmp(arg, "cjoin") == 0) {
          policy = RoutePolicy::kCJoin;
        } else if (std::strcmp(arg, "baseline") == 0) {
          policy = RoutePolicy::kBaseline;
        } else if (*arg != '\0') {
          std::printf("usage: \\route [auto|cjoin|baseline]\n");
          continue;
        }
        std::printf("routing policy: %s\n", RoutePolicyName(policy));
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\SHARDS")) {
        if (*arg != '\0') {
          const long n = std::atol(arg);
          if (n < 1) {
            std::printf("usage: \\shards [N>=1]\n");
            continue;
          }
          if (Status st =
                  engine.SetShardCount("ssb", static_cast<size_t>(n));
              !st.ok()) {
            std::printf("error: %s\n", st.ToString().c_str());
            continue;
          }
        }
        std::printf("shards: %zu\n", engine.ShardCount("ssb").value());
        continue;
      }
      if (line == "\\stats") {
        auto op = engine.OperatorFor("ssb");
        if (op.ok()) {
          const auto s = (*op)->GetStats();
          std::printf(
              "shards %zu | rows scanned %llu | full-pool laps %llu | "
              "active queries %zu | completed %llu | cancelled %llu | "
              "routed %llu | reorders %llu\n",
              (*op)->num_shards(),
              static_cast<unsigned long long>(s.rows_scanned),
              static_cast<unsigned long long>(s.table_laps),
              s.active_queries,
              static_cast<unsigned long long>(s.queries_completed),
              static_cast<unsigned long long>(s.queries_cancelled),
              static_cast<unsigned long long>(s.tuples_routed),
              static_cast<unsigned long long>(s.filter_reorders));
          const auto per_shard = (*op)->PerShardStats();
          if (per_shard.size() > 1) {
            for (size_t i = 0; i < per_shard.size(); ++i) {
              std::printf(
                  "  shard %zu: rows %llu | laps %llu | routed %llu\n", i,
                  static_cast<unsigned long long>(per_shard[i].rows_scanned),
                  static_cast<unsigned long long>(per_shard[i].table_laps),
                  static_cast<unsigned long long>(
                      per_shard[i].tuples_routed));
            }
          }
        }
        continue;
      }
      std::printf("unknown meta command: %s\n", line.c_str());
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (buffer.find(';') == std::string::npos) continue;

    std::string stmt = std::move(buffer);
    buffer.clear();
    if (const size_t semi = stmt.find(';'); semi != std::string::npos) {
      stmt.resize(semi);
    }

    // EXPLAIN ROUTE <sql>: print the router's verdict, don't run.
    if (const char* sql = MatchPrefix(stmt, "EXPLAIN ROUTE")) {
      auto decision = engine.ExplainRoute("ssb", sql);
      if (!decision.ok()) {
        std::printf("error: %s\n", decision.status().ToString().c_str());
      } else {
        std::printf("%s\n", decision->ToString().c_str());
      }
      continue;
    }

    Stopwatch watch;
    QueryRequest req = QueryRequest::Sql("ssb", stmt);
    req.policy = policy;
    Result<ResultSet> rs = [&]() -> Result<ResultSet> {
      CJOIN_ASSIGN_OR_RETURN(auto ticket, engine.Execute(std::move(req)));
      Result<ResultSet> result = ticket->Wait();
      if (result.ok()) {
        std::printf("[%s]\n", RouteChoiceName(ticket->route()));
      }
      return result;
    }();
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    rs->SortRows();
    std::printf("%s(%zu row%s, %.1f ms)\n", rs->ToString(40).c_str(),
                rs->num_rows(), rs->num_rows() == 1 ? "" : "s",
                watch.ElapsedSeconds() * 1e3);
  }
  return 0;
}
