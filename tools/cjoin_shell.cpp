// cjoin_shell: a small interactive / batch SQL shell over an SSB
// database loaded from ssb_datagen output (or generated on the fly).
//
//   $ cjoin_shell --data /tmp/ssb            # from ssb_datagen files
//   $ cjoin_shell --sf 0.01                  # generate in memory
//   cjoin> SELECT d_year, SUM(lo_revenue) AS revenue
//      ...> FROM lineorder, date WHERE lo_orderdate = d_datekey
//      ...> GROUP BY d_year;
//
// Statements end with ';'. Meta commands: \route [auto|cjoin|baseline]
// selects the routing policy (\baseline is a legacy toggle), \shards [N]
// shows or re-shards the fact table across N parallel CJOIN pipelines,
// \stats prints pipeline statistics (per shard), \tenant [NAME] shows or
// switches the tenant subsequent statements run as, \quota NAME
// key=value... reconfigures that tenant's admission quota on the live
// engine, \admission prints per-tenant admission counters, \q quits.
// `EXPLAIN ROUTE <sql>` prints the cost-based router's estimates —
// including the shard count, baseline queue backlog, and the admission
// verdict (admitted / queued / shed) for the current tenant — and the
// chosen path without running the query.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/clock.h"
#include "engine/query_engine.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "ssb/generator.h"
#include "storage/table_file.h"

using namespace cjoin;

namespace {

struct LoadedDb {
  // Either generated (owns everything via SsbDatabase) or loaded from
  // files (owns the five tables directly).
  std::unique_ptr<ssb::SsbDatabase> generated;
  std::vector<std::unique_ptr<Table>> loaded;

  const Table* Find(const std::string& name) const {
    if (generated != nullptr) {
      if (name == "date") return generated->date.get();
      if (name == "customer") return generated->customer.get();
      if (name == "supplier") return generated->supplier.get();
      if (name == "part") return generated->part.get();
      if (name == "lineorder") return generated->lineorder.get();
      return nullptr;
    }
    for (const auto& t : loaded) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }
};

Result<StarSchema> WireStar(const LoadedDb& db) {
  const Table* lo = db.Find("lineorder");
  const Table* d = db.Find("date");
  const Table* c = db.Find("customer");
  const Table* s = db.Find("supplier");
  const Table* p = db.Find("part");
  if (!lo || !d || !c || !s || !p) {
    return Status::NotFound("missing one of the five SSB tables");
  }
  return StarSchema::Make(
      lo, std::vector<StarSchema::DimensionByName>{
              {d, "lo_orderdate", "d_datekey"},
              {c, "lo_custkey", "c_custkey"},
              {s, "lo_suppkey", "s_suppkey"},
              {p, "lo_partkey", "p_partkey"},
          });
}

/// Parses "key=value" quota arguments into `quota`; returns false (with
/// a usage message) on an unknown key or malformed value.
bool ParseQuotaArgs(const char* args, TenantQuota* quota) {
  std::string text(args);
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    size_t end = pos;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    const std::string kv = text.substr(pos, end - pos);
    pos = end;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      std::printf("malformed quota argument '%s' (want key=value)\n",
                  kv.c_str());
      return false;
    }
    const std::string key = kv.substr(0, eq);
    const char* value_text = kv.c_str() + eq + 1;
    char* value_end = nullptr;
    const double value = std::strtod(value_text, &value_end);
    if (value_end == value_text || *value_end != '\0' || value < 0.0) {
      // atof-style silent zero would turn a typo into "unlimited".
      std::printf("malformed quota value in '%s' (want key=NUMBER)\n",
                  kv.c_str());
      return false;
    }
    if (key == "rate") {
      quota->rate_per_sec = value;
    } else if (key == "burst") {
      quota->burst = value;
    } else if (key == "cjoin") {
      quota->max_inflight_cjoin = static_cast<size_t>(value);
    } else if (key == "baseline") {
      quota->max_queued_baseline = static_cast<size_t>(value);
    } else if (key == "weight") {
      quota->weight = value;
    } else if (key == "wait") {
      quota->max_wait_queue = static_cast<size_t>(value);
    } else if (key == "wait_ms") {
      quota->max_wait_ns = static_cast<int64_t>(value * 1e6);
    } else {
      std::printf(
          "unknown quota key '%s' (rate, burst, cjoin, baseline, weight, "
          "wait, wait_ms)\n",
          key.c_str());
      return false;
    }
  }
  return true;
}

void PrintQuota(const std::string& name, const TenantQuota& q) {
  std::printf(
      "tenant %-12s rate %s burst %.0f | cjoin slots %s | baseline queue "
      "%s | weight %.2f | wait queue %zu (%.0f ms)\n",
      name.c_str(),
      q.rate_per_sec <= 0 ? "unlimited"
                          : std::to_string(q.rate_per_sec).c_str(),
      q.burst, q.max_inflight_cjoin == 0
                   ? "unlimited"
                   : std::to_string(q.max_inflight_cjoin).c_str(),
      q.max_queued_baseline == 0
          ? "unlimited"
          : std::to_string(q.max_queued_baseline).c_str(),
      q.weight, q.max_wait_queue,
      static_cast<double>(q.max_wait_ns) * 1e-6);
}

/// Case-insensitive prefix match; returns the remainder after the prefix
/// (skipping following whitespace) or nullptr.
const char* MatchPrefix(const std::string& text, const char* prefix) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  for (const char* p = prefix; *p != '\0'; ++p, ++i) {
    if (i >= text.size() ||
        std::toupper(static_cast<unsigned char>(text[i])) != *p) {
      return nullptr;
    }
  }
  if (i < text.size() &&
      !std::isspace(static_cast<unsigned char>(text[i]))) {
    return nullptr;
  }
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return text.c_str() + i;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--data") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sf F | --data DIR]\n", argv[0]);
      return 2;
    }
  }

  LoadedDb db;
  if (data_dir.empty()) {
    std::printf("generating SSB sf=%g in memory...\n", sf);
    ssb::GenOptions gopts;
    gopts.scale_factor = sf;
    auto g = ssb::Generate(gopts);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    db.generated = std::move(g).value();
  } else {
    for (const char* name :
         {"date", "customer", "supplier", "part", "lineorder"}) {
      auto t = LoadTable(data_dir + "/" + std::string(name) + ".cjtb");
      if (!t.ok()) {
        std::fprintf(stderr, "load %s: %s\n", name,
                     t.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded %-10s %9llu rows\n", name,
                  static_cast<unsigned long long>((*t)->NumRows()));
      db.loaded.push_back(std::move(*t));
    }
  }

  auto star = WireStar(db);
  if (!star.ok()) {
    std::fprintf(stderr, "%s\n", star.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine;
  if (Status st = engine.RegisterStar("ssb", std::move(*star)); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf(
      "CJOIN shell — star 'ssb' ready. End statements with ';'. "
      "\\route [auto|cjoin|baseline] selects the routing policy, "
      "\\shards [N] shows or re-shards the fact table across N parallel "
      "CJOIN pipelines (in-flight CJOIN queries abort), \\tenant [NAME] "
      "shows or switches the submitting tenant, \\quota NAME key=value... "
      "rebalances that tenant's admission quota live (keys: rate, burst, "
      "cjoin, baseline, weight, wait, wait_ms), \\admission shows "
      "per-tenant admission counters, \\calibration shows the router "
      "feedback loop's fitted per-route cost models, EXPLAIN ROUTE <sql> "
      "shows the optimizer choice (shard-, backlog-, and admission-aware, "
      "with static AND calibrated costs), \\stats shows per-shard "
      "pipeline stats, \\metrics dumps the engine metrics registry "
      "(Prometheus text), \\trace shows the last query's span trace, "
      "\\slowlog [MS] shows the slow-query log or sets its capture "
      "threshold, \\q quits.\n");
  RoutePolicy policy = RoutePolicy::kAuto;
  std::string tenant;  // empty = the "default" tenant
  std::shared_ptr<obs::QueryTrace> last_trace;  // for \trace
  std::string buffer;
  std::string line;
  while (true) {
    std::fputs(buffer.empty() ? "cjoin> " : "   ...> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q" || line == "\\quit") break;
      if (line == "\\baseline") {  // legacy toggle
        policy = policy == RoutePolicy::kBaseline ? RoutePolicy::kCJoin
                                                  : RoutePolicy::kBaseline;
        std::printf("routing policy: %s\n", RoutePolicyName(policy));
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\ROUTE")) {
        if (std::strcmp(arg, "auto") == 0) {
          policy = RoutePolicy::kAuto;
        } else if (std::strcmp(arg, "cjoin") == 0) {
          policy = RoutePolicy::kCJoin;
        } else if (std::strcmp(arg, "baseline") == 0) {
          policy = RoutePolicy::kBaseline;
        } else if (*arg != '\0') {
          std::printf("usage: \\route [auto|cjoin|baseline]\n");
          continue;
        }
        std::printf("routing policy: %s\n", RoutePolicyName(policy));
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\SHARDS")) {
        if (*arg != '\0') {
          const long n = std::atol(arg);
          if (n < 1) {
            std::printf("usage: \\shards [N>=1]\n");
            continue;
          }
          if (Status st =
                  engine.SetShardCount("ssb", static_cast<size_t>(n));
              !st.ok()) {
            std::printf("error: %s\n", st.ToString().c_str());
            continue;
          }
        }
        std::printf("shards: %zu\n", engine.ShardCount("ssb").value());
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\TENANT")) {
        if (*arg != '\0') tenant = arg;
        std::printf("tenant: %s\n", tenant.empty() ? "default" : tenant.c_str());
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\QUOTA")) {
        // First token is the tenant name; the rest are key=value pairs.
        std::string rest(arg);
        size_t sp = 0;
        while (sp < rest.size() &&
               !std::isspace(static_cast<unsigned char>(rest[sp]))) {
          ++sp;
        }
        const std::string name = rest.substr(0, sp);
        if (name.empty()) {
          std::printf(
              "usage: \\quota NAME [rate=R] [burst=B] [cjoin=N] "
              "[baseline=N] [weight=W] [wait=N] [wait_ms=MS]\n");
          continue;
        }
        TenantQuota quota = engine.GetTenantQuota(name);
        if (!ParseQuotaArgs(rest.c_str() + sp, &quota)) continue;
        if (Status st = engine.SetTenantQuota(name, quota); !st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          continue;
        }
        PrintQuota(name, engine.GetTenantQuota(name));
        continue;
      }
      if (line == "\\admission") {
        const auto stats = engine.AdmissionStats();
        std::printf(
            "engine: %zu CJOIN in flight | %zu baseline in system | "
            "%zu waiting\n",
            stats.total_cjoin_inflight, stats.total_baseline_in_system,
            stats.total_waiting);
        if (stats.tenants.empty()) {
          std::printf("(no tenants have submitted yet)\n");
        }
        for (const auto& t : stats.tenants) {
          std::printf(
              "  %-12s cjoin %zu | baseline %zu | waiting %zu | admitted "
              "%llu | queued %llu | shed %llu | released %llu\n",
              t.tenant.c_str(), t.inflight_cjoin, t.baseline_in_system,
              t.waiting, static_cast<unsigned long long>(t.admitted),
              static_cast<unsigned long long>(t.queued),
              static_cast<unsigned long long>(t.shed),
              static_cast<unsigned long long>(t.released));
          PrintQuota(t.tenant, t.quota);
        }
        continue;
      }
      if (line == "\\calibration") {
        const RouterStats stats = engine.GetRouterStats();
        std::printf("%s\n", stats.ToString().c_str());
        continue;
      }
      if (line == "\\stats") {
        auto op = engine.OperatorFor("ssb");
        if (op.ok()) {
          const auto s = (*op)->GetStats();
          std::printf(
              "shards %zu | rows scanned %llu | full-pool laps %llu | "
              "active queries %zu | completed %llu | cancelled %llu | "
              "routed %llu | reorders %llu\n",
              (*op)->num_shards(),
              static_cast<unsigned long long>(s.rows_scanned),
              static_cast<unsigned long long>(s.table_laps),
              s.active_queries,
              static_cast<unsigned long long>(s.queries_completed),
              static_cast<unsigned long long>(s.queries_cancelled),
              static_cast<unsigned long long>(s.tuples_routed),
              static_cast<unsigned long long>(s.filter_reorders));
          const auto per_shard = (*op)->PerShardStats();
          if (per_shard.size() > 1) {
            for (size_t i = 0; i < per_shard.size(); ++i) {
              std::printf(
                  "  shard %zu: rows %llu | laps %llu | routed %llu\n", i,
                  static_cast<unsigned long long>(per_shard[i].rows_scanned),
                  static_cast<unsigned long long>(per_shard[i].table_laps),
                  static_cast<unsigned long long>(
                      per_shard[i].tuples_routed));
            }
          }
        }
        continue;
      }
      if (line == "\\metrics") {
        std::fputs(obs::MetricsRegistry::Global().RenderPrometheus().c_str(),
                   stdout);
        continue;
      }
      if (const char* arg = MatchPrefix(line, "\\SLOWLOG")) {
        if (*arg != '\0') {
          // \slowlog <ms>: (re)arm the threshold; 0 disables capture.
          char* end = nullptr;
          const double ms = std::strtod(arg, &end);
          if (end == arg || *end != '\0' || ms < 0) {
            std::printf("usage: \\slowlog [THRESHOLD_MS]\n");
            continue;
          }
          engine.set_slow_query_threshold(
              std::chrono::nanoseconds(static_cast<int64_t>(ms * 1e6)));
          std::printf("slow-query threshold: %g ms%s\n", ms,
                      ms == 0 ? " (capture disabled)" : "");
          continue;
        }
        const int64_t thresh = engine.slow_query_threshold().count();
        const auto entries = engine.slow_query_log().Entries();
        std::printf("slow-query log: threshold %g ms | %llu captured | "
                    "%zu retained\n",
                    static_cast<double>(thresh) * 1e-6,
                    static_cast<unsigned long long>(
                        engine.slow_query_log().total_captured()),
                    entries.size());
        if (thresh == 0) {
          std::printf("(capture disabled — set with \\slowlog <ms>)\n");
        }
        for (size_t i = 0; i < entries.size(); ++i) {
          const auto& e = entries[i];
          std::printf("#%zu  %.1f ms  route=%s  tenant=%s\n%s", i,
                      static_cast<double>(e.latency_ns) * 1e-6,
                      e.route.c_str(),
                      e.tenant.empty() ? "default" : e.tenant.c_str(),
                      e.rendered.c_str());
        }
        continue;
      }
      if (line == "\\trace") {
        if (last_trace == nullptr) {
          std::printf("no trace recorded yet%s\n",
                      obs::MetricsEnabled()
                          ? " (run a query first)"
                          : " (metrics are disabled in this build)");
        } else {
          std::fputs(last_trace->Render().c_str(), stdout);
        }
        continue;
      }
      std::printf("unknown meta command: %s\n", line.c_str());
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (buffer.find(';') == std::string::npos) continue;

    std::string stmt = std::move(buffer);
    buffer.clear();
    if (const size_t semi = stmt.find(';'); semi != std::string::npos) {
      stmt.resize(semi);
    }

    // EXPLAIN ROUTE <sql>: print the router's verdict, don't run.
    if (const char* sql = MatchPrefix(stmt, "EXPLAIN ROUTE")) {
      auto decision = engine.ExplainRoute("ssb", sql, tenant);
      if (!decision.ok()) {
        std::printf("error: %s\n", decision.status().ToString().c_str());
      } else {
        std::printf("%s\n", decision->ToString().c_str());
      }
      continue;
    }

    Stopwatch watch;
    QueryRequest req = QueryRequest::Sql("ssb", stmt);
    req.policy = policy;
    req.tenant = tenant;
    Result<ResultSet> rs = [&]() -> Result<ResultSet> {
      CJOIN_ASSIGN_OR_RETURN(auto ticket, engine.Execute(std::move(req)));
      Result<ResultSet> result = ticket->Wait();
      last_trace = ticket->trace();
      if (result.ok()) {
        std::printf("[%s]\n", RouteChoiceName(ticket->route()));
      } else if (!ticket->decision().admission.empty() &&
                 result.status().code() == StatusCode::kResourceExhausted) {
        std::printf("[%s]\n", ticket->decision().admission.c_str());
      }
      return result;
    }();
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    rs->SortRows();
    std::printf("%s(%zu row%s, %.1f ms)\n", rs->ToString(40).c_str(),
                rs->num_rows(), rs->num_rows() == 1 ? "" : "s",
                watch.ElapsedSeconds() * 1e3);
  }
  return 0;
}
