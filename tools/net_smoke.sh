#!/usr/bin/env bash
# Loopback smoke test for the network serving front-end.
#
# Starts cjoin_server on an ephemeral port, then drives cjoin_client in
# scripted mode: query the fact-row count, INGEST one row, and poll
# re-queries until the continuous scan's next lap makes the append
# visible (MVCC visibility is lap-based, so the new row appears at the
# scan's next commit point, not instantly). Finishes with a STATS pull
# and a SIGTERM to exercise the graceful drain path.
#
#   $ tools/net_smoke.sh [BUILD_DIR]       # default: build

set -u
BUILD="${1:-build}"
SERVER="$BUILD/cjoin_server"
CLIENT="$BUILD/cjoin_client"
LOG="$(mktemp -t cjoin_server.XXXXXX.log)"
TRACE="${TRACE_OUT:-$BUILD/trace.json}"

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$LOG" >&2
  exit 1
}

[ -x "$SERVER" ] || fail "$SERVER not built"
[ -x "$CLIENT" ] || fail "$CLIENT not built"

rm -f "$TRACE"
"$SERVER" --sf 0.005 --port 0 --trace-out "$TRACE" --slow-ms 0 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null' EXIT

# The server prints "listening on HOST:PORT" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9][0-9]*\).*/\1/p' "$LOG" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never reported its port"
echo "server up on port $PORT"

count() {
  # COUNT(*) result: header line, one value line, then the row-count
  # trailer — take the first all-digits line.
  "$CLIENT" --port "$PORT" --exec "SELECT COUNT(*) AS n FROM lineorder;" \
    | grep -m1 -E '^[0-9]+$'
}

BEFORE=$(count) || fail "initial count query failed"
echo "rows before ingest: $BEFORE"
[ "$BEFORE" -gt 0 ] || fail "fact table is empty"

# One 17-column lineorder row; CHAR columns must be quoted strings.
"$CLIENT" --port "$PORT" --exec \
  "\\ingest ssb 1,1,1,1,1,19920115,'1-URGENT','0',10,100,1000,2,90,50,3,19920215,'TRUCK'" \
  || fail "ingest failed"

# Lap-based visibility: poll until the count advances.
AFTER="$BEFORE"
for _ in $(seq 1 60); do
  AFTER=$(count) || fail "re-query failed"
  [ "$AFTER" -gt "$BEFORE" ] && break
  sleep 0.5
done
[ "$AFTER" -eq $((BEFORE + 1)) ] || fail "ingested row never became visible ($BEFORE -> $AFTER)"
echo "rows after ingest: $AFTER"

STATS=$("$CLIENT" --port "$PORT" --exec "\\stats") || fail "stats failed"
echo "$STATS" | grep -q '"queries_ok"' || fail "stats JSON missing queries_ok: $STATS"

kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not drain and exit on SIGTERM"
wait "$SERVER_PID"
RC=$?
trap - EXIT
[ "$RC" -eq 0 ] || fail "server exited with status $RC"

# The drain path writes the flight-recorder timeline; it must be valid
# JSON (loadable in Perfetto / chrome://tracing).
[ -s "$TRACE" ] || fail "server did not write trace to $TRACE"
python3 -m json.tool "$TRACE" >/dev/null 2>&1 || fail "trace $TRACE is not valid JSON"
grep -q '"traceEvents"' "$TRACE" || fail "trace $TRACE missing traceEvents"
echo "trace OK: $TRACE ($(wc -c <"$TRACE") bytes)"

echo "SMOKE OK: $BEFORE -> $AFTER rows, clean drain"
