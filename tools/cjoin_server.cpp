// cjoin_server: the network serving front-end over an SSB database.
//
//   $ cjoin_server --sf 0.01 --port 7744          # generate in memory
//   $ cjoin_server --data /tmp/ssb --port 0       # from ssb_datagen files
//
// Registers the database as star 'ssb' and serves the length-prefixed
// binary protocol (see README "Wire protocol"): HELLO binds the session
// to a tenant, QUERY streams ROW_BATCH frames + QUERY_DONE, INGEST
// appends fact rows through the MVCC commit path, STATS reports engine
// and server counters. Every query flows through the engine's admission
// controller and cost-based router exactly as linked-in callers do.
//
// SIGINT/SIGTERM drain gracefully: new submissions are shed (kAborted),
// in-flight queries complete and stream out (up to --drain-ms), then the
// engine stops.
//
// With --port 0 the kernel picks an ephemeral port; the chosen port is
// printed as "listening on HOST:PORT" (scripts and CI parse this line).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "engine/query_engine.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "ssb/generator.h"
#include "storage/table_file.h"

using namespace cjoin;

namespace {

std::atomic<int> g_signal{0};

void OnSignal(int sig) { g_signal.store(sig); }

struct LoadedDb {
  std::unique_ptr<ssb::SsbDatabase> generated;
  std::vector<std::unique_ptr<Table>> loaded;

  const Table* Find(const std::string& name) const {
    if (generated != nullptr) {
      if (name == "date") return generated->date.get();
      if (name == "customer") return generated->customer.get();
      if (name == "supplier") return generated->supplier.get();
      if (name == "part") return generated->part.get();
      if (name == "lineorder") return generated->lineorder.get();
      return nullptr;
    }
    for (const auto& t : loaded) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }
};

Result<StarSchema> WireStar(const LoadedDb& db) {
  const Table* lo = db.Find("lineorder");
  const Table* d = db.Find("date");
  const Table* c = db.Find("customer");
  const Table* s = db.Find("supplier");
  const Table* p = db.Find("part");
  if (!lo || !d || !c || !s || !p) {
    return Status::NotFound("missing one of the five SSB tables");
  }
  return StarSchema::Make(
      lo, std::vector<StarSchema::DimensionByName>{
              {d, "lo_orderdate", "d_datekey"},
              {c, "lo_custkey", "c_custkey"},
              {s, "lo_suppkey", "s_suppkey"},
              {p, "lo_partkey", "p_partkey"},
          });
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sf F | --data DIR] [--host H] [--port P] "
               "[--shards N] [--workers N] [--drain-ms MS] "
               "[--metrics-dump PATH|-] [--metrics-interval SEC] "
               "[--trace-out PATH] [--slow-ms MS]\n",
               argv0);
  return 2;
}

/// One Prometheus scrape to `path`, written atomically (tmp + rename) so
/// a concurrent reader never sees a torn file.
bool WriteMetricsFile(QueryEngine& engine, const std::string& path) {
  const std::string text = engine.metrics().RenderPrometheus();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  std::string data_dir;
  net::CjoinServer::Options sopts;
  size_t shards = 1;
  int drain_ms = 10000;
  std::string metrics_dump;  // "-" = stdout
  int metrics_interval_sec = 0;  // 0 = final dump only
  std::string trace_out;
  int slow_ms = 0;  // 0 = slow-query log off

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--data") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      sopts.host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      sopts.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      sopts.workers = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--drain-ms") == 0 && i + 1 < argc) {
      drain_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0 && i + 1 < argc) {
      metrics_dump = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 &&
               i + 1 < argc) {
      metrics_interval_sec = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc) {
      slow_ms = std::atoi(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  LoadedDb db;
  if (data_dir.empty()) {
    std::printf("generating SSB sf=%g in memory...\n", sf);
    ssb::GenOptions gopts;
    gopts.scale_factor = sf;
    auto g = ssb::Generate(gopts);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    db.generated = std::move(g).value();
  } else {
    for (const char* name :
         {"date", "customer", "supplier", "part", "lineorder"}) {
      auto t = LoadTable(data_dir + "/" + std::string(name) + ".cjtb");
      if (!t.ok()) {
        std::fprintf(stderr, "load %s: %s\n", name,
                     t.status().ToString().c_str());
        return 1;
      }
      db.loaded.push_back(std::move(*t));
    }
  }

  auto star = WireStar(db);
  if (!star.ok()) {
    std::fprintf(stderr, "%s\n", star.status().ToString().c_str());
    return 1;
  }

  QueryEngine::Options eopts;
  eopts.cjoin_shards = shards;
  if (slow_ms > 0) {
    eopts.slow_query_threshold = std::chrono::milliseconds(slow_ms);
  }
  // The serving front-end always runs the stall watchdog; with a trace
  // path configured, a trip auto-dumps the timeline before the ring
  // overwrites the evidence.
  eopts.watchdog_enabled = true;
  if (!trace_out.empty()) eopts.watchdog.dump_path = trace_out;
  QueryEngine engine(eopts);
  if (Status st = engine.RegisterStar("ssb", std::move(*star)); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  net::CjoinServer server(&engine, sopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", sopts.host.c_str(), server.port());
  std::fflush(stdout);

  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // Periodic Prometheus scrapes while serving (--metrics-interval, to the
  // --metrics-dump path). The final post-drain dump still runs below.
  const bool periodic_metrics = metrics_interval_sec > 0 &&
                                !metrics_dump.empty() && metrics_dump != "-";
  auto next_scrape = std::chrono::steady_clock::now() +
                     std::chrono::seconds(std::max(metrics_interval_sec, 1));
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (periodic_metrics && std::chrono::steady_clock::now() >= next_scrape) {
      WriteMetricsFile(engine, metrics_dump);
      next_scrape += std::chrono::seconds(metrics_interval_sec);
    }
  }

  // Graceful drain: shed new submissions, let in-flight queries complete
  // and stream out (the server is still delivering), then stop the wire.
  std::printf("signal %d: draining (up to %d ms)...\n", g_signal.load(),
              drain_ms);
  std::fflush(stdout);
  const bool drained = engine.Shutdown(std::chrono::milliseconds(drain_ms));
  server.Stop();

  const net::CjoinServer::Stats stats = server.GetStats();
  std::printf(
      "shutdown %s: %llu connections, %llu queries (%llu ok, %llu error), "
      "%llu rows streamed, %llu rows ingested\n",
      drained ? "clean (drained)" : "after drain timeout",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.queries_started),
      static_cast<unsigned long long>(stats.queries_ok),
      static_cast<unsigned long long>(stats.queries_error),
      static_cast<unsigned long long>(stats.rows_streamed),
      static_cast<unsigned long long>(stats.rows_ingested));

  // Final Prometheus exposition of the whole run ("-" = stdout). Written
  // after the drain so the dump reflects every completed query.
  if (!metrics_dump.empty()) {
    if (metrics_dump == "-") {
      std::fputs(engine.metrics().RenderPrometheus().c_str(), stdout);
    } else if (!WriteMetricsFile(engine, metrics_dump)) {
      std::fprintf(stderr, "metrics-dump: cannot write %s\n",
                   metrics_dump.c_str());
      return 1;
    } else {
      std::printf("metrics written to %s\n", metrics_dump.c_str());
    }
  }

  // Flight-recorder dump of the whole run: thread timelines plus the
  // retained query traces, loadable in Perfetto / chrome://tracing.
  if (!trace_out.empty()) {
    std::string err;
    if (!obs::FlightRecorder::Global().DumpToFile(trace_out, &err)) {
      std::fprintf(stderr, "trace-out: %s\n", err.c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 0;
}
