// cjoin_client: interactive / scripted client for cjoin_server.
//
//   $ cjoin_client --port 7744                     # interactive
//   $ cjoin_client --port 7744 < script.txt        # scripted (CI)
//   $ cjoin_client --port 7744 --exec "select count(*) from ssb;"
//
// Input is line-oriented. SQL statements may span lines and end with
// ';'. Meta commands start with '\':
//
//   \ingest STAR v1,v2,...   append one fact row (ints/doubles/strings
//                            inferred from the literal; 'quoted' = string)
//   \stats                   print the server's STATS JSON
//   \q                       quit
//
// In scripted mode (stdin not a tty, or --exec) any server error exits
// with status 1, so CI smoke tests fail loudly.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/client.h"

using namespace cjoin;

namespace {

void PrintResult(const net::CjoinClient::QueryResult& qr) {
  const ResultSet& rs = qr.result;
  for (size_t i = 0; i < rs.columns.size(); ++i) {
    std::printf("%s%s", i ? "\t" : "", rs.columns[i].c_str());
  }
  std::printf("\n");
  for (const auto& row : rs.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i ? "\t" : "", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows, snapshot %llu, %.2f ms server)\n", rs.rows.size(),
              static_cast<unsigned long long>(qr.snapshot),
              qr.response_seconds * 1e3);
}

// Parses one \ingest value: integer / double / (optionally quoted) string.
Value ParseValue(std::string tok) {
  // Trim.
  size_t b = tok.find_first_not_of(" \t");
  size_t e = tok.find_last_not_of(" \t");
  tok = (b == std::string::npos) ? "" : tok.substr(b, e - b + 1);
  if (tok.size() >= 2 && tok.front() == '\'' && tok.back() == '\'') {
    return Value(tok.substr(1, tok.size() - 2));
  }
  char* end = nullptr;
  errno = 0;
  long long i = std::strtoll(tok.c_str(), &end, 10);
  if (errno == 0 && end != tok.c_str() && *end == '\0') {
    return Value(static_cast<int64_t>(i));
  }
  errno = 0;
  double d = std::strtod(tok.c_str(), &end);
  if (errno == 0 && end != tok.c_str() && *end == '\0') return Value(d);
  return Value(tok);
}

// \ingest STAR v1,v2,...  — returns false on malformed input.
bool HandleIngest(net::CjoinClient& client, const std::string& rest,
                  bool* server_err) {
  std::istringstream in(rest);
  std::string star;
  if (!(in >> star)) return false;
  std::string csv;
  std::getline(in, csv);
  std::vector<Value> row;
  std::string tok;
  std::istringstream vals(csv);
  while (std::getline(vals, tok, ',')) row.push_back(ParseValue(tok));
  if (row.empty()) return false;
  auto snap = client.Ingest(star, {row});
  if (!snap.ok()) {
    std::printf("ERROR: %s\n", snap.status().ToString().c_str());
    *server_err = true;
    return true;
  }
  std::printf("ingested 1 row, snapshot %llu\n",
              static_cast<unsigned long long>(*snap));
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--tenant T] [--star S] "
               "[--timeout-ms MS] [--exec CMDS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::CjoinClient::Options copts;
  std::string star = "ssb";
  std::string exec_script;
  int64_t timeout_ns = 0;
  bool have_port = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      copts.host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      copts.port = static_cast<uint16_t>(std::atoi(argv[++i]));
      have_port = true;
    } else if (std::strcmp(argv[i], "--tenant") == 0 && i + 1 < argc) {
      copts.tenant = argv[++i];
    } else if (std::strcmp(argv[i], "--star") == 0 && i + 1 < argc) {
      star = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ns = std::atoll(argv[++i]) * 1000000LL;
    } else if (std::strcmp(argv[i], "--exec") == 0 && i + 1 < argc) {
      exec_script += argv[++i];
      exec_script += '\n';
    } else {
      return Usage(argv[0]);
    }
  }
  if (!have_port) return Usage(argv[0]);

  net::CjoinClient client(copts);
  if (Status st = client.Connect(); !st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }

  const bool scripted = !exec_script.empty() || ::isatty(STDIN_FILENO) == 0;
  std::istringstream exec_in(exec_script);
  std::istream& in = exec_script.empty() ? std::cin : exec_in;

  if (!scripted) {
    std::printf("connected to %s:%u as tenant '%s' (session %llu)\n",
                copts.host.c_str(), copts.port, copts.tenant.c_str(),
                static_cast<unsigned long long>(client.session_id()));
  }

  bool server_err = false;
  std::string sql;
  std::string line;
  while (true) {
    if (!scripted) {
      std::printf(sql.empty() ? "cjoin> " : "  ...> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;

    if (sql.empty() && !line.empty() && line[0] == '\\') {
      std::istringstream meta(line);
      std::string cmd;
      meta >> cmd;
      if (cmd == "\\q" || cmd == "\\quit") break;
      if (cmd == "\\stats") {
        auto js = client.Stats();
        if (!js.ok()) {
          std::printf("ERROR: %s\n", js.status().ToString().c_str());
          server_err = true;
        } else {
          std::printf("%s\n", js->c_str());
        }
      } else if (cmd == "\\ingest") {
        std::string rest;
        std::getline(meta, rest);
        if (!HandleIngest(client, rest, &server_err)) {
          std::printf("usage: \\ingest STAR v1,v2,...\n");
        }
      } else {
        std::printf("unknown command %s (\\ingest, \\stats, \\q)\n",
                    cmd.c_str());
      }
      if (scripted && server_err) break;
      continue;
    }

    sql += line;
    sql += '\n';
    const size_t semi = sql.find(';');
    if (semi == std::string::npos) continue;
    std::string stmt = sql.substr(0, semi);
    sql.clear();
    if (stmt.find_first_not_of(" \t\n") == std::string::npos) continue;

    auto qr = client.Query(star, stmt, timeout_ns);
    if (!qr.ok()) {
      std::printf("ERROR: %s\n", qr.status().ToString().c_str());
      server_err = true;
      if (scripted) break;
      continue;
    }
    PrintResult(*qr);
  }

  client.Close();
  return (scripted && server_err) ? 1 : 0;
}
