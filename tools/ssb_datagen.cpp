// ssb_datagen: generate a Star Schema Benchmark database and persist it
// as CJOIN table files, so experiments can reuse one dataset.
//
//   $ ssb_datagen --sf 0.1 --out /tmp/ssb --partitions 7 [--seed 42]
//   writes /tmp/ssb/{date,customer,supplier,part,lineorder}.cjtb

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "ssb/generator.h"
#include "storage/table_file.h"

using namespace cjoin;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sf F] [--out DIR] [--partitions N] [--seed S]\n"
               "  --sf F          scale factor (default 0.01; sf=1 is ~600MB)\n"
               "  --out DIR       output directory (default .)\n"
               "  --partitions N  range-partition lineorder by year into N\n"
               "  --seed S        generator seed (default 42)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ssb::GenOptions opts;
  std::string out = ".";
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sf") == 0) {
      opts.scale_factor = std::atof(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = next();
    } else if (std::strcmp(argv[i], "--partitions") == 0) {
      opts.num_fact_partitions = static_cast<uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::printf("generating SSB sf=%g (seed %llu, %u fact partition%s)...\n",
              opts.scale_factor,
              static_cast<unsigned long long>(opts.seed),
              opts.num_fact_partitions,
              opts.num_fact_partitions == 1 ? "" : "s");
  Stopwatch watch;
  auto db_or = ssb::Generate(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  std::printf("  %llu rows, %.1f MB in %.2fs\n",
              static_cast<unsigned long long>(db->TotalRows()),
              db->TotalBytes() / 1e6, watch.ElapsedSeconds());

  const Table* tables[] = {db->date.get(), db->customer.get(),
                           db->supplier.get(), db->part.get(),
                           db->lineorder.get()};
  for (const Table* t : tables) {
    const std::string path = out + "/" + t->name() + ".cjtb";
    watch.Restart();
    if (Status st = SaveTable(*t, path); !st.ok()) {
      std::fprintf(stderr, "save %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("  wrote %-28s %9llu rows  (%.2fs)\n", path.c_str(),
                static_cast<unsigned long long>(t->NumRows()),
                watch.ElapsedSeconds());
  }
  return 0;
}
