// Table 2 reproduction: "Influence of predicate selectivity on query
// submission time" (§6.2.3) — CJOIN's submission time as s grows.
//
// Expected shape (paper): the s-independent fixed costs dominate at
// small s; at s=10% the s-dependent work (evaluating dimension
// predicates and loading the hash tables) dominates and submission time
// grows several-fold, along with response time.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.02;
  const size_t n = full ? 128 : 64;
  const size_t warmup = full ? 256 : 128;   // >= 2n: past the batch burst
  const size_t measure = full ? 256 : 128;  // >= 2n: full waves measured
  const std::vector<double> ss = {0.001, 0.01, 0.1};

  PrintHeader(
      "Table 2: influence of predicate selectivity on submission time",
      "sf=" + std::to_string(sf) + " n=" + std::to_string(n) +
          " (CJOIN; milliseconds)");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);

  std::printf("%-24s", "selectivity");
  for (double s : ss) std::printf(" %-10.1f%%", s * 100);
  std::printf("\n");

  std::vector<double> submission, response;
  for (double s : ss) {
    auto workload = MakeWorkload(queries, warmup + measure + 2 * n, s, 42);
    SimDisk disk;
    RunConfig cfg;
    cfg.concurrency = n;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.disk = &disk;
    RunResult r = RunWorkload(SystemKind::kCJoin, *db, workload, cfg);
    submission.push_back(r.submission_seconds.mean() * 1e3);
    response.push_back(r.response_seconds.mean() * 1e3);
  }
  std::printf("%-24s", "Submission time (ms)");
  for (double v : submission) std::printf(" %-11.2f", v);
  std::printf("\n%-24s", "Response time (ms)");
  for (double v : response) std::printf(" %-11.1f", v);
  std::printf(
      "\n\nExpected shape: submission cost roughly flat from 0.1%% to 1%% "
      "(fixed costs dominate) and clearly higher at 10%% (dimension "
      "loading dominates).\n");
  return 0;
}
