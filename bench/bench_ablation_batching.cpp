// Ablation (paper §4): queue batching.
//
// "We reduce the overhead of queue synchronization by having each thread
//  retrieve or deposit tuples in batches" — this sweep shows CJOIN
// throughput as the tuple batch size grows from 1 (tuple-at-a-time
// queueing) to large batches.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.05 : 0.01;
  const size_t n = 32;
  const size_t warmup = 16;
  const size_t measure = full ? 96 : 40;
  const std::vector<size_t> batch_sizes = {1, 8, 64, 256, 1024};

  PrintHeader("Ablation: tuple batch size (paper §4)",
              "sf=" + std::to_string(sf) + " s=1% n=32; queries/hour");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  auto workload = MakeWorkload(queries, warmup + measure + n, 0.01, 42);

  std::printf("%-12s %-12s\n", "batch", "CJOIN qph");
  for (size_t batch : batch_sizes) {
    RunConfig cfg;
    cfg.concurrency = n;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.cjoin_batch_size = batch;
    // Keep total queued tuples roughly constant.
    cfg.cjoin_queue_capacity = std::max<size_t>(4, 16384 / std::max<size_t>(batch, 1));
    const RunResult r = RunWorkload(SystemKind::kCJoin, *db, workload, cfg);
    std::printf("%-12zu %-12.0f\n", batch, r.qph);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: throughput climbs steeply from batch=1 and "
      "plateaus once synchronization amortizes (order of 64-256).\n");
  return 0;
}
