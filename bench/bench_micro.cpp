// Component microbenchmarks (google-benchmark): the primitive operations
// on CJOIN's hot paths — hashing, bit-vector combining, the tuple pool,
// the batch queues, dimension hash probes, predicate evaluation, and
// aggregation folding.

#include <benchmark/benchmark.h>

#include "cjoin/dim_hash_table.h"
#include "common/bitvector.h"
#include "common/hash.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/tuple_pool.h"
#include "exec/group_table.h"
#include "exec/key_row_map.h"
#include "expr/expr.h"
#include "storage/schema.h"

namespace cjoin {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_HashBytes(benchmark::State& state) {
  const std::string s(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashBytes(s.data(), s.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(s.size()));
}
BENCHMARK(BM_HashBytes)->Arg(8)->Arg(32)->Arg(128);

void BM_BitvectorAnd(benchmark::State& state) {
  const size_t words = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> dst(words, ~uint64_t{0});
  std::vector<uint64_t> src(words, 0xf0f0f0f0f0f0f0f0ULL);
  for (auto _ : state) {
    dst[0] = ~uint64_t{0};
    benchmark::DoNotOptimize(
        bitops::AndInto(dst.data(), src.data(), words));
  }
}
BENCHMARK(BM_BitvectorAnd)->Arg(1)->Arg(4)->Arg(16);

void BM_BitvectorForEachSetBit(benchmark::State& state) {
  const size_t words = 4;
  std::vector<uint64_t> bits(words, 0);
  Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    bitops::SetBit(bits.data(), static_cast<size_t>(rng.UniformInt(0, 255)));
  }
  for (auto _ : state) {
    size_t sum = 0;
    bitops::ForEachSetBit(bits.data(), words, [&](size_t b) { sum += b; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitvectorForEachSetBit)->Arg(1)->Arg(16)->Arg(128);

void BM_TuplePoolAcquireRelease(benchmark::State& state) {
  TuplePool pool(4096, 64);
  for (auto _ : state) {
    void* p = pool.Acquire();
    benchmark::DoNotOptimize(p);
    pool.Release(p);
  }
}
BENCHMARK(BM_TuplePoolAcquireRelease);

void BM_QueuePushPopBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  BoundedQueue<int> q(1 << 14);
  std::vector<int> in(batch, 7);
  std::vector<int> out;
  for (auto _ : state) {
    std::vector<int> tmp = in;
    q.PushBatch(tmp);
    out.clear();
    q.PopBatch(out, batch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_QueuePushPopBatch)->Arg(1)->Arg(64)->Arg(512);

void BM_DimHashTableProbe(benchmark::State& state) {
  const size_t entries = static_cast<size_t>(state.range(0));
  DimensionHashTable ht(/*width_words=*/4, entries);
  std::vector<uint8_t> rows(entries);
  for (size_t i = 0; i < entries; ++i) {
    ht.InsertOrGet(static_cast<int64_t>(i * 3), &rows[i]);
  }
  Rng rng(2);
  ReaderMutexLock lk(&ht.mutex());
  for (auto _ : state) {
    const int64_t key = rng.UniformInt(0, static_cast<int64_t>(entries) * 3);
    benchmark::DoNotOptimize(ht.ProbeLocked(key));
  }
}
BENCHMARK(BM_DimHashTableProbe)->Arg(1024)->Arg(65536);

void BM_KeyRowMapFind(benchmark::State& state) {
  const size_t entries = 65536;
  KeyRowMap m(entries);
  std::vector<uint8_t> rows(entries);
  for (size_t i = 0; i < entries; ++i) {
    m.Insert(static_cast<int64_t>(i), &rows[i]);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.Find(rng.UniformInt(0, static_cast<int64_t>(entries) - 1)));
  }
}
BENCHMARK(BM_KeyRowMapFind);

void BM_PredicateEval(benchmark::State& state) {
  Schema schema;
  schema.AddInt32("year").AddChar("region", 12);
  std::vector<uint8_t> row(schema.row_size());
  schema.SetInt32(row.data(), 0, 1995);
  schema.SetChar(row.data(), 1, "AMERICA");
  ExprPtr pred = MakeAnd(
      MakeBetween(MakeColumnRef(0), Value(1992), Value(1997)),
      MakeCompare(CmpOp::kEq, MakeColumnRef(1),
                  MakeLiteral(Value("AMERICA"))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->EvalBool(schema, row.data()));
  }
}
BENCHMARK(BM_PredicateEval);

void BM_GroupTableFold(benchmark::State& state) {
  const int64_t groups = state.range(0);
  GroupTable table({AggFn::kCount, AggFn::kSum});
  Rng rng(4);
  std::vector<Value> inputs = {Value(), Value(int64_t{10})};
  for (auto _ : state) {
    std::vector<Value> key = {Value(rng.UniformInt(0, groups - 1))};
    table.Fold(std::move(key), inputs);
  }
}
BENCHMARK(BM_GroupTableFold)->Arg(16)->Arg(4096);

}  // namespace
}  // namespace cjoin

BENCHMARK_MAIN();
