// Per-tuple dimension-probe cost micro-bench (ROADMAP: batched,
// prefetched dimension probing; DRAMHiT's thesis applied to CJOIN's
// hottest loop).
//
// Measures DimensionHashTable probe throughput scalar
// (ProbeLocked per key) vs batched (ProbeBatchLocked), on a table
// sized well past LLC so probes actually pay DRAM latency, across
// three key mixes:
//   * hit-heavy   (95% of keys present) — admission-heavy workloads;
//   * miss-heavy  ( 5% of keys present) — selective queries, where the
//                 tag array should resolve misses without Entry loads;
//   * probe-skip  (~70% of tuples skipped by the §3.2.2 test before any
//                 key is gathered) — emulates Stage::FilterBatch's
//                 gather pass, where batching only sees the residue.
//
// Emits one JSON line per (mix, arm) plus a summary line; exits
// non-zero if the batched arm is below 1.5x scalar on the miss-heavy
// mix (the CI gate). The hit-heavy target is reported but soft:
// hiding a hit's full tag→Entry dependent-load chain needs working
// hugepages and real memory-level parallelism, and virtualized
// single-core CI hosts (EPT page walks serialize, THP advice is a
// no-op) compress the ratio to ~1.3-1.45x there while bare metal
// clears 1.5x.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "cjoin/dim_hash_table.h"
#include "common/bitvector.h"
#include "common/clock.h"
#include "common/rng.h"

using namespace cjoin;
using namespace cjoin::bench;

namespace {

struct MixResult {
  double scalar_mtps = 0.0;   // million probes (tuples) per second
  double batched_mtps = 0.0;
  uint64_t checksum_scalar = 0;
  uint64_t checksum_batched = 0;
};

// One probe stream: keys[] to look up, skip[] marking tuples the
// §3.2.2 probe-skip test would bypass (never probed by either arm).
struct Stream {
  std::vector<int64_t> keys;
  std::vector<uint8_t> skip;
};

Stream MakeStream(size_t n, size_t table_entries, double hit_rate,
                  double skip_rate, uint64_t seed) {
  Stream s;
  s.keys.resize(n);
  s.skip.resize(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    s.skip[i] = rng.Bernoulli(skip_rate) ? 1 : 0;
    if (rng.Bernoulli(hit_rate)) {
      // Present: keys 0..table_entries-1 are inserted.
      s.keys[i] = static_cast<int64_t>(
          rng.UniformInt(0, static_cast<int64_t>(table_entries) - 1));
    } else {
      // Absent: the insert key space is disjoint from this range.
      s.keys[i] = static_cast<int64_t>(table_entries) +
                  static_cast<int64_t>(
                      rng.UniformInt(0, static_cast<int64_t>(table_entries)));
    }
  }
  return s;
}

// Checksums fold each probe's outcome (entry key + first bit-vector word
// on hit, sentinel on miss) so the compiler cannot elide the probes and
// the two arms can be cross-checked for identical results. Reading the
// bit words matters: the real FilterBatch always ANDs them on a hit, so
// the probe's dependent-load chain is tag line → Entry → bit words, and
// an honest A/B must pay (or hide) all three levels.
uint64_t FoldProbe(uint64_t acc, const DimensionHashTable::Entry* e) {
  const uint64_t v = e != nullptr
                         ? static_cast<uint64_t>(e->key) ^ e->bits[0]
                         : 0x9e3779b97f4a7c15ull;
  return (acc ^ v) * 0x100000001b3ull;
}

double RunScalar(const DimensionHashTable& ht, const Stream& s,
                 uint64_t* checksum) {
  ReaderMutexLock lk(&const_cast<DimensionHashTable&>(ht).mutex());
  uint64_t acc = 0xcbf29ce484222325ull;
  Stopwatch sw;
  for (size_t i = 0; i < s.keys.size(); ++i) {
    if (s.skip[i]) continue;
    acc = FoldProbe(acc, ht.ProbeLocked(s.keys[i]));
  }
  const double secs = sw.ElapsedSeconds();
  *checksum = acc;
  return static_cast<double>(s.keys.size()) / secs / 1e6;
}

double RunBatched(const DimensionHashTable& ht, const Stream& s,
                  size_t batch, uint64_t* checksum) {
  ReaderMutexLock lk(&const_cast<DimensionHashTable&>(ht).mutex());
  uint64_t acc = 0xcbf29ce484222325ull;
  std::vector<int64_t> keys_buf(batch);
  std::vector<const DimensionHashTable::Entry*> out_buf(batch);
  int64_t* keys = keys_buf.data();
  const DimensionHashTable::Entry** out = out_buf.data();
  Stopwatch sw;
  size_t m = 0;
  for (size_t i = 0; i < s.keys.size(); ++i) {
    if (s.skip[i]) continue;  // gather pass: probe-skip bypasses batching
    keys[m++] = s.keys[i];
    if (m == batch) {
      ht.ProbeBatchLocked(keys, out, m);
      for (size_t j = 0; j < m; ++j) acc = FoldProbe(acc, out[j]);
      m = 0;
    }
  }
  if (m > 0) {
    ht.ProbeBatchLocked(keys, out, m);
    for (size_t j = 0; j < m; ++j) acc = FoldProbe(acc, out[j]);
  }
  const double secs = sw.ElapsedSeconds();
  *checksum = acc;
  return static_cast<double>(s.keys.size()) / secs / 1e6;
}

MixResult RunMix(const DimensionHashTable& ht, const Stream& s,
                 size_t batch, int trials) {
  MixResult r;
  for (int t = 0; t < trials; ++t) {
    uint64_t ck = 0;
    r.scalar_mtps = std::max(r.scalar_mtps, RunScalar(ht, s, &ck));
    r.checksum_scalar = ck;
    r.batched_mtps = std::max(r.batched_mtps, RunBatched(ht, s, batch, &ck));
    r.checksum_batched = ck;
  }
  return r;
}

}  // namespace

int main() {
  const bool full = FullScale();
  // 4M entries x (64B Entry + 8B tag) ≈ 300MB of table: past LLC, so a
  // cold probe is a genuine memory round-trip. Overridable for local
  // sweeps via CJOIN_BENCH_PROBE_ENTRIES.
  const char* entries_env = std::getenv("CJOIN_BENCH_PROBE_ENTRIES");
  const size_t kEntries =
      entries_env != nullptr ? static_cast<size_t>(std::atoll(entries_env))
                             : (1u << 22);
  const size_t kProbes = full ? 16'000'000 : 8'000'000;
  const char* batch_env = std::getenv("CJOIN_BENCH_PROBE_BATCH");
  const size_t kBatch =
      batch_env != nullptr ? static_cast<size_t>(std::atoll(batch_env)) : 128;
  const int kTrials = 3;
  const size_t kWidth = 2;

  PrintHeader("Dimension probe cost: scalar vs batched+prefetched",
              "entries=" + std::to_string(kEntries) +
                  " probes=" + std::to_string(kProbes) +
                  " batch=" + std::to_string(kBatch) +
                  " trials=" + std::to_string(kTrials));

  DimensionHashTable ht(kWidth, kEntries);
  {
    // Bulk-load through the batched admission path.
    static uint8_t row[8] = {};
    int64_t keys[DimensionHashTable::kMaxBatch];
    const uint8_t* rows[DimensionHashTable::kMaxBatch];
    DimensionHashTable::Entry* ents[DimensionHashTable::kMaxBatch];
    size_t m = 0;
    for (size_t k = 0; k < kEntries; ++k) {
      keys[m] = static_cast<int64_t>(k);
      rows[m] = row;
      if (++m == DimensionHashTable::kMaxBatch) {
        ht.InsertBatch(keys, rows, ents, m);
        m = 0;
      }
    }
    if (m > 0) ht.InsertBatch(keys, rows, ents, m);
  }
  std::printf("table loaded: %zu entries\n", ht.size());

  struct Mix {
    const char* name;
    double hit_rate;
    double skip_rate;
    double gate;  // hard-fail ratio (0 = ungated)
    double soft;  // warn-only target (0 = none)
  };
  const Mix mixes[] = {
      {"hit_heavy", 0.95, 0.0, 0.0, 1.5},
      {"miss_heavy", 0.05, 0.0, 1.5, 0.0},
      {"probe_skip", 0.50, 0.7, 0.0, 0.0},
  };

  std::printf("%-12s %-14s %-14s %-8s\n", "mix", "scalar Mt/s",
              "batched Mt/s", "ratio");
  bool gate_ok = true;
  for (const Mix& mix : mixes) {
    const Stream s =
        MakeStream(kProbes, kEntries, mix.hit_rate, mix.skip_rate, 42);
    const MixResult r = RunMix(ht, s, kBatch, kTrials);
    if (r.checksum_scalar != r.checksum_batched) {
      std::fprintf(stderr,
                   "FAIL: %s: batched checksum %llx != scalar %llx\n",
                   mix.name,
                   static_cast<unsigned long long>(r.checksum_batched),
                   static_cast<unsigned long long>(r.checksum_scalar));
      return 1;
    }
    const double ratio = r.batched_mtps / r.scalar_mtps;
    std::printf("%-12s %-14.1f %-14.1f %-8.2f\n", mix.name, r.scalar_mtps,
                r.batched_mtps, ratio);
    std::printf(
        "{\"bench\":\"dim_probe\",\"mix\":\"%s\",\"entries\":%zu,"
        "\"batch\":%zu,\"scalar_mtps\":%.2f,\"batched_mtps\":%.2f,"
        "\"ratio\":%.3f}\n",
        mix.name, kEntries, kBatch, r.scalar_mtps, r.batched_mtps, ratio);
    std::fflush(stdout);
    if (mix.gate > 0 && ratio < mix.gate) {
      std::fprintf(stderr, "FAIL: %s ratio %.2f < required %.2f\n",
                   mix.name, ratio, mix.gate);
      gate_ok = false;
    } else if (mix.soft > 0 && ratio < mix.soft) {
      std::fprintf(stderr,
                   "WARN: %s ratio %.2f < target %.2f (soft; expected on "
                   "virtualized hosts without hugepages)\n",
                   mix.name, ratio, mix.soft);
    }
  }
  if (!gate_ok) return 1;
  std::printf(
      "\nExpected shape: batched >= 1.5x scalar on the miss- and (on bare "
      "metal) hit-heavy mixes — DRAM latency hidden across %zu in-flight "
      "probes; the probe-skip mix narrows the gap since 70%% of tuples "
      "never reach the table.\n",
      kBatch);
  return 0;
}
