// Shared benchmark harness (paper §6.1 methodology).
//
// Implements the paper's measurement protocol: "the client initially
// submits the first n queries of the workload in a batch, and then
// submits the next query in the workload whenever an outstanding query
// finishes. This way, there are always n queries executing concurrently.
// To ensure that we evaluate the steady state, we measure the metrics
// over queries [warmup, warmup+measure) in the workload."
//
// Three systems under test share the storage/expression/aggregation
// substrates and differ only in the execution strategy:
//   * kCJoin    — the CJOIN operator (one shared always-on plan);
//   * kSystemX  — query-at-a-time hash-join pipelines (lean executor,
//                 private scans);
//   * kPostgres — query-at-a-time with a heavier per-tuple interpreter
//                 and synchronized-scan behaviour (shared disk reader
//                 identity), mirroring the tuned PostgreSQL of §6.1.1.

#ifndef CJOIN_BENCH_HARNESS_H_
#define CJOIN_BENCH_HARNESS_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/query_spec.h"
#include "common/clock.h"
#include "obs/metrics.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "storage/sim_disk.h"

namespace cjoin {
namespace bench {

enum class SystemKind { kCJoin, kSystemX, kPostgres };

const char* SystemName(SystemKind kind);

/// Per-run configuration.
struct RunConfig {
  /// Concurrency level n.
  size_t concurrency = 32;
  /// Queries completed before measurement starts / measured count.
  size_t warmup = 64;
  size_t measure = 64;

  /// Shared simulated disk (nullptr = memory-resident).
  SimDisk* disk = nullptr;

  // CJOIN knobs.
  /// Overrides the operator's maxConc (0 = derive from concurrency).
  /// Fixes the bit-vector width at ceil(value/64) words.
  size_t max_concurrency_override = 0;
  /// Fact-table shards, each driving its own CJOIN pipeline instance.
  size_t cjoin_shards = 1;
  /// Give each shard its own simulated volume (fresh SimDisk with
  /// `disk`'s parameters, or the defaults when disk == nullptr): models a
  /// striped array where shard scans proceed in parallel. false = all
  /// shards contend for the single shared `disk`.
  bool disk_per_shard = false;
  size_t cjoin_threads = 4;
  size_t cjoin_batch_size = 256;
  size_t cjoin_queue_capacity = 64;
  size_t cjoin_pool_capacity = 64 * 1024;
  size_t scan_run_rows = 4096;
  bool cjoin_vertical = false;
  bool adaptive_ordering = true;

  // Baseline knobs.
  int systemx_overhead = 0;   ///< extra hash rounds per tuple
  int postgres_overhead = 48;  ///< models the slower interpreter
};

/// Result of one workload run.
struct RunResult {
  double qph = 0.0;            ///< measured throughput, queries/hour
  double elapsed_seconds = 0.0;
  RunningStat response_seconds;            ///< measured queries
  RunningStat submission_seconds;          ///< CJOIN only
  /// Percentile view of the measured response times (p50/p90/p99/p999),
  /// from the obs log-bucketed histogram — the same quantile math the
  /// engine's metrics registry exposes (<= 12.5% bucket error).
  obs::LatencySnapshot response_latency;
  std::map<std::string, RunningStat> per_template_response;  ///< by "Qx.y"
  uint64_t disk_seeks = 0;
  /// CJOIN only: fact tuples scanned per second, summed across the pool's
  /// shards over the whole run (the shard-scaling metric).
  double fact_tuples_per_sec = 0.0;
};

/// Runs `workload` on the given system at concurrency config.concurrency,
/// measuring queries [warmup, warmup+measure) by completion order. The
/// workload must contain at least warmup+measure+concurrency queries.
RunResult RunWorkload(SystemKind kind, const ssb::SsbDatabase& db,
                      const std::vector<StarQuerySpec>& workload,
                      const RunConfig& config);

/// Builds a workload of `total` template instances at selectivity `s`.
std::vector<StarQuerySpec> MakeWorkload(const ssb::SsbQueries& queries,
                                        size_t total, double s,
                                        uint64_t seed);

/// Strips the "#k" suffix from a workload label ("Q4.2#17" -> "Q4.2").
std::string TemplateOf(const std::string& label);

/// Folds raw latency samples (seconds) through the obs log-bucketed
/// histogram and returns its percentile snapshot. The single percentile
/// implementation for every bench — replaces per-bench sort-based code.
obs::LatencySnapshot SnapshotSeconds(const std::vector<double>& seconds);

/// Nanoseconds -> milliseconds for printing snapshot fields.
inline double NsToMs(uint64_t ns) { return static_cast<double>(ns) * 1e-6; }

/// True iff the CJOIN_BENCH_FULL environment variable asks for the
/// paper-scale (slow) parameters.
bool FullScale();

/// Prints a standard header naming the experiment and its parameters.
void PrintHeader(const std::string& experiment, const std::string& params);

}  // namespace bench
}  // namespace cjoin

#endif  // CJOIN_BENCH_HARNESS_H_
