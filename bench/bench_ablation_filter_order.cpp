// Ablation (paper §3.4): run-time filter ordering.
//
// A workload whose PART predicate is extremely selective while the other
// dimensions barely filter. With adaptive ordering OFF the pipeline
// probes filters in schema order (date, customer, supplier, part), so
// most tuples survive three probes before dying at the part filter; with
// adaptive ordering ON the Pipeline Manager floats the part filter to
// the front (rank ordering by observed drop rate = the optimal order for
// equal-cost filters).
//
// Reported: throughput and filter visits per scanned tuple.

#include <cstdio>
#include <numeric>

#include "bench/harness.h"
#include "cjoin/cjoin_operator.h"

using namespace cjoin;
using namespace cjoin::bench;

namespace {

struct AblationResult {
  double qph;
  double visits_per_tuple;
  std::vector<size_t> final_order;
};

AblationResult RunOnce(const ssb::SsbDatabase& db,
                       const std::vector<StarQuerySpec>& workload,
                       bool adaptive, size_t n, size_t warmup,
                       size_t measure) {
  CJoinOperator::Options opts;
  opts.max_concurrent_queries = 256;
  opts.num_worker_threads = 3;
  opts.adaptive_ordering = adaptive;
  opts.reorder_interval = std::chrono::milliseconds(20);
  CJoinOperator op(*db.star, opts);
  if (!op.Start().ok()) std::abort();

  RunningStat response;
  Stopwatch window;
  size_t completed = 0;
  std::vector<std::unique_ptr<QueryHandle>> in_flight;
  size_t next = 0;
  double window_seconds = 0.0;
  while (completed < warmup + measure) {
    while (in_flight.size() < n && next < workload.size()) {
      auto h = op.Submit(workload[next++]);
      if (!h.ok()) std::abort();
      in_flight.push_back(std::move(*h));
    }
    for (size_t i = 0; i < in_flight.size();) {
      if (in_flight[i]->Ready()) {
        (void)in_flight[i]->Wait();
        ++completed;
        if (completed == warmup) window.Restart();
        if (completed == warmup + measure) {
          window_seconds = window.ElapsedSeconds();
        }
        in_flight[i] = std::move(in_flight.back());
        in_flight.pop_back();
      } else {
        ++i;
      }
    }
  }
  const CJoinOperator::Stats stats = op.GetStats();
  op.Stop();

  AblationResult r;
  r.qph = window_seconds > 0 ? measure / window_seconds * 3600.0 : 0.0;
  const uint64_t visits = std::accumulate(stats.filter_tuples_in.begin(),
                                          stats.filter_tuples_in.end(),
                                          uint64_t{0});
  r.visits_per_tuple =
      stats.rows_scanned > 0
          ? static_cast<double>(visits) /
                static_cast<double>(stats.rows_scanned)
          : 0.0;
  r.final_order = stats.filter_order;
  return r;
}

}  // namespace

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.05 : 0.01;
  const size_t n = 32;
  const size_t warmup = 16;
  const size_t measure = full ? 96 : 48;

  PrintHeader("Ablation: adaptive filter ordering (paper §3.4)",
              "sf=" + std::to_string(sf) +
                  ", Q2.1 template with part-selectivity 0.1%, n=32");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);

  // All queries from Q2.1 (part + supplier predicates, date group-by);
  // very selective on part so its filter should run first.
  Rng rng(7);
  auto workload = queries
                      .MakeWorkload(warmup + measure + n, 0.001, rng,
                                    {"Q2.1"})
                      .value();

  const AblationResult fixed =
      RunOnce(*db, workload, /*adaptive=*/false, n, warmup, measure);
  const AblationResult adaptive =
      RunOnce(*db, workload, /*adaptive=*/true, n, warmup, measure);

  auto order_str = [&](const std::vector<size_t>& order) {
    const char* names[] = {"date", "customer", "supplier", "part"};
    std::string s;
    for (size_t d : order) {
      if (!s.empty()) s += ">";
      s += d < 4 ? names[d] : "?";
    }
    return s;
  };

  std::printf("%-22s %-12s %-18s %s\n", "ordering", "qph",
              "filter visits/tuple", "final order");
  std::printf("%-22s %-12.0f %-18.2f %s\n", "fixed (schema order)",
              fixed.qph, fixed.visits_per_tuple,
              order_str(fixed.final_order).c_str());
  std::printf("%-22s %-12.0f %-18.2f %s\n", "adaptive (A-greedy)",
              adaptive.qph, adaptive.visits_per_tuple,
              order_str(adaptive.final_order).c_str());
  std::printf(
      "\nExpected shape: adaptive ordering reduces filter visits per "
      "tuple and places the selective part filter first.\n");
  return 0;
}
