// Figure 7 reproduction: "Influence of query selectivity on throughput"
// (§6.2.3) — throughput of the three systems as the predicate
// selectivity s grows from 0.1% to 10%, at fixed concurrency.
//
// Expected shape (paper): CJOIN wins at every s; throughput of CJOIN and
// System X drops roughly linearly with s; the gap narrows at s=10%
// (larger dimension hash tables hurt CJOIN's probe locality and raise
// its admission cost).

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.01;
  const size_t n = full ? 128 : 64;
  const size_t warmup = full ? 256 : 128;   // >= 2n: past the batch burst
  const size_t measure = full ? 256 : 128;  // >= 2n: full waves measured
  const std::vector<double> ss = {0.001, 0.01, 0.1};

  PrintHeader("Figure 7: influence of predicate selectivity on throughput",
              "sf=" + std::to_string(sf) + " n=" + std::to_string(n) +
                  ", shared simulated disk; queries/hour");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);

  std::printf("%-12s %-12s %-12s %-12s\n", "s", "CJOIN", "SystemX",
              "PostgreSQL");
  for (double s : ss) {
    auto workload = MakeWorkload(queries, warmup + measure + 2 * n, s, 42);
    double qph[3];
    for (SystemKind kind : {SystemKind::kCJoin, SystemKind::kSystemX,
                            SystemKind::kPostgres}) {
      SimDisk disk;
      RunConfig cfg;
      cfg.concurrency = n;
      cfg.warmup = warmup;
      cfg.measure = measure;
      cfg.disk = &disk;
      qph[static_cast<int>(kind)] =
          RunWorkload(kind, *db, workload, cfg).qph;
    }
    std::printf("%-12.1f%% %-11.0f %-12.0f %-12.0f\n", s * 100, qph[0],
                qph[1], qph[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: CJOIN ahead at every s; both decline as s grows; "
      "the CJOIN/SystemX gap narrows at s=10%%.\n");
  return 0;
}
