// Admission control under overload: an aggressive tenant floods the
// engine while a protected tenant submits paced queries.
//
// Two modes are compared on the same database and flood:
//   * unprotected — no tenant quotas: the flood occupies every CJOIN
//     slot and the baseline backlog, so the victim queues behind it;
//   * protected   — the aggressive tenant is capped (CJOIN slots +
//     baseline queue + admission rate): excess flood submissions shed
//     with kResourceExhausted and the victim's latency stays flat.
//
// Output: a human-readable table plus one JSON line per (mode, tenant)
// with p50/p99 latency and the reject rate — the degrade-by-rejecting
// (not by stalling) shape the admission subsystem exists to produce.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "engine/query_engine.h"

using namespace cjoin;
using namespace cjoin::bench;

namespace {

Result<StarSchema> WireStar(const ssb::SsbDatabase& db) {
  return StarSchema::Make(
      db.lineorder.get(),
      std::vector<StarSchema::DimensionByName>{
          {db.date.get(), "lo_orderdate", "d_datekey"},
          {db.customer.get(), "lo_custkey", "c_custkey"},
          {db.supplier.get(), "lo_suppkey", "s_suppkey"},
          {db.part.get(), "lo_partkey", "p_partkey"},
      });
}

struct TenantOutcome {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  std::vector<double> latencies_s;  ///< completed queries only
};

void EmitJson(const char* mode, const char* tenant,
              const TenantOutcome& o) {
  const double reject_rate =
      o.submitted == 0
          ? 0.0
          : static_cast<double>(o.rejected) /
                static_cast<double>(o.submitted);
  const obs::LatencySnapshot lat = SnapshotSeconds(o.latencies_s);
  std::printf(
      "{\"bench\":\"admission_overload\",\"mode\":\"%s\",\"tenant\":\"%s\","
      "\"submitted\":%llu,\"rejected\":%llu,\"reject_rate\":%.4f,"
      "\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
      mode, tenant, static_cast<unsigned long long>(o.submitted),
      static_cast<unsigned long long>(o.rejected), reject_rate,
      NsToMs(lat.p50_ns), NsToMs(lat.p99_ns));
  std::fflush(stdout);
}

/// One mode: run the flood + the paced victim for `seconds`.
void RunMode(const char* mode, const ssb::SsbDatabase& db, bool quotas,
             double seconds, size_t flood_threads) {
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 64.0 * 1024 * 1024;
  SimDisk disk(dopts);

  QueryEngine::Options eopts;
  eopts.cjoin.disk = &disk;
  eopts.cjoin.max_concurrent_queries = 128;
  eopts.baseline_workers = 2;
  QueryEngine engine(eopts);
  {
    auto star = WireStar(db);
    if (!star.ok() ||
        !engine.RegisterStar("ssb", std::move(*star)).ok()) {
      std::fprintf(stderr, "star setup failed\n");
      return;
    }
  }
  if (quotas) {
    TenantQuota aggressive;
    aggressive.max_inflight_cjoin = 8;
    aggressive.max_queued_baseline = 8;
    (void)engine.SetTenantQuota("aggressive", aggressive);
  }

  const char* flood_sql = "SELECT COUNT(*) AS n FROM lineorder";
  const char* victim_sql =
      "SELECT d_year, SUM(lo_revenue) AS revenue "
      "FROM lineorder, date WHERE lo_orderdate = d_datekey "
      "GROUP BY d_year";

  std::atomic<bool> stop{false};
  std::mutex mu;
  TenantOutcome aggressive_out, victim_out;

  // The flood: each thread keeps a window of outstanding CJOIN-forced
  // submissions, harvesting completions as they land.
  std::vector<std::thread> flood;
  for (size_t t = 0; t < flood_threads; ++t) {
    flood.emplace_back([&] {
      TenantOutcome local;
      std::deque<std::unique_ptr<QueryTicket>> outstanding;
      while (!stop.load(std::memory_order_acquire)) {
        QueryRequest req = QueryRequest::Sql("ssb", flood_sql);
        req.policy = RoutePolicy::kCJoin;
        req.tenant = "aggressive";
        auto ticket = engine.Execute(std::move(req));
        if (ticket.ok()) {
          ++local.submitted;
          if ((*ticket)->Ready()) {
            auto rs = (*ticket)->Wait();
            if (!rs.ok() &&
                rs.status().code() == StatusCode::kResourceExhausted) {
              ++local.rejected;
            }
          } else {
            outstanding.push_back(std::move(*ticket));
          }
        }
        while (outstanding.size() > 32) {
          (void)outstanding.front()->Wait();
          outstanding.pop_front();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (auto& ticket : outstanding) {
        ticket->Cancel();
        (void)ticket->Wait();
      }
      std::lock_guard<std::mutex> lk(mu);
      aggressive_out.submitted += local.submitted;
      aggressive_out.rejected += local.rejected;
    });
  }

  // The victim: one paced query at a time; its latency is the metric.
  std::thread victim([&] {
    TenantOutcome local;
    while (!stop.load(std::memory_order_acquire)) {
      Stopwatch watch;
      QueryRequest req = QueryRequest::Sql("ssb", victim_sql);
      req.tenant = "victim";
      auto ticket = engine.Execute(std::move(req));
      if (!ticket.ok()) continue;
      ++local.submitted;
      auto rs = (*ticket)->Wait();
      if (rs.ok()) {
        local.latencies_s.push_back(watch.ElapsedSeconds());
      } else if (rs.status().code() == StatusCode::kResourceExhausted) {
        ++local.rejected;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::lock_guard<std::mutex> lk(mu);
    victim_out = std::move(local);
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& th : flood) th.join();
  victim.join();
  engine.Shutdown();

  std::printf("%-12s %-12s %10llu %10llu %12.3f %12.3f\n", mode,
              "aggressive",
              static_cast<unsigned long long>(aggressive_out.submitted),
              static_cast<unsigned long long>(aggressive_out.rejected), 0.0,
              0.0);
  const obs::LatencySnapshot victim_lat =
      SnapshotSeconds(victim_out.latencies_s);
  std::printf("%-12s %-12s %10llu %10llu %12.3f %12.3f\n", mode, "victim",
              static_cast<unsigned long long>(victim_out.submitted),
              static_cast<unsigned long long>(victim_out.rejected),
              NsToMs(victim_lat.p50_ns), NsToMs(victim_lat.p99_ns));
  EmitJson(mode, "aggressive", aggressive_out);
  EmitJson(mode, "victim", victim_out);
}

}  // namespace

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.05 : 0.01;
  const double seconds = full ? 10.0 : 3.0;
  const size_t flood_threads = full ? 8 : 4;

  PrintHeader("Admission overload: aggressive vs protected tenant",
              "sf=" + std::to_string(sf) + ", flood " +
                  std::to_string(flood_threads) +
                  " threads, victim paced at ~100/s, " +
                  std::to_string(seconds) + "s per mode; protected mode "
                  "caps the aggressive tenant at 8 CJOIN slots + 8 "
                  "baseline jobs");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();

  std::printf("%-12s %-12s %10s %10s %12s %12s\n", "mode", "tenant",
              "submitted", "rejected", "p50 (ms)", "p99 (ms)");
  RunMode("unprotected", *db, /*quotas=*/false, seconds, flood_threads);
  RunMode("protected", *db, /*quotas=*/true, seconds, flood_threads);

  std::printf(
      "\nExpected shape: in protected mode the aggressive tenant's excess "
      "submissions shed with kResourceExhausted (reject rate > 0) and the "
      "victim's p99 drops sharply versus unprotected — the engine degrades "
      "by rejecting, not by stalling.\n");
  return 0;
}
