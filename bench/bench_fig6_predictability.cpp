// Figure 6 reproduction: "Predictability of query response time"
// (§6.2.2) — average response time of queries from template Q4.2 as a
// function of the number of concurrent queries, for all three systems,
// plus the standard deviation of response time (the paper's stability
// metric: stddev within 0.5% of the mean for CJOIN, ~5% System X, ~9%
// PostgreSQL).
//
// Expected shape (paper): from n=1 to the top concurrency CJOIN's
// response time grows < 30%, System X ~19x, PostgreSQL ~66x.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.01;
  const double s = 0.01;
  const size_t warmup = full ? 96 : 24;
  const size_t measure = full ? 192 : 72;
  const std::vector<size_t> ns = full
                                     ? std::vector<size_t>{1, 32, 64, 128, 256}
                                     : std::vector<size_t>{1, 16, 64, 192};

  PrintHeader("Figure 6: predictability of query response time (Q4.2)",
              "sf=" + std::to_string(sf) +
                  " s=1%, shared simulated disk; seconds (avg over Q4.2 "
                  "instances in a mixed workload)");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  const size_t max_n = ns.back();
  // Bias the workload towards Q4.2 so the template statistic has samples,
  // keeping the mix per the paper (all ten templates present).
  std::vector<std::string> pool = ssb::SsbQueries::PaperTemplateNames();
  for (int i = 0; i < 10; ++i) pool.push_back("Q4.2");
  Rng rng(42);
  auto workload =
      queries.MakeWorkload(5 * max_n + warmup + measure, s, rng, pool)
          .value();
  for (size_t i = 0; i < workload.size(); ++i) {
    workload[i].label += "#" + std::to_string(i);
  }

  std::printf("%-8s %-14s %-14s %-14s  (stddev%% of mean)\n", "n", "CJOIN",
              "SystemX", "PostgreSQL");
  std::vector<double> base(3, 0.0);
  for (size_t n : ns) {
    double avg[3], dev[3];
    for (SystemKind kind : {SystemKind::kCJoin, SystemKind::kSystemX,
                            SystemKind::kPostgres}) {
      SimDisk disk;
      RunConfig cfg;
      cfg.concurrency = n;
      cfg.warmup = std::max(warmup, 2 * n);
      cfg.measure = std::max(measure, 2 * n);
      cfg.disk = &disk;
      RunResult r = RunWorkload(kind, *db, workload, cfg);
      const auto it = r.per_template_response.find("Q4.2");
      const int k = static_cast<int>(kind);
      if (it != r.per_template_response.end() && it->second.count() > 0) {
        avg[k] = it->second.mean();
        dev[k] = it->second.stddev();
      } else {
        avg[k] = r.response_seconds.mean();
        dev[k] = r.response_seconds.stddev();
      }
      if (base[k] == 0.0) base[k] = avg[k];
    }
    std::printf(
        "%-8zu %-8.3f(%3.0f%%) %-8.3f(%3.0f%%) %-8.3f(%3.0f%%)\n", n,
        avg[0], avg[0] > 0 ? 100 * dev[0] / avg[0] : 0, avg[1],
        avg[1] > 0 ? 100 * dev[1] / avg[1] : 0, avg[2],
        avg[2] > 0 ? 100 * dev[2] / avg[2] : 0);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: CJOIN's response time stays nearly flat as n "
      "grows (<~30%% total); the baselines grow by an order of magnitude "
      "or more.\n");
  return 0;
}
