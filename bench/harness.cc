#include "bench/harness.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "baseline/qat_engine.h"
#include "cjoin/cjoin_operator.h"
#include "engine/query_engine.h"

namespace cjoin {
namespace bench {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kCJoin:
      return "CJOIN";
    case SystemKind::kSystemX:
      return "SystemX";
    case SystemKind::kPostgres:
      return "PostgreSQL";
  }
  return "?";
}

std::string TemplateOf(const std::string& label) {
  const size_t pos = label.find('#');
  return pos == std::string::npos ? label : label.substr(0, pos);
}

bool FullScale() {
  const char* v = std::getenv("CJOIN_BENCH_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void PrintHeader(const std::string& experiment, const std::string& params) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", params.c_str());
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

obs::LatencySnapshot SnapshotSeconds(const std::vector<double>& seconds) {
  // Stack allocation would blow typical thread stacks (the bucket array
  // is a few KB of atomics); heap-allocate the scratch histogram.
  auto hist = std::make_unique<obs::LatencyHistogram>();
  for (double s : seconds) hist->RecordSeconds(s);
  return hist->Snapshot();
}

std::vector<StarQuerySpec> MakeWorkload(const ssb::SsbQueries& queries,
                                        size_t total, double s,
                                        uint64_t seed) {
  Rng rng(seed);
  auto wl = queries.MakeWorkload(total, s, rng);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 wl.status().ToString().c_str());
    std::abort();
  }
  return std::move(wl).value();
}

namespace {

/// Shared measurement bookkeeping: completion-order windows.
class Meter {
 public:
  Meter(size_t warmup, size_t measure)
      : warmup_(warmup), measure_(measure) {}

  /// Records the completion of the query with submission index `index`
  /// taking `response_s` seconds (plus optional submission time).
  void Complete(size_t index, const std::string& label, double response_s,
                double submission_s) {
    std::lock_guard<std::mutex> lk(mu_);
    const size_t order = completions_++;
    if (order == warmup_) window_watch_.Restart();
    if (order >= warmup_ && order < warmup_ + measure_) {
      (void)index;
      result_.response_seconds.Add(response_s);
      response_hist_.RecordSeconds(response_s);
      if (submission_s > 0) result_.submission_seconds.Add(submission_s);
      result_.per_template_response[TemplateOf(label)].Add(response_s);
      if (order + 1 == warmup_ + measure_) {
        window_seconds_ = window_watch_.ElapsedSeconds();
        done_.store(true, std::memory_order_release);
      }
    }
  }

  bool Done() const { return done_.load(std::memory_order_acquire); }

  RunResult Finish() {
    std::lock_guard<std::mutex> lk(mu_);
    result_.response_latency = response_hist_.Snapshot();
    result_.elapsed_seconds = window_seconds_;
    result_.qph = window_seconds_ > 0
                      ? static_cast<double>(measure_) / window_seconds_ * 3600.0
                      : 0.0;
    return result_;
  }

 private:
  size_t warmup_;
  size_t measure_;
  std::mutex mu_;
  size_t completions_ = 0;
  Stopwatch window_watch_;
  double window_seconds_ = 0.0;
  std::atomic<bool> done_{false};
  RunResult result_;
  obs::LatencyHistogram response_hist_;
};

/// All three systems under test run through the unified
/// QueryEngine::Execute() API; they differ only in routing policy and
/// per-request baseline executor knobs.
RunResult RunEngine(SystemKind kind, const ssb::SsbDatabase& db,
                    const std::vector<StarQuerySpec>& workload,
                    const RunConfig& cfg) {
  QueryEngine::Options eopts;
  eopts.cjoin.max_concurrent_queries =
      cfg.max_concurrency_override != 0
          ? cfg.max_concurrency_override
          : std::min<size_t>(1024, std::max<size_t>(cfg.concurrency, 8));
  eopts.cjoin_shards = cfg.cjoin_shards;
  // One simulated volume per shard: the scans sleep on their own device
  // (parallel I/O), instead of serializing on the shared disk. Declared
  // before the engine so the devices outlive the pipelines.
  std::vector<std::unique_ptr<SimDisk>> shard_disks;
  if (cfg.disk_per_shard) {
    const SimDisk::Options disk_opts =
        cfg.disk != nullptr ? cfg.disk->options() : SimDisk::Options{};
    for (size_t s = 0; s < cfg.cjoin_shards; ++s) {
      shard_disks.push_back(std::make_unique<SimDisk>(disk_opts));
      eopts.cjoin_shard_disks.push_back(shard_disks.back().get());
    }
  }
  eopts.cjoin.num_worker_threads = cfg.cjoin_threads;
  eopts.cjoin.batch_size = cfg.cjoin_batch_size;
  eopts.cjoin.queue_capacity = cfg.cjoin_queue_capacity;
  eopts.cjoin.pool_capacity = cfg.cjoin_pool_capacity;
  eopts.cjoin.scan_run_rows = cfg.scan_run_rows;
  eopts.cjoin.disk = cfg.disk;
  eopts.cjoin.adaptive_ordering = cfg.adaptive_ordering;
  eopts.cjoin.config = cfg.cjoin_vertical ? PipelineConfig::kVertical
                                          : PipelineConfig::kHorizontal;
  // One baseline worker per concurrent query, as in the paper's testbed.
  eopts.baseline_workers = cfg.concurrency;
  QueryEngine engine(eopts);
  if (Status st = engine.RegisterStar("ssb", *db.star); !st.ok()) {
    std::fprintf(stderr, "engine start failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  // The engine's cjoin.disk_reader_id default (0) is the single shared
  // continuous-scan identity.

  const bool is_cjoin = kind == SystemKind::kCJoin;
  const bool shared_reader = kind == SystemKind::kPostgres;
  const int overhead = kind == SystemKind::kPostgres ? cfg.postgres_overhead
                                                     : cfg.systemx_overhead;

  Meter meter(cfg.warmup, cfg.measure);
  Stopwatch run_watch;
  struct InFlight {
    size_t index;
    std::unique_ptr<QueryTicket> ticket;
  };
  std::vector<InFlight> in_flight;
  size_t next = 0;
  const size_t total = workload.size();

  auto submit_one = [&] {
    QueryRequest req = QueryRequest::FromSpec(workload[next]);
    req.policy = is_cjoin ? RoutePolicy::kCJoin : RoutePolicy::kBaseline;
    if (!is_cjoin) {
      QatOptions qopts;
      qopts.disk = cfg.disk;
      // PostgreSQL's synchronized scans share the device position (one
      // reader identity); System X's private scans compete (per-query
      // identity => seeks on every interleave).
      qopts.reader_id = shared_reader ? 1 : 1000 + next;
      qopts.per_tuple_overhead = overhead;
      qopts.scan_batch_rows = cfg.scan_run_rows;
      req.baseline_options = qopts;
    }
    auto t = engine.Execute(std::move(req));
    if (!t.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   t.status().ToString().c_str());
      std::abort();
    }
    in_flight.push_back(InFlight{next, std::move(*t)});
    ++next;
  };

  while (!meter.Done()) {
    while (in_flight.size() < cfg.concurrency && next < total &&
           !meter.Done()) {
      submit_one();
    }
    bool progress = false;
    for (size_t i = 0; i < in_flight.size();) {
      if (in_flight[i].ticket->Ready()) {
        auto rs = in_flight[i].ticket->Wait();
        if (!rs.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       rs.status().ToString().c_str());
          std::abort();
        }
        meter.Complete(in_flight[i].index, in_flight[i].ticket->label(),
                       in_flight[i].ticket->ResponseSeconds(),
                       in_flight[i].ticket->SubmissionSeconds());
        in_flight[i] = std::move(in_flight.back());
        in_flight.pop_back();
        progress = true;
      } else {
        ++i;
      }
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (next >= total && in_flight.empty()) break;
  }
  // Pool-wide scan rate over the run (summed across shards), sampled
  // before shutdown stops the scans.
  double scanned = 0;
  if (is_cjoin) {
    if (auto op = engine.OperatorFor("ssb"); op.ok()) {
      scanned = static_cast<double>((*op)->GetStats().rows_scanned);
    }
  }
  const double total_seconds = run_watch.ElapsedSeconds();
  engine.Shutdown();
  RunResult r = meter.Finish();
  if (total_seconds > 0) r.fact_tuples_per_sec = scanned / total_seconds;
  if (cfg.disk != nullptr) r.disk_seeks = cfg.disk->SeekCount();
  return r;
}

}  // namespace

RunResult RunWorkload(SystemKind kind, const ssb::SsbDatabase& db,
                      const std::vector<StarQuerySpec>& workload,
                      const RunConfig& config) {
  if (workload.size() < config.warmup + config.measure) {
    std::fprintf(stderr, "workload too small for measurement window\n");
    std::abort();
  }
  return RunEngine(kind, db, workload, config);
}

}  // namespace bench
}  // namespace cjoin
