#include "bench/harness.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "baseline/qat_engine.h"
#include "cjoin/cjoin_operator.h"

namespace cjoin {
namespace bench {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kCJoin:
      return "CJOIN";
    case SystemKind::kSystemX:
      return "SystemX";
    case SystemKind::kPostgres:
      return "PostgreSQL";
  }
  return "?";
}

std::string TemplateOf(const std::string& label) {
  const size_t pos = label.find('#');
  return pos == std::string::npos ? label : label.substr(0, pos);
}

bool FullScale() {
  const char* v = std::getenv("CJOIN_BENCH_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void PrintHeader(const std::string& experiment, const std::string& params) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", params.c_str());
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

std::vector<StarQuerySpec> MakeWorkload(const ssb::SsbQueries& queries,
                                        size_t total, double s,
                                        uint64_t seed) {
  Rng rng(seed);
  auto wl = queries.MakeWorkload(total, s, rng);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 wl.status().ToString().c_str());
    std::abort();
  }
  return std::move(wl).value();
}

namespace {

/// Shared measurement bookkeeping: completion-order windows.
class Meter {
 public:
  Meter(size_t warmup, size_t measure)
      : warmup_(warmup), measure_(measure) {}

  /// Records the completion of the query with submission index `index`
  /// taking `response_s` seconds (plus optional submission time).
  void Complete(size_t index, const std::string& label, double response_s,
                double submission_s) {
    std::lock_guard<std::mutex> lk(mu_);
    const size_t order = completions_++;
    if (order == warmup_) window_watch_.Restart();
    if (order >= warmup_ && order < warmup_ + measure_) {
      (void)index;
      result_.response_seconds.Add(response_s);
      if (submission_s > 0) result_.submission_seconds.Add(submission_s);
      result_.per_template_response[TemplateOf(label)].Add(response_s);
      if (order + 1 == warmup_ + measure_) {
        window_seconds_ = window_watch_.ElapsedSeconds();
        done_.store(true, std::memory_order_release);
      }
    }
  }

  bool Done() const { return done_.load(std::memory_order_acquire); }

  RunResult Finish() {
    std::lock_guard<std::mutex> lk(mu_);
    result_.elapsed_seconds = window_seconds_;
    result_.qph = window_seconds_ > 0
                      ? static_cast<double>(measure_) / window_seconds_ * 3600.0
                      : 0.0;
    return result_;
  }

 private:
  size_t warmup_;
  size_t measure_;
  std::mutex mu_;
  size_t completions_ = 0;
  Stopwatch window_watch_;
  double window_seconds_ = 0.0;
  std::atomic<bool> done_{false};
  RunResult result_;
};

RunResult RunCJoin(const ssb::SsbDatabase& db,
                   const std::vector<StarQuerySpec>& workload,
                   const RunConfig& cfg) {
  CJoinOperator::Options opts;
  opts.max_concurrent_queries =
      cfg.max_concurrency_override != 0
          ? cfg.max_concurrency_override
          : std::min<size_t>(1024, std::max<size_t>(cfg.concurrency, 8));
  opts.num_worker_threads = cfg.cjoin_threads;
  opts.batch_size = cfg.cjoin_batch_size;
  opts.queue_capacity = cfg.cjoin_queue_capacity;
  opts.pool_capacity = cfg.cjoin_pool_capacity;
  opts.scan_run_rows = cfg.scan_run_rows;
  opts.disk = cfg.disk;
  opts.disk_reader_id = 0;  // one shared reader: the continuous scan
  opts.adaptive_ordering = cfg.adaptive_ordering;
  opts.config = cfg.cjoin_vertical ? PipelineConfig::kVertical
                                   : PipelineConfig::kHorizontal;
  CJoinOperator op(*db.star, opts);
  if (Status st = op.Start(); !st.ok()) {
    std::fprintf(stderr, "CJOIN start failed: %s\n", st.ToString().c_str());
    std::abort();
  }

  Meter meter(cfg.warmup, cfg.measure);
  struct InFlight {
    size_t index;
    std::unique_ptr<QueryHandle> handle;
  };
  std::vector<InFlight> in_flight;
  size_t next = 0;
  const size_t total = workload.size();

  auto submit_one = [&] {
    auto h = op.Submit(workload[next]);
    if (!h.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   h.status().ToString().c_str());
      std::abort();
    }
    in_flight.push_back(InFlight{next, std::move(*h)});
    ++next;
  };

  while (!meter.Done()) {
    while (in_flight.size() < cfg.concurrency && next < total &&
           !meter.Done()) {
      submit_one();
    }
    bool progress = false;
    for (size_t i = 0; i < in_flight.size();) {
      if (in_flight[i].handle->Ready()) {
        auto rs = in_flight[i].handle->Wait();
        if (!rs.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       rs.status().ToString().c_str());
          std::abort();
        }
        meter.Complete(in_flight[i].index, in_flight[i].handle->label(),
                       in_flight[i].handle->ResponseSeconds(),
                       in_flight[i].handle->SubmissionSeconds());
        in_flight[i] = std::move(in_flight.back());
        in_flight.pop_back();
        progress = true;
      } else {
        ++i;
      }
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    if (next >= total && in_flight.empty()) break;
  }
  op.Stop();
  RunResult r = meter.Finish();
  if (cfg.disk != nullptr) r.disk_seeks = cfg.disk->SeekCount();
  return r;
}

RunResult RunQat(SystemKind kind, const ssb::SsbDatabase& db,
                 const std::vector<StarQuerySpec>& workload,
                 const RunConfig& cfg) {
  (void)db;
  Meter meter(cfg.warmup, cfg.measure);
  std::atomic<size_t> next{0};
  const size_t total = workload.size();
  const bool shared_reader = kind == SystemKind::kPostgres;
  const int overhead = kind == SystemKind::kPostgres ? cfg.postgres_overhead
                                                     : cfg.systemx_overhead;

  auto worker = [&](size_t worker_id) {
    for (;;) {
      if (meter.Done()) return;
      const size_t index = next.fetch_add(1);
      if (index >= total) return;
      QatOptions qopts;
      qopts.disk = cfg.disk;
      // PostgreSQL's synchronized scans share the device position (one
      // reader identity); System X's private scans compete (per-query
      // identity => seeks on every interleave).
      qopts.reader_id = shared_reader ? 1 : 1000 + index;
      qopts.per_tuple_overhead = overhead;
      qopts.scan_batch_rows = cfg.scan_run_rows;
      (void)worker_id;
      Stopwatch watch;
      auto rs = ExecuteStarQuery(workload[index], qopts);
      if (!rs.ok()) {
        std::fprintf(stderr, "baseline query failed: %s\n",
                     rs.status().ToString().c_str());
        std::abort();
      }
      meter.Complete(index, workload[index].label, watch.ElapsedSeconds(),
                     0.0);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.concurrency);
  for (size_t t = 0; t < cfg.concurrency; ++t) {
    threads.emplace_back(worker, t);
  }
  for (auto& t : threads) t.join();
  RunResult r = meter.Finish();
  if (cfg.disk != nullptr) r.disk_seeks = cfg.disk->SeekCount();
  return r;
}

}  // namespace

RunResult RunWorkload(SystemKind kind, const ssb::SsbDatabase& db,
                      const std::vector<StarQuerySpec>& workload,
                      const RunConfig& config) {
  if (workload.size() < config.warmup + config.measure) {
    std::fprintf(stderr, "workload too small for measurement window\n");
    std::abort();
  }
  if (kind == SystemKind::kCJoin) return RunCJoin(db, workload, config);
  return RunQat(kind, db, workload, config);
}

}  // namespace bench
}  // namespace cjoin
