// Shard scaling: fact-tuple throughput of the sharded CJOIN pool as the
// shard count grows at fixed concurrency.
//
// Each shard drives a full pipeline instance (continuous scan,
// preprocessor, filters, distributor) over ~1/N of the fact table, placed
// on its own simulated volume (a striped array: the substrate whose
// sequential bandwidth bounds a single CJOIN operator in §6). N shards
// scan N volumes in parallel, so the pool-wide fact-tuple rate rises
// monotonically with N until the pipelines hit the CPU — the software
// analogue of the partitioned analytics replicas in HTAP co-design work.
//
// Output: a human-readable table plus one JSON line per configuration
// (the harness benches' machine-readable shape) on stdout.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.01;
  const double s = 0.02;
  const size_t concurrency = full ? 64 : 32;
  const size_t warmup = full ? 128 : 48;
  const size_t measure = full ? 128 : 64;
  const std::vector<size_t> shard_counts = {1, 2, 4, 8};

  // Per-shard volume: slow enough that the scan — not the pipeline CPU —
  // is the bottleneck being multiplied (the regime the paper's testbed
  // was in; its 100 GB table never fit in RAM).
  SimDisk::Options volume;
  volume.bandwidth_bytes_per_sec = 32.0 * 1024 * 1024;
  SimDisk device_template(volume);

  PrintHeader("Shard scaling: fact-tuple throughput vs shard count",
              "sf=" + std::to_string(sf) + " s=2%, n=" +
                  std::to_string(concurrency) +
                  " fixed; one 32MB/s simulated volume per shard; "
                  "2 pipeline threads per shard");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  auto workload = MakeWorkload(
      queries, warmup + measure + 4 * concurrency, s, 42);

  std::printf("%-8s %-16s %-12s %-14s\n", "shards", "fact tuples/s", "qph",
              "mean resp (s)");
  for (size_t shards : shard_counts) {
    RunConfig cfg;
    cfg.concurrency = concurrency;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.cjoin_shards = shards;
    cfg.disk = &device_template;  // parameters for the per-shard volumes
    cfg.disk_per_shard = true;
    // Keep per-shard thread budget flat so the sweep measures pipeline
    // replication, not a growing thread pool per instance.
    cfg.cjoin_threads = 2;
    RunResult r = RunWorkload(SystemKind::kCJoin, *db, workload, cfg);
    std::printf("%-8zu %-16.0f %-12.0f %-14.4f\n", shards,
                r.fact_tuples_per_sec, r.qph, r.response_seconds.mean());
    std::printf(
        "{\"bench\":\"shard_scaling\",\"sf\":%g,\"selectivity\":%g,"
        "\"concurrency\":%zu,\"shards\":%zu,\"fact_tuples_per_sec\":%.0f,"
        "\"qph\":%.0f,\"mean_response_s\":%.6f,\"p_submission_s\":%.6f}\n",
        sf, s, concurrency, shards, r.fact_tuples_per_sec, r.qph,
        r.response_seconds.mean(), r.submission_seconds.mean());
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: fact tuples/s grows monotonically 1->4 shards "
      "(each shard scans a disjoint slice from its own volume); gains "
      "taper once the pipelines saturate the cores or the volumes idle.\n");
  return 0;
}
