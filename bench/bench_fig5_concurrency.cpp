// Figure 5 reproduction: "Query throughput scale-up with number of
// queries" (§6.2.2) — throughput of CJOIN vs System X vs PostgreSQL as
// the number of concurrent queries n grows.
//
// Expected shape (paper): CJOIN scales near-linearly with n (work is
// shared); the query-at-a-time systems peak around n=32 and then
// *decline* as private scans and hash builds contend. At the top
// concurrency CJOIN wins by roughly an order of magnitude.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.01;
  const double s = 0.01;
  const size_t warmup = full ? 128 : 32;
  const size_t measure = full ? 128 : 48;
  const std::vector<size_t> ns =
      full ? std::vector<size_t>{1, 32, 64, 96, 128, 160, 192, 224, 256}
           : std::vector<size_t>{1, 8, 32, 64, 128, 256};

  PrintHeader(
      "Figure 5: throughput scale-up with concurrency",
      "sf=" + std::to_string(sf) +
          " s=1%, shared simulated disk (400MB/s, 1.5ms seek); "
          "queries/hour");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  const size_t max_n = ns.back();
  // Warmup scales with n so the measured window sits past the initial
  // batch burst (the paper measures queries 256..512 for the same
  // reason).
  auto workload =
      MakeWorkload(queries, 5 * max_n + warmup + measure, s, 42);

  std::printf("%-8s %-12s %-12s %-12s\n", "n", "CJOIN", "SystemX",
              "PostgreSQL");
  for (size_t n : ns) {
    double qph[3];
    for (SystemKind kind : {SystemKind::kCJoin, SystemKind::kSystemX,
                            SystemKind::kPostgres}) {
      SimDisk disk;  // fresh device per run
      RunConfig cfg;
      cfg.concurrency = n;
      // Both windows scale with n: the measured set must be larger
      // than the in-flight set or the window closes on work that
      // predates it (the paper measures 256 queries for n up to 256).
      cfg.warmup = std::max(warmup, 2 * n);
      cfg.measure = std::max(measure, 2 * n);
      cfg.disk = &disk;
      qph[static_cast<int>(kind)] =
          RunWorkload(kind, *db, workload, cfg).qph;
    }
    std::printf("%-8zu %-12.0f %-12.0f %-12.0f\n", n, qph[0], qph[1],
                qph[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: CJOIN grows with n; baselines peak near n=32 "
      "then decline; CJOIN ~10x at the highest n.\n");
  return 0;
}
