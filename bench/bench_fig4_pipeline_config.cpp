// Figure 4 reproduction: "The effect of pipeline configuration on
// performance" — query throughput of the horizontal vs vertical CJOIN
// configuration as the number of Stage threads grows (§6.2.1).
//
// Expected shape (paper): the horizontal configuration consistently
// outperforms the vertical one once it has >= 2 threads; the overhead of
// passing tuples between per-filter stages outweighs vertical
// parallelism.

#include <cstdio>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.01;
  const double s = 0.01;
  const size_t n = 32;
  const size_t warmup = full ? 64 : 24;
  const size_t measure = full ? 128 : 32;

  PrintHeader("Figure 4: pipeline configuration (horizontal vs vertical)",
              "sf=" + std::to_string(sf) + " s=1% n=" + std::to_string(n) +
                  " (throughput in queries/hour)");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  auto workload = MakeWorkload(queries, warmup + measure + n, s, 42);

  std::printf("%-10s %-12s %-12s\n", "threads", "horizontal", "vertical");
  for (size_t threads = 1; threads <= 5; ++threads) {
    RunConfig cfg;
    cfg.concurrency = n;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.cjoin_threads = threads;

    cfg.cjoin_vertical = false;
    const double horizontal =
        RunWorkload(SystemKind::kCJoin, *db, workload, cfg).qph;

    // The vertical configuration needs at least one thread per Filter
    // (4 dimensions in SSB), matching the paper's minimum.
    double vertical = 0.0;
    const size_t num_dims = db->star->num_dimensions();
    if (threads >= num_dims) {
      cfg.cjoin_vertical = true;
      vertical = RunWorkload(SystemKind::kCJoin, *db, workload, cfg).qph;
    }

    if (vertical > 0) {
      std::printf("%-10zu %-12.0f %-12.0f\n", threads, horizontal, vertical);
    } else {
      std::printf("%-10zu %-12.0f %-12s\n", threads, horizontal,
                  "(needs >= 4)");
    }
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: horizontal >= vertical at every thread "
              "count where both run.\n");
  return 0;
}
