// Ablation (paper §6.2.2): bit-vector width.
//
// The paper attributes CJOIN's sub-linear scale-up from n=128 to n=256
// to bitmap-operation cost. This sweep isolates that effect two ways:
//  (1) microbench: AND-and-test throughput vs vector width;
//  (2) system: CJOIN throughput for the same workload and live
//      concurrency when the operator's maxConc (and therefore the
//      per-tuple bit-vector width) is 64 / 256 / 1024, i.e. 1 / 4 / 16
//      words per tuple.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/bitvector.h"
#include "common/clock.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  PrintHeader("Ablation: bit-vector width (paper §6.2.2)",
              "microbench + CJOIN throughput vs maxConc (width words)");

  // (1) Microbench: AND-and-test rate by width.
  std::printf("%-12s %-16s\n", "words", "AND ops/sec (M)");
  for (size_t words : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<uint64_t> dst(words, ~uint64_t{0});
    std::vector<uint64_t> src(words, 0x5a5a5a5a5a5a5a5aULL);
    const size_t iters = 50'000'000 / words;
    Stopwatch w;
    uint64_t sink = 0;
    for (size_t i = 0; i < iters; ++i) {
      dst[i % words] = ~uint64_t{0};  // keep the AND from degenerating
      sink += bitops::AndInto(dst.data(), src.data(), words) ? 1 : 0;
    }
    const double secs = w.ElapsedSeconds();
    if (sink == 123456789) std::printf("(unreachable)\n");
    std::printf("%-12zu %-16.1f\n", words,
                static_cast<double>(iters) / secs / 1e6);
  }

  // (2) System effect: same workload, same live concurrency, wider
  // vectors.
  const double sf = full ? 0.05 : 0.01;
  const size_t n = 32;
  const size_t warmup = 16;
  const size_t measure = full ? 96 : 40;

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  auto workload = MakeWorkload(queries, warmup + measure + n, 0.01, 42);

  std::printf("\n%-12s %-10s %-12s\n", "maxConc", "words", "CJOIN qph");
  for (size_t max_conc : {64u, 256u, 1024u}) {
    RunConfig cfg;
    cfg.concurrency = n;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.max_concurrency_override = max_conc;
    const RunResult r = RunWorkload(SystemKind::kCJoin, *db, workload, cfg);
    std::printf("%-12zu %-10zu %-12.0f\n", max_conc, (max_conc + 63) / 64,
                r.qph);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: word-op rate falls ~linearly with width; the "
      "system-level effect is visible but damped (probes and aggregation "
      "share the per-tuple budget) — the paper's sub-linear 128->256 "
      "scale-up.\n");
  return 0;
}
