// Figure 8 reproduction: "Influence of data scale on throughput"
// (§6.2.4) — NORMALIZED throughput (queries/hour x sf) of the three
// systems as the scale factor grows.
//
// Expected shape (paper): the baselines' normalized throughput stays
// flat or declines with sf; CJOIN's normalized throughput *increases*
// with sf because the submission overhead amortizes (the date dimension
// is fixed-size and customer/supplier grow sub-linearly) — CJOIN loses
// at the smallest sf and wins by growing factors at large sf.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const std::vector<double> sfs =
      full ? std::vector<double>{0.01, 0.05, 0.1, 0.5, 1.0}
           : std::vector<double>{0.002, 0.005, 0.01, 0.02};
  const double s = 0.01;
  const size_t n = full ? 128 : 64;
  const size_t warmup = full ? 256 : 128;   // >= 2n
  const size_t measure = full ? 256 : 128;  // >= 2n

  PrintHeader("Figure 8: influence of data scale on throughput",
              "s=1% n=" + std::to_string(n) +
                  ", shared simulated disk; normalized throughput = "
                  "queries/hour x sf");

  std::printf("%-10s %-14s %-14s %-14s\n", "sf", "CJOIN", "SystemX",
              "PostgreSQL");
  for (double sf : sfs) {
    ssb::GenOptions gopts;
    gopts.scale_factor = sf;
    auto db = ssb::Generate(gopts).value();
    ssb::SsbQueries queries(*db);
    auto workload = MakeWorkload(queries, warmup + measure + 2 * n, s, 42);

    double norm[3];
    for (SystemKind kind : {SystemKind::kCJoin, SystemKind::kSystemX,
                            SystemKind::kPostgres}) {
      SimDisk disk;
      RunConfig cfg;
      cfg.concurrency = n;
      cfg.warmup = warmup;
      cfg.measure = measure;
      cfg.disk = &disk;
      norm[static_cast<int>(kind)] =
          RunWorkload(kind, *db, workload, cfg).qph * sf;
    }
    std::printf("%-10.3f %-14.1f %-14.1f %-14.1f\n", sf, norm[0], norm[1],
                norm[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: CJOIN's normalized throughput RISES with sf; the "
      "baselines' stays flat or falls; crossover at small sf.\n");
  return 0;
}
