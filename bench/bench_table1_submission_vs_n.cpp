// Table 1 reproduction: "Influence of concurrency on query submission
// time" (§6.2.2) — CJOIN's query submission time (Submit() until the
// query-start control tuple enters the pipeline) vs the number of
// concurrent queries, with the response time row for context.
//
// Expected shape (paper): submission time does NOT depend on n (flat
// ~2.4s at their scale) and is small relative to response time.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.1 : 0.01;
  const double s = 0.01;
  const size_t warmup = full ? 64 : 24;
  const size_t measure = full ? 128 : 48;
  const std::vector<size_t> ns = {32, 64, 128, 256};

  PrintHeader("Table 1: influence of concurrency on query submission time",
              "sf=" + std::to_string(sf) + " s=1% (CJOIN; milliseconds)");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();
  ssb::SsbQueries queries(*db);
  auto workload =
      MakeWorkload(queries, 5 * ns.back() + warmup + measure, s, 42);

  std::printf("%-24s", "n");
  for (size_t n : ns) std::printf(" %-10zu", n);
  std::printf("\n");

  std::vector<double> submission, response;
  for (size_t n : ns) {
    SimDisk disk;
    RunConfig cfg;
    cfg.concurrency = n;
    cfg.warmup = std::max(warmup, 2 * n);
    cfg.measure = std::max(measure, 2 * n);
    cfg.disk = &disk;
    RunResult r = RunWorkload(SystemKind::kCJoin, *db, workload, cfg);
    submission.push_back(r.submission_seconds.mean() * 1e3);
    response.push_back(r.response_seconds.mean() * 1e3);
  }
  std::printf("%-24s", "Submission time (ms)");
  for (double v : submission) std::printf(" %-10.2f", v);
  std::printf("\n%-24s", "Response time (ms)");
  for (double v : response) std::printf(" %-10.1f", v);
  std::printf(
      "\n\nExpected shape: submission time flat across n and a small "
      "fraction of response time.\n");
  return 0;
}
