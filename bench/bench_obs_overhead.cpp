// Overhead guard for the always-on observability layer.
//
// Runs the same CJOIN workload with metrics/tracing enabled and disabled
// (runtime kill switch, interleaved A/B trials to cancel drift) and
// compares the best-of-trials wall time per arm. The acceptance bar for
// the observability PR is < 2% throughput cost; the bench exits nonzero
// when the measured delta exceeds the threshold so CI can gate on it.
//
//   $ bench_obs_overhead [--sf F] [--queries N] [--concurrency C]
//                        [--trials T] [--threshold PCT] [--trace-out PATH]
//
// --trace-out dumps the flight recorder after the timed arms (the
// bench itself is a dense multi-thread workload, so the dump doubles
// as a Perfetto demo input).
//
// Emits one JSON line:
//   {"bench":"obs_overhead","on_s":..,"off_s":..,"overhead_pct":..,
//    "threshold_pct":..,"pass":true}

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/clock.h"
#include "engine/query_engine.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "ssb/generator.h"

using namespace cjoin;

namespace {

Result<StarSchema> WireStar(const ssb::SsbDatabase& db) {
  return StarSchema::Make(
      db.lineorder.get(),
      std::vector<StarSchema::DimensionByName>{
          {db.date.get(), "lo_orderdate", "d_datekey"},
          {db.customer.get(), "lo_custkey", "c_custkey"},
          {db.supplier.get(), "lo_suppkey", "s_suppkey"},
          {db.part.get(), "lo_partkey", "p_partkey"},
      });
}

constexpr const char* kSql[] = {
    "SELECT COUNT(*) AS n FROM lineorder",
    "SELECT SUM(lo_revenue) AS rev FROM lineorder, date "
    "WHERE lo_orderdate = d_datekey AND d_year = 1993",
    "SELECT d_year, SUM(lo_revenue) AS rev FROM lineorder, date "
    "WHERE lo_orderdate = d_datekey GROUP BY d_year",
};

/// One timed pass: `queries` submissions with a sliding window of
/// `concurrency` outstanding tickets. Returns elapsed seconds.
double RunArm(QueryEngine& engine, size_t queries, size_t concurrency) {
  std::vector<std::unique_ptr<QueryTicket>> window;
  Stopwatch watch;
  for (size_t i = 0; i < queries; ++i) {
    QueryRequest req = QueryRequest::Sql(
        "ssb", kSql[i % (sizeof(kSql) / sizeof(kSql[0]))]);
    req.policy = RoutePolicy::kCJoin;  // the most instrumented path
    auto ticket = engine.Execute(std::move(req));
    if (!ticket.ok()) {
      std::fprintf(stderr, "submit: %s\n",
                   ticket.status().ToString().c_str());
      std::exit(1);
    }
    window.push_back(std::move(*ticket));
    if (window.size() >= concurrency) {
      (void)window.front()->Wait();
      window.erase(window.begin());
    }
  }
  for (auto& t : window) (void)t->Wait();
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.005;
  size_t queries = 24;
  size_t concurrency = 8;
  size_t trials = 3;
  double threshold_pct = 2.0;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--concurrency") == 0 && i + 1 < argc) {
      concurrency = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf F] [--queries N] [--concurrency C] "
                   "[--trials T] [--threshold PCT] [--trace-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (bench::FullScale()) {
    sf = 0.01;
    queries = 96;
    trials = 5;
  }

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto g = ssb::Generate(gopts);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }

  QueryEngine::Options eopts;
  eopts.cjoin.max_concurrent_queries =
      std::max<size_t>(16, concurrency * 2);
  QueryEngine engine(eopts);
  {
    auto star = WireStar(**g);
    if (!star.ok() || !engine.RegisterStar("ssb", std::move(*star)).ok()) {
      std::fprintf(stderr, "star setup failed\n");
      return 1;
    }
  }

  bench::PrintHeader("obs_overhead — metrics on vs off (runtime switch)",
                     "sf=" + std::to_string(sf) +
                         " queries=" + std::to_string(queries) +
                         " concurrency=" + std::to_string(concurrency) +
                         " trials=" + std::to_string(trials));

  // Warm both arms once (page in the tables, settle the pipeline).
  obs::SetMetricsEnabled(true);
  (void)RunArm(engine, concurrency, concurrency);
  obs::SetMetricsEnabled(false);
  (void)RunArm(engine, concurrency, concurrency);

  // Interleaved A/B: best-of-trials per arm discards scheduler noise.
  double best_on = 1e30;
  double best_off = 1e30;
  for (size_t t = 0; t < trials; ++t) {
    obs::SetMetricsEnabled(true);
    best_on = std::min(best_on, RunArm(engine, queries, concurrency));
    obs::SetMetricsEnabled(false);
    best_off = std::min(best_off, RunArm(engine, queries, concurrency));
  }
  obs::SetMetricsEnabled(true);
  engine.Shutdown();

  if (!trace_out.empty()) {
    std::string err;
    if (obs::FlightRecorder::Global().DumpToFile(trace_out, &err)) {
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace-out: %s\n", err.c_str());
    }
  }

  const double overhead_pct =
      best_off > 0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
  const bool pass = overhead_pct <= threshold_pct;
  std::printf(
      "{\"bench\":\"obs_overhead\",\"on_s\":%.4f,\"off_s\":%.4f,"
      "\"overhead_pct\":%.2f,\"threshold_pct\":%.2f,\"pass\":%s}\n",
      best_on, best_off, overhead_pct, threshold_pct,
      pass ? "true" : "false");
  std::fflush(stdout);
  return pass ? 0 : 1;
}
