// Router calibration: the feedback loop correcting deliberately
// mispriced static coefficients.
//
// Two directions, each with static costs mispriced by >= 4x:
//   * cjoin_underpriced — CJOIN's static weights are cut 8-16x, so a
//     lone selective query (truly faster on the private plan) misroutes
//     to the shared pipeline;
//   * cjoin_overpriced  — CJOIN's static weights are inflated 8x, so
//     concurrent unselective queries on a bandwidth-limited disk (truly
//     faster on the shared scan) misroute to the baseline pool.
//
// Each direction first measures ground truth on a calibration-disabled
// engine (the same workload forced down each route), then runs the
// kAuto workload on a fresh engine with the mispriced statics and
// calibration enabled. Per window of queries it emits one JSON line
// with the misroute rate (decisions disagreeing with the measured
// truth) and the mean relative predicted-vs-observed error (1.0 while
// the model has no prediction). Acceptance: both metrics strictly
// decrease from the warm-up window to the steady-state window, and the
// summary line says "pass": true.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "engine/query_engine.h"

using namespace cjoin;
using namespace cjoin::bench;

namespace {

Result<StarSchema> WireStar(const ssb::SsbDatabase& db) {
  return StarSchema::Make(
      db.lineorder.get(),
      std::vector<StarSchema::DimensionByName>{
          {db.date.get(), "lo_orderdate", "d_datekey"},
          {db.customer.get(), "lo_custkey", "c_custkey"},
          {db.supplier.get(), "lo_suppkey", "s_suppkey"},
          {db.part.get(), "lo_partkey", "p_partkey"},
      });
}

struct Direction {
  const char* name;
  /// Applies the deliberate >= 4x mispricing to the static coefficients.
  void (*misprice)(RouterOptions*);
  const char* sql;
  size_t batch;  ///< concurrent submissions per step (1 = sequential)
  bool use_disk;
};

void UnderpriceCJoin(RouterOptions* r) {
  r->cjoin_fixed_cost /= 16.0;
  r->cjoin_tuple_weight /= 8.0;
}

void OverpriceCJoin(RouterOptions* r) {
  r->cjoin_fixed_cost *= 8.0;
  r->cjoin_tuple_weight *= 8.0;
}

std::unique_ptr<QueryEngine> MakeEngine(const ssb::SsbDatabase& db,
                                        const Direction& dir, SimDisk* disk,
                                        bool mispriced, bool calibrate) {
  QueryEngine::Options eopts;
  if (dir.use_disk) {
    eopts.cjoin.disk = disk;
    eopts.baseline.disk = disk;
  }
  eopts.baseline_workers = 2;
  if (mispriced) dir.misprice(&eopts.router);
  eopts.router.calibration.enabled = calibrate;
  eopts.router.calibration.min_observations = 12;
  eopts.router.calibration.explore_every = 4;
  auto engine = std::make_unique<QueryEngine>(std::move(eopts));
  auto star = WireStar(db);
  if (!star.ok() || !engine->RegisterStar("ssb", std::move(*star)).ok()) {
    return nullptr;
  }
  return engine;
}

/// Runs `steps` rounds of `batch` concurrent submissions; returns the
/// mean wall seconds of successful queries and (optionally) collects
/// per-query (decision, wall) pairs.
struct Sample {
  RouteChoice route;
  bool calibrated;
  double predicted_s;  ///< the compared cost when calibrated (seconds)
  double wall_s;
};

double RunSteps(QueryEngine& engine, const char* sql, RoutePolicy policy,
                size_t batch, size_t steps, std::vector<Sample>* out) {
  double sum = 0.0;
  size_t n = 0;
  for (size_t step = 0; step < steps; ++step) {
    // Each ticket carries its own stopwatch: a failed Execute() must not
    // skew later tickets onto earlier (longer-running) watches.
    std::vector<std::pair<std::unique_ptr<QueryTicket>, Stopwatch>> inflight;
    for (size_t b = 0; b < batch; ++b) {
      QueryRequest req = QueryRequest::Sql("ssb", sql);
      req.policy = policy;
      Stopwatch watch;
      auto t = engine.Execute(std::move(req));
      if (t.ok()) inflight.emplace_back(std::move(*t), watch);
    }
    for (auto& [ticket, watch] : inflight) {
      auto rs = ticket->Wait();
      const double wall = watch.ElapsedSeconds();
      if (!rs.ok()) continue;
      sum += wall;
      ++n;
      if (out != nullptr) {
        const RouteDecision& d = ticket->decision();
        out->push_back({d.choice, d.calibrated,
                        d.choice == RouteChoice::kCJoin ? d.cjoin_cost
                                                        : d.baseline_cost,
                        wall});
      }
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

struct WindowMetrics {
  double misroute_rate = 0.0;
  double mean_rel_error = 0.0;
  double calibrated_frac = 0.0;
};

WindowMetrics Summarize(const std::vector<Sample>& samples, size_t begin,
                        size_t end, RouteChoice truth) {
  WindowMetrics m;
  size_t n = 0;
  for (size_t i = begin; i < end && i < samples.size(); ++i) {
    const Sample& s = samples[i];
    ++n;
    if (s.route != truth) m.misroute_rate += 1.0;
    if (s.calibrated && s.wall_s > 0.0) {
      m.mean_rel_error += std::min(
          10.0, std::abs(s.predicted_s - s.wall_s) / s.wall_s);
      m.calibrated_frac += 1.0;
    } else {
      m.mean_rel_error += 1.0;  // no time prediction available: 100%
    }
  }
  if (n > 0) {
    const double dn = static_cast<double>(n);
    m.misroute_rate /= dn;
    m.mean_rel_error /= dn;
    m.calibrated_frac /= dn;
  }
  return m;
}

bool RunDirection(const Direction& dir, const ssb::SsbDatabase& db,
                  size_t steps, size_t window_steps) {
  SimDisk::Options dopts;
  dopts.bandwidth_bytes_per_sec = 64.0 * 1024 * 1024;

  // Ground truth: the same workload forced down each route on an
  // honestly-priced, calibration-free engine.
  RouteChoice truth;
  double truth_cjoin_s, truth_baseline_s;
  {
    SimDisk disk(dopts);
    auto engine = MakeEngine(db, dir, &disk, /*mispriced=*/false,
                             /*calibrate=*/false);
    if (engine == nullptr) return false;
    const size_t truth_steps = std::max<size_t>(3, steps / 10);
    truth_cjoin_s = RunSteps(*engine, dir.sql, RoutePolicy::kCJoin,
                             dir.batch, truth_steps, nullptr);
    truth_baseline_s = RunSteps(*engine, dir.sql, RoutePolicy::kBaseline,
                                dir.batch, truth_steps, nullptr);
    truth = truth_cjoin_s <= truth_baseline_s ? RouteChoice::kCJoin
                                              : RouteChoice::kBaseline;
    engine->Shutdown();
  }
  std::printf(
      "%s: truth=%s (cjoin %.1f ms vs baseline %.1f ms per query)\n",
      dir.name, RouteChoiceName(truth), truth_cjoin_s * 1e3,
      truth_baseline_s * 1e3);

  // The calibrated run against mispriced statics.
  SimDisk disk(dopts);
  auto engine =
      MakeEngine(db, dir, &disk, /*mispriced=*/true, /*calibrate=*/true);
  if (engine == nullptr) return false;
  std::vector<Sample> samples;
  RunSteps(*engine, dir.sql, RoutePolicy::kAuto, dir.batch, steps,
           &samples);

  const size_t per_window = window_steps * dir.batch;
  WindowMetrics first, last;
  size_t windows = 0;
  for (size_t begin = 0; begin < samples.size(); begin += per_window) {
    const WindowMetrics m = Summarize(
        samples, begin, begin + per_window, truth);
    if (windows == 0) first = m;
    last = m;
    std::printf(
        "{\"bench\":\"router_calibration\",\"direction\":\"%s\","
        "\"window\":%zu,\"queries\":%zu,\"misroute_rate\":%.4f,"
        "\"mean_rel_error\":%.4f,\"calibrated_frac\":%.4f}\n",
        dir.name, windows,
        std::min(per_window, samples.size() - begin), m.misroute_rate,
        m.mean_rel_error, m.calibrated_frac);
    ++windows;
  }
  engine->Shutdown();

  // Strictly decreasing warm-up -> steady state — except when the
  // steady state is already at (or near) the floor, which covers the
  // fast-runner case where the fit warms inside the first window (a
  // metric that starts converged cannot strictly decrease) without
  // excusing a steady-state regression.
  const bool misroute_ok = last.misroute_rate < first.misroute_rate ||
                           last.misroute_rate == 0.0;
  const bool error_ok = last.mean_rel_error < first.mean_rel_error ||
                        last.mean_rel_error < 0.3;
  const bool pass = misroute_ok && error_ok;
  std::printf(
      "{\"bench\":\"router_calibration\",\"direction\":\"%s\","
      "\"summary\":true,\"truth\":\"%s\","
      "\"warmup_misroute\":%.4f,\"steady_misroute\":%.4f,"
      "\"warmup_rel_error\":%.4f,\"steady_rel_error\":%.4f,"
      "\"pass\":%s}\n",
      dir.name, RouteChoiceName(truth), first.misroute_rate,
      last.misroute_rate, first.mean_rel_error, last.mean_rel_error,
      pass ? "true" : "false");
  std::fflush(stdout);
  return pass;
}

}  // namespace

int main() {
  const bool full = FullScale();
  const double sf = full ? 0.05 : 0.01;
  const size_t seq_steps = full ? 360 : 180;
  const size_t batch_steps = full ? 60 : 30;

  PrintHeader("Router calibration: feedback loop vs mispriced statics",
              "sf=" + std::to_string(sf) +
                  "; statics mispriced >= 4x in each direction; "
                  "min_observations=12, explore_every=4");

  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts).value();

  const Direction directions[] = {
      // Lone selective query, memory-resident: the private plan wins,
      // but underpriced CJOIN statics steal it.
      {"cjoin_underpriced", UnderpriceCJoin,
       "SELECT COUNT(*) AS n FROM lineorder, date "
       "WHERE lo_orderdate = d_datekey AND d_year = 1997",
       /*batch=*/1, /*use_disk=*/false},
      // Concurrent unselective scans on one bandwidth-limited volume:
      // the shared lap wins, but overpriced CJOIN statics push the
      // queries into the baseline pool's backlog.
      {"cjoin_overpriced", OverpriceCJoin,
       "SELECT COUNT(*) AS n FROM lineorder", /*batch=*/6,
       /*use_disk=*/true},
  };

  bool all_pass = true;
  for (const Direction& dir : directions) {
    const size_t steps = dir.batch == 1 ? seq_steps : batch_steps;
    const size_t window_steps = dir.batch == 1 ? 15 : 3;
    all_pass = RunDirection(dir, *db, steps, window_steps) && all_pass;
  }

  std::printf(
      "\nExpected shape: each direction's misroute rate and relative "
      "predicted-vs-observed error strictly decrease from the warm-up "
      "window to the steady state — the feedback loop learns real "
      "per-route costs and overrides the mispriced statics.\n");
  return all_pass ? 0 : 1;
}
