// Open-loop benchmark of the network serving front-end.
//
// An in-process CjoinServer serves an SSB database; client connections
// ramp up in steps. Each connection submits on a fixed arrival schedule
// (open loop: the next arrival is due whether or not the previous query
// finished, so server-side queueing shows up as latency rather than as a
// reduced offered load). Per step, one JSON line reports wire-level
// p50/p99 latency and the shed rate — how much of the offered load the
// admission controller rejected (kResourceExhausted) instead of stalling.
//
//   $ bench_net_serving [--sf F] [--conns 2,8,16] [--seconds S]
//                       [--rate R] [--max-inflight N]
//
// --max-inflight caps the bench tenant's concurrent CJOIN registrations,
// so the overload shape (degrade by rejecting, paper §3.4) is visible at
// the wire even on a small database.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "engine/query_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "ssb/generator.h"

using namespace cjoin;

namespace {

constexpr const char* kSql[] = {
    "SELECT COUNT(*) AS n FROM lineorder",
    "SELECT SUM(lo_revenue) AS rev FROM lineorder, date "
    "WHERE lo_orderdate = d_datekey AND d_year = 1993 AND lo_discount "
    "BETWEEN 1 AND 3 AND lo_quantity < 25",
    "SELECT d_year, SUM(lo_revenue) AS rev FROM lineorder, date "
    "WHERE lo_orderdate = d_datekey GROUP BY d_year",
};

struct StepOutcome {
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other_error = 0;
  std::vector<double> latencies_s;  ///< completed queries only
};

/// One connection's open-loop schedule: `rate` arrivals/sec for
/// `seconds`, latencies measured from the *scheduled* arrival time, so
/// falling behind schedule is visible as latency.
void RunConnection(uint16_t port, double rate, double seconds, int seed,
                   StepOutcome* out, std::mutex* mu) {
  net::CjoinClient::Options copts;
  copts.port = port;
  copts.tenant = "bench";
  net::CjoinClient client(copts);
  if (!client.Connect().ok()) return;

  StepOutcome local;
  const auto start = std::chrono::steady_clock::now();
  const auto interval = std::chrono::duration<double>(1.0 / rate);
  const size_t arrivals = static_cast<size_t>(seconds * rate);
  for (size_t i = 0; i < arrivals; ++i) {
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i));
    std::this_thread::sleep_until(due);
    ++local.submitted;
    const char* sql = kSql[(static_cast<size_t>(seed) + i) %
                           (sizeof(kSql) / sizeof(kSql[0]))];
    auto qr = client.Query("ssb", sql);
    const auto end = std::chrono::steady_clock::now();
    if (qr.ok()) {
      ++local.ok;
      local.latencies_s.push_back(
          std::chrono::duration<double>(end - due).count());
    } else if (qr.status().code() == StatusCode::kResourceExhausted) {
      ++local.shed;
    } else {
      ++local.other_error;
      if (!client.connected()) break;
    }
  }

  std::lock_guard<std::mutex> lk(*mu);
  out->submitted += local.submitted;
  out->ok += local.ok;
  out->shed += local.shed;
  out->other_error += local.other_error;
  out->latencies_s.insert(out->latencies_s.end(), local.latencies_s.begin(),
                          local.latencies_s.end());
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  std::vector<size_t> conn_steps = {2, 8, 16};
  double seconds = 3.0;
  double rate = 5.0;
  size_t max_inflight = 8;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      conn_steps.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        conn_steps.push_back(static_cast<size_t>(std::strtoul(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (p == nullptr) break;
        ++p;
      }
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      max_inflight = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sf F] [--conns A,B,C] [--seconds S] "
                   "[--rate R] [--max-inflight N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::fprintf(stderr, "generating SSB sf=%g...\n", sf);
  ssb::GenOptions gopts;
  gopts.scale_factor = sf;
  auto db = ssb::Generate(gopts);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  QueryEngine engine;
  {
    auto star = StarSchema::Make(
        (*db)->lineorder.get(),
        std::vector<StarSchema::DimensionByName>{
            {(*db)->date.get(), "lo_orderdate", "d_datekey"},
            {(*db)->customer.get(), "lo_custkey", "c_custkey"},
            {(*db)->supplier.get(), "lo_suppkey", "s_suppkey"},
            {(*db)->part.get(), "lo_partkey", "p_partkey"},
        });
    if (!star.ok() || !engine.RegisterStar("ssb", std::move(*star)).ok()) {
      std::fprintf(stderr, "star wiring failed\n");
      return 1;
    }
  }
  if (max_inflight > 0) {
    TenantQuota quota;
    quota.max_inflight_cjoin = max_inflight;
    quota.max_queued_baseline = max_inflight;
    (void)engine.SetTenantQuota("bench", quota);
  }

  net::CjoinServer server(&engine, {});
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }

  for (size_t conns : conn_steps) {
    StepOutcome out;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < conns; ++c) {
      threads.emplace_back(RunConnection, server.port(), rate, seconds,
                           static_cast<int>(c), &out, &mu);
    }
    for (auto& t : threads) t.join();

    const double shed_rate =
        out.submitted == 0 ? 0.0
                           : static_cast<double>(out.shed) /
                                 static_cast<double>(out.submitted);
    const obs::LatencySnapshot lat = bench::SnapshotSeconds(out.latencies_s);
    std::printf(
        "{\"bench\":\"net_serving\",\"connections\":%zu,"
        "\"rate_per_conn\":%.1f,\"submitted\":%llu,\"ok\":%llu,"
        "\"shed\":%llu,\"other_error\":%llu,\"shed_rate\":%.4f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
        conns, rate, static_cast<unsigned long long>(out.submitted),
        static_cast<unsigned long long>(out.ok),
        static_cast<unsigned long long>(out.shed),
        static_cast<unsigned long long>(out.other_error), shed_rate,
        bench::NsToMs(lat.p50_ns), bench::NsToMs(lat.p99_ns));
    std::fflush(stdout);
  }

  server.Stop();
  engine.Shutdown(std::chrono::seconds(5));
  return 0;
}
