// Table 3 reproduction: "Influence of data scale on query submission
// overhead" (§6.2.4) — CJOIN's submission time vs scale factor.
//
// Expected shape (paper): submission time grows far slower than sf
// (date is fixed-size; customer/supplier grow sub-linearly at SSB
// semantics), so submission overhead shrinks relative to response time
// as the warehouse grows.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace cjoin;
using namespace cjoin::bench;

int main() {
  const bool full = FullScale();
  const std::vector<double> sfs =
      full ? std::vector<double>{0.01, 0.1, 1.0}
           : std::vector<double>{0.002, 0.01, 0.05};
  const double s = 0.01;
  const size_t n = full ? 128 : 64;
  const size_t warmup = full ? 256 : 128;   // >= 2n
  const size_t measure = full ? 256 : 128;  // >= 2n

  PrintHeader("Table 3: influence of data scale on submission overhead",
              "s=1% n=" + std::to_string(n) + " (CJOIN; milliseconds)");

  std::printf("%-24s", "scale factor");
  for (double sf : sfs) std::printf(" %-10.3f", sf);
  std::printf("\n");

  std::vector<double> submission, response;
  for (double sf : sfs) {
    ssb::GenOptions gopts;
    gopts.scale_factor = sf;
    auto db = ssb::Generate(gopts).value();
    ssb::SsbQueries queries(*db);
    auto workload = MakeWorkload(queries, warmup + measure + 2 * n, s, 42);
    SimDisk disk;
    RunConfig cfg;
    cfg.concurrency = n;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.disk = &disk;
    RunResult r = RunWorkload(SystemKind::kCJoin, *db, workload, cfg);
    submission.push_back(r.submission_seconds.mean() * 1e3);
    response.push_back(r.response_seconds.mean() * 1e3);
  }
  std::printf("%-24s", "Submission time (ms)");
  for (double v : submission) std::printf(" %-10.2f", v);
  std::printf("\n%-24s", "Response time (ms)");
  for (double v : response) std::printf(" %-10.1f", v);
  std::printf(
      "\n\nExpected shape: response time grows ~linearly with sf while "
      "submission time grows much slower (sub-linear dimensions).\n");
  return 0;
}
