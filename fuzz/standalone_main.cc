// File-driven driver for the fuzz harnesses on compilers without
// libFuzzer (GCC): each argv entry is read whole and handed to
// LLVMFuzzerTestOneInput, so the checked-in corpora double as regression
// inputs everywhere. With no arguments it runs a built-in smoke pass
// (empty input plus a few byte patterns), so `./fuzz_x` alone still
// exercises the harness.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    const uint8_t patterns[] = {0x00, 0xff, 0x41, 0x43, 0x4a, 0x4e, 0x50};
    LLVMFuzzerTestOneInput(nullptr, 0);
    for (uint8_t b : patterns) {
      std::vector<uint8_t> buf(64, b);
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
    }
    std::printf("standalone smoke pass: %zu inputs\n",
                sizeof(patterns) + 1);
    return 0;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      failures++;
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::printf("ok %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return failures == 0 ? 0 : 1;
}
