// Fuzzes the SQL-subset parser: arbitrary bytes as statement text against
// a small star schema. The serving front-end hands the parser query text
// straight out of a QUERY frame, so hostile statements must come back as
// kInvalidArgument — never an assert, throw, crash, out-of-bounds read,
// or unbounded recursion.
//
// Build modes (see CMakeLists.txt):
//   clang: real libFuzzer binary (-fsanitize=fuzzer,address)
//   other: standalone driver replaying argv files (fuzz/corpus/sql)

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "catalog/star_schema.h"
#include "engine/sql_parser.h"
#include "storage/table.h"

namespace {

/// A minimal two-dimension star (mirroring tests/test_util.cc's TinyStar
/// shape without the GoogleTest dependency). Built once; the parser only
/// reads schemas, never rows.
struct FuzzStar {
  std::unique_ptr<cjoin::Table> product;
  std::unique_ptr<cjoin::Table> store;
  std::unique_ptr<cjoin::Table> sales;
  std::unique_ptr<cjoin::StarSchema> star;
};

const FuzzStar& Star() {
  static const FuzzStar* fs = [] {
    auto* s = new FuzzStar();
    cjoin::Schema pschema;
    pschema.AddInt32("p_id").AddChar("p_cat", 8).AddInt32("p_price");
    s->product = std::make_unique<cjoin::Table>("product", pschema);

    cjoin::Schema sschema;
    sschema.AddInt32("s_id").AddChar("s_region", 8);
    s->store = std::make_unique<cjoin::Table>("store", sschema);

    cjoin::Schema fschema;
    fschema.AddInt32("f_pid").AddInt32("f_sid").AddInt32("f_qty").AddInt32(
        "f_amount");
    s->sales = std::make_unique<cjoin::Table>("sales", fschema);

    auto star = cjoin::StarSchema::Make(
        s->sales.get(),
        std::vector<cjoin::StarSchema::DimensionByName>{
            {s->product.get(), "f_pid", "p_id"},
            {s->store.get(), "f_sid", "s_id"},
        });
    s->star = std::make_unique<cjoin::StarSchema>(std::move(star).value());
    return s;
  }();
  return *fs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view sql(reinterpret_cast<const char*>(data), size);
  (void)cjoin::ParseStarQuery(*Star().star, sql);
  return 0;
}
