// Fuzzes the wire-protocol decode path: arbitrary bytes through
// FrameAssembler (framing: length words, type bytes, buffering across
// feeds) and every typed decoder reachable from a framed payload. The
// server calls exactly this code on bytes straight off a TCP socket, so
// nothing here may crash, overflow, or allocate proportionally to a
// hostile length word — errors must come back as Status.
//
// Build modes (see CMakeLists.txt):
//   clang: real libFuzzer binary (-fsanitize=fuzzer,address)
//   other: standalone driver replaying argv files (fuzz/corpus/protocol)

#include <cstddef>
#include <cstdint>

#include "net/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace cjoin::net;

  FrameAssembler assembler;
  // Split the input into two feeds so partial-frame buffering is
  // exercised; the split point comes from the input itself.
  const size_t split = size > 0 ? data[0] % (size + 1) : 0;
  if (!assembler.Feed(data, split).ok()) return 0;
  if (!assembler.Feed(data + split, size - split).ok()) return 0;

  Frame frame;
  while (assembler.Next(&frame)) {
    // Route the payload through every decoder whose frame type matches —
    // both directions where the type is shared, since a malicious server
    // is the client's untrusted peer too.
    switch (frame.type) {
      case FrameType::kHello:
        (void)DecodeHelloRequest(frame.payload);
        (void)DecodeHelloReply(frame.payload);
        break;
      case FrameType::kQuery:
        (void)DecodeQuery(frame.payload);
        break;
      case FrameType::kRowBatch:
        (void)DecodeRowBatch(frame.payload);
        break;
      case FrameType::kQueryDone:
        (void)DecodeQueryDone(frame.payload);
        break;
      case FrameType::kError:
        (void)DecodeError(frame.payload);
        break;
      case FrameType::kCancel:
        (void)DecodeCancel(frame.payload);
        break;
      case FrameType::kIngest:
        (void)DecodeIngest(frame.payload);
        (void)DecodeIngestReply(frame.payload);
        break;
      case FrameType::kStats:
        (void)DecodeStatsRequest(frame.payload);
        (void)DecodeStatsReply(frame.payload);
        break;
    }
  }
  return 0;
}
