#include "ssb/ssb_schema.h"

namespace cjoin {
namespace ssb {

Schema MakeDateSchema() {
  Schema s;
  s.AddInt32("d_datekey")
      .AddChar("d_date", 18)
      .AddChar("d_dayofweek", 9)
      .AddChar("d_month", 9)
      .AddInt32("d_year")
      .AddInt32("d_yearmonthnum")
      .AddChar("d_yearmonth", 7)
      .AddInt32("d_daynuminweek")
      .AddInt32("d_daynuminmonth")
      .AddInt32("d_daynuminyear")
      .AddInt32("d_monthnuminyear")
      .AddInt32("d_weeknuminyear")
      .AddChar("d_sellingseason", 12)
      .AddInt32("d_lastdayinweekfl")
      .AddInt32("d_lastdayinmonthfl")
      .AddInt32("d_holidayfl")
      .AddInt32("d_weekdayfl");
  return s;
}

Schema MakeCustomerSchema() {
  Schema s;
  s.AddInt32("c_custkey")
      .AddChar("c_name", 25)
      .AddChar("c_address", 25)
      .AddChar("c_city", 10)
      .AddChar("c_nation", 15)
      .AddChar("c_region", 12)
      .AddChar("c_phone", 15)
      .AddChar("c_mktsegment", 10);
  return s;
}

Schema MakeSupplierSchema() {
  Schema s;
  s.AddInt32("s_suppkey")
      .AddChar("s_name", 25)
      .AddChar("s_address", 25)
      .AddChar("s_city", 10)
      .AddChar("s_nation", 15)
      .AddChar("s_region", 12)
      .AddChar("s_phone", 15);
  return s;
}

Schema MakePartSchema() {
  Schema s;
  s.AddInt32("p_partkey")
      .AddChar("p_name", 22)
      .AddChar("p_mfgr", 6)
      .AddChar("p_category", 7)
      .AddChar("p_brand1", 9)
      .AddChar("p_color", 11)
      .AddChar("p_type", 25)
      .AddInt32("p_size")
      .AddChar("p_container", 10);
  return s;
}

Schema MakeLineorderSchema() {
  Schema s;
  s.AddInt32("lo_orderkey")
      .AddInt32("lo_linenumber")
      .AddInt32("lo_custkey")
      .AddInt32("lo_partkey")
      .AddInt32("lo_suppkey")
      .AddInt32("lo_orderdate")
      .AddChar("lo_orderpriority", 15)
      .AddChar("lo_shippriority", 1)
      .AddInt32("lo_quantity")
      .AddInt32("lo_extendedprice")
      .AddInt32("lo_ordtotalprice")
      .AddInt32("lo_discount")
      .AddInt32("lo_revenue")
      .AddInt32("lo_supplycost")
      .AddInt32("lo_tax")
      .AddInt32("lo_commitdate")
      .AddChar("lo_shipmode", 10);
  return s;
}

}  // namespace ssb
}  // namespace cjoin
