// SSB query suite and workload generation (paper §6.1.2).
//
// Two layers:
//  * Canonical(name) — the 13 SSB queries Q1.1..Q4.3 with their literal
//    predicates, used for correctness tests and examples.
//  * FromTemplate(name, s, rng) — the paper's workload generator: each
//    benchmark query becomes a template whose range predicates are
//    abstracted; concrete instances substitute ranges whose *dimension
//    selectivity* is `s` (the fraction of each referenced dimension's
//    rows selected), at a random position. "s allows us to control the
//    number of dimension tuples that are loaded by CJOIN per query, as
//    well as the size of the hash tables" (§6.1.2).
//
// Following the paper, the default template set excludes Q1.1-Q1.3
// (fact-table-predicate-only queries); this implementation *does* support
// fact predicates, so the Q1.x templates can be included on request.

#ifndef CJOIN_SSB_QUERIES_H_
#define CJOIN_SSB_QUERIES_H_

#include <string>
#include <vector>

#include "catalog/query_spec.h"
#include "common/rng.h"
#include "ssb/generator.h"

namespace cjoin {
namespace ssb {

/// Builds SSB query specs against a generated database.
class SsbQueries {
 public:
  explicit SsbQueries(const SsbDatabase& db);

  /// All 13 benchmark query names: "Q1.1" .. "Q4.3".
  static const std::vector<std::string>& AllNames();

  /// The 10 template names used for workload generation in the paper
  /// (Q2.1..Q4.3 — the queries with group-by clauses).
  static const std::vector<std::string>& PaperTemplateNames();

  /// The named benchmark query with its literal predicates, normalized.
  Result<StarQuerySpec> Canonical(const std::string& name) const;

  /// A randomized instance of the named template where every referenced
  /// dimension gets a primary-key range predicate of selectivity
  /// `selectivity` (0 < s <= 1) at an rng-chosen offset. Group-by and
  /// aggregates follow the template.
  Result<StarQuerySpec> FromTemplate(const std::string& name,
                                     double selectivity, Rng& rng) const;

  /// A workload of `n` queries sampled uniformly from `templates`
  /// (defaults to PaperTemplateNames()) at selectivity `s`.
  Result<std::vector<StarQuerySpec>> MakeWorkload(
      size_t n, double selectivity, Rng& rng,
      const std::vector<std::string>& templates = {}) const;

  const SsbDatabase& db() const { return db_; }

 private:
  /// BETWEEN predicate on the dimension's primary key selecting exactly
  /// ~s of its rows, placed uniformly at random.
  ExprPtr KeyRangePredicate(size_t dim_index, double selectivity,
                            Rng& rng) const;

  const SsbDatabase& db_;
  /// Sorted primary keys of each dimension (for exact-selectivity ranges).
  std::vector<std::vector<int32_t>> dim_keys_;
};

}  // namespace ssb
}  // namespace cjoin

#endif  // CJOIN_SSB_QUERIES_H_
