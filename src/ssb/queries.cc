#include "ssb/queries.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ssb/ssb_schema.h"

namespace cjoin {
namespace ssb {

namespace {

/// Shorthand for column-ref-by-name that asserts success (SSB schemas are
/// fixed; a miss is a programming error caught by tests).
ExprPtr ColRef(const Schema& schema, std::string_view name) {
  auto r = MakeColumnRef(schema, name);
  assert(r.ok());
  return std::move(r).value();
}

ExprPtr StrEq(const Schema& schema, std::string_view col,
              std::string_view val) {
  return MakeCompare(CmpOp::kEq, ColRef(schema, col),
                     MakeLiteral(Value(std::string(val))));
}

ExprPtr IntEq(const Schema& schema, std::string_view col, int64_t val) {
  return MakeCompare(CmpOp::kEq, ColRef(schema, col), MakeLiteral(Value(val)));
}

ExprPtr IntBetween(const Schema& schema, std::string_view col, int64_t lo,
                   int64_t hi) {
  return MakeBetween(ColRef(schema, col), Value(lo), Value(hi));
}

ColumnSource DimCol(const StarSchema& star, size_t dim,
                    std::string_view name) {
  auto idx = star.dimension(dim).table->schema().FindColumn(name);
  assert(idx.ok());
  return ColumnSource::Dim(dim, idx.value());
}

}  // namespace

SsbQueries::SsbQueries(const SsbDatabase& db) : db_(db) {
  dim_keys_.resize(kNumSsbDims);
  const StarSchema& star = *db_.star;
  for (size_t d = 0; d < kNumSsbDims; ++d) {
    const DimensionDef& def = star.dimension(d);
    const Table& t = *def.table;
    auto& keys = dim_keys_[d];
    keys.reserve(t.NumRows());
    for (uint64_t i = 0; i < t.NumRows(); ++i) {
      keys.push_back(static_cast<int32_t>(t.schema().GetIntAny(
          t.RowPayload(RowId{0, i}), def.dim_pk_col)));
    }
    std::sort(keys.begin(), keys.end());
  }
}

const std::vector<std::string>& SsbQueries::AllNames() {
  static const std::vector<std::string> kNames = {
      "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1",
      "Q3.2", "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"};
  return kNames;
}

const std::vector<std::string>& SsbQueries::PaperTemplateNames() {
  static const std::vector<std::string> kNames = {
      "Q2.1", "Q2.2", "Q2.3", "Q3.1", "Q3.2",
      "Q3.3", "Q3.4", "Q4.1", "Q4.2", "Q4.3"};
  return kNames;
}

Result<StarQuerySpec> SsbQueries::Canonical(const std::string& name) const {
  const StarSchema& star = *db_.star;
  const Schema& lo = star.fact().schema();
  const Schema& d = star.dimension(kDimDate).table->schema();
  const Schema& c = star.dimension(kDimCustomer).table->schema();
  const Schema& s = star.dimension(kDimSupplier).table->schema();
  const Schema& p = star.dimension(kDimPart).table->schema();

  StarQuerySpec q;
  q.schema = &star;
  q.label = name;

  auto dim_pred = [&](size_t dim, ExprPtr pred) {
    q.dim_predicates.push_back(DimensionPredicate{dim, std::move(pred)});
  };
  auto sum_expr = [&](ExprPtr e, std::string label) {
    q.aggregates.push_back(
        AggregateSpec{AggFn::kSum, std::nullopt, std::move(e),
                      std::move(label)});
  };
  auto sum_col = [&](const ColumnSource& src, std::string label) {
    q.aggregates.push_back(
        AggregateSpec{AggFn::kSum, src, nullptr, std::move(label)});
  };
  auto group = [&](const ColumnSource& src) { q.group_by.push_back(src); };

  const ExprPtr lo_revenue_expr = ColRef(lo, "lo_revenue");
  const ExprPtr profit_expr =
      MakeArith(ArithOp::kSub, ColRef(lo, "lo_revenue"),
                ColRef(lo, "lo_supplycost"));
  const ExprPtr discount_revenue_expr =
      MakeArith(ArithOp::kMul, ColRef(lo, "lo_extendedprice"),
                ColRef(lo, "lo_discount"));

  if (name == "Q1.1") {
    dim_pred(kDimDate, IntEq(d, "d_year", 1993));
    q.fact_predicate =
        MakeAnd(IntBetween(lo, "lo_discount", 1, 3),
                MakeCompare(CmpOp::kLt, ColRef(lo, "lo_quantity"),
                            MakeLiteral(Value(int64_t{25}))));
    sum_expr(discount_revenue_expr, "revenue");
  } else if (name == "Q1.2") {
    dim_pred(kDimDate, IntEq(d, "d_yearmonthnum", 199401));
    q.fact_predicate = MakeAnd(IntBetween(lo, "lo_discount", 4, 6),
                               IntBetween(lo, "lo_quantity", 26, 35));
    sum_expr(discount_revenue_expr, "revenue");
  } else if (name == "Q1.3") {
    dim_pred(kDimDate, MakeAnd(IntEq(d, "d_weeknuminyear", 6),
                               IntEq(d, "d_year", 1994)));
    q.fact_predicate = MakeAnd(IntBetween(lo, "lo_discount", 5, 7),
                               IntBetween(lo, "lo_quantity", 26, 35));
    sum_expr(discount_revenue_expr, "revenue");
  } else if (name == "Q2.1") {
    dim_pred(kDimPart, StrEq(p, "p_category", "MFGR#12"));
    dim_pred(kDimSupplier, StrEq(s, "s_region", "AMERICA"));
    group(DimCol(star, kDimDate, "d_year"));
    group(DimCol(star, kDimPart, "p_brand1"));
    sum_col(ColumnSource::Fact(
                static_cast<size_t>(lo.ColumnIndex("lo_revenue"))),
            "lo_revenue");
  } else if (name == "Q2.2") {
    dim_pred(kDimPart,
             MakeAnd(MakeCompare(CmpOp::kGe, ColRef(p, "p_brand1"),
                                 MakeLiteral(Value("MFGR#2221"))),
                     MakeCompare(CmpOp::kLe, ColRef(p, "p_brand1"),
                                 MakeLiteral(Value("MFGR#2228")))));
    dim_pred(kDimSupplier, StrEq(s, "s_region", "ASIA"));
    group(DimCol(star, kDimDate, "d_year"));
    group(DimCol(star, kDimPart, "p_brand1"));
    sum_col(ColumnSource::Fact(
                static_cast<size_t>(lo.ColumnIndex("lo_revenue"))),
            "lo_revenue");
  } else if (name == "Q2.3") {
    dim_pred(kDimPart, StrEq(p, "p_brand1", "MFGR#2239"));
    dim_pred(kDimSupplier, StrEq(s, "s_region", "EUROPE"));
    group(DimCol(star, kDimDate, "d_year"));
    group(DimCol(star, kDimPart, "p_brand1"));
    sum_col(ColumnSource::Fact(
                static_cast<size_t>(lo.ColumnIndex("lo_revenue"))),
            "lo_revenue");
  } else if (name == "Q3.1") {
    dim_pred(kDimCustomer, StrEq(c, "c_region", "ASIA"));
    dim_pred(kDimSupplier, StrEq(s, "s_region", "ASIA"));
    dim_pred(kDimDate, IntBetween(d, "d_year", 1992, 1997));
    group(DimCol(star, kDimCustomer, "c_nation"));
    group(DimCol(star, kDimSupplier, "s_nation"));
    group(DimCol(star, kDimDate, "d_year"));
    sum_expr(lo_revenue_expr, "lo_revenue");
  } else if (name == "Q3.2") {
    dim_pred(kDimCustomer, StrEq(c, "c_nation", "UNITED STATES"));
    dim_pred(kDimSupplier, StrEq(s, "s_nation", "UNITED STATES"));
    dim_pred(kDimDate, IntBetween(d, "d_year", 1992, 1997));
    group(DimCol(star, kDimCustomer, "c_city"));
    group(DimCol(star, kDimSupplier, "s_city"));
    group(DimCol(star, kDimDate, "d_year"));
    sum_expr(lo_revenue_expr, "lo_revenue");
  } else if (name == "Q3.3" || name == "Q3.4") {
    // SSB cities derive from the nation name: "UNITED KI1", "UNITED KI5".
    auto city_pred = [&](const Schema& schema, std::string_view col) {
      return MakeInList(ColRef(schema, col),
                        {Value("UNITED KI1"), Value("UNITED KI5")});
    };
    dim_pred(kDimCustomer, city_pred(c, "c_city"));
    dim_pred(kDimSupplier, city_pred(s, "s_city"));
    if (name == "Q3.3") {
      dim_pred(kDimDate, IntBetween(d, "d_year", 1992, 1997));
    } else {
      dim_pred(kDimDate, StrEq(d, "d_yearmonth", "Dec1997"));
    }
    group(DimCol(star, kDimCustomer, "c_city"));
    group(DimCol(star, kDimSupplier, "s_city"));
    group(DimCol(star, kDimDate, "d_year"));
    sum_expr(lo_revenue_expr, "lo_revenue");
  } else if (name == "Q4.1") {
    dim_pred(kDimCustomer, StrEq(c, "c_region", "AMERICA"));
    dim_pred(kDimSupplier, StrEq(s, "s_region", "AMERICA"));
    dim_pred(kDimPart, MakeOr(StrEq(p, "p_mfgr", "MFGR#1"),
                              StrEq(p, "p_mfgr", "MFGR#2")));
    group(DimCol(star, kDimDate, "d_year"));
    group(DimCol(star, kDimCustomer, "c_nation"));
    sum_expr(profit_expr, "profit");
  } else if (name == "Q4.2") {
    dim_pred(kDimCustomer, StrEq(c, "c_region", "AMERICA"));
    dim_pred(kDimSupplier, StrEq(s, "s_region", "AMERICA"));
    dim_pred(kDimDate, MakeOr(IntEq(d, "d_year", 1997),
                              IntEq(d, "d_year", 1998)));
    dim_pred(kDimPart, MakeOr(StrEq(p, "p_mfgr", "MFGR#1"),
                              StrEq(p, "p_mfgr", "MFGR#2")));
    group(DimCol(star, kDimDate, "d_year"));
    group(DimCol(star, kDimSupplier, "s_nation"));
    group(DimCol(star, kDimPart, "p_category"));
    sum_expr(profit_expr, "profit");
  } else if (name == "Q4.3") {
    dim_pred(kDimCustomer, StrEq(c, "c_region", "AMERICA"));
    dim_pred(kDimSupplier, StrEq(s, "s_nation", "UNITED STATES"));
    dim_pred(kDimDate, MakeOr(IntEq(d, "d_year", 1997),
                              IntEq(d, "d_year", 1998)));
    dim_pred(kDimPart, StrEq(p, "p_category", "MFGR#14"));
    group(DimCol(star, kDimDate, "d_year"));
    group(DimCol(star, kDimSupplier, "s_city"));
    group(DimCol(star, kDimPart, "p_brand1"));
    sum_expr(profit_expr, "profit");
  } else {
    return Status::NotFound("unknown SSB query '" + name + "'");
  }

  return NormalizeSpec(std::move(q));
}

ExprPtr SsbQueries::KeyRangePredicate(size_t dim_index, double selectivity,
                                      Rng& rng) const {
  const auto& keys = dim_keys_[dim_index];
  const size_t n = keys.size();
  size_t width = static_cast<size_t>(
      std::llround(selectivity * static_cast<double>(n)));
  width = std::clamp<size_t>(width, 1, n);
  const size_t start = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(n - width)));
  const DimensionDef& def = db_.star->dimension(dim_index);
  return MakeBetween(MakeColumnRef(def.dim_pk_col),
                     Value(static_cast<int64_t>(keys[start])),
                     Value(static_cast<int64_t>(keys[start + width - 1])));
}

Result<StarQuerySpec> SsbQueries::FromTemplate(const std::string& name,
                                               double selectivity,
                                               Rng& rng) const {
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  CJOIN_ASSIGN_OR_RETURN(StarQuerySpec spec, Canonical(name));
  // Replace each referenced dimension's predicate by a key-range predicate
  // of the requested selectivity (the template's group-by and aggregates
  // are preserved; dimensions referenced only for grouping keep TRUE).
  for (DimensionPredicate& dp : spec.dim_predicates) {
    if (IsTrueLiteral(dp.predicate)) continue;
    dp.predicate = KeyRangePredicate(dp.dim_index, selectivity, rng);
  }
  spec.label = name;
  return spec;
}

Result<std::vector<StarQuerySpec>> SsbQueries::MakeWorkload(
    size_t n, double selectivity, Rng& rng,
    const std::vector<std::string>& templates) const {
  const std::vector<std::string>& pool =
      templates.empty() ? PaperTemplateNames() : templates;
  std::vector<StarQuerySpec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& name = pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    CJOIN_ASSIGN_OR_RETURN(StarQuerySpec spec,
                           FromTemplate(name, selectivity, rng));
    spec.label = name + "#" + std::to_string(i);
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace ssb
}  // namespace cjoin
