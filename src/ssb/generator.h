// Star Schema Benchmark data generator (paper §6.1.2).
//
// Generates the five SSB tables at a given scale factor `sf`, following
// the benchmark's cardinalities and value distributions:
//
//   DATE       2556 rows (fixed: 1992-01-01 .. 1998-12-31)
//   CUSTOMER   30,000 x sf
//   SUPPLIER   2,000 x sf
//   PART       200,000 x (1 + floor(log2(sf))) for sf >= 1
//   LINEORDER  6,000,000 x sf  (the fact table; ~94% of the data)
//
// For sub-unit scale factors (used at reproduction scale) cardinalities
// scale linearly with sensible floors; EXPERIMENTS.md documents this.
// Generation is deterministic for a given seed.

#ifndef CJOIN_SSB_GENERATOR_H_
#define CJOIN_SSB_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/star_schema.h"
#include "common/status.h"
#include "storage/table.h"

namespace cjoin {
namespace ssb {

/// Generation knobs.
struct GenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  size_t rows_per_page = 4096;
  /// When > 1, LINEORDER is range-partitioned by order year into this many
  /// partitions (§5 "Fact Table Partitioning"); year y goes to partition
  /// (y - 1992) * num_fact_partitions / 7.
  uint32_t num_fact_partitions = 1;
};

/// The generated database: five tables plus the wired star schema.
struct SsbDatabase {
  std::unique_ptr<Table> date;
  std::unique_ptr<Table> customer;
  std::unique_ptr<Table> supplier;
  std::unique_ptr<Table> part;
  std::unique_ptr<Table> lineorder;
  std::unique_ptr<StarSchema> star;

  uint64_t TotalRows() const {
    return date->NumRows() + customer->NumRows() + supplier->NumRows() +
           part->NumRows() + lineorder->NumRows();
  }
  /// Total stored bytes across all tables (row slots only).
  uint64_t TotalBytes() const;
};

/// SSB cardinalities for a scale factor.
struct SsbCardinalities {
  uint64_t dates;
  uint64_t customers;
  uint64_t suppliers;
  uint64_t parts;
  uint64_t lineorders;
};
SsbCardinalities CardinalitiesFor(double scale_factor);

/// Generates the full database. The returned StarSchema points into the
/// returned tables; keep the SsbDatabase alive while using it.
Result<std::unique_ptr<SsbDatabase>> Generate(const GenOptions& options);

// --- Calendar helpers (shared with tests) ----------------------------------

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
int64_t DaysFromCivil(int y, unsigned m, unsigned d);
/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d);
/// ISO-ish week number within the year (1..53), from day-of-year and
/// weekday of Jan 1 — simplified per SSB (weeks start on Sunday).
int WeekNumInYear(int day_of_year, int weekday_jan1);

/// The 25 TPC-H nations and their regions, as used by SSB.
struct NationInfo {
  const char* nation;
  const char* region;
};
const std::vector<NationInfo>& Nations();

}  // namespace ssb
}  // namespace cjoin

#endif  // CJOIN_SSB_GENERATOR_H_
