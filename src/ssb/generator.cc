#include "ssb/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "ssb/ssb_schema.h"

namespace cjoin {
namespace ssb {

namespace {

const char* kMonthNames[12] = {"January", "February", "March",    "April",
                               "May",     "June",     "July",     "August",
                               "September", "October", "November", "December"};
const char* kDayNames[7] = {"Sunday",   "Monday", "Tuesday", "Wednesday",
                            "Thursday", "Friday", "Saturday"};
const char* kSeasons[5] = {"Winter", "Spring", "Summer", "Fall", "Christmas"};
const char* kMktSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                               "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECI", "5-LOW"};
const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                             "TRUCK",   "MAIL", "FOB"};
const char* kColors[16] = {"almond",  "antique", "aquamarine", "azure",
                           "beige",   "bisque",  "black",      "blanched",
                           "blue",    "blush",   "brown",      "burlywood",
                           "chiffon", "coral",   "cornflower", "cream"};
const char* kTypes[6] = {"ECONOMY ANODIZED", "LARGE BRUSHED",
                         "MEDIUM BURNISHED", "PROMO PLATED",
                         "SMALL POLISHED",   "STANDARD BURNISHED"};
const char* kContainers[8] = {"SM CASE", "SM BOX",  "MED BAG", "MED BOX",
                              "LG CASE", "LG BOX",  "JUMBO",   "WRAP"};

}  // namespace

const std::vector<NationInfo>& Nations() {
  static const std::vector<NationInfo> kNations = {
      {"ALGERIA", "AFRICA"},        {"ARGENTINA", "AMERICA"},
      {"BRAZIL", "AMERICA"},        {"CANADA", "AMERICA"},
      {"EGYPT", "MIDDLE EAST"},     {"ETHIOPIA", "AFRICA"},
      {"FRANCE", "EUROPE"},         {"GERMANY", "EUROPE"},
      {"INDIA", "ASIA"},            {"INDONESIA", "ASIA"},
      {"IRAN", "MIDDLE EAST"},      {"IRAQ", "MIDDLE EAST"},
      {"JAPAN", "ASIA"},            {"JORDAN", "MIDDLE EAST"},
      {"KENYA", "AFRICA"},          {"MOROCCO", "AFRICA"},
      {"MOZAMBIQUE", "AFRICA"},     {"PERU", "AMERICA"},
      {"CHINA", "ASIA"},            {"ROMANIA", "EUROPE"},
      {"SAUDI ARABIA", "MIDDLE EAST"}, {"VIETNAM", "ASIA"},
      {"RUSSIA", "EUROPE"},         {"UNITED KINGDOM", "EUROPE"},
      {"UNITED STATES", "AMERICA"},
  };
  return kNations;
}

int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  // Howard Hinnant's algorithm.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

int WeekNumInYear(int day_of_year, int weekday_jan1) {
  // Weeks start on Sunday; week 1 contains Jan 1 (SSB's simplified rule).
  return (day_of_year - 1 + weekday_jan1) / 7 + 1;
}

SsbCardinalities CardinalitiesFor(double sf) {
  SsbCardinalities c;
  // The SSB spec quotes 2556 rows, but 1992-01-01..1998-12-31 inclusive is
  // 2557 days (1992 and 1996 are both leap years); we generate the real
  // calendar.
  c.dates = static_cast<uint64_t>(DaysFromCivil(1998, 12, 31) -
                                  DaysFromCivil(1992, 1, 1) + 1);
  auto scaled = [&](double base, uint64_t floor_rows) {
    const double v = base * sf;
    return std::max<uint64_t>(floor_rows, static_cast<uint64_t>(v + 0.5));
  };
  c.customers = scaled(30000.0, 100);
  c.suppliers = scaled(2000.0, 20);
  if (sf >= 1.0) {
    c.parts = 200000ULL *
              (1 + static_cast<uint64_t>(std::floor(std::log2(sf))));
  } else {
    c.parts = scaled(200000.0, 200);
  }
  c.lineorders = scaled(6000000.0, 1000);
  return c;
}

uint64_t SsbDatabase::TotalBytes() const {
  auto bytes = [](const Table& t) { return t.NumRows() * t.row_stride(); };
  return bytes(*date) + bytes(*customer) + bytes(*supplier) + bytes(*part) +
         bytes(*lineorder);
}

namespace {

std::string CityName(const char* nation, int suffix) {
  // SSB cities: the nation name padded/truncated to 9 chars + one digit,
  // e.g. "UNITED KI1".
  std::string c(nation);
  c.resize(9, ' ');
  c.push_back(static_cast<char>('0' + suffix));
  return c;
}

std::string Phone(Rng& rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(rng.UniformInt(10, 34)),
                static_cast<int>(rng.UniformInt(100, 999)),
                static_cast<int>(rng.UniformInt(100, 999)),
                static_cast<int>(rng.UniformInt(1000, 9999)));
  return buf;
}

void GenerateDate(Table* t) {
  const Schema& s = t->schema();
  const int64_t start = DaysFromCivil(1992, 1, 1);
  const int64_t end = DaysFromCivil(1998, 12, 31);
  // 1992-01-01 was a Wednesday; day-of-week index with Sunday=0 -> 3.
  int prev_year = 0;
  int weekday_jan1 = 0;
  for (int64_t z = start; z <= end; ++z) {
    int y;
    unsigned m, d;
    CivilFromDays(z, &y, &m, &d);
    const int weekday = static_cast<int>(((z % 7) + 7 + 4) % 7);  // Sun=0
    if (y != prev_year) {
      prev_year = y;
      const int64_t jan1 = DaysFromCivil(y, 1, 1);
      weekday_jan1 = static_cast<int>(((jan1 % 7) + 7 + 4) % 7);
    }
    const int doy = static_cast<int>(z - DaysFromCivil(y, 1, 1)) + 1;
    const int datekey = y * 10000 + static_cast<int>(m) * 100 +
                        static_cast<int>(d);

    uint8_t* row = t->AppendUninitialized();
    size_t c = 0;
    s.SetInt32(row, c++, datekey);
    {
      char buf[20];
      std::snprintf(buf, sizeof(buf), "%s %u, %d", kMonthNames[m - 1], d, y);
      s.SetChar(row, c++, buf);
    }
    s.SetChar(row, c++, kDayNames[weekday]);
    s.SetChar(row, c++, kMonthNames[m - 1]);
    s.SetInt32(row, c++, y);
    s.SetInt32(row, c++, y * 100 + static_cast<int>(m));
    {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%.3s%d", kMonthNames[m - 1], y);
      s.SetChar(row, c++, buf);
    }
    s.SetInt32(row, c++, weekday + 1);
    s.SetInt32(row, c++, static_cast<int>(d));
    s.SetInt32(row, c++, doy);
    s.SetInt32(row, c++, static_cast<int>(m));
    s.SetInt32(row, c++, WeekNumInYear(doy, weekday_jan1));
    {
      const char* season = (m == 12) ? kSeasons[4] : kSeasons[(m % 12) / 3];
      s.SetChar(row, c++, season);
    }
    s.SetInt32(row, c++, weekday == 6 ? 1 : 0);
    {
      // Last day in month: peek at tomorrow.
      int y2;
      unsigned m2, d2;
      CivilFromDays(z + 1, &y2, &m2, &d2);
      s.SetInt32(row, c++, m2 != m ? 1 : 0);
    }
    {
      const bool holiday = (m == 12 && (d == 25 || d == 26)) ||
                           (m == 1 && d == 1) || (m == 7 && d == 4);
      s.SetInt32(row, c++, holiday ? 1 : 0);
    }
    s.SetInt32(row, c++, (weekday >= 1 && weekday <= 5) ? 1 : 0);
  }
}

void GenerateCustomer(Table* t, uint64_t n, Rng& rng) {
  const Schema& s = t->schema();
  const auto& nations = Nations();
  for (uint64_t i = 1; i <= n; ++i) {
    const NationInfo& nat = nations[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(nations.size()) - 1))];
    uint8_t* row = t->AppendUninitialized();
    size_t c = 0;
    s.SetInt32(row, c++, static_cast<int32_t>(i));
    {
      char buf[26];
      std::snprintf(buf, sizeof(buf), "Customer#%09llu",
                    static_cast<unsigned long long>(i));
      s.SetChar(row, c++, buf);
    }
    {
      char buf[26];
      std::snprintf(buf, sizeof(buf), "Addr%llu-%04d",
                    static_cast<unsigned long long>(i),
                    static_cast<int>(rng.UniformInt(0, 9999)));
      s.SetChar(row, c++, buf);
    }
    s.SetChar(row, c++,
              CityName(nat.nation,
                       static_cast<int>(rng.UniformInt(0, 9))));
    s.SetChar(row, c++, nat.nation);
    s.SetChar(row, c++, nat.region);
    s.SetChar(row, c++, Phone(rng));
    s.SetChar(row, c++, kMktSegments[rng.UniformInt(0, 4)]);
  }
}

void GenerateSupplier(Table* t, uint64_t n, Rng& rng) {
  const Schema& s = t->schema();
  const auto& nations = Nations();
  for (uint64_t i = 1; i <= n; ++i) {
    const NationInfo& nat = nations[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(nations.size()) - 1))];
    uint8_t* row = t->AppendUninitialized();
    size_t c = 0;
    s.SetInt32(row, c++, static_cast<int32_t>(i));
    {
      char buf[26];
      std::snprintf(buf, sizeof(buf), "Supplier#%09llu",
                    static_cast<unsigned long long>(i));
      s.SetChar(row, c++, buf);
    }
    {
      char buf[26];
      std::snprintf(buf, sizeof(buf), "SAddr%llu",
                    static_cast<unsigned long long>(i));
      s.SetChar(row, c++, buf);
    }
    s.SetChar(row, c++,
              CityName(nat.nation,
                       static_cast<int>(rng.UniformInt(0, 9))));
    s.SetChar(row, c++, nat.nation);
    s.SetChar(row, c++, nat.region);
    s.SetChar(row, c++, Phone(rng));
  }
}

void GeneratePart(Table* t, uint64_t n, Rng& rng) {
  const Schema& s = t->schema();
  for (uint64_t i = 1; i <= n; ++i) {
    const int mfgr = static_cast<int>(rng.UniformInt(1, 5));
    const int cat = static_cast<int>(rng.UniformInt(1, 5));
    const int brand = static_cast<int>(rng.UniformInt(1, 40));
    uint8_t* row = t->AppendUninitialized();
    size_t c = 0;
    s.SetInt32(row, c++, static_cast<int32_t>(i));
    {
      const char* color = kColors[rng.UniformInt(0, 15)];
      char buf[23];
      std::snprintf(buf, sizeof(buf), "%s part %llu", color,
                    static_cast<unsigned long long>(i % 100000));
      s.SetChar(row, c++, buf);
    }
    {
      char buf[7];
      std::snprintf(buf, sizeof(buf), "MFGR#%d", mfgr);
      s.SetChar(row, c++, buf);
    }
    {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "MFGR#%d%d", mfgr, cat);
      s.SetChar(row, c++, buf);
    }
    {
      char buf[10];
      std::snprintf(buf, sizeof(buf), "MFGR#%d%d%d", mfgr, cat, brand);
      s.SetChar(row, c++, buf);
    }
    s.SetChar(row, c++, kColors[rng.UniformInt(0, 15)]);
    s.SetChar(row, c++, kTypes[rng.UniformInt(0, 5)]);
    s.SetInt32(row, c++, static_cast<int32_t>(rng.UniformInt(1, 50)));
    s.SetChar(row, c++, kContainers[rng.UniformInt(0, 7)]);
  }
}

void GenerateLineorder(Table* lo, const Table& date, uint64_t n,
                       uint64_t num_customers, uint64_t num_suppliers,
                       uint64_t num_parts, uint32_t num_partitions,
                       Rng& rng) {
  const Schema& s = lo->schema();
  const Schema& ds = date.schema();
  // Pre-extract date keys for uniform FK selection.
  std::vector<int32_t> datekeys;
  std::vector<int32_t> dateyears;
  datekeys.reserve(date.NumRows());
  for (uint64_t i = 0; i < date.NumRows(); ++i) {
    const uint8_t* row = date.RowPayload(RowId{0, i});
    datekeys.push_back(ds.GetInt32(row, 0));
    dateyears.push_back(ds.GetInt32(row, 4));
  }

  // Sizes of the referenced dimensions; set by the caller via the tables.
  uint64_t orderkey = 1;
  uint64_t emitted = 0;
  while (emitted < n) {
    const int lines = static_cast<int>(rng.UniformInt(1, 7));
    const size_t di = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(datekeys.size()) - 1));
    const int32_t odate = datekeys[di];
    const int32_t oyear = dateyears[di];
    const int32_t custkey = static_cast<int32_t>(
        rng.UniformInt(1, static_cast<int64_t>(num_customers)));
    const int32_t ordpriority = static_cast<int32_t>(rng.UniformInt(0, 4));
    int32_t ordtotal = 0;
    // First pass to compute order total price.
    struct Line {
      int32_t partkey, suppkey, quantity, extprice, discount, tax;
      size_t commit_di;
    };
    std::vector<Line> pending;
    for (int l = 0; l < lines && emitted + pending.size() < n; ++l) {
      Line ln;
      ln.partkey = static_cast<int32_t>(
          rng.UniformInt(1, static_cast<int64_t>(num_parts)));
      ln.suppkey = static_cast<int32_t>(
          rng.UniformInt(1, static_cast<int64_t>(num_suppliers)));
      ln.quantity = static_cast<int32_t>(rng.UniformInt(1, 50));
      const int32_t price = static_cast<int32_t>(rng.UniformInt(90000, 200000));
      ln.extprice = ln.quantity * price / 100;
      ln.discount = static_cast<int32_t>(rng.UniformInt(0, 10));
      ln.tax = static_cast<int32_t>(rng.UniformInt(0, 8));
      ln.commit_di = std::min<size_t>(di + static_cast<size_t>(
                                               rng.UniformInt(30, 90)),
                                      datekeys.size() - 1);
      ordtotal += ln.extprice;
      pending.push_back(ln);
    }
    const uint32_t part_id =
        num_partitions <= 1
            ? 0
            : std::min<uint32_t>(
                  static_cast<uint32_t>((oyear - 1992) * num_partitions / 7),
                  num_partitions - 1);
    int lineno = 1;
    for (const Line& ln : pending) {
      uint8_t* row = lo->AppendUninitialized(part_id);
      size_t c = 0;
      s.SetInt32(row, c++, static_cast<int32_t>(orderkey));
      s.SetInt32(row, c++, lineno++);
      s.SetInt32(row, c++, custkey);
      s.SetInt32(row, c++, ln.partkey);
      s.SetInt32(row, c++, ln.suppkey);
      s.SetInt32(row, c++, odate);
      s.SetChar(row, c++, kPriorities[ordpriority]);
      s.SetChar(row, c++, "0");
      s.SetInt32(row, c++, ln.quantity);
      s.SetInt32(row, c++, ln.extprice);
      s.SetInt32(row, c++, ordtotal);
      s.SetInt32(row, c++, ln.discount);
      s.SetInt32(row, c++, ln.extprice * (100 - ln.discount) / 100);
      s.SetInt32(row, c++, ln.extprice * 6 / 10);
      s.SetInt32(row, c++, ln.tax);
      s.SetInt32(row, c++, datekeys[ln.commit_di]);
      s.SetChar(row, c++, kShipModes[rng.UniformInt(0, 6)]);
      ++emitted;
    }
    ++orderkey;
  }
}

}  // namespace

Result<std::unique_ptr<SsbDatabase>> Generate(const GenOptions& options) {
  if (options.scale_factor <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  if (options.num_fact_partitions == 0) {
    return Status::InvalidArgument("num_fact_partitions must be >= 1");
  }
  const SsbCardinalities card = CardinalitiesFor(options.scale_factor);

  auto db = std::make_unique<SsbDatabase>();
  Table::Options topts;
  topts.rows_per_page = options.rows_per_page;

  db->date = std::make_unique<Table>("date", MakeDateSchema(), topts);
  db->customer =
      std::make_unique<Table>("customer", MakeCustomerSchema(), topts);
  db->supplier =
      std::make_unique<Table>("supplier", MakeSupplierSchema(), topts);
  db->part = std::make_unique<Table>("part", MakePartSchema(), topts);

  Table::Options lo_opts = topts;
  lo_opts.num_partitions = options.num_fact_partitions;
  db->lineorder =
      std::make_unique<Table>("lineorder", MakeLineorderSchema(), lo_opts);

  Rng rng(options.seed);
  GenerateDate(db->date.get());
  GenerateCustomer(db->customer.get(), card.customers, rng);
  GenerateSupplier(db->supplier.get(), card.suppliers, rng);
  GeneratePart(db->part.get(), card.parts, rng);
  GenerateLineorder(db->lineorder.get(), *db->date, card.lineorders,
                    card.customers, card.suppliers, card.parts,
                    options.num_fact_partitions, rng);

  CJOIN_ASSIGN_OR_RETURN(
      StarSchema star,
      StarSchema::Make(
          db->lineorder.get(),
          std::vector<StarSchema::DimensionByName>{
              {db->date.get(), "lo_orderdate", "d_datekey"},
              {db->customer.get(), "lo_custkey", "c_custkey"},
              {db->supplier.get(), "lo_suppkey", "s_suppkey"},
              {db->part.get(), "lo_partkey", "p_partkey"},
          }));
  db->star = std::make_unique<StarSchema>(std::move(star));
  return db;
}

}  // namespace ssb
}  // namespace cjoin
