// Star Schema Benchmark table schemas (O'Neil et al. [17]; paper §6.1.2).
//
// The five tables: LINEORDER (fact) plus DATE, CUSTOMER, SUPPLIER, PART.
// Column sets follow the SSB specification; fixed-width CHAR fields use
// the benchmark's declared lengths.

#ifndef CJOIN_SSB_SSB_SCHEMA_H_
#define CJOIN_SSB_SSB_SCHEMA_H_

#include "storage/schema.h"

namespace cjoin {
namespace ssb {

Schema MakeDateSchema();
Schema MakeCustomerSchema();
Schema MakeSupplierSchema();
Schema MakePartSchema();
Schema MakeLineorderSchema();

/// Dimension indices within the SSB StarSchema, in registration order.
/// (Also the filter order before run-time optimization kicks in.)
enum SsbDim : size_t {
  kDimDate = 0,
  kDimCustomer = 1,
  kDimSupplier = 2,
  kDimPart = 3,
  kNumSsbDims = 4,
};

}  // namespace ssb
}  // namespace cjoin

#endif  // CJOIN_SSB_SSB_SCHEMA_H_
