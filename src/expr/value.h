// Runtime values for the expression engine and query results.

#ifndef CJOIN_EXPR_VALUE_H_
#define CJOIN_EXPR_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"

namespace cjoin {

/// A dynamically typed scalar: NULL, INT (64-bit), DOUBLE, or STRING.
/// INT32 columns widen to INT on read.
class Value {
 public:
  enum class Kind { kNull = 0, kInt, kDouble, kString };

  Value() : var_(std::monostate{}) {}
  /*implicit*/ Value(int64_t v) : var_(v) {}
  /*implicit*/ Value(int v) : var_(static_cast<int64_t>(v)) {}
  /*implicit*/ Value(double v) : var_(v) {}
  /*implicit*/ Value(std::string v) : var_(std::move(v)) {}
  /*implicit*/ Value(std::string_view v) : var_(std::string(v)) {}
  /*implicit*/ Value(const char* v) : var_(std::string(v)) {}

  Kind kind() const { return static_cast<Kind>(var_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const { return std::get<int64_t>(var_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(AsInt())
                    : std::get<double>(var_);
  }
  const std::string& AsString() const { return std::get<std::string>(var_); }

  /// Three-way comparison with numeric coercion (int vs double compares as
  /// double). Comparing incompatible kinds orders by kind (stable but
  /// arbitrary); NULL sorts first. Returns <0, 0, >0.
  int Compare(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      if (is_int() && other.is_int()) {
        const int64_t a = AsInt(), b = other.AsInt();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    if (is_string() && other.is_string()) {
      return AsString().compare(other.AsString());
    }
    const int a = static_cast<int>(kind()), b = static_cast<int>(other.kind());
    return a - b;
  }

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const {
    switch (kind()) {
      case Kind::kNull:
        return 0x9ae16a3b2f90404fULL;
      case Kind::kInt:
        return Mix64(static_cast<uint64_t>(AsInt()));
      case Kind::kDouble: {
        // Hash doubles by integer value when exact so 1 and 1.0 collide
        // (they compare equal).
        const double d = std::get<double>(var_);
        const int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) == d) {
          return Mix64(static_cast<uint64_t>(i));
        }
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return Mix64(bits);
      }
      case Kind::kString:
        return HashString(AsString());
    }
    return 0;
  }

  std::string ToString() const {
    switch (kind()) {
      case Kind::kNull:
        return "NULL";
      case Kind::kInt:
        return std::to_string(AsInt());
      case Kind::kDouble:
        return std::to_string(std::get<double>(var_));
      case Kind::kString:
        return "'" + AsString() + "'";
    }
    return "?";
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> var_;
};

}  // namespace cjoin

#endif  // CJOIN_EXPR_VALUE_H_
