// Expression trees evaluated over raw rows.
//
// The star-query template (paper §2.1) allows arbitrarily complex selection
// predicates on each dimension table and on the fact table. These trees are
// evaluated in two places with very different temperatures:
//   * dimension predicates run once per dimension row during query
//     admission (Algorithm 1, line 12) — cold;
//   * fact-table predicates run in the Preprocessor for every scanned
//     tuple — hot. EvalBool short-circuits AND/OR and avoids Value
//     allocation for the common comparison shapes.
//
// Expressions are immutable and shared (ExprPtr = shared_ptr<const Expr>),
// so hundreds of concurrent queries can reference common sub-predicates.

#ifndef CJOIN_EXPR_EXPR_H_
#define CJOIN_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/value.h"
#include "storage/schema.h"

namespace cjoin {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CmpOpName(CmpOp op);
const char* ArithOpName(ArithOp op);

/// Abstract immutable expression node. An Expr is bound to a specific
/// schema: column references hold resolved column indices.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates the expression over a row of the bound schema.
  virtual Value Eval(const Schema& schema, const uint8_t* row) const = 0;

  /// Evaluates as a predicate (non-zero numeric / non-empty semantics are
  /// NOT applied: only boolean-producing nodes return meaningful values;
  /// the default converts via truthiness of the Value).
  virtual bool EvalBool(const Schema& schema, const uint8_t* row) const;

  /// SQL-ish rendering for debugging and plan display.
  virtual std::string ToString(const Schema& schema) const = 0;
};

// --- Construction helpers (all return shared immutable nodes) -------------

/// Column reference by index (must be valid for the schema the expression
/// will be evaluated against).
ExprPtr MakeColumnRef(size_t column_index);

/// Column reference resolved by name.
Result<ExprPtr> MakeColumnRef(const Schema& schema, std::string_view name);

ExprPtr MakeLiteral(Value v);

ExprPtr MakeCompare(CmpOp op, ExprPtr lhs, ExprPtr rhs);

/// lo <= x AND x <= hi.
ExprPtr MakeBetween(ExprPtr x, Value lo, Value hi);

/// x IN (v1, v2, ...).
ExprPtr MakeInList(ExprPtr x, std::vector<Value> values);

/// String prefix match: x LIKE 'prefix%'.
ExprPtr MakePrefixMatch(ExprPtr x, std::string prefix);

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr x);

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

/// Constant TRUE — the implicit predicate c_ij for a table the query does
/// not restrict (paper §2.1 "we set c_j to TRUE").
ExprPtr MakeTrue();

/// Builds the conjunction of `conjuncts` (TRUE when empty).
ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);

/// True iff `e` is the constant TRUE literal.
bool IsTrueLiteral(const ExprPtr& e);

/// Number of rows of `schema` in [begin, end) (stride bytes apart) that
/// satisfy `pred`. Utility for selectivity measurement in tests/benches.
uint64_t CountMatches(const Expr& pred, const Schema& schema,
                      const uint8_t* begin, size_t stride, size_t nrows);

}  // namespace cjoin

#endif  // CJOIN_EXPR_EXPR_H_
