#include "expr/expr.h"

#include <algorithm>
#include <cassert>

namespace cjoin {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

bool Expr::EvalBool(const Schema& schema, const uint8_t* row) const {
  const Value v = Eval(schema, row);
  if (v.is_null()) return false;
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

namespace {

bool ApplyCmp(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(size_t col) : col_(col) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    const Column& c = schema.column(col_);
    switch (c.type) {
      case DataType::kInt32:
        return Value(static_cast<int64_t>(schema.GetInt32(row, col_)));
      case DataType::kInt64:
        return Value(schema.GetInt64(row, col_));
      case DataType::kDouble:
        return Value(schema.GetDouble(row, col_));
      case DataType::kChar:
        return Value(schema.GetChar(row, col_));
    }
    return Value();
  }

  std::string ToString(const Schema& schema) const override {
    return col_ < schema.num_columns() ? schema.column(col_).name
                                       : "col#" + std::to_string(col_);
  }

  size_t column() const { return col_; }

 private:
  size_t col_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : v_(std::move(v)) {}

  Value Eval(const Schema&, const uint8_t*) const override { return v_; }

  bool EvalBool(const Schema&, const uint8_t*) const override {
    if (v_.is_int()) return v_.AsInt() != 0;
    if (v_.is_double()) return v_.AsDouble() != 0.0;
    if (v_.is_string()) return !v_.AsString().empty();
    return false;
  }

  std::string ToString(const Schema&) const override { return v_.ToString(); }

  const Value& value() const { return v_; }

 private:
  Value v_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    const Value l = lhs_->Eval(schema, row);
    const Value r = rhs_->Eval(schema, row);
    if (l.is_null() || r.is_null()) return false;
    return ApplyCmp(op_, l.Compare(r));
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += lhs_->ToString(schema);
    out += ' ';
    out += CmpOpName(op_);
    out += ' ';
    out += rhs_->ToString(schema);
    out += ')';
    return out;
  }

 private:
  CmpOp op_;
  ExprPtr lhs_, rhs_;
};

class BetweenExpr final : public Expr {
 public:
  BetweenExpr(ExprPtr x, Value lo, Value hi)
      : x_(std::move(x)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    const Value v = x_->Eval(schema, row);
    if (v.is_null()) return false;
    return v.Compare(lo_) >= 0 && v.Compare(hi_) <= 0;
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += x_->ToString(schema);
    out += " BETWEEN ";
    out += lo_.ToString();
    out += " AND ";
    out += hi_.ToString();
    out += ')';
    return out;
  }

 private:
  ExprPtr x_;
  Value lo_, hi_;
};

class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr x, std::vector<Value> values)
      : x_(std::move(x)), values_(std::move(values)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    const Value v = x_->Eval(schema, row);
    if (v.is_null()) return false;
    for (const Value& cand : values_) {
      if (v.Compare(cand) == 0) return true;
    }
    return false;
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += x_->ToString(schema);
    out += " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    out += "))";
    return out;
  }

 private:
  ExprPtr x_;
  std::vector<Value> values_;
};

class PrefixMatchExpr final : public Expr {
 public:
  PrefixMatchExpr(ExprPtr x, std::string prefix)
      : x_(std::move(x)), prefix_(std::move(prefix)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    const Value v = x_->Eval(schema, row);
    if (!v.is_string()) return false;
    const std::string& s = v.AsString();
    return s.size() >= prefix_.size() &&
           s.compare(0, prefix_.size(), prefix_) == 0;
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += x_->ToString(schema);
    out += " LIKE '";
    out += prefix_;
    out += "%')";
    return out;
  }

 private:
  ExprPtr x_;
  std::string prefix_;
};

class AndExpr final : public Expr {
 public:
  AndExpr(ExprPtr lhs, ExprPtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    return lhs_->EvalBool(schema, row) && rhs_->EvalBool(schema, row);
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += lhs_->ToString(schema);
    out += " AND ";
    out += rhs_->ToString(schema);
    out += ')';
    return out;
  }

 private:
  ExprPtr lhs_, rhs_;
};

class OrExpr final : public Expr {
 public:
  OrExpr(ExprPtr lhs, ExprPtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    return lhs_->EvalBool(schema, row) || rhs_->EvalBool(schema, row);
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += lhs_->ToString(schema);
    out += " OR ";
    out += rhs_->ToString(schema);
    out += ')';
    return out;
  }

 private:
  ExprPtr lhs_, rhs_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr x) : x_(std::move(x)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    return Value(static_cast<int64_t>(EvalBool(schema, row)));
  }

  bool EvalBool(const Schema& schema, const uint8_t* row) const override {
    return !x_->EvalBool(schema, row);
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(NOT ";
    out += x_->ToString(schema);
    out += ')';
    return out;
  }

 private:
  ExprPtr x_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Eval(const Schema& schema, const uint8_t* row) const override {
    const Value l = lhs_->Eval(schema, row);
    const Value r = rhs_->Eval(schema, row);
    if (l.is_null() || r.is_null()) return Value();
    if (l.is_int() && r.is_int() && op_ != ArithOp::kDiv) {
      const int64_t a = l.AsInt(), b = r.AsInt();
      switch (op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          break;
      }
    }
    const double a = l.AsDouble(), b = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        return Value(a + b);
      case ArithOp::kSub:
        return Value(a - b);
      case ArithOp::kMul:
        return Value(a * b);
      case ArithOp::kDiv:
        return b == 0.0 ? Value() : Value(a / b);
    }
    return Value();
  }

  std::string ToString(const Schema& schema) const override {
    std::string out = "(";
    out += lhs_->ToString(schema);
    out += ' ';
    out += ArithOpName(op_);
    out += ' ';
    out += rhs_->ToString(schema);
    out += ')';
    return out;
  }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

const ExprPtr& TrueSingleton() {
  static const ExprPtr kTrue = std::make_shared<LiteralExpr>(Value(int64_t{1}));
  return kTrue;
}

}  // namespace

ExprPtr MakeColumnRef(size_t column_index) {
  return std::make_shared<ColumnRefExpr>(column_index);
}

Result<ExprPtr> MakeColumnRef(const Schema& schema, std::string_view name) {
  CJOIN_ASSIGN_OR_RETURN(const size_t idx, schema.FindColumn(name));
  return ExprPtr(std::make_shared<ColumnRefExpr>(idx));
}

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeCompare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr MakeBetween(ExprPtr x, Value lo, Value hi) {
  return std::make_shared<BetweenExpr>(std::move(x), std::move(lo),
                                       std::move(hi));
}

ExprPtr MakeInList(ExprPtr x, std::vector<Value> values) {
  return std::make_shared<InListExpr>(std::move(x), std::move(values));
}

ExprPtr MakePrefixMatch(ExprPtr x, std::string prefix) {
  return std::make_shared<PrefixMatchExpr>(std::move(x), std::move(prefix));
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<AndExpr>(std::move(lhs), std::move(rhs));
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<OrExpr>(std::move(lhs), std::move(rhs));
}

ExprPtr MakeNot(ExprPtr x) { return std::make_shared<NotExpr>(std::move(x)); }

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr MakeTrue() { return TrueSingleton(); }

ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return MakeTrue();
  ExprPtr acc = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = MakeAnd(std::move(acc), std::move(conjuncts[i]));
  }
  return acc;
}

bool IsTrueLiteral(const ExprPtr& e) { return e == TrueSingleton(); }

uint64_t CountMatches(const Expr& pred, const Schema& schema,
                      const uint8_t* begin, size_t stride, size_t nrows) {
  uint64_t n = 0;
  for (size_t i = 0; i < nrows; ++i) {
    if (pred.EvalBool(schema, begin + i * stride)) ++n;
  }
  return n;
}

}  // namespace cjoin
