#include "exec/group_table.h"

#include <limits>

#include "common/hash.h"

namespace cjoin {

namespace {
constexpr uint32_t kEmpty = std::numeric_limits<uint32_t>::max();
constexpr size_t kInitialSlots = 64;
}  // namespace

void AggState::Fold(AggFn fn, const Value& v) {
  switch (fn) {
    case AggFn::kCount:
      ++count;
      return;
    case AggFn::kSum:
    case AggFn::kAvg:
      if (v.is_null()) return;
      ++count;
      if (v.is_double()) {
        any_double = true;
        dsum += v.AsDouble();
      } else {
        isum += v.AsInt();
      }
      return;
    case AggFn::kMin:
      if (v.is_null()) return;
      if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
      return;
    case AggFn::kMax:
      if (v.is_null()) return;
      if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
      return;
  }
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  isum += other.isum;
  dsum += other.dsum;
  any_double |= other.any_double;
  if (!other.min_v.is_null() &&
      (min_v.is_null() || other.min_v.Compare(min_v) < 0)) {
    min_v = other.min_v;
  }
  if (!other.max_v.is_null() &&
      (max_v.is_null() || other.max_v.Compare(max_v) > 0)) {
    max_v = other.max_v;
  }
}

Value AggState::Final(AggFn fn) const {
  switch (fn) {
    case AggFn::kCount:
      return Value(count);
    case AggFn::kSum:
      if (count == 0) return Value();
      if (any_double) return Value(dsum + static_cast<double>(isum));
      return Value(isum);
    case AggFn::kAvg:
      if (count == 0) return Value();
      return Value((dsum + static_cast<double>(isum)) /
                   static_cast<double>(count));
    case AggFn::kMin:
      return min_v;
    case AggFn::kMax:
      return max_v;
  }
  return Value();
}

uint64_t HashValueKey(const std::vector<Value>& key) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

bool ValueKeysEqual(const std::vector<Value>& a,
                    const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

GroupTable::GroupTable(std::vector<AggFn> fns) : fns_(std::move(fns)) {
  slots_.assign(kInitialSlots, kEmpty);
}

GroupTable::Group& GroupTable::FindOrCreate(std::vector<Value> key) {
  const uint64_t h = HashValueKey(key);
  size_t mask = slots_.size() - 1;
  size_t idx = h & mask;
  for (;;) {
    const uint32_t slot = slots_[idx];
    if (slot == kEmpty) break;
    Group& g = groups_[slot];
    if (g.hash == h && ValueKeysEqual(g.key, key)) return g;
    idx = (idx + 1) & mask;
  }
  if (groups_.size() + 1 > slots_.size() * 7 / 10) {
    Rehash();
    mask = slots_.size() - 1;
    idx = h & mask;
    while (slots_[idx] != kEmpty) idx = (idx + 1) & mask;
  }
  Group g;
  g.key = std::move(key);
  g.hash = h;
  g.states.assign(fns_.size(), AggState{});
  groups_.push_back(std::move(g));
  slots_[idx] = static_cast<uint32_t>(groups_.size() - 1);
  return groups_.back();
}

void GroupTable::Rehash() {
  slots_.assign(slots_.size() * 2, kEmpty);
  const size_t mask = slots_.size() - 1;
  for (size_t i = 0; i < groups_.size(); ++i) {
    size_t idx = groups_[i].hash & mask;
    while (slots_[idx] != kEmpty) idx = (idx + 1) & mask;
    slots_[idx] = static_cast<uint32_t>(i);
  }
}

void GroupTable::Fold(std::vector<Value> key,
                      const std::vector<Value>& inputs) {
  Group& g = FindOrCreate(std::move(key));
  for (size_t i = 0; i < fns_.size(); ++i) {
    g.states[i].Fold(fns_[i], inputs[i]);
  }
}

void GroupTable::MergeFrom(GroupTable&& other) {
  for (Group& g : other.groups_) {
    Group& dst = FindOrCreate(std::move(g.key));
    for (size_t i = 0; i < fns_.size(); ++i) {
      dst.states[i].Merge(g.states[i]);
    }
  }
  other.groups_.clear();
  other.slots_.assign(kInitialSlots, kEmpty);
}

ResultSet GroupTable::Finish(std::vector<std::string> columns,
                             bool global_row_when_empty) {
  ResultSet rs;
  rs.columns = std::move(columns);
  if (groups_.empty() && global_row_when_empty && !fns_.empty()) {
    std::vector<Value> row;
    AggState empty;
    for (AggFn fn : fns_) row.push_back(empty.Final(fn));
    rs.rows.push_back(std::move(row));
    return rs;
  }
  rs.rows.reserve(groups_.size());
  for (Group& g : groups_) {
    std::vector<Value> row = std::move(g.key);
    for (size_t i = 0; i < fns_.size(); ++i) {
      row.push_back(g.states[i].Final(fns_[i]));
    }
    rs.rows.push_back(std::move(row));
  }
  groups_.clear();
  slots_.assign(kInitialSlots, kEmpty);
  return rs;
}

}  // namespace cjoin
