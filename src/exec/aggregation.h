// Aggregation operators (the sinks of the CJOIN pipeline, §3.1).
//
// The Distributor routes each surviving fact tuple, together with its
// attached dimension-row pointers, to the aggregation operator of every
// query whose bit is set. Two implementations are provided:
//
//   * HashStarAggregator — hash-based group-by (the default);
//   * SortStarAggregator — sort-based: buffers (key, inputs) pairs and
//     aggregates sorted runs at Finish(). Slower but gives a second,
//     independently-derived answer used by property tests.
//
// Both consume (fact_row, dim_rows[]) and produce a ResultSet whose
// columns are the group-by attributes followed by the aggregates.

#ifndef CJOIN_EXEC_AGGREGATION_H_
#define CJOIN_EXEC_AGGREGATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "catalog/query_spec.h"
#include "exec/group_table.h"
#include "exec/result_set.h"
#include "expr/value.h"

namespace cjoin {

/// Common interface of per-query aggregation operators.
class StarAggregator {
 public:
  virtual ~StarAggregator() = default;

  /// Folds one joined tuple into the aggregate state. `dim_rows[i]` is the
  /// payload of the dimension row joining the fact row on dimension i of
  /// the star schema (may be null for dimensions the query does not
  /// reference).
  virtual void Consume(const uint8_t* fact_row,
                       const uint8_t* const* dim_rows) = 0;

  /// Completes the aggregation and returns the results. The operator may
  /// not be reused afterwards.
  virtual ResultSet Finish() = 0;

  /// Tuples consumed so far.
  virtual uint64_t tuples_consumed() const = 0;
};

/// Creates the default (hash-based) aggregator for a normalized spec.
std::unique_ptr<StarAggregator> MakeHashAggregator(const StarQuerySpec& spec);

/// Creates the sort-based aggregator (for testing / comparison).
std::unique_ptr<StarAggregator> MakeSortAggregator(const StarQuerySpec& spec);

/// Receives an aggregator's *partial* group state when it finishes.
using PartialSink = std::function<void(GroupTable&& partial, uint64_t consumed)>;

/// Hash aggregator whose Finish() hands its raw GroupTable — un-finalized
/// running states — to `sink` instead of materializing final values, and
/// returns an empty ResultSet (tuples_consumed still set). The sharded
/// CJOIN operator installs one per shard and merges the partials
/// shard-wise, which is exact for every AggFn (AVG divides only after the
/// merged counts and sums are combined).
std::unique_ptr<StarAggregator> MakePartialHashAggregator(
    const StarQuerySpec& spec, PartialSink sink);

}  // namespace cjoin

#endif  // CJOIN_EXEC_AGGREGATION_H_
