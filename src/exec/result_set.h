// Materialized query results.

#ifndef CJOIN_EXEC_RESULT_SET_H_
#define CJOIN_EXEC_RESULT_SET_H_

#include <string>
#include <vector>

#include "expr/value.h"

namespace cjoin {

/// A small materialized table of Values: the output of a star query
/// (group-by columns followed by aggregate columns).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Fact tuples that reached this query's aggregation operator. Useful
  /// for sanity checks and progress accounting.
  uint64_t tuples_consumed = 0;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Sorts rows lexicographically — results of hash aggregation have no
  /// deterministic order, so tests and diffing canonicalize first.
  void SortRows();

  /// Tab-separated rendering with a header line; at most `max_rows` rows
  /// (0 = all).
  std::string ToString(size_t max_rows = 0) const;

  /// True iff both sets have the same columns and the same multiset of
  /// rows (order-insensitive).
  bool SameContents(const ResultSet& other) const;
};

}  // namespace cjoin

#endif  // CJOIN_EXEC_RESULT_SET_H_
