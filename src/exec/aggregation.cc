#include "exec/aggregation.h"

#include <algorithm>
#include <cassert>

#include "exec/group_table.h"

namespace cjoin {

namespace {

/// Pre-resolved column source: which schema to read through and whether
/// the value is read from the fact row or an attached dimension row.
struct BoundSource {
  bool from_fact = true;
  size_t dim_index = 0;
  const Schema* schema = nullptr;
  size_t column = 0;

  Value Read(const uint8_t* fact_row, const uint8_t* const* dim_rows) const {
    const uint8_t* row = from_fact ? fact_row : dim_rows[dim_index];
    if (row == nullptr) return Value();
    const Column& c = schema->column(column);
    switch (c.type) {
      case DataType::kInt32:
        return Value(static_cast<int64_t>(schema->GetInt32(row, column)));
      case DataType::kInt64:
        return Value(schema->GetInt64(row, column));
      case DataType::kDouble:
        return Value(schema->GetDouble(row, column));
      case DataType::kChar:
        return Value(schema->GetChar(row, column));
    }
    return Value();
  }
};

BoundSource Bind(const StarQuerySpec& spec, const ColumnSource& src) {
  BoundSource b;
  if (src.from == ColumnSource::From::kFact) {
    b.from_fact = true;
    b.schema = &spec.schema->fact().schema();
  } else {
    b.from_fact = false;
    b.dim_index = src.dim_index;
    b.schema = &spec.schema->dimension(src.dim_index).table->schema();
  }
  b.column = src.column;
  return b;
}

/// Shared plumbing for both aggregator implementations.
class AggregatorBase : public StarAggregator {
 public:
  explicit AggregatorBase(const StarQuerySpec& spec) {
    fact_schema_ = &spec.schema->fact().schema();
    for (const ColumnSource& src : spec.group_by) {
      key_sources_.push_back(Bind(spec, src));
    }
    for (const AggregateSpec& agg : spec.aggregates) {
      fns_.push_back(agg.fn);
      exprs_.push_back(agg.fact_expr);
      if (agg.input.has_value()) {
        inputs_.push_back(Bind(spec, *agg.input));
        has_input_.push_back(true);
      } else {
        inputs_.push_back(BoundSource{});
        has_input_.push_back(false);
      }
    }
    columns_ = spec.group_by_labels;
    for (const AggregateSpec& agg : spec.aggregates) {
      columns_.push_back(agg.label);
    }
  }

  uint64_t tuples_consumed() const override { return consumed_; }

 protected:
  std::vector<Value> ReadKey(const uint8_t* fact_row,
                             const uint8_t* const* dim_rows) const {
    std::vector<Value> key;
    key.reserve(key_sources_.size());
    for (const BoundSource& src : key_sources_) {
      key.push_back(src.Read(fact_row, dim_rows));
    }
    return key;
  }

  /// Input value of aggregate i for this tuple (NULL for COUNT(*)).
  Value ReadInput(size_t i, const uint8_t* fact_row,
                  const uint8_t* const* dim_rows) const {
    if (has_input_[i]) return inputs_[i].Read(fact_row, dim_rows);
    if (exprs_[i] != nullptr) return exprs_[i]->Eval(*fact_schema_, fact_row);
    return Value();
  }

  std::vector<Value> ReadInputs(const uint8_t* fact_row,
                                const uint8_t* const* dim_rows) const {
    std::vector<Value> in(fns_.size());
    for (size_t i = 0; i < fns_.size(); ++i) {
      in[i] = ReadInput(i, fact_row, dim_rows);
    }
    return in;
  }

  std::vector<BoundSource> key_sources_;
  std::vector<AggFn> fns_;
  std::vector<BoundSource> inputs_;
  std::vector<ExprPtr> exprs_;
  std::vector<bool> has_input_;
  const Schema* fact_schema_ = nullptr;
  std::vector<std::string> columns_;
  uint64_t consumed_ = 0;
};

/// Hash group-by over the shared GroupTable kernel.
class HashStarAggregator final : public AggregatorBase {
 public:
  explicit HashStarAggregator(const StarQuerySpec& spec)
      : AggregatorBase(spec), table_(fns_) {}

  void Consume(const uint8_t* fact_row,
               const uint8_t* const* dim_rows) override {
    ++consumed_;
    table_.Fold(ReadKey(fact_row, dim_rows),
                ReadInputs(fact_row, dim_rows));
  }

  ResultSet Finish() override {
    ResultSet rs = table_.Finish(
        columns_, /*global_row_when_empty=*/key_sources_.empty());
    rs.tuples_consumed = consumed_;
    return rs;
  }

 private:
  GroupTable table_;
};

/// Sort group-by: buffers rows, sorts by key at Finish, folds runs.
class SortStarAggregator final : public AggregatorBase {
 public:
  explicit SortStarAggregator(const StarQuerySpec& spec)
      : AggregatorBase(spec) {}

  void Consume(const uint8_t* fact_row,
               const uint8_t* const* dim_rows) override {
    ++consumed_;
    buffered_.push_back(
        {ReadKey(fact_row, dim_rows), ReadInputs(fact_row, dim_rows)});
  }

  ResultSet Finish() override {
    ResultSet rs;
    rs.columns = columns_;
    rs.tuples_consumed = consumed_;
    if (buffered_.empty()) {
      if (key_sources_.empty() && !fns_.empty()) {
        std::vector<Value> row;
        AggState empty;
        for (AggFn fn : fns_) row.push_back(empty.Final(fn));
        rs.rows.push_back(std::move(row));
      }
      return rs;
    }
    std::sort(buffered_.begin(), buffered_.end(),
              [](const Row& a, const Row& b) {
                const size_t n = a.key.size();
                for (size_t i = 0; i < n; ++i) {
                  const int c = a.key[i].Compare(b.key[i]);
                  if (c != 0) return c < 0;
                }
                return false;
              });
    size_t run_start = 0;
    std::vector<AggState> states(fns_.size());
    auto flush = [&](size_t run_end) {
      std::vector<Value> row = std::move(buffered_[run_start].key);
      for (size_t i = 0; i < fns_.size(); ++i) {
        row.push_back(states[i].Final(fns_[i]));
      }
      rs.rows.push_back(std::move(row));
      states.assign(fns_.size(), AggState{});
      run_start = run_end;
    };
    for (size_t i = 0; i < buffered_.size(); ++i) {
      if (i > run_start &&
          !ValueKeysEqual(buffered_[i].key, buffered_[run_start].key)) {
        flush(i);
      }
      for (size_t a = 0; a < fns_.size(); ++a) {
        states[a].Fold(fns_[a], buffered_[i].inputs[a]);
      }
    }
    flush(buffered_.size());
    buffered_.clear();
    return rs;
  }

 private:
  struct Row {
    std::vector<Value> key;
    std::vector<Value> inputs;
  };
  std::vector<Row> buffered_;
};

/// Hash group-by that surrenders its partial GroupTable at Finish().
class PartialHashAggregator final : public AggregatorBase {
 public:
  PartialHashAggregator(const StarQuerySpec& spec, PartialSink sink)
      : AggregatorBase(spec), table_(fns_), sink_(std::move(sink)) {}

  void Consume(const uint8_t* fact_row,
               const uint8_t* const* dim_rows) override {
    ++consumed_;
    table_.Fold(ReadKey(fact_row, dim_rows),
                ReadInputs(fact_row, dim_rows));
  }

  ResultSet Finish() override {
    if (sink_) sink_(std::move(table_), consumed_);
    ResultSet rs;
    rs.tuples_consumed = consumed_;
    return rs;
  }

 private:
  GroupTable table_;
  PartialSink sink_;
};

}  // namespace

std::unique_ptr<StarAggregator> MakeHashAggregator(const StarQuerySpec& spec) {
  return std::make_unique<HashStarAggregator>(spec);
}

std::unique_ptr<StarAggregator> MakeSortAggregator(const StarQuerySpec& spec) {
  return std::make_unique<SortStarAggregator>(spec);
}

std::unique_ptr<StarAggregator> MakePartialHashAggregator(
    const StarQuerySpec& spec, PartialSink sink) {
  return std::make_unique<PartialHashAggregator>(spec, std::move(sink));
}

}  // namespace cjoin
