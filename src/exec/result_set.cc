#include "exec/result_set.h"

#include <algorithm>

namespace cjoin {

namespace {
bool RowLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}
}  // namespace

void ResultSet::SortRows() {
  std::sort(rows.begin(), rows.end(), RowLess);
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += '\t';
    out += columns[i];
  }
  out += '\n';
  size_t shown = 0;
  for (const auto& row : rows) {
    if (max_rows != 0 && shown >= max_rows) {
      out += "... (" + std::to_string(rows.size() - shown) + " more)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += '\t';
      out += row[i].ToString();
    }
    out += '\n';
    ++shown;
  }
  return out;
}

bool ResultSet::SameContents(const ResultSet& other) const {
  if (columns != other.columns) return false;
  if (rows.size() != other.rows.size()) return false;
  std::vector<std::vector<Value>> a = rows;
  std::vector<std::vector<Value>> b = other.rows;
  std::sort(a.begin(), a.end(), RowLess);
  std::sort(b.begin(), b.end(), RowLess);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].Compare(b[i][j]) != 0) return false;
    }
  }
  return true;
}

}  // namespace cjoin
