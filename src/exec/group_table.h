// Reusable grouping / aggregate-folding kernel.
//
// GroupTable is the engine under hash aggregation: an open-addressing
// index over dense groups keyed by Value tuples, folding a fixed list of
// aggregate functions. It is shared by the per-query star aggregators and
// by the fact-to-fact galaxy join operator (§5), which aggregates joined
// row pairs outside any single star pipeline.

#ifndef CJOIN_EXEC_GROUP_TABLE_H_
#define CJOIN_EXEC_GROUP_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/query_spec.h"
#include "exec/result_set.h"
#include "expr/value.h"

namespace cjoin {

/// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  bool any_double = false;
  Value min_v;
  Value max_v;

  /// Folds one input value under `fn` (NULLs ignored per SQL semantics;
  /// COUNT counts every call).
  void Fold(AggFn fn, const Value& v);

  /// Merges another partial state into this one. The running-state
  /// representation is fn-agnostic (counts and sums add, min/max combine),
  /// so one Merge is exact for every AggFn — including AVG, whose division
  /// only happens at Final().
  void Merge(const AggState& other);

  /// Final value of the aggregate.
  Value Final(AggFn fn) const;
};

/// Hash group-by over Value keys. Not thread-safe.
class GroupTable {
 public:
  explicit GroupTable(std::vector<AggFn> fns);

  /// Folds `inputs[i]` into aggregate i of the group keyed by `key`
  /// (consumes the key on first sight). `inputs` must have one entry per
  /// aggregate function (NULL Value for COUNT(*)).
  void Fold(std::vector<Value> key, const std::vector<Value>& inputs);

  size_t num_groups() const { return groups_.size(); }

  /// Merges `other`'s partial groups into this table (same aggregate
  /// function list required). Used by the sharded CJOIN collector to
  /// combine per-shard partial aggregates before finalizing. `other` is
  /// left empty.
  void MergeFrom(GroupTable&& other);

  /// Materializes (key columns..., aggregate columns...) rows under the
  /// given header. When `global_row_when_empty` is set and no group was
  /// folded, emits the SQL global-aggregate row (COUNT=0, SUM=NULL).
  /// The table resets afterwards.
  ResultSet Finish(std::vector<std::string> columns,
                   bool global_row_when_empty);

 private:
  struct Group {
    std::vector<Value> key;
    uint64_t hash = 0;
    std::vector<AggState> states;
  };

  Group& FindOrCreate(std::vector<Value> key);
  void Rehash();

  std::vector<AggFn> fns_;
  std::vector<uint32_t> slots_;
  std::vector<Group> groups_;
};

/// Hash of a Value tuple (shared with tests).
uint64_t HashValueKey(const std::vector<Value>& key);
/// Deep equality of Value tuples (Compare()==0 per element).
bool ValueKeysEqual(const std::vector<Value>& a, const std::vector<Value>& b);

}  // namespace cjoin

#endif  // CJOIN_EXEC_GROUP_TABLE_H_
