// Open-addressing hash map from integer join keys to row pointers.
//
// Used by the query-at-a-time baseline for its per-query join hash tables
// (a pipeline of hash joins filtering a fact scan — the plan shape the
// paper verified for both comparison systems, §6.1.1).

#ifndef CJOIN_EXEC_KEY_ROW_MAP_H_
#define CJOIN_EXEC_KEY_ROW_MAP_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace cjoin {

/// Linear-probing map int64 key -> const uint8_t* row. Keys must be
/// unique (primary keys). Not thread-safe; single-query state.
class KeyRowMap {
 public:
  explicit KeyRowMap(size_t expected = 16) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
  }

  void Insert(int64_t key, const uint8_t* row) {
    if ((size_ + 1) * 10 > slots_.size() * 7) Rehash();
    InsertNoGrow(key, row);
    ++size_;
  }

  /// Returns the row for `key`, or nullptr.
  const uint8_t* Find(int64_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t idx = Mix64(static_cast<uint64_t>(key)) & mask;
    for (;;) {
      const Slot& s = slots_[idx];
      if (!s.used) return nullptr;
      if (s.key == key) return s.row;
      idx = (idx + 1) & mask;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Slot {
    int64_t key = 0;
    const uint8_t* row = nullptr;
    bool used = false;
  };

  void InsertNoGrow(int64_t key, const uint8_t* row) {
    const size_t mask = slots_.size() - 1;
    size_t idx = Mix64(static_cast<uint64_t>(key)) & mask;
    while (slots_[idx].used) idx = (idx + 1) & mask;
    slots_[idx] = Slot{key, row, true};
  }

  void Rehash() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.used) InsertNoGrow(s.key, s.row);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace cjoin

#endif  // CJOIN_EXEC_KEY_ROW_MAP_H_
