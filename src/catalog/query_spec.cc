#include "catalog/query_spec.h"

#include <algorithm>
#include <map>
#include <set>

namespace cjoin {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

namespace {

Status CheckSource(const StarQuerySpec& spec, const ColumnSource& src,
                   const char* what) {
  const StarSchema& star = *spec.schema;
  if (src.from == ColumnSource::From::kFact) {
    if (src.column >= star.fact().schema().num_columns()) {
      return Status::InvalidArgument(std::string(what) +
                                     ": fact column out of range");
    }
    return Status::OK();
  }
  if (src.dim_index >= star.num_dimensions()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": dimension index out of range");
  }
  const Schema& dschema = star.dimension(src.dim_index).table->schema();
  if (src.column >= dschema.num_columns()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": dimension column out of range");
  }
  return Status::OK();
}

}  // namespace

Status ValidateSpec(const StarQuerySpec& spec) {
  if (spec.schema == nullptr) {
    return Status::InvalidArgument("query has no star schema");
  }
  const StarSchema& star = *spec.schema;

  std::set<size_t> referenced;
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    if (dp.dim_index >= star.num_dimensions()) {
      return Status::InvalidArgument("dimension predicate index out of range");
    }
    if (dp.predicate == nullptr) {
      return Status::InvalidArgument("dimension predicate is null");
    }
    if (!referenced.insert(dp.dim_index).second) {
      return Status::InvalidArgument(
          "duplicate predicate for dimension " +
          star.dimension(dp.dim_index).table->name() +
          " (use NormalizeSpec to merge)");
    }
  }

  if (spec.group_by.size() != spec.group_by_labels.size()) {
    return Status::InvalidArgument(
        "group_by and group_by_labels arity mismatch");
  }

  for (const ColumnSource& src : spec.group_by) {
    CJOIN_RETURN_IF_ERROR(CheckSource(spec, src, "group-by"));
    if (src.from == ColumnSource::From::kDimension &&
        referenced.count(src.dim_index) == 0) {
      return Status::InvalidArgument(
          "group-by references dimension without a predicate entry "
          "(use NormalizeSpec)");
    }
  }
  for (const AggregateSpec& agg : spec.aggregates) {
    if (agg.input.has_value() && agg.fact_expr != nullptr) {
      return Status::InvalidArgument(
          "aggregate has both a column input and a fact expression");
    }
    if (agg.fn != AggFn::kCount && !agg.input.has_value() &&
        agg.fact_expr == nullptr) {
      return Status::InvalidArgument(std::string(AggFnName(agg.fn)) +
                                     " aggregate requires an input");
    }
    if (agg.input.has_value()) {
      CJOIN_RETURN_IF_ERROR(CheckSource(spec, *agg.input, "aggregate"));
      if (agg.input->from == ColumnSource::From::kDimension &&
          referenced.count(agg.input->dim_index) == 0) {
        return Status::InvalidArgument(
            "aggregate references dimension without a predicate entry "
            "(use NormalizeSpec)");
      }
    }
  }

  for (uint32_t p : spec.partitions) {
    if (p >= star.fact().num_partitions()) {
      return Status::InvalidArgument("partition id out of range");
    }
  }
  return Status::OK();
}

Result<StarQuerySpec> NormalizeSpec(StarQuerySpec spec) {
  if (spec.schema == nullptr) {
    return Status::InvalidArgument("query has no star schema");
  }
  const StarSchema& star = *spec.schema;

  // Merge duplicate dimension predicates by conjunction.
  std::map<size_t, ExprPtr> merged;
  for (DimensionPredicate& dp : spec.dim_predicates) {
    if (dp.dim_index >= star.num_dimensions()) {
      return Status::InvalidArgument("dimension predicate index out of range");
    }
    if (dp.predicate == nullptr) dp.predicate = MakeTrue();
    auto it = merged.find(dp.dim_index);
    if (it == merged.end()) {
      merged.emplace(dp.dim_index, dp.predicate);
    } else if (IsTrueLiteral(it->second)) {
      it->second = dp.predicate;
    } else if (!IsTrueLiteral(dp.predicate)) {
      it->second = MakeAnd(it->second, dp.predicate);
    }
  }

  // Add implicit TRUE entries for dimensions referenced only by outputs.
  auto ensure_dim = [&](size_t dim) {
    if (dim < star.num_dimensions() && merged.find(dim) == merged.end()) {
      merged.emplace(dim, MakeTrue());
    }
  };
  for (const ColumnSource& src : spec.group_by) {
    if (src.from == ColumnSource::From::kDimension) ensure_dim(src.dim_index);
  }
  for (const AggregateSpec& agg : spec.aggregates) {
    if (agg.input.has_value() &&
        agg.input->from == ColumnSource::From::kDimension) {
      ensure_dim(agg.input->dim_index);
    }
  }

  spec.dim_predicates.clear();
  for (auto& [dim, pred] : merged) {
    spec.dim_predicates.push_back(DimensionPredicate{dim, pred});
  }

  // Synthesize labels.
  auto source_name = [&](const ColumnSource& src) -> std::string {
    if (src.from == ColumnSource::From::kFact) {
      return star.fact().schema().column(src.column).name;
    }
    return star.dimension(src.dim_index).table->schema().column(src.column)
        .name;
  };
  if (spec.group_by_labels.size() != spec.group_by.size()) {
    spec.group_by_labels.clear();
    for (const ColumnSource& src : spec.group_by) {
      spec.group_by_labels.push_back(source_name(src));
    }
  }
  for (AggregateSpec& agg : spec.aggregates) {
    if (agg.label.empty()) {
      std::string arg = "*";
      if (agg.input.has_value()) {
        arg = source_name(*agg.input);
      } else if (agg.fact_expr != nullptr) {
        arg = agg.fact_expr->ToString(star.fact().schema());
      }
      agg.label = std::string(AggFnName(agg.fn)) + "(" + arg + ")";
    }
  }

  // Dedup partition list.
  std::sort(spec.partitions.begin(), spec.partitions.end());
  spec.partitions.erase(
      std::unique(spec.partitions.begin(), spec.partitions.end()),
      spec.partitions.end());

  CJOIN_RETURN_IF_ERROR(ValidateSpec(spec));
  return spec;
}

}  // namespace cjoin
