// Star / galaxy schema catalog (paper §2.1, §5).
//
// A StarSchema wires one fact table to its dimension tables through
// key/foreign-key equi-joins. A Galaxy holds several fact tables (each the
// center of a star) that may share dimensions; fact-to-fact joins over a
// galaxy are evaluated by pivoting two star sub-queries (§5).

#ifndef CJOIN_CATALOG_STAR_SCHEMA_H_
#define CJOIN_CATALOG_STAR_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace cjoin {

/// One dimension of a star schema: the dimension table plus the join
/// columns of the key/foreign-key equi-join F.fk = D.pk.
struct DimensionDef {
  const Table* table = nullptr;
  /// Column index of the foreign key within the fact schema.
  size_t fact_fk_col = 0;
  /// Column index of the primary key within the dimension schema.
  size_t dim_pk_col = 0;
};

/// An immutable star schema: fact table F and dimensions D1..Dd.
class StarSchema {
 public:
  /// Builds and validates a star schema. Fails if a join column is missing
  /// or its type is not integer.
  static Result<StarSchema> Make(const Table* fact,
                                 std::vector<DimensionDef> dims);

  /// Convenience: resolves join columns by name.
  struct DimensionByName {
    const Table* table;
    std::string fact_fk;
    std::string dim_pk;
  };
  static Result<StarSchema> Make(const Table* fact,
                                 const std::vector<DimensionByName>& dims);

  const Table& fact() const { return *fact_; }
  size_t num_dimensions() const { return dims_.size(); }
  const DimensionDef& dimension(size_t i) const { return dims_[i]; }

  /// Index of the dimension whose table has `table_name`.
  Result<size_t> FindDimension(std::string_view table_name) const;

 private:
  StarSchema(const Table* fact, std::vector<DimensionDef> dims)
      : fact_(fact), dims_(std::move(dims)) {}

  const Table* fact_;
  std::vector<DimensionDef> dims_;
};

/// A set of star schemas over (possibly shared) dimension tables.
class Galaxy {
 public:
  /// Registers a star under `name`; fails on duplicates.
  Status AddStar(std::string name, StarSchema star);

  Result<const StarSchema*> FindStar(std::string_view name) const;

  size_t num_stars() const { return stars_.size(); }
  const std::string& star_name(size_t i) const { return names_[i]; }
  const StarSchema& star(size_t i) const { return stars_[i]; }

 private:
  std::vector<std::string> names_;
  std::vector<StarSchema> stars_;
};

}  // namespace cjoin

#endif  // CJOIN_CATALOG_STAR_SCHEMA_H_
