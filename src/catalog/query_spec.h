// Star query specification (the template of paper §2.1).
//
//   SELECT A, Aggr_1, ..., Aggr_k
//   FROM F, D_d1, ..., D_dn
//   WHERE  /\ F |><| D_dj  AND  /\ sigma_cj(D_dj)  AND  sigma_c0(F)
//   GROUP BY B
//
// A StarQuerySpec is the bound, validated form of that template: which
// dimensions are referenced (with their selection predicates c_j), the
// fact predicate c_0, the grouping attributes B and aggregates, the
// snapshot the query reads, and optionally the fact partitions it is
// limited to (§5).

#ifndef CJOIN_CATALOG_QUERY_SPEC_H_
#define CJOIN_CATALOG_QUERY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/star_schema.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace cjoin {

/// Snapshot id that sees all committed (non-deleted) data; the default for
/// ad-hoc read queries.
inline constexpr SnapshotId kReadLatestSnapshot = kMaxSnapshot - 1;

/// Identifies a column of the star: either a fact column or a column of a
/// referenced dimension.
struct ColumnSource {
  enum class From { kFact, kDimension };

  From from = From::kFact;
  /// Dimension index within the StarSchema; meaningful iff kDimension.
  size_t dim_index = 0;
  /// Column index within that table's schema.
  size_t column = 0;

  static ColumnSource Fact(size_t column) {
    return ColumnSource{From::kFact, 0, column};
  }
  static ColumnSource Dim(size_t dim_index, size_t column) {
    return ColumnSource{From::kDimension, dim_index, column};
  }

  bool operator==(const ColumnSource&) const = default;
};

/// Standard SQL aggregate functions (paper §2.1).
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One aggregate of the SELECT list. COUNT(*) has no input. The input is
/// either a column of the star (`input`) or an arbitrary expression over
/// the *fact* row (`fact_expr`), e.g. SUM(lo_revenue - lo_supplycost) in
/// SSB Q4.x; at most one of the two may be set.
struct AggregateSpec {
  AggFn fn = AggFn::kCount;
  std::optional<ColumnSource> input;
  /// Expression over the fact schema; alternative to `input`.
  ExprPtr fact_expr;
  /// Output column label, e.g. "sum_revenue".
  std::string label;
};

/// Selection predicate c_j on one referenced dimension. A dimension that
/// is referenced only for grouping/aggregation carries the TRUE predicate.
struct DimensionPredicate {
  size_t dim_index = 0;
  ExprPtr predicate;  ///< over the dimension schema; never null
};

/// A bound star query.
struct StarQuerySpec {
  const StarSchema* schema = nullptr;

  /// Referenced dimensions with their predicates; at most one entry per
  /// dimension. Dimensions used in group_by/aggregates must appear here
  /// (Validate() auto-adds TRUE entries via NormalizeSpec below).
  std::vector<DimensionPredicate> dim_predicates;

  /// c_0: selection predicate on the fact table; null means TRUE. (The
  /// paper's prototype lacked this; this implementation supports it.)
  ExprPtr fact_predicate;

  /// Grouping attributes B; empty means a single global group.
  std::vector<ColumnSource> group_by;
  /// Labels for the group-by output columns (same arity as group_by).
  std::vector<std::string> group_by_labels;

  /// Aggregates; may be empty (pure group enumeration).
  std::vector<AggregateSpec> aggregates;

  /// Snapshot the query reads under snapshot isolation (§3.5).
  SnapshotId snapshot = kReadLatestSnapshot;

  /// Fact partitions to scan; empty = all (§5 "Fact Table Partitioning").
  std::vector<uint32_t> partitions;

  /// Free-form tag for workload bookkeeping (e.g. "Q4.2").
  std::string label;
};

/// Checks internal consistency: dimension indices in range, group-by /
/// aggregate sources referencing the fact or a referenced dimension,
/// partition ids valid, label arities matching.
Status ValidateSpec(const StarQuerySpec& spec);

/// Returns a validated copy of `spec` with implicit TRUE predicates added
/// for dimensions referenced only by group-by/aggregates, duplicate
/// dimension predicates merged (ANDed), and missing labels synthesized.
Result<StarQuerySpec> NormalizeSpec(StarQuerySpec spec);

}  // namespace cjoin

#endif  // CJOIN_CATALOG_QUERY_SPEC_H_
