#include "catalog/star_schema.h"

namespace cjoin {

namespace {
bool IsIntegerColumn(const Schema& schema, size_t col) {
  const DataType t = schema.column(col).type;
  return t == DataType::kInt32 || t == DataType::kInt64;
}
}  // namespace

Result<StarSchema> StarSchema::Make(const Table* fact,
                                    std::vector<DimensionDef> dims) {
  if (fact == nullptr) {
    return Status::InvalidArgument("star schema requires a fact table");
  }
  for (const DimensionDef& d : dims) {
    if (d.table == nullptr) {
      return Status::InvalidArgument("dimension table is null");
    }
    if (d.fact_fk_col >= fact->schema().num_columns()) {
      return Status::InvalidArgument("fact FK column out of range for " +
                                     d.table->name());
    }
    if (d.dim_pk_col >= d.table->schema().num_columns()) {
      return Status::InvalidArgument("dimension PK column out of range for " +
                                     d.table->name());
    }
    if (!IsIntegerColumn(fact->schema(), d.fact_fk_col) ||
        !IsIntegerColumn(d.table->schema(), d.dim_pk_col)) {
      return Status::InvalidArgument(
          "join columns must be integer typed (dimension " +
          d.table->name() + ")");
    }
  }
  return StarSchema(fact, std::move(dims));
}

Result<StarSchema> StarSchema::Make(
    const Table* fact, const std::vector<DimensionByName>& dims) {
  if (fact == nullptr) {
    return Status::InvalidArgument("star schema requires a fact table");
  }
  std::vector<DimensionDef> defs;
  defs.reserve(dims.size());
  for (const DimensionByName& d : dims) {
    if (d.table == nullptr) {
      return Status::InvalidArgument("dimension table is null");
    }
    CJOIN_ASSIGN_OR_RETURN(const size_t fk,
                           fact->schema().FindColumn(d.fact_fk));
    CJOIN_ASSIGN_OR_RETURN(const size_t pk,
                           d.table->schema().FindColumn(d.dim_pk));
    defs.push_back(DimensionDef{d.table, fk, pk});
  }
  return Make(fact, std::move(defs));
}

Result<size_t> StarSchema::FindDimension(std::string_view table_name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].table->name() == table_name) return i;
  }
  return Status::NotFound("no dimension table named '" +
                          std::string(table_name) + "'");
}

Status Galaxy::AddStar(std::string name, StarSchema star) {
  for (const std::string& existing : names_) {
    if (existing == name) {
      return Status::AlreadyExists("star '" + name + "' already registered");
    }
  }
  names_.push_back(std::move(name));
  stars_.push_back(std::move(star));
  return Status::OK();
}

Result<const StarSchema*> Galaxy::FindStar(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return &stars_[i];
  }
  return Status::NotFound("no star named '" + std::string(name) + "'");
}

}  // namespace cjoin
