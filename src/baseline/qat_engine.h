// Query-at-a-time baseline engine (paper §6.1.1's comparison systems).
//
// The paper compares CJOIN against a commercial DBMS ("System X") and
// PostgreSQL and verifies that both evaluate SSB star queries with the
// same physical plan: "a pipeline of hash joins that filter a single scan
// of the fact table". This module implements exactly that plan, on the
// same storage / expression / aggregation substrates CJOIN uses, so the
// comparison isolates the sharing strategy:
//
//   per query:  build one hash table per referenced dimension
//               (scan dimension, apply predicate, hash selected rows)
//               then scan the fact table privately, probing the hash
//               tables in ascending-selectivity order, and aggregate.
//
// Under concurrency every query pays its own scan and its own hash
// builds — the contention the paper attributes to the query-at-a-time
// model. A per-tuple overhead knob models the heavier tuple interpreter
// of a full SQL system (used to differentiate the System X and
// PostgreSQL profiles in the benches); a shared reader id models
// PostgreSQL's synchronized sequential scans.

#ifndef CJOIN_BASELINE_QAT_ENGINE_H_
#define CJOIN_BASELINE_QAT_ENGINE_H_

#include <atomic>
#include <cstdint>

#include "catalog/query_spec.h"
#include "common/status.h"
#include "exec/result_set.h"
#include "storage/sim_disk.h"

namespace cjoin {

/// Execution knobs for the baseline.
struct QatOptions {
  /// Shared disk model; nullptr runs at memory speed.
  SimDisk* disk = nullptr;
  /// Disk reader identity. Private scans use distinct ids (each query
  /// seeks against the others); synchronized-scan mode shares one id.
  uint64_t reader_id = 0;
  /// Extra hash-mix rounds charged per scanned fact tuple, modelling the
  /// per-tuple interpretation cost of a general-purpose executor
  /// (0 ~ lean commercial executor, larger ~ PostgreSQL).
  int per_tuple_overhead = 0;
  /// Rows per scan run.
  size_t scan_batch_rows = 1024;

  /// Cooperative cancellation: when non-null and set to true, the
  /// executor stops at the next batch boundary and returns kCancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute deadline, steady-clock nanos (0 = none); checked at batch
  /// boundaries, trips with kDeadlineExceeded.
  int64_t deadline_ns = 0;
};

/// Execution statistics of one baseline query.
struct QatStats {
  uint64_t fact_rows_scanned = 0;
  uint64_t fact_rows_output = 0;
  uint64_t dim_rows_hashed = 0;
  double build_seconds = 0.0;
  double probe_seconds = 0.0;
};

/// Evaluates one star query with a private hash-join pipeline.
/// `spec` must be normalized (NormalizeSpec).
Result<ResultSet> ExecuteStarQuery(const StarQuerySpec& spec,
                                   const QatOptions& options,
                                   QatStats* stats = nullptr);

}  // namespace cjoin

#endif  // CJOIN_BASELINE_QAT_ENGINE_H_
