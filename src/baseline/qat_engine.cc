#include "baseline/qat_engine.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/clock.h"
#include "exec/aggregation.h"
#include "exec/key_row_map.h"
#include "storage/continuous_scan.h"

namespace cjoin {

namespace {

/// One hash join of the pipeline: the dimension's hash table plus the fact
/// foreign-key column to probe with.
struct JoinStage {
  size_t dim_index = 0;
  size_t fact_fk_col = 0;
  KeyRowMap table;
  double selectivity = 1.0;  // |hash table| / |dimension|
};

/// Burns `rounds` hash-mix rounds; models interpreter overhead.
inline uint64_t BurnOverhead(uint64_t seed, int rounds) {
  uint64_t h = seed;
  for (int i = 0; i < rounds; ++i) h = Mix64(h);
  return h;
}

/// Batch-boundary interruption check (cancellation / deadline).
Status CheckInterrupt(const QatOptions& options) {
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_acquire)) {
    return Status::Cancelled("baseline query cancelled");
  }
  if (options.deadline_ns != 0 &&
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
              .count() >= options.deadline_ns) {
    return Status::DeadlineExceeded("baseline query deadline expired");
  }
  return Status::OK();
}

}  // namespace

Result<ResultSet> ExecuteStarQuery(const StarQuerySpec& spec,
                                   const QatOptions& options,
                                   QatStats* stats) {
  CJOIN_RETURN_IF_ERROR(ValidateSpec(spec));
  const StarSchema& star = *spec.schema;
  QatStats local_stats;
  Stopwatch watch;

  // ---- Build phase: one private hash table per referenced dimension ----
  std::vector<JoinStage> stages;
  stages.reserve(spec.dim_predicates.size());
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    const DimensionDef& def = star.dimension(dp.dim_index);
    const Table& dim = *def.table;
    const Schema& dschema = dim.schema();

    JoinStage stage;
    stage.dim_index = dp.dim_index;
    stage.fact_fk_col = def.fact_fk_col;
    stage.table = KeyRowMap(static_cast<size_t>(dim.NumRows()));

    for (uint32_t p = 0; p < dim.num_partitions(); ++p) {
      CJOIN_RETURN_IF_ERROR(CheckInterrupt(options));
      for (uint64_t i = 0; i < dim.PartitionRows(p); ++i) {
        const RowId id{p, i};
        if (!dim.Header(id)->VisibleAt(spec.snapshot)) continue;
        const uint8_t* row = dim.RowPayload(id);
        if (!dp.predicate->EvalBool(dschema, row)) continue;
        stage.table.Insert(dschema.GetIntAny(row, def.dim_pk_col), row);
      }
    }
    local_stats.dim_rows_hashed += stage.table.size();
    stage.selectivity =
        dim.NumRows() == 0
            ? 1.0
            : static_cast<double>(stage.table.size()) /
                  static_cast<double>(dim.NumRows());
    stages.push_back(std::move(stage));
  }

  // Probe the most selective joins first — the standard left-deep plan
  // ordering the comparison systems' optimizers chose as well.
  std::sort(stages.begin(), stages.end(),
            [](const JoinStage& a, const JoinStage& b) {
              return a.selectivity < b.selectivity;
            });
  local_stats.build_seconds = watch.ElapsedSeconds();
  watch.Restart();

  // ---- Probe phase: private scan of the fact table ----
  const Schema& fschema = star.fact().schema();
  std::unique_ptr<StarAggregator> agg = MakeHashAggregator(spec);

  ContinuousScan::Options scan_opts;
  scan_opts.max_run_rows = options.scan_batch_rows;
  scan_opts.disk = options.disk;
  scan_opts.reader_id = options.reader_id;
  SinglePassScan scan(star.fact(), scan_opts, spec.partitions);

  std::vector<const uint8_t*> dim_rows(star.num_dimensions(), nullptr);
  const size_t stride = star.fact().row_stride();
  const bool has_fact_pred =
      spec.fact_predicate != nullptr && !IsTrueLiteral(spec.fact_predicate);

  ScanEvent ev;
  uint64_t burn_sink = 0;
  while (scan.Next(&ev)) {
    if (ev.kind != ScanEvent::Kind::kRows) continue;
    CJOIN_RETURN_IF_ERROR(CheckInterrupt(options));
    for (size_t r = 0; r < ev.count; ++r) {
      const uint8_t* slot = ev.base + r * stride;
      const RowHeader* hdr = reinterpret_cast<const RowHeader*>(slot);
      const uint8_t* fact_row = slot + sizeof(RowHeader);
      ++local_stats.fact_rows_scanned;
      if (options.per_tuple_overhead > 0) {
        burn_sink ^=
            BurnOverhead(local_stats.fact_rows_scanned,
                         options.per_tuple_overhead);
      }
      if (!hdr->VisibleToAll() && !hdr->VisibleAt(spec.snapshot)) continue;
      if (has_fact_pred &&
          !spec.fact_predicate->EvalBool(fschema, fact_row)) {
        continue;
      }
      bool pass = true;
      for (const JoinStage& stage : stages) {
        const int64_t fk = fschema.GetIntAny(fact_row, stage.fact_fk_col);
        const uint8_t* drow = stage.table.Find(fk);
        if (drow == nullptr) {
          pass = false;
          break;
        }
        dim_rows[stage.dim_index] = drow;
      }
      if (!pass) continue;
      ++local_stats.fact_rows_output;
      agg->Consume(fact_row, dim_rows.data());
    }
  }
  // Keep the overhead loop from being optimized away.
  if (burn_sink == 0x5a5a5a5a5a5a5a5aULL) {
    local_stats.fact_rows_scanned += 1;
  }

  local_stats.probe_seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return agg->Finish();
}

}  // namespace cjoin
