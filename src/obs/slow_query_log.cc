#include "obs/slow_query_log.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/query_trace.h"

namespace cjoin::obs {

void SlowQueryLog::Record(int64_t latency_ns, const QueryTrace& trace) {
  Entry e;
  e.latency_ns = latency_ns;
  e.route = trace.route();
  e.tenant = trace.tenant();
  e.trace_json = trace.ToJson();
  e.rendered = trace.Render();
  MetricsRegistry::Global()
      .GetCounter("slow_queries_total",
                  "Completed queries at or above slow_query_threshold")
      ->Add();
  MutexLock lk(&mu_);
  ++total_;
  entries_.push_front(std::move(e));
  while (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  MutexLock lk(&mu_);
  return {entries_.begin(), entries_.end()};
}

std::string SlowQueryLog::ToJson() const {
  MutexLock lk(&mu_);
  std::string out = "[";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ',';
    first = false;
    char head[96];
    std::snprintf(head, sizeof(head), "{\"latency_ms\":%.3f,",
                  static_cast<double>(e.latency_ns) / 1e6);
    out += head;
    // route/tenant are engine-validated identifiers; trace_json is
    // already a JSON object.
    out += "\"route\":\"" + e.route + "\",\"tenant\":\"" + e.tenant +
           "\",\"trace\":" + e.trace_json + "}";
  }
  out += "]";
  return out;
}

uint64_t SlowQueryLog::total_captured() const {
  MutexLock lk(&mu_);
  return total_;
}

void SlowQueryLog::Clear() {
  MutexLock lk(&mu_);
  entries_.clear();
}

}  // namespace cjoin::obs
