// Structured CJOIN_DEBUG sink: per-query ordered lifecycle traces.
//
// The old diagnostics fprintf'd straight to stderr from whichever
// pipeline thread hit the event, so concurrent queries interleaved
// arbitrarily. Events now buffer per query id and flush as one block —
// `[qid 3] +12.4us [pre] install` ... — when the query's lifecycle ends
// (CJoinOperator cleanup calls TraceFlushQuery). Bounded everywhere: a
// fixed event cap per query and a fixed cap on buffered queries, with
// overflow falling back to direct stderr so nothing is silently lost.

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/trace.h"
#include "obs/metrics.h"

namespace cjoin {

namespace {

struct TraceEvent {
  int64_t at_ns = 0;
  std::string line;  ///< "[subsys] message"
};

struct SinkState {
  Mutex mu;
  std::map<uint32_t, std::vector<TraceEvent>> events GUARDED_BY(mu);
};

constexpr size_t kMaxEventsPerQuery = 64;
constexpr size_t kMaxBufferedQueries = 4096;

SinkState& Sink() {
  static SinkState* sink = new SinkState();
  return *sink;
}

}  // namespace

void TraceLogf(uint32_t qid, const char* subsys, const char* fmt, ...) {
  if (!TraceEnabled()) return;
  char msg[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);

  TraceEvent ev;
  ev.at_ns = obs::NowNs();
  ev.line.reserve(std::strlen(subsys) + std::strlen(msg) + 4);
  ev.line.push_back('[');
  ev.line.append(subsys);
  ev.line.append("] ");
  ev.line.append(msg);

  SinkState& sink = Sink();
  MutexLock lk(&sink.mu);
  auto it = sink.events.find(qid);
  if (it == sink.events.end() &&
      sink.events.size() >= kMaxBufferedQueries) {
    std::fprintf(stderr, "[qid %u] %s\n", qid, ev.line.c_str());
    return;
  }
  std::vector<TraceEvent>& buf = sink.events[qid];
  if (buf.size() >= kMaxEventsPerQuery) {
    std::fprintf(stderr, "[qid %u] %s\n", qid, ev.line.c_str());
    return;
  }
  buf.push_back(std::move(ev));
}

void TraceFlushQuery(uint32_t qid) {
  if (!TraceEnabled()) return;
  std::vector<TraceEvent> events;
  {
    SinkState& sink = Sink();
    MutexLock lk(&sink.mu);
    auto it = sink.events.find(qid);
    if (it == sink.events.end()) return;
    events = std::move(it->second);
    sink.events.erase(it);
  }
  if (events.empty()) return;
  // One stderr write per query keeps blocks atomic-ish even when
  // several queries flush concurrently.
  std::string block;
  char head[64];
  const int64_t origin = events.front().at_ns;
  for (const TraceEvent& ev : events) {
    std::snprintf(head, sizeof(head), "[qid %u] +%.1fus ", qid,
                  static_cast<double>(ev.at_ns - origin) / 1e3);
    block.append(head);
    block.append(ev.line);
    block.push_back('\n');
  }
  std::fwrite(block.data(), 1, block.size(), stderr);
}

}  // namespace cjoin
