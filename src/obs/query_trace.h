// Per-query span trace (EXPLAIN ANALYZE for the live engine).
//
// Every QueryEngine::Execute() call attaches one QueryTrace to its
// ticket; each layer the query crosses appends a timestamped span:
//
//   admission      — TryAdmit gate latency
//   route          — router decision (label = chosen route)
//   wait_queue     — residence in the admission wait queue (kQueued)
//   stage:<name>   — pipeline residence per stage, measured by the
//                    query's own start/end control tuples passing the
//                    stage (preprocessor "pre", each filter stage,
//                    distributor "dist"); sharded pipelines prefix the
//                    shard ("s2/pre")
//   shard<i>       — per-shard submit -> deliver on the merge path
//   merge          — cross-shard partial-aggregate merge
//   baseline_queue — baseline pool queue residence
//   baseline_run   — baseline plan execution
//   net_stream     — result serialization + streaming on the wire
//
// The buffer is a fixed-size array guarded by a spinlock: a query
// produces a handful of spans from a handful of threads, so the lock is
// effectively uncontended, and the fixed cap (overflow counts, never
// grows) keeps the trace always-on cheap. Creation is gated on
// MetricsEnabled() so the compiled-out build allocates nothing.

#ifndef CJOIN_OBS_QUERY_TRACE_H_
#define CJOIN_OBS_QUERY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cjoin::obs {

enum class SpanKind : uint8_t {
  kAdmission,
  kRoute,
  kWaitQueue,
  kStage,
  kShard,
  kMerge,
  kBaselineQueue,
  kBaselineRun,
  kNetStream,
  kEvent,  ///< point annotation (start == end)
};

const char* SpanKindName(SpanKind kind);

struct TraceSpan {
  SpanKind kind = SpanKind::kEvent;
  char label[24] = {0};  ///< stage name / route / shard id / note
  int64_t start_ns = 0;  ///< absolute steady-clock ns
  int64_t end_ns = 0;    ///< 0 while the span is still open
};

class QueryTrace {
 public:
  static constexpr size_t kMaxSpans = 48;

  QueryTrace() : origin_ns_(NowNs()) {}

  /// Appends a closed span.
  void AddSpan(SpanKind kind, const char* label, int64_t start_ns,
               int64_t end_ns);
  /// Appends an open span (end stamped later by EndSpan).
  void BeginSpan(SpanKind kind, const char* label, int64_t start_ns);
  /// Closes the oldest open span matching (kind, label); drops the
  /// close silently when no match (e.g. the begin overflowed the cap).
  void EndSpan(SpanKind kind, const char* label, int64_t end_ns);
  /// Point annotation.
  void Annotate(const char* label, int64_t at_ns);

  void set_route(const char* route);
  void set_tenant(const std::string& tenant);

  int64_t origin_ns() const { return origin_ns_; }
  const char* route() const { return route_; }
  const char* tenant() const { return tenant_; }
  uint32_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Consistent copy of the recorded spans, ordered by start time.
  std::vector<TraceSpan> Spans() const;

  /// Human-readable rendering (`\trace`): one line per span with
  /// offsets relative to submission.
  std::string Render() const;

  /// Compact JSON (QUERY_DONE trace payload):
  ///   {"route":"cjoin","tenant":"t","origin_ns":...,
  ///    "spans":[{"kind":"stage","label":"pre","start_us":..,"dur_us":..}]}
  std::string ToJson() const;

 private:
  void Lock() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() const { lock_.clear(std::memory_order_release); }
  static void CopyLabel(char* dst, const char* src);

  const int64_t origin_ns_;
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  TraceSpan spans_[kMaxSpans];
  uint32_t count_ = 0;
  std::atomic<uint32_t> dropped_{0};
  char route_[16] = {0};
  char tenant_[32] = {0};
};

}  // namespace cjoin::obs

#endif  // CJOIN_OBS_QUERY_TRACE_H_
