#include "obs/query_trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace cjoin::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission:
      return "admission";
    case SpanKind::kRoute:
      return "route";
    case SpanKind::kWaitQueue:
      return "wait_queue";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kShard:
      return "shard";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kBaselineQueue:
      return "baseline_queue";
    case SpanKind::kBaselineRun:
      return "baseline_run";
    case SpanKind::kNetStream:
      return "net_stream";
    case SpanKind::kEvent:
      return "event";
  }
  return "?";
}

void QueryTrace::CopyLabel(char* dst, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::strncpy(dst, src, sizeof(TraceSpan{}.label) - 1);
  dst[sizeof(TraceSpan{}.label) - 1] = '\0';
}

void QueryTrace::AddSpan(SpanKind kind, const char* label, int64_t start_ns,
                         int64_t end_ns) {
  Lock();
  if (count_ >= kMaxSpans) {
    Unlock();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceSpan& s = spans_[count_++];
  s.kind = kind;
  CopyLabel(s.label, label);
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  Unlock();
}

void QueryTrace::BeginSpan(SpanKind kind, const char* label,
                           int64_t start_ns) {
  AddSpan(kind, label, start_ns, 0);
}

void QueryTrace::EndSpan(SpanKind kind, const char* label, int64_t end_ns) {
  char want[sizeof(TraceSpan{}.label)];
  CopyLabel(want, label);
  Lock();
  for (uint32_t i = 0; i < count_; ++i) {
    TraceSpan& s = spans_[i];
    if (s.kind == kind && s.end_ns == 0 &&
        std::strcmp(s.label, want) == 0) {
      s.end_ns = end_ns;
      Unlock();
      return;
    }
  }
  Unlock();
}

void QueryTrace::Annotate(const char* label, int64_t at_ns) {
  AddSpan(SpanKind::kEvent, label, at_ns, at_ns);
}

void QueryTrace::set_route(const char* route) {
  Lock();
  std::strncpy(route_, route, sizeof(route_) - 1);
  route_[sizeof(route_) - 1] = '\0';
  Unlock();
}

void QueryTrace::set_tenant(const std::string& tenant) {
  Lock();
  std::strncpy(tenant_, tenant.c_str(), sizeof(tenant_) - 1);
  tenant_[sizeof(tenant_) - 1] = '\0';
  Unlock();
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::vector<TraceSpan> out;
  Lock();
  out.assign(spans_, spans_ + count_);
  Unlock();
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::string QueryTrace::Render() const {
  const std::vector<TraceSpan> spans = Spans();
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "trace route=%s tenant=%s spans=%zu%s\n",
                route_[0] != '\0' ? route_ : "?",
                tenant_[0] != '\0' ? tenant_ : "-", spans.size(),
                dropped() > 0 ? " (overflowed)" : "");
  out.append(buf);
  for (const TraceSpan& s : spans) {
    const double start_us =
        static_cast<double>(s.start_ns - origin_ns_) / 1e3;
    if (s.end_ns == 0) {
      std::snprintf(buf, sizeof(buf), "  +%10.1fus  %-14s %-18s (open)\n",
                    start_us, SpanKindName(s.kind), s.label);
    } else if (s.kind == SpanKind::kEvent) {
      std::snprintf(buf, sizeof(buf), "  +%10.1fus  %-14s %s\n", start_us,
                    SpanKindName(s.kind), s.label);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  +%10.1fus  %-14s %-18s %.1fus\n", start_us,
                    SpanKindName(s.kind), s.label,
                    static_cast<double>(s.end_ns - s.start_ns) / 1e3);
    }
    out.append(buf);
  }
  return out;
}

std::string QueryTrace::ToJson() const {
  const std::vector<TraceSpan> spans = Spans();
  std::string out = "{\"route\":\"";
  out.append(route_);
  out.append("\",\"tenant\":\"");
  for (const char* p = tenant_; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
  out.append("\",\"dropped\":");
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%u", dropped());
  out.append(buf);
  out.append(",\"spans\":[");
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"kind\":\"");
    out.append(SpanKindName(s.kind));
    out.append("\",\"label\":\"");
    for (const char* p = s.label; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') out.push_back('\\');
      out.push_back(*p);
    }
    const double start_us =
        static_cast<double>(s.start_ns - origin_ns_) / 1e3;
    const double dur_us =
        s.end_ns == 0 ? -1.0
                      : static_cast<double>(s.end_ns - s.start_ns) / 1e3;
    std::snprintf(buf, sizeof(buf),
                  "\",\"start_us\":%.1f,\"dur_us\":%.1f}", start_us,
                  dur_us);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

}  // namespace cjoin::obs
