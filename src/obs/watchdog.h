// Stall watchdog: a background sampler over the pipeline's progress
// counters and queue depths.
//
// The flight recorder answers "what happened" after the fact; the
// watchdog decides *when* that evidence must be preserved. Every
// `interval` it runs the registered samplers (closures the engine
// wires over its operator/admission stats — the watchdog itself knows
// nothing about CJOIN) and applies three rules:
//
//   stalled_stage     — a stage reports outstanding work (backlog > 0)
//                       but its progress counter has not moved for
//                       `stall_after`;
//   saturated_queue   — a queue sits at >= `saturation_fraction` of
//                       capacity for `saturation_periods` consecutive
//                       samples;
//   deadline_backlog  — queued work carries a deadline that expires
//                       within the stall window (it will miss unless
//                       something drains right now).
//
// Each rule trips at most once per incident (re-arming when the
// condition clears), increments `watchdog_trips{reason=...}`, records
// a kWatchdogTrip flight event, and — when a dump path is configured —
// auto-dumps the flight recorder so the timeline leading into the
// stall is preserved before the ring overwrites it.

#ifndef CJOIN_OBS_WATCHDOG_H_
#define CJOIN_OBS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace cjoin::obs {

class Watchdog {
 public:
  /// One monitored progress source (a pipeline stage, a scan, an
  /// admission queue): `progress` must be monotonic while work is
  /// being done; `backlog` > 0 means work is outstanding, so a frozen
  /// progress counter is a stall rather than idleness. A nonzero
  /// `min_deadline_ns` is the earliest deadline among the queued work.
  struct StageSample {
    std::string name;
    uint64_t progress = 0;
    uint64_t backlog = 0;
    int64_t min_deadline_ns = 0;
  };

  struct QueueSample {
    std::string name;
    size_t depth = 0;
    size_t capacity = 0;
  };

  /// Fills the two vectors with the current samples. Runs on the
  /// watchdog thread; must not block on pipeline locks held across
  /// tuple processing (the engine's stats accessors already satisfy
  /// this).
  using Sampler = std::function<void(std::vector<StageSample>&,
                                     std::vector<QueueSample>&)>;

  struct Options {
    std::chrono::milliseconds interval{100};
    std::chrono::milliseconds stall_after{2000};
    double saturation_fraction = 0.95;
    int saturation_periods = 3;
    /// Auto-dump target for the flight recorder; empty disables dumps
    /// (trips still count and record events).
    std::string dump_path;
    /// Floor between consecutive auto-dumps, so a flapping condition
    /// cannot turn the watchdog into an I/O load.
    std::chrono::milliseconds dump_min_gap{5000};
  };

  explicit Watchdog(Options opts);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a sampler; returns a token for RemoveSampler.
  uint64_t AddSampler(Sampler sampler) EXCLUDES(mu_);
  void RemoveSampler(uint64_t token) EXCLUDES(mu_);

  void Start();
  void Stop();

  /// Runs one sampling pass synchronously and returns the number of
  /// NEW trips it raised. The background thread calls exactly this;
  /// tests call it directly for determinism.
  uint64_t Poll() EXCLUDES(mu_);

  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  void Run();
  void Trip(const char* reason, const std::string& source);

  /// Per-source stall bookkeeping.
  struct StageState {
    uint64_t last_progress = 0;
    int64_t last_progress_ns = 0;
    bool stall_tripped = false;
    bool deadline_tripped = false;
  };
  struct QueueState {
    int hot_samples = 0;
    bool tripped = false;
  };

  const Options opts_;
  std::atomic<uint64_t> trips_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;

  Mutex mu_;  ///< samplers + rule state (Poll is serialized)
  std::vector<std::pair<uint64_t, Sampler>> samplers_ GUARDED_BY(mu_);
  uint64_t next_token_ GUARDED_BY(mu_) = 1;
  std::map<std::string, StageState> stages_ GUARDED_BY(mu_);
  std::map<std::string, QueueState> queues_ GUARDED_BY(mu_);
  int64_t last_dump_ns_ GUARDED_BY(mu_) = 0;
};

}  // namespace cjoin::obs

#endif  // CJOIN_OBS_WATCHDOG_H_
