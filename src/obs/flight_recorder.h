// Engine flight recorder: always-on, bounded-memory event timeline.
//
// Aggregate metrics (metrics.h) answer "how slow"; per-query traces
// (query_trace.h) answer "where did THIS query wait". Neither answers
// the production question "what was every thread doing in the 200ms
// before the p999 spike?". The flight recorder does: every engine
// thread owns a fixed-capacity ring of timestamped events (stage
// wake/sleep, queue push/pop with observed depth, admission
// grant/queue/shed, route decisions, per-shard scan lap boundaries,
// net frames in/out), overwritten in place like an aircraft FDR, and
// dumpable on demand as Chrome-trace-event JSON that loads directly in
// Perfetto (ui.perfetto.dev) with named thread tracks.
//
// Hot-path contract (the bench_obs_overhead <2% gate covers it):
// recording is one relaxed kill-switch load, one steady-clock read,
// and four relaxed stores into a thread-local pre-allocated slot — no
// locks, no allocation, no syscalls. Every event field is a relaxed
// std::atomic so the dumper may snapshot rings while their owner
// threads keep writing: a slot being overwritten mid-read yields one
// garbled (but well-typed) event, never a data race. Rings of exited
// threads stay in the registry, so a post-mortem dump still shows
// their last seconds.
//
// Thread identity: RegisterCurrentThread(name) binds the calling
// thread to a ring, names its track in the dump, and mirrors the name
// into the OS via pthread_setname_np so external profilers agree with
// the recorder. Threads that record without registering are
// auto-registered as "thread-<n>".

#ifndef CJOIN_OBS_FLIGHT_RECORDER_H_
#define CJOIN_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/metrics.h"

namespace cjoin::obs {

class QueryTrace;

enum class EventKind : uint8_t {
  kNone = 0,
  kStageWake,    ///< stage worker got a batch (arg = batch rows)
  kStageSleep,   ///< stage worker about to block on its input queue
  kQueuePush,    ///< arg = observed depth after the push
  kQueuePop,     ///< arg = observed depth after the pop
  kAdmitGrant,   ///< admission admitted (label = tenant)
  kAdmitQueue,   ///< admission parked the query in the wait queue
  kAdmitShed,    ///< admission shed (label = tenant)
  kRoute,        ///< router decision (label = chosen route)
  kLap,          ///< continuous scan wrapped (arg = lap number)
  kNetFrameIn,   ///< wire frame received (arg = payload bytes)
  kNetFrameOut,  ///< wire frame queued for send (arg = payload bytes)
  kQueryDone,    ///< distributor delivered a query's terminal result
  kWatchdogTrip, ///< watchdog detected a stall/saturation condition
};

const char* EventKindName(EventKind kind);

/// One 32-byte recorded event. All fields are relaxed atomics so a
/// concurrent dump is race-free; `meta` packs kind (low 8 bits) and the
/// 32-bit argument (high 32 bits); the label is 16 raw bytes (shorter
/// labels are NUL-padded, 16-byte labels carry no terminator).
struct FlightEvent {
  std::atomic<int64_t> ts_ns{0};
  std::atomic<uint64_t> meta{0};
  std::atomic<uint64_t> label_lo{0};
  std::atomic<uint64_t> label_hi{0};
};

/// Per-thread event ring. Owned (via shared_ptr) by the global
/// registry; referenced lock-free by its owner thread through TLS.
struct FlightRing {
  /// Events kept per thread. 4096 * 32B = 128 KiB: at a pathological
  /// 1M events/s that is still the last ~4ms of history per thread; at
  /// realistic per-batch rates it is seconds.
  static constexpr size_t kCapacity = 4096;
  static_assert((kCapacity & (kCapacity - 1)) == 0, "power of two");

  /// Next write position (monotonic; slot = head % kCapacity). Written
  /// only by the owner thread, release-published per event.
  std::atomic<uint64_t> head{0};
  std::array<FlightEvent, kCapacity> events{};
  std::string name;   ///< track name in the dump
  uint32_t tid = 0;   ///< stable virtual tid (registration order)
};

namespace internal {
inline thread_local FlightRing* t_flight_ring = nullptr;
/// Slow path: binds an unregistered recording thread to a fresh ring.
FlightRing* AutoRegisterThread();
}  // namespace internal

/// Records one event into the calling thread's ring. Safe from any
/// thread at any time; a no-op when metrics are disabled.
inline void RecordEvent(EventKind kind, const char* label,
                        uint32_t arg = 0) {
  if (!MetricsEnabled()) return;
  FlightRing* ring = internal::t_flight_ring;
  if (ring == nullptr) ring = internal::AutoRegisterThread();
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  FlightEvent& e = ring->events[h & (FlightRing::kCapacity - 1)];
  e.ts_ns.store(NowNs(), std::memory_order_relaxed);
  uint64_t lo = 0, hi = 0;
  if (label != nullptr && label[0] != '\0') {
    char buf[16] = {0};
    for (size_t i = 0; i < sizeof(buf) && label[i] != '\0'; ++i) {
      buf[i] = label[i];
    }
    std::memcpy(&lo, buf, 8);
    std::memcpy(&hi, buf + 8, 8);
  }
  e.label_lo.store(lo, std::memory_order_relaxed);
  e.label_hi.store(hi, std::memory_order_relaxed);
  e.meta.store(static_cast<uint64_t>(kind) |
                   (static_cast<uint64_t>(arg) << 32),
               std::memory_order_relaxed);
  ring->head.store(h + 1, std::memory_order_release);
}

/// The process-wide recorder: ring registry + dump machinery.
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Binds the calling thread to a named ring (idempotent: re-binding
  /// renames the existing ring) and sets the OS thread name. Returns
  /// the ring for tests.
  FlightRing* RegisterCurrentThread(const std::string& name) EXCLUDES(mu_);

  /// Retains a completed query's span trace (bounded ring of the most
  /// recent kMaxTraces) so DumpChromeTrace can overlay query lifetimes
  /// as async events on the thread timeline.
  void NoteQueryTrace(std::shared_ptr<const QueryTrace> trace) EXCLUDES(mu_);

  /// Renders every ring + retained query trace as Chrome trace-event
  /// JSON ({"traceEvents":[...]}), loadable in Perfetto. Consecutive
  /// kStageWake/kStageSleep pairs on a thread render as complete ("X")
  /// busy slices; other events render as thread-scoped instants;
  /// query-trace spans render as async ("b"/"e") events, one async
  /// track per query.
  std::string DumpChromeTrace() const EXCLUDES(mu_);

  /// DumpChromeTrace to `path` via a temp file + atomic rename, so a
  /// concurrent reader never sees a torn dump. Returns false (with the
  /// OS error in *error if non-null) on I/O failure.
  bool DumpToFile(const std::string& path,
                  std::string* error = nullptr) const;

  /// Number of registered rings (tests / introspection).
  size_t ring_count() const EXCLUDES(mu_);

  static constexpr size_t kMaxTraces = 64;

 private:
  friend FlightRing* internal::AutoRegisterThread();

  FlightRing* BindCurrentThread(const std::string& name, bool set_os_name)
      EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<std::shared_ptr<FlightRing>> rings_ GUARDED_BY(mu_);
  uint32_t next_tid_ GUARDED_BY(mu_) = 1;
  std::vector<std::shared_ptr<const QueryTrace>> traces_
      GUARDED_BY(mu_);  // ring
  size_t trace_next_ GUARDED_BY(mu_) = 0;
  uint64_t traces_noted_ GUARDED_BY(mu_) = 0;
};

/// Convenience wrapper: FlightRecorder::Global().RegisterCurrentThread.
inline void RegisterThread(const std::string& name) {
  FlightRecorder::Global().RegisterCurrentThread(name);
}

}  // namespace cjoin::obs

#endif  // CJOIN_OBS_FLIGHT_RECORDER_H_
