#include "obs/metrics.h"

#include <chrono>
#include <cstdio>

namespace cjoin::obs {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t ThreadShard(size_t mod) {
  static std::atomic<size_t> next{0};
  static thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard % mod;
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

LatencySnapshot LatencyHistogram::Snapshot() const {
  LatencySnapshot snap;
  std::array<uint64_t, kBuckets> copy;
  uint64_t total = 0;
  for (uint32_t i = 0; i < kBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
    total += copy[i];
  }
  snap.count = total;
  snap.sum_ns = sum_.load(std::memory_order_relaxed);
  if (total == 0) return snap;

  bool have_min = false;
  for (uint32_t i = 0; i < kBuckets; ++i) {
    if (copy[i] == 0) continue;
    if (!have_min) {
      snap.min_ns = BucketLowerBound(i);
      have_min = true;
    }
    snap.max_ns = BucketUpperBound(i);
  }

  // Quantile = upper edge of the first bucket whose cumulative count
  // reaches ceil(q * total); conservative by at most one bucket width.
  const auto quantile = [&](double q) -> uint64_t {
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
    if (target < 1) target = 1;
    if (target > total) target = total;
    uint64_t cum = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      cum += copy[i];
      if (cum >= target) return BucketUpperBound(i);
    }
    return snap.max_ns;
  };
  snap.p50_ns = quantile(0.50);
  snap.p90_ns = quantile(0.90);
  snap.p99_ns = quantile(0.99);
  snap.p999_ns = quantile(0.999);
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

std::string LabelPair(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(key.size() + value.size() + 3);
  out.append(key);
  out.push_back('=');
  out.push_back('"');
  for (char c : value) {
    // Keep the rendered pair safe inside both Prometheus exposition and
    // the JSON snapshot key (which re-escapes the quotes).
    if (c == '"' || c == '\\' || c == '\n') {
      out.push_back('_');
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(std::string_view name,
                                                    std::string_view help,
                                                    Type type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  return it->second;
}

std::string MetricsRegistry::EffectiveLabels(const Family& family,
                                             std::string_view labels) {
  const size_t children = family.counters.size() + family.gauges.size() +
                          family.histograms.size();
  if (children < kMaxChildrenPerFamily) return std::string(labels);
  return "other=\"overflow\"";
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  MutexLock lk(&mu_);
  Family& family = FamilyFor(name, help, Type::kCounter);
  std::string key = EffectiveLabels(family, labels);
  auto it = family.counters.find(key);
  if (it == family.counters.end()) {
    it = family.counters.emplace(std::move(key), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  MutexLock lk(&mu_);
  Family& family = FamilyFor(name, help, Type::kGauge);
  std::string key = EffectiveLabels(family, labels);
  auto it = family.gauges.find(key);
  if (it == family.gauges.end()) {
    it = family.gauges.emplace(std::move(key), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                                std::string_view help,
                                                std::string_view labels) {
  MutexLock lk(&mu_);
  Family& family = FamilyFor(name, help, Type::kHistogram);
  std::string key = EffectiveLabels(family, labels);
  auto it = family.histograms.find(key);
  if (it == family.histograms.end()) {
    it = family.histograms
             .emplace(std::move(key), std::make_unique<LatencyHistogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  MutexLock lk(&mu_);
  families_.clear();
}

namespace {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

void AppendJsonKey(std::string* out, std::string_view name,
                   std::string_view labels) {
  out->push_back('"');
  AppendJsonEscaped(out, name);
  if (!labels.empty()) {
    out->push_back('{');
    AppendJsonEscaped(out, labels);
    out->push_back('}');
  }
  out->append("\":");
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

std::string SeriesName(std::string_view name, std::string_view labels,
                       std::string_view extra_label = "",
                       std::string_view suffix = "") {
  std::string out(name);
  out.append(suffix);
  if (!labels.empty() || !extra_label.empty()) {
    out.push_back('{');
    out.append(labels);
    if (!labels.empty() && !extra_label.empty()) out.push_back(',');
    out.append(extra_label);
    out.push_back('}');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderJson() const {
  MutexLock lk(&mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, counter] : family.counters) {
      if (!counters.empty()) counters.push_back(',');
      AppendJsonKey(&counters, name, labels);
      AppendU64(&counters, counter->Value());
    }
    for (const auto& [labels, gauge] : family.gauges) {
      if (!gauges.empty()) gauges.push_back(',');
      AppendJsonKey(&gauges, name, labels);
      AppendI64(&gauges, gauge->Value());
    }
    for (const auto& [labels, histogram] : family.histograms) {
      if (!histograms.empty()) histograms.push_back(',');
      AppendJsonKey(&histograms, name, labels);
      const LatencySnapshot s = histogram->Snapshot();
      histograms.push_back('{');
      histograms.append("\"count\":");
      AppendU64(&histograms, s.count);
      histograms.append(",\"sum_ns\":");
      AppendU64(&histograms, s.sum_ns);
      histograms.append(",\"min_ns\":");
      AppendU64(&histograms, s.min_ns);
      histograms.append(",\"max_ns\":");
      AppendU64(&histograms, s.max_ns);
      histograms.append(",\"p50_ns\":");
      AppendU64(&histograms, s.p50_ns);
      histograms.append(",\"p90_ns\":");
      AppendU64(&histograms, s.p90_ns);
      histograms.append(",\"p99_ns\":");
      AppendU64(&histograms, s.p99_ns);
      histograms.append(",\"p999_ns\":");
      AppendU64(&histograms, s.p999_ns);
      histograms.push_back('}');
    }
  }
  std::string out = "{\"counters\":{";
  out.append(counters);
  out.append("},\"gauges\":{");
  out.append(gauges);
  out.append("},\"histograms\":{");
  out.append(histograms);
  out.append("}}");
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lk(&mu_);
  std::string out;
  char buf[64];
  for (const auto& [name, family] : families_) {
    out.append("# HELP ").append(name).push_back(' ');
    out.append(family.help);
    out.push_back('\n');
    out.append("# TYPE ").append(name).push_back(' ');
    switch (family.type) {
      case Type::kCounter:
        out.append("counter\n");
        break;
      case Type::kGauge:
        out.append("gauge\n");
        break;
      case Type::kHistogram:
        out.append("summary\n");
        break;
    }
    for (const auto& [labels, counter] : family.counters) {
      out.append(SeriesName(name, labels)).push_back(' ');
      AppendU64(&out, counter->Value());
      out.push_back('\n');
    }
    for (const auto& [labels, gauge] : family.gauges) {
      out.append(SeriesName(name, labels)).push_back(' ');
      AppendI64(&out, gauge->Value());
      out.push_back('\n');
    }
    for (const auto& [labels, histogram] : family.histograms) {
      const LatencySnapshot s = histogram->Snapshot();
      const auto emit_quantile = [&](const char* q, uint64_t ns) {
        std::string extra = "quantile=\"";
        extra.append(q);
        extra.push_back('"');
        out.append(SeriesName(name, labels, extra)).push_back(' ');
        std::snprintf(buf, sizeof(buf), "%.9f",
                      static_cast<double>(ns) / 1e9);
        out.append(buf);
        out.push_back('\n');
      };
      emit_quantile("0.5", s.p50_ns);
      emit_quantile("0.9", s.p90_ns);
      emit_quantile("0.99", s.p99_ns);
      emit_quantile("0.999", s.p999_ns);
      out.append(SeriesName(name, labels, "", "_sum")).push_back(' ');
      std::snprintf(buf, sizeof(buf), "%.9f",
                    static_cast<double>(s.sum_ns) / 1e9);
      out.append(buf);
      out.push_back('\n');
      out.append(SeriesName(name, labels, "", "_count")).push_back(' ');
      AppendU64(&out, s.count);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace cjoin::obs
