#include "obs/watchdog.h"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace cjoin::obs {

Watchdog::Watchdog(Options opts) : opts_(std::move(opts)) {}

Watchdog::~Watchdog() { Stop(); }

uint64_t Watchdog::AddSampler(Sampler sampler) {
  MutexLock lk(&mu_);
  const uint64_t token = next_token_++;
  samplers_.emplace_back(token, std::move(sampler));
  return token;
}

void Watchdog::RemoveSampler(uint64_t token) {
  MutexLock lk(&mu_);
  for (auto it = samplers_.begin(); it != samplers_.end(); ++it) {
    if (it->first == token) {
      samplers_.erase(it);
      return;
    }
  }
}

void Watchdog::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void Watchdog::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Run() {
  RegisterThread("watchdog");
  while (!stop_.load(std::memory_order_relaxed)) {
    Poll();
    // Sliced sleep so Stop() is responsive at long intervals.
    auto remaining = opts_.interval;
    while (remaining.count() > 0 && !stop_.load(std::memory_order_relaxed)) {
      const auto slice =
          std::min(remaining, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

void Watchdog::Trip(const char* reason, const std::string& source) {
  trips_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global()
      .GetCounter("watchdog_trips",
                  "Watchdog detections by reason",
                  "reason=\"" + std::string(reason) + "\"")
      ->Add();
  RecordEvent(EventKind::kWatchdogTrip, source.c_str());
  std::fprintf(stderr, "[cjoin watchdog] %s: %s\n", reason,
               source.c_str());
}

uint64_t Watchdog::Poll() {
  MutexLock lk(&mu_);
  std::vector<StageSample> stages;
  std::vector<QueueSample> queues;
  for (const auto& [token, sampler] : samplers_) {
    (void)token;
    sampler(stages, queues);
  }
  const int64_t now = NowNs();
  const int64_t stall_ns =
      std::chrono::nanoseconds(opts_.stall_after).count();
  uint64_t new_trips = 0;

  for (const StageSample& s : stages) {
    StageState& st = stages_[s.name];
    if (st.last_progress_ns == 0 || s.progress != st.last_progress ||
        s.backlog == 0) {
      // Progress moved (or nothing is queued): re-arm.
      st.last_progress = s.progress;
      st.last_progress_ns = now;
      st.stall_tripped = false;
    } else if (!st.stall_tripped && now - st.last_progress_ns >= stall_ns) {
      st.stall_tripped = true;
      Trip("stalled_stage", s.name);
      ++new_trips;
    }
    // Deadline risk: queued work whose earliest deadline lands inside
    // the stall window will miss unless it drains immediately.
    if (s.min_deadline_ns != 0 && s.backlog > 0 &&
        s.min_deadline_ns - now < stall_ns) {
      if (!st.deadline_tripped) {
        st.deadline_tripped = true;
        Trip("deadline_backlog", s.name);
        ++new_trips;
      }
    } else {
      st.deadline_tripped = false;
    }
  }

  for (const QueueSample& q : queues) {
    QueueState& qs = queues_[q.name];
    const bool hot =
        q.capacity > 0 &&
        static_cast<double>(q.depth) >=
            opts_.saturation_fraction * static_cast<double>(q.capacity);
    if (!hot) {
      qs.hot_samples = 0;
      qs.tripped = false;
      continue;
    }
    if (++qs.hot_samples >= opts_.saturation_periods && !qs.tripped) {
      qs.tripped = true;
      Trip("saturated_queue", q.name);
      ++new_trips;
    }
  }

  if (new_trips > 0 && !opts_.dump_path.empty() &&
      now - last_dump_ns_ >=
          std::chrono::nanoseconds(opts_.dump_min_gap).count()) {
    last_dump_ns_ = now;
    std::string error;
    if (!FlightRecorder::Global().DumpToFile(opts_.dump_path, &error)) {
      std::fprintf(stderr, "[cjoin watchdog] trace dump failed: %s\n",
                   error.c_str());
    } else {
      std::fprintf(stderr, "[cjoin watchdog] flight recorder dumped to %s\n",
                   opts_.dump_path.c_str());
    }
  }
  return new_trips;
}

}  // namespace cjoin::obs
