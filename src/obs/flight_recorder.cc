#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "obs/query_trace.h"

namespace cjoin::obs {

namespace {

/// Minimal JSON string escape (labels are engine-chosen identifiers,
/// but a torn ring slot can hold arbitrary bytes).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Formats steady-clock ns as Chrome-trace microseconds.
std::string TsUs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

/// The args key that makes each kind's 32-bit payload self-describing.
const char* ArgKey(EventKind kind) {
  switch (kind) {
    case EventKind::kStageWake:
      return "rows";
    case EventKind::kQueuePush:
    case EventKind::kQueuePop:
      return "depth";
    case EventKind::kLap:
      return "lap";
    case EventKind::kNetFrameIn:
    case EventKind::kNetFrameOut:
      return "bytes";
    default:
      return "arg";
  }
}

/// One decoded (possibly torn) event copied out of a ring.
struct DecodedEvent {
  int64_t ts_ns = 0;
  EventKind kind = EventKind::kNone;
  uint32_t arg = 0;
  std::string label;
};

/// Race-tolerant snapshot of a ring's retained events, oldest first.
/// Slots the owner thread is concurrently overwriting may decode to
/// garbage; DumpChromeTrace drops anything that fails sanity checks.
std::vector<DecodedEvent> SnapshotRing(const FlightRing& ring) {
  const uint64_t head = ring.head.load(std::memory_order_acquire);
  const uint64_t n = head < FlightRing::kCapacity
                         ? head
                         : static_cast<uint64_t>(FlightRing::kCapacity);
  std::vector<DecodedEvent> out;
  out.reserve(n);
  for (uint64_t i = head - n; i < head; ++i) {
    const FlightEvent& e = ring.events[i & (FlightRing::kCapacity - 1)];
    DecodedEvent d;
    d.ts_ns = e.ts_ns.load(std::memory_order_relaxed);
    const uint64_t meta = e.meta.load(std::memory_order_relaxed);
    d.kind = static_cast<EventKind>(meta & 0xff);
    d.arg = static_cast<uint32_t>(meta >> 32);
    char buf[17] = {0};
    const uint64_t lo = e.label_lo.load(std::memory_order_relaxed);
    const uint64_t hi = e.label_hi.load(std::memory_order_relaxed);
    std::memcpy(buf, &lo, 8);
    std::memcpy(buf + 8, &hi, 8);
    d.label = buf;
    out.push_back(std::move(d));
  }
  return out;
}

bool KindValid(EventKind kind) {
  return kind > EventKind::kNone && kind <= EventKind::kWatchdogTrip;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kNone:
      return "none";
    case EventKind::kStageWake:
      return "stage_wake";
    case EventKind::kStageSleep:
      return "stage_sleep";
    case EventKind::kQueuePush:
      return "queue_push";
    case EventKind::kQueuePop:
      return "queue_pop";
    case EventKind::kAdmitGrant:
      return "admit_grant";
    case EventKind::kAdmitQueue:
      return "admit_queue";
    case EventKind::kAdmitShed:
      return "admit_shed";
    case EventKind::kRoute:
      return "route";
    case EventKind::kLap:
      return "scan_lap";
    case EventKind::kNetFrameIn:
      return "net_frame_in";
    case EventKind::kNetFrameOut:
      return "net_frame_out";
    case EventKind::kQueryDone:
      return "query_done";
    case EventKind::kWatchdogTrip:
      return "watchdog_trip";
  }
  return "unknown";
}

namespace internal {

FlightRing* AutoRegisterThread() {
  return FlightRecorder::Global().RegisterCurrentThread("");
}

}  // namespace internal

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRing* FlightRecorder::RegisterCurrentThread(const std::string& name) {
  return BindCurrentThread(name, /*set_os_name=*/!name.empty());
}

FlightRing* FlightRecorder::BindCurrentThread(const std::string& name,
                                              bool set_os_name) {
  FlightRing* ring = internal::t_flight_ring;
  if (ring == nullptr) {
    auto fresh = std::make_shared<FlightRing>();
    {
      MutexLock lk(&mu_);
      fresh->tid = next_tid_++;
      rings_.push_back(fresh);
    }
    ring = fresh.get();
    internal::t_flight_ring = ring;
  }
  {
    MutexLock lk(&mu_);
    ring->name = name.empty() ? "thread-" + std::to_string(ring->tid) : name;
  }
#if defined(__linux__)
  if (set_os_name) {
    // The kernel caps comm at 15 chars + NUL.
    char os_name[16] = {0};
    for (size_t i = 0; i + 1 < sizeof(os_name) && i < name.size(); ++i) {
      os_name[i] = name[i];
    }
    pthread_setname_np(pthread_self(), os_name);
  }
#else
  (void)set_os_name;
#endif
  return ring;
}

void FlightRecorder::NoteQueryTrace(
    std::shared_ptr<const QueryTrace> trace) {
  if (trace == nullptr) return;
  MutexLock lk(&mu_);
  ++traces_noted_;
  if (traces_.size() < kMaxTraces) {
    traces_.push_back(std::move(trace));
  } else {
    traces_[trace_next_] = std::move(trace);
    trace_next_ = (trace_next_ + 1) % kMaxTraces;
  }
}

size_t FlightRecorder::ring_count() const {
  MutexLock lk(&mu_);
  return rings_.size();
}

std::string FlightRecorder::DumpChromeTrace() const {
  std::vector<std::shared_ptr<FlightRing>> rings;
  std::vector<std::shared_ptr<const QueryTrace>> traces;
  uint64_t query_seq = 0;
  {
    MutexLock lk(&mu_);
    rings = rings_;
    for (size_t i = 0; i < traces_.size(); ++i) {
      const auto& t = traces_[(trace_next_ + i) % traces_.size()];
      if (t != nullptr) traces.push_back(t);
    }
    query_seq = traces_noted_;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out += ',';
    out += ev;
    first = false;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"cjoin\"}}");

  for (const auto& ring : rings) {
    std::string name;
    {
      MutexLock lk(&mu_);
      name = ring->name;
    }
    const std::string tid = std::to_string(ring->tid);
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         JsonEscape(name) + "\"}}");

    // Pair each stage wake with the next stage sleep on the same
    // thread into a complete "X" busy slice; everything else (and any
    // unpaired wake) renders as a thread-scoped instant.
    bool have_wake = false;
    DecodedEvent wake;
    auto emit_instant = [&](const DecodedEvent& d) {
      std::string name_field = EventKindName(d.kind);
      if (!d.label.empty()) name_field += " " + d.label;
      emit("{\"ph\":\"i\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" +
           TsUs(d.ts_ns) + ",\"s\":\"t\",\"name\":\"" +
           JsonEscape(name_field) + "\",\"args\":{\"" + ArgKey(d.kind) +
           "\":" + std::to_string(d.arg) + "}}");
    };
    for (const DecodedEvent& d : SnapshotRing(*ring)) {
      if (!KindValid(d.kind) || d.ts_ns <= 0) continue;  // torn slot
      if (d.kind == EventKind::kStageWake) {
        if (have_wake) emit_instant(wake);
        wake = d;
        have_wake = true;
        continue;
      }
      if (d.kind == EventKind::kStageSleep && have_wake &&
          d.ts_ns >= wake.ts_ns) {
        emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" +
             TsUs(wake.ts_ns) + ",\"dur\":" +
             TsUs(d.ts_ns - wake.ts_ns) + ",\"name\":\"" +
             JsonEscape(wake.label.empty() ? "busy" : wake.label) +
             "\",\"args\":{\"rows\":" + std::to_string(wake.arg) + "}}");
        have_wake = false;
        continue;
      }
      emit_instant(d);
    }
    if (have_wake) emit_instant(wake);
  }

  // Query lifetimes overlay the thread tracks as async events: one
  // async track per retained trace (cat "query", unique id), the whole
  // query as the outer b/e pair and every recorded span nested inside.
  uint64_t id = query_seq * kMaxTraces;  // unique across dumps
  for (const auto& trace : traces) {
    ++id;
    const std::string idstr = std::to_string(id);
    const std::vector<TraceSpan> spans = trace->Spans();
    int64_t end_ns = trace->origin_ns();
    for (const TraceSpan& s : spans) {
      end_ns = std::max(end_ns, std::max(s.start_ns, s.end_ns));
    }
    std::string qname = "query";
    if (trace->route()[0] != '\0') {
      qname += " [" + std::string(trace->route()) + "]";
    }
    emit("{\"ph\":\"b\",\"cat\":\"query\",\"id\":" + idstr +
         ",\"pid\":1,\"tid\":0,\"ts\":" + TsUs(trace->origin_ns()) +
         ",\"name\":\"" + JsonEscape(qname) + "\"}");
    for (const TraceSpan& s : spans) {
      std::string sname = SpanKindName(s.kind);
      if (s.label[0] != '\0') sname += ":" + std::string(s.label);
      const int64_t s_end = s.end_ns != 0 ? s.end_ns : s.start_ns;
      emit("{\"ph\":\"b\",\"cat\":\"query\",\"id\":" + idstr +
           ",\"pid\":1,\"tid\":0,\"ts\":" + TsUs(s.start_ns) +
           ",\"name\":\"" + JsonEscape(sname) + "\"}");
      emit("{\"ph\":\"e\",\"cat\":\"query\",\"id\":" + idstr +
           ",\"pid\":1,\"tid\":0,\"ts\":" + TsUs(s_end) + ",\"name\":\"" +
           JsonEscape(sname) + "\"}");
    }
    emit("{\"ph\":\"e\",\"cat\":\"query\",\"id\":" + idstr +
         ",\"pid\":1,\"tid\":0,\"ts\":" + TsUs(end_ns) + ",\"name\":\"" +
         JsonEscape(qname) + "\"}");
  }

  out += "]}";
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                std::string* error) const {
  const std::string dump = DumpChromeTrace();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "open " + tmp + " failed";
    return false;
  }
  const bool wrote = std::fwrite(dump.data(), 1, dump.size(), f) ==
                     dump.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "write " + tmp + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename to " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace cjoin::obs
