// Lock-free engine metrics (tentpole of the observability PR).
//
// CJOIN's headline claim is *predictable* latency under hundreds of
// concurrent queries; proving that at runtime needs percentile-grade
// telemetry whose own cost is invisible. The design follows the
// low-overhead recorder idiom (DRAMHiT's Latency.hpp is the cited
// exemplar): everything on the hot path is a relaxed atomic op on
// pre-allocated fixed-size storage — no locks, no allocation, no
// branches beyond one kill-switch load.
//
//   * Counter — monotonic, sharded over cache-line-padded cells so
//     concurrent writers on different cores do not ping-pong a line;
//   * Gauge   — instantaneous level (queue depths, in-flight counts);
//   * LatencyHistogram — log-bucketed fixed array (8 sub-buckets per
//     octave, <= 12.5% relative bucket width) with p50/p90/p99/p999
//     snapshots computed off the hot path;
//   * MetricsRegistry — the named family store rendering one consistent
//     snapshot as JSON (STATS wire frame) or Prometheus text
//     exposition (`\metrics`, `cjoin_server --metrics-dump`).
//
// Compile-time kill switch: configure with -DCJOIN_METRICS=OFF (which
// defines CJOIN_NO_METRICS) and every Record/Add body compiles to
// nothing. Runtime kill switch: SetMetricsEnabled(false) short-circuits
// recording behind a single relaxed load — bench_obs_overhead uses it
// to bound the always-on cost (<2% throughput delta is the guard).

#ifndef CJOIN_OBS_METRICS_H_
#define CJOIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"

namespace cjoin::obs {

// ---------------------------------------------------------------------------
// Kill switches
// ---------------------------------------------------------------------------

inline std::atomic<bool> g_metrics_enabled{true};

/// True when recording is active. With CJOIN_NO_METRICS the constant
/// false lets the compiler delete every recording body.
inline bool MetricsEnabled() {
#ifdef CJOIN_NO_METRICS
  return false;
#else
  return g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

/// Runtime kill switch (bench_obs_overhead toggles it; a no-op when
/// compiled out).
inline void SetMetricsEnabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Steady-clock nanoseconds (same clock as QueryRuntime::NowNs, kept
/// here so obs has no dependency on the pipeline headers).
int64_t NowNs();

// ---------------------------------------------------------------------------
// Counter: monotonic, sharded
// ---------------------------------------------------------------------------

/// Returns this thread's stable shard index in [0, mod).
size_t ThreadShard(size_t mod);

class Counter {
 public:
  static constexpr size_t kCells = 8;

  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    cells_[ThreadShard(kCells)].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_{};
};

// ---------------------------------------------------------------------------
// Gauge: instantaneous level
// ---------------------------------------------------------------------------

class Gauge {
 public:
  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t n = 1) {
    if (!MetricsEnabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(int64_t n = 1) { Add(-n); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// ---------------------------------------------------------------------------
// LatencyHistogram: log-bucketed, fixed-size, allocation-free
// ---------------------------------------------------------------------------

/// One consistent read of a histogram (quantiles from the bucket CDF;
/// each reported quantile is the upper edge of its bucket, so the
/// estimate overshoots by at most one bucket width, <= 12.5%).
struct LatencySnapshot {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t min_ns = 0;  ///< lower edge of the lowest occupied bucket
  uint64_t max_ns = 0;  ///< upper edge of the highest occupied bucket
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;

  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count);
  }
};

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear sub-buckets per octave.
  static constexpr int kSubBits = 3;
  static constexpr uint32_t kSubCount = 1u << kSubBits;
  /// Index space: values < kSubCount map 1:1; each further octave
  /// contributes kSubCount buckets. 61 octaves * 8 + 8 = 496 covers
  /// the full uint64 range of nanoseconds.
  static constexpr uint32_t kBuckets = ((64 - kSubBits) << kSubBits) + kSubCount;

  void Record(uint64_t v) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  void RecordSeconds(double seconds) {
    if (seconds <= 0.0) {
      Record(0);
      return;
    }
    Record(static_cast<uint64_t>(seconds * 1e9));
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  LatencySnapshot Snapshot() const;

  /// Log-bucket mapping: values below kSubCount are exact; otherwise
  /// the top kSubBits bits after the leading one select the sub-bucket.
  static uint32_t BucketIndex(uint64_t v) {
    if (v < kSubCount) return static_cast<uint32_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits;
    const uint32_t sub =
        static_cast<uint32_t>((v >> shift) & (kSubCount - 1));
    const uint32_t idx =
        (static_cast<uint32_t>(msb - kSubBits + 1) << kSubBits) + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  /// Smallest value mapping to bucket `idx` (inverse of BucketIndex).
  static uint64_t BucketLowerBound(uint32_t idx) {
    if (idx < kSubCount) return idx;
    const uint32_t octave = idx >> kSubBits;  // >= 1
    const uint32_t sub = idx & (kSubCount - 1);
    return static_cast<uint64_t>(kSubCount + sub) << (octave - 1);
  }

  /// Largest value mapping to bucket `idx`.
  static uint64_t BucketUpperBound(uint32_t idx) {
    if (idx + 1 >= kBuckets) return ~uint64_t{0};
    return BucketLowerBound(idx + 1) - 1;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// MetricsRegistry: named families, JSON + Prometheus rendering
// ---------------------------------------------------------------------------

/// The central metric store. Registration (name + optional pre-rendered
/// label set like `route="cjoin"`) takes a mutex and returns a stable
/// pointer; call sites cache the pointer so the hot path never touches
/// the lock. Label cardinality per family is capped: children past the
/// cap collapse into an `other="overflow"` child so a hostile tenant
/// stream cannot grow registry memory without bound.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxChildrenPerFamily = 64;

  Counter* GetCounter(std::string_view name, std::string_view help,
                      std::string_view labels = "") EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  std::string_view labels = "") EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(std::string_view name, std::string_view help,
                                 std::string_view labels = "") EXCLUDES(mu_);

  /// One consistent snapshot as a JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string RenderJson() const EXCLUDES(mu_);

  /// Prometheus text exposition (counters/gauges verbatim, histograms
  /// as summaries with quantile series in seconds).
  std::string RenderPrometheus() const EXCLUDES(mu_);

  /// Drops every registered family (tests; outstanding pointers from
  /// call sites become dangling, so only use between engine lifetimes).
  void Reset() EXCLUDES(mu_);

  /// The process-wide registry every subsystem records into.
  static MetricsRegistry& Global();

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    Type type;
    std::string help;
    /// label-set -> instrument (label "" = the unlabelled child).
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
  };

  Family& FamilyFor(std::string_view name, std::string_view help, Type type)
      REQUIRES(mu_);
  /// Clamps `labels` to the overflow child once the family is full.
  static std::string EffectiveLabels(const Family& family,
                                     std::string_view labels);

  mutable Mutex mu_;
  std::map<std::string, Family, std::less<>> families_ GUARDED_BY(mu_);
};

/// Renders `tenant="<name>"` with quoting safe for both Prometheus
/// exposition and the JSON snapshot keys.
std::string LabelPair(std::string_view key, std::string_view value);

}  // namespace cjoin::obs

#endif  // CJOIN_OBS_METRICS_H_
