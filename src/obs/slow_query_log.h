// Bounded ring of the slowest queries' full span traces.
//
// Percentile histograms say p999 regressed; the slow-query log keeps
// the evidence: any completed query whose end-to-end latency crosses
// the engine's slow_query_threshold has its QueryTrace captured here —
// both the JSON form (server STATS, trace dumps) and the human
// rendering (shell `\slowlog`). The ring is fixed-capacity (oldest
// entries are evicted), so it is safe to leave enabled in production.

#ifndef CJOIN_OBS_SLOW_QUERY_LOG_H_
#define CJOIN_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace cjoin::obs {

class QueryTrace;

class SlowQueryLog {
 public:
  struct Entry {
    int64_t latency_ns = 0;
    std::string route;
    std::string tenant;
    std::string trace_json;  ///< QueryTrace::ToJson at capture time
    std::string rendered;    ///< QueryTrace::Render at capture time
  };

  explicit SlowQueryLog(size_t capacity = 32) : capacity_(capacity) {}

  /// Captures one over-threshold completion. Cheap relative to a slow
  /// query by definition (renders once, under a mutex the hot path
  /// never touches), and increments `slow_queries_total`.
  void Record(int64_t latency_ns, const QueryTrace& trace) EXCLUDES(mu_);

  /// Most recent first.
  std::vector<Entry> Entries() const EXCLUDES(mu_);

  /// JSON array of entries (most recent first):
  ///   [{"latency_ms":12.3,"route":"cjoin","tenant":"t","trace":{...}}]
  std::string ToJson() const EXCLUDES(mu_);

  /// Total captures since construction (evictions included).
  uint64_t total_captured() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable cjoin::Mutex mu_;
  std::deque<Entry> entries_ GUARDED_BY(mu_);  ///< newest at front
  uint64_t total_ GUARDED_BY(mu_) = 0;
};

}  // namespace cjoin::obs

#endif  // CJOIN_OBS_SLOW_QUERY_LOG_H_
