// Filters and filter ordering (paper §3.2.2, §3.4).
//
// One Filter exists per dimension of the star schema for the lifetime of
// the pipeline. A dimension referenced by no current query degenerates to
// a two-word bit test (the probe-skipping optimization of §3.2.2 with
// b_Dj = all-ones), so the fixed filter set costs nothing — dynamic
// insertion/removal of Filters (Algorithms 1/2, lines 17-18 / 10-13)
// degenerates to complement-bitmap updates. See DESIGN.md §5.
//
// The *order* of filters is the run-time-optimized quantity (§3.4): an
// immutable ordering vector swapped atomically by the Pipeline Manager;
// workers pin the current order for the duration of one batch.

#ifndef CJOIN_CJOIN_FILTER_H_
#define CJOIN_CJOIN_FILTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cjoin/dim_hash_table.h"

namespace cjoin {

/// One filter: a dimension hash table plus the fact FK column to probe
/// with, and drop statistics for adaptive ordering.
struct Filter {
  size_t dim_index = 0;
  size_t fact_fk_col = 0;
  std::unique_ptr<DimensionHashTable> table;

  /// Statistics window (relaxed; sampled and decayed by the manager).
  std::atomic<uint64_t> tuples_in{0};
  std::atomic<uint64_t> tuples_dropped{0};

  /// Observed drop rate in the current window.
  double DropRate() const {
    const uint64_t in = tuples_in.load(std::memory_order_relaxed);
    if (in == 0) return 0.0;
    return static_cast<double>(
               tuples_dropped.load(std::memory_order_relaxed)) /
           static_cast<double>(in);
  }

  /// Exponential decay of the window (manager thread).
  void DecayStats() {
    tuples_in.store(tuples_in.load(std::memory_order_relaxed) / 2,
                    std::memory_order_relaxed);
    tuples_dropped.store(
        tuples_dropped.load(std::memory_order_relaxed) / 2,
        std::memory_order_relaxed);
  }
};

/// An immutable ordering of filters, atomically published.
using FilterOrder = std::vector<Filter*>;

/// Holder for the active order; readers Acquire() per batch, the manager
/// Publish()es a new order. (std::atomic<shared_ptr> free functions.)
class FilterOrderRef {
 public:
  explicit FilterOrderRef(std::shared_ptr<const FilterOrder> initial)
      : order_(std::move(initial)) {}

  std::shared_ptr<const FilterOrder> Acquire() const {
    return std::atomic_load_explicit(&order_, std::memory_order_acquire);
  }

  void Publish(std::shared_ptr<const FilterOrder> next) {
    std::atomic_store_explicit(&order_, std::move(next),
                               std::memory_order_release);
  }

 private:
  std::shared_ptr<const FilterOrder> order_;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_FILTER_H_
