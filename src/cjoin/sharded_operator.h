// ShardedCJoinOperator: an elastic pool of CJOIN pipeline instances over a
// hash-partitioned fact table.
//
// One CJoinOperator is bounded by its single continuous scan's fact-tuple
// rate. This operator runs N full pipeline instances — each with its own
// continuous scan, Preprocessor, filter Stages, and Distributor — over N
// disjoint fact shards (built by the engine's ShardManager), while keeping
// the paper's one-registration query model:
//
//   Submit(spec) --> mirror registration on every shard
//                      shard 0: scan -> pre -> filters -> dist -+
//                      shard 1: scan -> pre -> filters -> dist -+-> merge
//                      ...                                      |
//                    merging collector completes the ticket  <--+
//
// Each shard assigns the query its own bit-vector slot and loads the
// query's dimension hash-table entries from the shared dimension tables
// (the mirror of Algorithm 1 on every pipeline); every shard then
// completes the query independently when its own lap wraps over the
// query's registration point. The merging collector holds one per-shard
// partial aggregate (a raw GroupTable, so AVG and friends merge exactly)
// and delivers the caller's single QueryHandle only after the last shard's
// lap covers its registration epoch. Cancellation and deadlines fan out:
// the merged handle's Cancel() deregisters the query mid-lap on every
// shard, and any shard's deadline expiry terminates the whole query.
//
// With one shard (the default engine configuration) Submit() delegates
// directly to the single CJoinOperator — the pool degenerates to exactly
// the pre-sharding pipeline, byte-identical results included. Tests can
// force the merge path at one shard to prove the collector itself is
// byte-identical.

#ifndef CJOIN_CJOIN_SHARDED_OPERATOR_H_
#define CJOIN_CJOIN_SHARDED_OPERATOR_H_

#include <memory>
#include <vector>

#include "catalog/query_spec.h"
#include "cjoin/cjoin_operator.h"
#include "cjoin/query_runtime.h"
#include "common/status.h"

namespace cjoin {

class ShardedCJoinOperator {
 public:
  struct Options {
    /// Per-shard pipeline options. disk_reader_id is treated as a base:
    /// shard s scans as reader disk_reader_id + s, so a shared SimDisk
    /// sees N distinct sequential readers.
    CJoinOperator::Options op;
    /// Per-shard disk devices (shard s uses shard_disks[s % size]): models
    /// shards placed on independent volumes, whose scans proceed in
    /// parallel instead of contending for op.disk. Empty = every shard
    /// shares op.disk.
    std::vector<SimDisk*> shard_disks;
    /// Run the mirror/merge machinery even with a single shard (testing:
    /// proves the collector is byte-identical to the direct path).
    bool force_merge_path = false;
  };

  /// `shard_stars` are the per-shard star schemas (ShardManager's view);
  /// `source` is the star that submitted specs are bound against.
  ShardedCJoinOperator(const StarSchema& source,
                       std::vector<const StarSchema*> shard_stars,
                       Options options);
  ~ShardedCJoinOperator();

  ShardedCJoinOperator(const ShardedCJoinOperator&) = delete;
  ShardedCJoinOperator& operator=(const ShardedCJoinOperator&) = delete;

  /// Starts every shard pipeline. Must be called once before Submit().
  Status Start();

  /// Stops every shard pipeline; unfinished queries (and their merged
  /// tickets) resolve with kAborted. Idempotent.
  void Stop();

  /// Registers a star query once across all shards and returns a single
  /// handle whose result is the shard-merged aggregate. Semantics match
  /// CJoinOperator::Submit (cooperative cancellation, deadlines, and the
  /// SubmitOptions overload contract: blocking on id exhaustion by
  /// default, kResourceExhausted with reject_when_full).
  Result<std::unique_ptr<QueryHandle>> Submit(
      StarQuerySpec spec, CJoinOperator::SubmitOptions options);

  size_t num_shards() const { return shards_.size(); }
  CJoinOperator* shard(size_t s) { return shards_[s].get(); }
  const CJoinOperator* shard(size_t s) const { return shards_[s].get(); }
  const StarSchema& source() const { return source_; }

  /// Logical queries in flight. Every query registers on every shard, so
  /// shard 0's count is the pool-wide logical count.
  size_t InFlight() const { return shards_[0]->InFlight(); }

  /// Newest snapshot fully covered by *every* shard's frozen scan ranges:
  /// a query capped at this value reads identical data on all shards.
  SnapshotId covered_snapshot() const;

  /// Aggregated statistics: data-volume counters (rows scanned, tuples
  /// routed, pool use, per-filter counts) are summed across shards;
  /// per-query lifecycle counters (completed/cancelled/active/pending) are
  /// shard 0's, which counts each logical query exactly once; table_laps
  /// is the minimum over shards (full-pool coverage laps).
  CJoinOperator::Stats GetStats() const;

  /// Per-shard pipeline statistics, by shard index.
  std::vector<CJoinOperator::Stats> PerShardStats() const;

 private:
  const StarSchema& source_;
  std::vector<const StarSchema*> stars_;
  Options opts_;
  std::vector<std::unique_ptr<CJoinOperator>> shards_;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_SHARDED_OPERATOR_H_
