// CJOIN: the concurrent star-join operator (the paper's contribution).
//
// One CJoinOperator evaluates an unbounded stream of concurrent star
// queries over a single star schema with a single "always-on" physical
// plan:
//
//   continuous scan -> Preprocessor -> Filters (in Stages) -> Distributor
//                          ^                                     |
//                          +--------- Pipeline Manager <---------+
//
// Work shared across ALL in-flight queries: the fact-table I/O (one
// continuous scan), the join computation (one dimension-hash-table probe
// filters a tuple against every query at once), and tuple storage (one
// copy of each selected dimension tuple, with a query bit-vector).
//
// Usage:
//   CJoinOperator op(star, options);
//   op.Start();
//   auto handle = op.Submit(spec);          // non-blocking pipeline entry
//   Result<ResultSet> rs = handle->Wait();  // paper: one scan wrap later
//   op.Stop();

#ifndef CJOIN_CJOIN_CJOIN_OPERATOR_H_
#define CJOIN_CJOIN_CJOIN_OPERATOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/query_spec.h"
#include "common/mutex.h"
#include "cjoin/distributor.h"
#include "cjoin/filter.h"
#include "cjoin/preprocessor.h"
#include "cjoin/query_runtime.h"
#include "cjoin/stage.h"
#include "common/status.h"

namespace cjoin {

/// Thread mapping of the filter pipeline (§4).
enum class PipelineConfig {
  kHorizontal,  ///< one Stage boxing all Filters, N threads
  kVertical,    ///< one Stage per Filter, >=1 thread each
};

class CJoinOperator {
 public:
  struct Options {
    /// maxConc: bound on concurrently registered queries; fixes the
    /// bit-vector width at ceil(maxConc/64) words. Submit() blocks while
    /// all ids are taken.
    size_t max_concurrent_queries = 256;

    PipelineConfig config = PipelineConfig::kHorizontal;
    /// Stage worker threads. Horizontal: all on the single Stage.
    /// Vertical: distributed round-robin, at least one per Stage.
    size_t num_worker_threads = 4;

    /// Data tuples per batch (queue transfer unit, §4).
    size_t batch_size = 256;
    /// Dimension probes gathered per batched-probe round in the filter
    /// stages (gather→prefetch→resolve; see dim_hash_table.h). Values
    /// <=1 select the scalar per-tuple probe loop; values above
    /// Stage::kGatherCap are clamped.
    size_t probe_batch_size = 128;
    /// Batches per inter-component queue.
    size_t queue_capacity = 64;
    /// Wakeup hysteresis for the queues (1 = always wake; §4).
    size_t queue_wake_depth = 1;
    /// Preallocated in-flight tuple slots (§4's specialized allocator).
    size_t pool_capacity = 64 * 1024;

    /// Rows per continuous-scan run.
    size_t scan_run_rows = 1024;
    SimDisk* disk = nullptr;
    uint64_t disk_reader_id = 0;

    /// Run-time filter reordering (§3.4, after Babu et al.). Only applied
    /// in the horizontal configuration.
    bool adaptive_ordering = true;
    std::chrono::milliseconds reorder_interval{50};

    /// Garbage-collect dimension hash entries selected by no live query
    /// after each query cleanup (Algorithm 2's GC).
    bool gc_dimension_tuples = true;

    AggregatorFactory aggregator_factory;  // default: MakeHashAggregator

    /// Optional probe of the engine's current snapshot, used to bound
    /// append-visibility staleness (see Preprocessor::covered_snapshot).
    std::function<SnapshotId()> snapshot_probe;

    /// Flight-recorder identity prefix for this pipeline's threads and
    /// queues ("s2/" on shard 2 of a sharded pool). Purely cosmetic:
    /// metric labels and trace spans are unaffected.
    std::string name_prefix;
  };

  CJoinOperator(const StarSchema& star, Options options);
  ~CJoinOperator();

  CJoinOperator(const CJoinOperator&) = delete;
  CJoinOperator& operator=(const CJoinOperator&) = delete;

  /// Spawns the pipeline threads. Must be called once before Submit().
  Status Start();

  /// Stops the pipeline, aborting unfinished queries. Idempotent.
  void Stop();

  /// Per-submission options (beyond the spec itself).
  struct SubmitOptions {
    /// Overrides the operator default for this query only (used by the
    /// galaxy join, §5).
    AggregatorFactory aggregator_factory;
    /// Absolute deadline, steady-clock nanos (0 = none). An expired query
    /// is deregistered mid-lap and completes with kDeadlineExceeded.
    int64_t deadline_ns = 0;
    /// Skip NormalizeSpec: the caller guarantees the spec already is
    /// (the engine normalizes during request resolution).
    bool assume_normalized = false;
    /// Overload behavior when all max_concurrent_queries bit-vector ids
    /// are taken: false (legacy) blocks the submitting thread until one
    /// frees; true returns kResourceExhausted instead — the overload
    /// collapse the admission controller degrades into rejections.
    bool reject_when_full = false;
    /// With reject_when_full: bounded wait for an id whose query already
    /// delivered but whose (prompt) pipeline cleanup hasn't recycled the
    /// id yet. Bridges that recycling window — an admitted back-to-back
    /// resubmission into a just-freed slot — without reintroducing
    /// unbounded blocking. 0 = reject immediately.
    int64_t id_acquire_grace_ns = 250'000'000;
    /// Invoked with the query's terminal result right before its promise
    /// resolves (see QueryRuntime::completion_observer). Installed before
    /// the submission enters the pipeline, so no completion is missed.
    std::function<void(const Result<ResultSet>&)> completion_observer;
    /// Per-query span trace threaded through the pipeline (may be null;
    /// see QueryRuntime::trace).
    std::shared_ptr<obs::QueryTrace> trace;
    /// Stage-span label prefix for this runtime ("s2/" on shard 2 of a
    /// sharded operator; empty otherwise).
    std::string trace_prefix;
  };

  /// Registers a star query (normalizing it first). Blocks while
  /// max_concurrent_queries are in flight. Thread-safe.
  Result<std::unique_ptr<QueryHandle>> Submit(StarQuerySpec spec,
                                              SubmitOptions options);
  Result<std::unique_ptr<QueryHandle>> Submit(
      StarQuerySpec spec, AggregatorFactory aggregator_factory = nullptr) {
    SubmitOptions so;
    so.aggregator_factory = std::move(aggregator_factory);
    return Submit(std::move(spec), std::move(so));
  }

  /// Point-in-time statistics.
  struct Stats {
    uint64_t rows_scanned = 0;
    uint64_t rows_skipped_at_preprocessor = 0;
    uint64_t tuples_routed = 0;
    uint64_t queries_completed = 0;
    uint64_t queries_cancelled = 0;
    uint64_t table_laps = 0;
    size_t active_queries = 0;
    size_t pool_in_use = 0;
    uint64_t filter_reorders = 0;
    /// Current filter order (dimension indices) of the first stage.
    std::vector<size_t> filter_order;
    /// Per-dimension hash table sizes.
    std::vector<size_t> dim_table_sizes;
    /// Per-dimension filter statistics (since the last decay window).
    std::vector<uint64_t> filter_tuples_in;
    std::vector<uint64_t> filter_tuples_dropped;
    /// Liveness diagnostics.
    uint64_t manager_iterations = 0;
    size_t submissions_pending = 0;
    size_t admissions_pending = 0;
    size_t cleanups_pending = 0;
    /// Inter-stage queue telemetry: queue i feeds stage i, the last
    /// queue feeds the Distributor. Depths are point samples; high
    /// watermarks are since the previous GetStats (reset-on-read).
    std::vector<size_t> queue_depths;
    std::vector<size_t> queue_high_watermarks;
    size_t queue_capacity = 0;
    /// Batches processed per stage (monotonic progress counters — the
    /// watchdog's stall signal).
    std::vector<uint64_t> stage_batches;
  };
  Stats GetStats() const;

  /// Queries submitted but not yet cleaned up (any lifecycle stage). The
  /// router samples this as the operator's current load (§3.2.3).
  size_t InFlight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  const StarSchema& star() const { return star_; }
  size_t width_words() const { return width_; }

  /// Newest snapshot whose rows the continuous scan fully covers; callers
  /// capping query snapshots at this value get exact snapshot semantics
  /// under concurrent appends (kMaxSnapshot without a snapshot_probe).
  SnapshotId covered_snapshot() const {
    return preprocessor_->covered_snapshot();
  }

 private:
  void ManagerLoop();
  /// Algorithm 1 (minus the Preprocessor installation, which the
  /// Preprocessor itself performs on RequestAdmission).
  void AdmitQuery(const std::shared_ptr<QueryRuntime>& rt);
  /// Algorithm 2.
  void CleanupQuery(uint32_t qid);
  void MaybeReorderFilters();

  /// Blocking acquisition (legacy Submit contract); UINT32_MAX on stop.
  uint32_t AcquireQueryId() EXCLUDES(id_mu_);
  /// Bounded acquisition: waits at most `grace_ns` (0 = not at all);
  /// UINT32_MAX when none freed in time or the operator stopped.
  uint32_t TryAcquireQueryId(int64_t grace_ns = 0) EXCLUDES(id_mu_);
  void ReleaseQueryId(uint32_t qid) EXCLUDES(id_mu_);

  const StarSchema& star_;
  Options opts_;
  const size_t width_;
  const size_t num_dims_;

  // Pipeline plumbing.
  std::unique_ptr<TuplePool> pool_;
  std::unique_ptr<EpochTracker> epochs_;
  std::vector<std::unique_ptr<BatchQueue>> queues_;
  std::vector<std::unique_ptr<Filter>> filters_;  // one per dimension
  std::vector<std::unique_ptr<Stage>> stages_;
  std::unique_ptr<Preprocessor> preprocessor_;
  std::unique_ptr<Distributor> distributor_;
  std::unique_ptr<CleanupQueue> cleanup_queue_;

  // Manager state.
  BoundedQueue<std::shared_ptr<QueryRuntime>> submissions_{1024};
  std::atomic<size_t> inflight_{0};
  /// Queries cancelled/expired before admission (the Distributor only
  /// counts mid-lap deregistrations).
  std::atomic<uint64_t> early_cancelled_{0};
  uint64_t manager_active_mask_[kMaxWidthWords] = {};
  std::atomic<uint64_t> reorders_{0};
  std::atomic<uint64_t> manager_iterations_{0};

  // Query id freelist.
  Mutex id_mu_;
  CondVar id_available_;
  std::vector<uint32_t> free_ids_ GUARDED_BY(id_mu_);

  /// Keeps runtimes alive while raw pointers travel through the pipeline.
  Mutex registry_mu_;
  std::vector<std::shared_ptr<QueryRuntime>> registry_
      GUARDED_BY(registry_mu_);

  std::thread preprocessor_thread_;
  std::thread distributor_thread_;
  std::thread manager_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_CJOIN_OPERATOR_H_
