// Stages: the thread mapping of Filters (paper §4).
//
// "Our implementation allows for a flexible mapping of Filters to threads
//  by collapsing multiple adjacent Filters to a Stage (to reduce the
//  overhead of passing tuples between the threads) and assigning multiple
//  threads to each Stage (to increase parallelism)."
//
// A Stage owns an ordered subset of the pipeline's Filters, an input
// queue, and an output sink (the next Stage's queue, or the Distributor's
// queue for the last Stage). Each worker thread pops a batch, runs it
// through the Stage's filters (probing dimension hash tables and ANDing
// bit-vectors, §3.2.2), drops dead tuples, and pushes survivors on.
//
//   * horizontal configuration: one Stage boxing all Filters, N threads;
//   * vertical configuration: one Stage per Filter;
//   * hybrid: arbitrary boxing.

#ifndef CJOIN_CJOIN_STAGE_H_
#define CJOIN_CJOIN_STAGE_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cjoin/epoch_tracker.h"
#include "cjoin/filter.h"
#include "cjoin/tuple_slot.h"
#include "common/tuple_pool.h"
#include "obs/metrics.h"
#include "storage/schema.h"

namespace cjoin {

/// One stage of the filter pipeline. Start() spawns the worker threads;
/// they exit when the input queue closes and drains, closing the output
/// queue when the last worker leaves (if `owns_output`).
class Stage {
 public:
  Stage(std::string name, const Schema* fact_schema, size_t num_dims,
        size_t width_words, std::shared_ptr<const FilterOrder> filters,
        BatchQueue* in, BatchQueue* out, bool owns_output, TuplePool* pool,
        EpochTracker* epochs);

  /// Publishes a new filter order for this stage (manager thread; §3.4).
  void SetFilterOrder(std::shared_ptr<const FilterOrder> order) {
    order_.Publish(std::move(order));
  }

  std::shared_ptr<const FilterOrder> filter_order() const {
    return order_.Acquire();
  }

  /// Flight-recorder / OS thread-track label for this stage's workers
  /// (e.g. "s2/stage0"). Defaults to the stage name; the operator sets
  /// a shard-qualified label before Start().
  void set_thread_label(std::string label) {
    thread_label_ = std::move(label);
  }

  /// Upper bound on FilterBatch's candidate gather (stack scratch size);
  /// ProbeBatchLocked pipelines internally in kMaxBatch chunks.
  static constexpr size_t kGatherCap = 128;

  /// Probe batch width for FilterBatch's gather→prefetch→resolve
  /// pipeline. <=1 selects the scalar probe loop; values above
  /// kGatherCap are clamped. Set before Start().
  void set_probe_batch_size(size_t n) { probe_batch_ = n; }

  void Start(size_t num_threads);
  void Join();

  /// Batches processed (for tests/metrics).
  uint64_t batches_processed() const {
    return batches_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  void WorkerLoop(const std::string& track);
  /// Filters `batch` in place; returns the number of dropped slots.
  size_t FilterBatch(TupleBatch* batch,
                     const FilterOrder& filters);

  std::string name_;
  std::string thread_label_;
  const Schema* fact_schema_;
  size_t num_dims_;
  size_t width_;
  FilterOrderRef order_;
  BatchQueue* in_;
  BatchQueue* out_;
  bool owns_output_;
  TuplePool* pool_;
  EpochTracker* epochs_;
  size_t probe_batch_ = 128;

  std::vector<std::thread> threads_;
  std::atomic<size_t> live_workers_{0};
  std::atomic<uint64_t> batches_{0};
  /// Engine-wide per-stage-name telemetry (registered once in the
  /// constructor; recording is lock-free).
  obs::LatencyHistogram* batch_ns_ = nullptr;
  obs::Counter* tuples_dropped_ = nullptr;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_STAGE_H_
