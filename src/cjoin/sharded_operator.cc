#include "cjoin/sharded_operator.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/mutex.h"
#include "exec/aggregation.h"
#include "exec/group_table.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"

namespace cjoin {

namespace {

/// Shared sink of one logical query's per-shard outputs. Referenced by the
/// per-shard aggregator factories (which live in the shard runtimes until
/// cleanup) and by the MergeState; holds no back-references, so the
/// factory -> box edge cannot form an ownership cycle with the runtimes.
struct ResultBox {
  Mutex mu;
  /// Default path: per-shard partial group tables, by shard index.
  std::vector<std::optional<GroupTable>> by_shard GUARDED_BY(mu);
  uint64_t consumed GUARDED_BY(mu) = 0;
  /// Custom-aggregator path (e.g. the galaxy join's collector): the single
  /// caller-provided aggregator, shared by every shard under `mu`.
  std::unique_ptr<StarAggregator> shared_agg GUARDED_BY(mu);
};

/// Serializing proxy for the custom-aggregator path: every shard's
/// Distributor consumes into the one shared aggregator under the box
/// mutex, preserving the caller's single-instance semantics.
class LockedProxyAggregator final : public StarAggregator {
 public:
  explicit LockedProxyAggregator(std::shared_ptr<ResultBox> box)
      : box_(std::move(box)) {}

  void Consume(const uint8_t* fact_row,
               const uint8_t* const* dim_rows) override {
    ++consumed_;
    MutexLock lk(&box_->mu);
    box_->shared_agg->Consume(fact_row, dim_rows);
  }

  ResultSet Finish() override {
    // The real Finish() happens once, at merge time.
    ResultSet rs;
    rs.tuples_consumed = consumed_;
    return rs;
  }

  uint64_t tuples_consumed() const override { return consumed_; }

 private:
  std::shared_ptr<ResultBox> box_;
  uint64_t consumed_ = 0;
};

/// The merging collector of one logical query: counts down shard
/// completions (delivered by QueryRuntime::completion_observer on the
/// shards' pipeline threads) and resolves the caller's merged runtime when
/// the last shard's lap covers its registration point.
///
/// Ownership: the merge runtime's cancel_hook holds the MergeState; the
/// state holds the shard handles; shard runtimes reference the state only
/// weakly (observers) or via the cycle-free ResultBox (factories). If the
/// caller drops the merged handle early, the whole collector unwinds while
/// the shard queries run to their natural end inside their operators.
struct MergeState {
  Mutex mu;
  size_t remaining GUARDED_BY(mu) = 0;
  Status failure GUARDED_BY(mu) = Status::OK();
  std::vector<std::unique_ptr<QueryHandle>> shard_handles GUARDED_BY(mu);
  // The fields below are written once by Submit() before the state is
  // published to the shard completion observers, then only read — no
  // guard needed.
  std::weak_ptr<QueryRuntime> merge_rt;
  std::shared_ptr<ResultBox> box;
  /// The logical query's span trace (may be null): shard completions and
  /// the merge itself record into it.
  std::shared_ptr<obs::QueryTrace> trace;

  // Finalization metadata derived from the normalized spec.
  std::vector<AggFn> fns;
  std::vector<std::string> columns;
  bool global_row_when_empty = false;

  void OnShardDone(size_t shard, const Result<ResultSet>& result)
      EXCLUDES(mu) {
    MutexLock lk(&mu);
    if (trace != nullptr) {
      // Span start reconstructed from the shard's own response time, so
      // the trace shows each shard's submit -> deliver window.
      const int64_t end = QueryRuntime::NowNs();
      double response_s = 0.0;
      if (shard < shard_handles.size() && shard_handles[shard] != nullptr) {
        response_s = shard_handles[shard]->ResponseSeconds();
      }
      char label[16];
      std::snprintf(label, sizeof(label), "s%zu", shard);
      trace->AddSpan(obs::SpanKind::kShard, label,
                     end - static_cast<int64_t>(response_s * 1e9), end);
    }
    if (!result.ok() && failure.ok()) failure = result.status();
    assert(remaining > 0);
    if (--remaining == 0) FinishMerge();
  }

 private:
  // Runs on the last shard's resolver thread.
  void FinishMerge() REQUIRES(mu) {
    std::shared_ptr<QueryRuntime> rt = merge_rt.lock();
    if (rt == nullptr) return;  // caller dropped the merged handle

    // Submission time of the logical query = the slowest shard's (the
    // registration is only complete once mirrored everywhere).
    double max_submission = 0.0;
    for (const auto& h : shard_handles) {
      if (h != nullptr) {
        max_submission = std::max(max_submission, h->SubmissionSeconds());
      }
    }
    if (max_submission > 0.0) {
      rt->registered_ns.store(
          rt->submit_ns.load() +
          static_cast<int64_t>(max_submission * 1e9));
    }
    rt->completed_ns.store(QueryRuntime::NowNs());

    if (!failure.ok()) {
      rt->phase.store(failure.code() == StatusCode::kCancelled ||
                              failure.code() == StatusCode::kDeadlineExceeded
                          ? QueryPhase::kCancelled
                          : QueryPhase::kAborted);
      rt->Deliver(failure);
      return;
    }

    const int64_t merge_start = QueryRuntime::NowNs();
    ResultSet rs;
    {
      MutexLock lk(&box->mu);
      if (box->shared_agg != nullptr) {
        rs = box->shared_agg->Finish();
      } else {
        GroupTable merged(fns);
        for (auto& partial : box->by_shard) {
          if (partial.has_value()) {
            merged.MergeFrom(std::move(*partial));
            partial.reset();
          }
        }
        rs = merged.Finish(columns, global_row_when_empty);
        rs.tuples_consumed = box->consumed;
      }
    }
    const int64_t merge_end = QueryRuntime::NowNs();
    if (trace != nullptr) {
      trace->AddSpan(obs::SpanKind::kMerge, "", merge_start, merge_end);
    }
    obs::MetricsRegistry::Global()
        .GetHistogram("cjoin_merge_ns",
                      "Cross-shard partial-aggregate merge time")
        ->Record(static_cast<uint64_t>(merge_end - merge_start));
    rt->phase.store(QueryPhase::kCompleted);
    rt->Deliver(std::move(rs));
  }
};

}  // namespace

ShardedCJoinOperator::ShardedCJoinOperator(
    const StarSchema& source, std::vector<const StarSchema*> shard_stars,
    Options options)
    : source_(source), stars_(std::move(shard_stars)), opts_(options) {
  assert(!stars_.empty() && "at least one shard star required");
  for (size_t s = 0; s < stars_.size(); ++s) {
    CJoinOperator::Options op_opts = opts_.op;
    op_opts.disk_reader_id = opts_.op.disk_reader_id + s;
    op_opts.name_prefix = "s" + std::to_string(s) + "/";
    if (!opts_.shard_disks.empty()) {
      op_opts.disk = opts_.shard_disks[s % opts_.shard_disks.size()];
    }
    shards_.push_back(
        std::make_unique<CJoinOperator>(*stars_[s], op_opts));
  }
}

ShardedCJoinOperator::~ShardedCJoinOperator() { Stop(); }

Status ShardedCJoinOperator::Start() {
  for (auto& shard : shards_) {
    CJOIN_RETURN_IF_ERROR(shard->Start());
  }
  return Status::OK();
}

void ShardedCJoinOperator::Stop() {
  // Stopping shard by shard is safe: a logical query's merged ticket only
  // resolves (with kAborted) once its last shard resolves.
  for (auto& shard : shards_) shard->Stop();
}

SnapshotId ShardedCJoinOperator::covered_snapshot() const {
  SnapshotId covered = kMaxSnapshot;
  for (const auto& shard : shards_) {
    covered = std::min(covered, shard->covered_snapshot());
  }
  return covered;
}

Result<std::unique_ptr<QueryHandle>> ShardedCJoinOperator::Submit(
    StarQuerySpec spec, CJoinOperator::SubmitOptions options) {
  if (spec.schema != &source_) {
    return Status::InvalidArgument(
        "query targets a different star schema than this operator");
  }
  if (shards_.size() == 1 && !opts_.force_merge_path) {
    // The pool degenerates to exactly the single-operator pipeline.
    spec.schema = stars_[0];
    return shards_[0]->Submit(std::move(spec), std::move(options));
  }

  if (!options.assume_normalized) {
    CJOIN_ASSIGN_OR_RETURN(spec, NormalizeSpec(std::move(spec)));
    options.assume_normalized = true;
  }
  if (options.deadline_ns != 0 &&
      QueryRuntime::NowNs() >= options.deadline_ns) {
    return Status::DeadlineExceeded("deadline expired before submission");
  }

  auto state = std::make_shared<MergeState>();
  auto box = std::make_shared<ResultBox>();
  {
    // Nothing else can reference the fresh state/box yet; the locks only
    // satisfy the GUARDED_BY contracts on their fields.
    MutexLock box_lk(&box->mu);
    box->by_shard.resize(shards_.size());
  }
  state->box = box;
  {
    MutexLock state_lk(&state->mu);
    state->remaining = shards_.size();
    state->shard_handles.resize(shards_.size());
  }
  for (const AggregateSpec& a : spec.aggregates) state->fns.push_back(a.fn);
  state->columns = spec.group_by_labels;
  for (const AggregateSpec& a : spec.aggregates) {
    state->columns.push_back(a.label);
  }
  state->global_row_when_empty = spec.group_by.empty();

  auto merge_rt = std::make_shared<QueryRuntime>();
  merge_rt->spec = spec;  // schema stays &source_
  merge_rt->deadline_ns.store(options.deadline_ns, std::memory_order_relaxed);
  merge_rt->submit_ns.store(QueryRuntime::NowNs());
  merge_rt->completion_observer = std::move(options.completion_observer);
  merge_rt->trace = options.trace;
  state->trace = options.trace;
  state->merge_rt = merge_rt;
  std::future<Result<ResultSet>> fut = merge_rt->promise.get_future();

  bool use_shared_agg = false;
  if (options.aggregator_factory != nullptr) {
    MutexLock box_lk(&box->mu);
    box->shared_agg = options.aggregator_factory(merge_rt->spec);
    use_shared_agg = box->shared_agg != nullptr;
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    StarQuerySpec shard_spec = merge_rt->spec;
    shard_spec.schema = stars_[s];

    CJoinOperator::SubmitOptions so;
    so.deadline_ns = options.deadline_ns;
    so.assume_normalized = true;
    so.reject_when_full = options.reject_when_full;
    so.id_acquire_grace_ns = options.id_acquire_grace_ns;
    // Shard pipelines share the logical query's trace; their stage spans
    // are disambiguated by a per-shard label prefix ("s2/pre").
    so.trace = options.trace;
    so.trace_prefix = "s" + std::to_string(s) + "/";
    if (use_shared_agg) {
      so.aggregator_factory = [box](const StarQuerySpec&) {
        return std::make_unique<LockedProxyAggregator>(box);
      };
    } else {
      so.aggregator_factory = [box, s](const StarQuerySpec& qs) {
        return MakePartialHashAggregator(
            qs, [box, s](GroupTable&& partial, uint64_t consumed) {
              MutexLock lk(&box->mu);
              box->by_shard[s] = std::move(partial);
              box->consumed += consumed;
            });
      };
    }
    // Weak: shard runtimes outlive an abandoned merged handle, and the
    // observer must not keep the collector (and its handles) alive.
    so.completion_observer = [weak = std::weak_ptr<MergeState>(state), s](
                                 const Result<ResultSet>& result) {
      if (std::shared_ptr<MergeState> st = weak.lock()) {
        st->OnShardDone(s, result);
      }
    };

    Result<std::unique_ptr<QueryHandle>> handle =
        shards_[s]->Submit(std::move(shard_spec), std::move(so));
    if (!handle.ok()) {
      // Unwind the shards already registered; their early termination is
      // observed only by the (now dying) weak state.
      MutexLock lk(&state->mu);
      for (auto& h : state->shard_handles) {
        if (h != nullptr) h->Cancel();
      }
      return handle.status();
    }
    MutexLock lk(&state->mu);
    state->shard_handles[s] = std::move(*handle);
  }

  {
    MutexLock lk(&state->mu);
    merge_rt->query_id = state->shard_handles[0]->query_id();
  }
  // The merged handle's Cancel() fans out to every shard (each shard then
  // deregisters the query mid-lap and reclaims its bit-vector slot). The
  // hook also anchors the MergeState's lifetime to the merged runtime.
  merge_rt->cancel_hook = [state] {
    MutexLock lk(&state->mu);
    for (auto& h : state->shard_handles) {
      if (h != nullptr) h->Cancel();
    }
  };
  return std::make_unique<QueryHandle>(std::move(merge_rt), std::move(fut));
}

CJoinOperator::Stats ShardedCJoinOperator::GetStats() const {
  CJoinOperator::Stats total = shards_[0]->GetStats();
  for (size_t s = 1; s < shards_.size(); ++s) {
    const CJoinOperator::Stats st = shards_[s]->GetStats();
    total.rows_scanned += st.rows_scanned;
    total.rows_skipped_at_preprocessor += st.rows_skipped_at_preprocessor;
    total.tuples_routed += st.tuples_routed;
    total.pool_in_use += st.pool_in_use;
    total.filter_reorders += st.filter_reorders;
    total.manager_iterations += st.manager_iterations;
    total.table_laps = std::min(total.table_laps, st.table_laps);
    for (size_t f = 0;
         f < total.filter_tuples_in.size() && f < st.filter_tuples_in.size();
         ++f) {
      total.filter_tuples_in[f] += st.filter_tuples_in[f];
      total.filter_tuples_dropped[f] += st.filter_tuples_dropped[f];
    }
    // Queue telemetry: element-wise worst case across shards (depths are
    // point samples, not additive loads); progress counters sum.
    for (size_t q = 0;
         q < total.queue_depths.size() && q < st.queue_depths.size(); ++q) {
      total.queue_depths[q] = std::max(total.queue_depths[q],
                                       st.queue_depths[q]);
      total.queue_high_watermarks[q] = std::max(
          total.queue_high_watermarks[q], st.queue_high_watermarks[q]);
    }
    for (size_t b = 0;
         b < total.stage_batches.size() && b < st.stage_batches.size(); ++b) {
      total.stage_batches[b] += st.stage_batches[b];
    }
  }
  return total;
}

std::vector<CJoinOperator::Stats> ShardedCJoinOperator::PerShardStats()
    const {
  std::vector<CJoinOperator::Stats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->GetStats());
  return out;
}

}  // namespace cjoin
