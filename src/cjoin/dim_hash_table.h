// Dimension hash tables with query bit-vectors (paper §3.2.1).
//
// H_Dj stores the union of dimension-j tuples selected by at least one
// registered query. Each stored tuple carries a bit-vector b_delta
// (bit i set iff query i selects the tuple, or does not reference D_j at
// all), and the table carries one complementary bitmap b_Dj (bit i set
// iff query i does not reference D_j) — the filtering vector of any tuple
// NOT present in the table.
//
// Concurrency model (paper §3.3.1: registration proceeds in the Pipeline
// Manager thread "in parallel with the processing of fact tuples"):
//   * Filter workers take the shared lock for the duration of a probe
//     batch and read entry bit-words with relaxed atomics.
//   * The Pipeline Manager mutates bit-words with atomic RMWs under the
//     shared lock, and takes the exclusive lock only for structural
//     changes (insert/rehash/remove).
// Mid-flight bit flips are harmless: the Preprocessor keeps the new
// query's bit at 0 in every fact tuple until registration completes, and
// a finished query's results were already emitted before cleanup starts.

#ifndef CJOIN_CJOIN_DIM_HASH_TABLE_H_
#define CJOIN_CJOIN_DIM_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/bitvector.h"

namespace cjoin {

/// Hash table from dimension primary key to (row pointer, bit-vector).
class DimensionHashTable {
 public:
  /// An entry; `bits` has the table's word width. Pointers to entries are
  /// invalidated by structural changes — callers only hold them while
  /// holding at least the shared lock.
  struct Entry {
    int64_t key = 0;
    const uint8_t* row = nullptr;
    bool used = false;
    /// Bit-vector words follow out-of-line in the words arena.
    uint64_t* bits = nullptr;
  };

  /// `width_words`: bit-vector width (ceil(maxConc/64)).
  DimensionHashTable(size_t width_words, size_t expected_entries = 64);

  size_t width_words() const { return width_; }
  /// Entry count. Readable without the lock (stats paths sample it while
  /// the Pipeline Manager mutates the table), hence atomic.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Lock taken shared by probing filters, exclusive by structure-changing
  /// admission steps.
  std::shared_mutex& mutex() { return mu_; }

  /// Complementary bitmap b_Dj words; read with bitops::AtomicLoadWord,
  /// written via SetComplementBit.
  const uint64_t* complement() const { return complement_.get(); }

  /// Sets/clears bit `query_id` of b_Dj (atomic; any lock level).
  void SetComplementBit(size_t query_id, bool value);

  // --- Probe path (caller holds shared lock) ------------------------------

  /// Returns the entry for `key` or nullptr. The returned pointer is valid
  /// while the shared lock is held.
  const Entry* ProbeLocked(int64_t key) const;

  // --- Admission / cleanup path (Pipeline Manager thread) -----------------

  /// Inserts `key` if absent, initializing the new entry's bits to the
  /// current complement b_Dj (a tuple not previously stored behaves as
  /// "not selected" for queries that reference D_j and "selected" for
  /// queries that don't — exactly b_Dj, paper §3.3.1). Takes the
  /// exclusive lock internally. Returns the entry (existing or new).
  Entry* InsertOrGet(int64_t key, const uint8_t* row);

  /// Atomically sets/clears bit `query_id` of the entry's bit-vector
  /// (caller holds shared or exclusive lock).
  static void SetEntryBit(Entry* entry, size_t query_id, bool value);

  /// Sets or clears bit `query_id` across all stored entries (shared lock
  /// taken internally; atomic per word). Used to restore the bit-vector
  /// invariant when a query id is (re)assigned — see DESIGN.md §5.
  void SetBitForAllEntries(size_t query_id, bool value);

  /// Removes entries whose bit-vectors are all-zero across `active_words`
  /// mask (i.e. selected by no live query and irrelevant to all).
  /// Exclusive lock taken internally. Returns entries removed.
  ///
  /// An entry is dead iff (bits & active_mask) == (complement &
  /// active_mask): its vector carries no information beyond b_Dj, so a
  /// probe miss yields the same filtering vector (Algorithm 2's garbage
  /// collection, generalized).
  size_t RemoveDeadEntries(const uint64_t* active_mask);

  /// Visits every entry under the shared lock: fn(const Entry&).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    for (const Entry& e : slots_) {
      if (e.used) fn(e);
    }
  }

 private:
  size_t Mask() const { return slots_.size() - 1; }
  void RehashLocked();
  Entry* FindSlotLocked(int64_t key);

  size_t width_;
  mutable std::shared_mutex mu_;
  std::vector<Entry> slots_;
  /// Bit-vector arena: one `width_` word block per slot, same index as
  /// slots_ (keeps Entry small and allocation-free on rehash).
  std::unique_ptr<uint64_t[]> words_;
  std::unique_ptr<uint64_t[]> complement_;
  /// Mutated under the exclusive lock; read lock-free by size().
  std::atomic<size_t> size_{0};
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_DIM_HASH_TABLE_H_
