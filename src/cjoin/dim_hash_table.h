// Dimension hash tables with query bit-vectors (paper §3.2.1).
//
// H_Dj stores the union of dimension-j tuples selected by at least one
// registered query. Each stored tuple carries a bit-vector b_delta
// (bit i set iff query i selects the tuple, or does not reference D_j at
// all), and the table carries one complementary bitmap b_Dj (bit i set
// iff query i does not reference D_j) — the filtering vector of any tuple
// NOT present in the table.
//
// Layout (cache-line conscious, after DRAMHiT's simple_kht): the probe
// path never touches the wide Entry records until a likely hit is found.
// Occupancy and key identity live in a dense out-of-line *tag* array —
// one 64-bit tag per slot, 8 tags per 64-byte-aligned cache line (the
// "slot group") — so one prefetched line resolves up to 8 linear-probe
// steps. A tag is the slot key's full Mix64 hash with bit 0 forced on
// (0 = empty slot), so tag equality is a near-certain key match and a
// miss never loads an Entry at all. Entries are 64-byte aligned — one
// per cache line — with the bit-vector words stored inline in the same
// line when the width fits (<= 4 words = 256 concurrent queries, the
// engine default), so a hit costs exactly one data line: key, row
// pointer, and filter vector arrive together. Wider tables fall back to
// an out-of-line words arena, indexed by slot.
//
// Probing is batched: ProbeBatchLocked() hashes a whole batch of keys
// first, issues a software prefetch for every target tag line, then
// resolves, keeping up to kMaxBatch independent DRAM loads in flight
// instead of serializing one full miss latency per fact tuple. Admission
// inserts batch the same way through InsertBatch().
//
// Concurrency model (paper §3.3.1: registration proceeds in the Pipeline
// Manager thread "in parallel with the processing of fact tuples"):
//   * Filter workers take the shared lock for the duration of a probe
//     batch and read entry bit-words with relaxed atomics.
//   * The Pipeline Manager mutates bit-words with atomic RMWs under the
//     shared lock, and takes the exclusive lock only for structural
//     changes (insert/rehash/remove).
// Mid-flight bit flips are harmless: the Preprocessor keeps the new
// query's bit at 0 in every fact tuple until registration completes, and
// a finished query's results were already emitted before cleanup starts.

#ifndef CJOIN_CJOIN_DIM_HASH_TABLE_H_
#define CJOIN_CJOIN_DIM_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/bitvector.h"
#include "common/mutex.h"

namespace cjoin {

/// Hash table from dimension primary key to (row pointer, bit-vector).
class DimensionHashTable {
 public:
  /// Largest batch the batched probe/insert paths resolve per internal
  /// round (bounds the stack scratch; callers may pass any n).
  static constexpr size_t kMaxBatch = 64;

  /// Bit-vector words stored inside the Entry itself when the width
  /// allows (<= 256 concurrent queries — the engine default): a probe hit
  /// then touches exactly one entry cache line, key, row, and filter
  /// vector together.
  static constexpr size_t kInlineWords = 4;

  /// An entry; `bits` has the table's word width and points either at the
  /// entry's own inline words or into the out-of-line arena (wider
  /// tables). Pointers to entries are invalidated by structural changes —
  /// callers only hold them while holding at least the shared lock.
  /// 64-byte aligned: one entry, one cache line.
  struct alignas(64) Entry {
    int64_t key = 0;
    const uint8_t* row = nullptr;
    bool used = false;
    /// The filter bit-vector (b_delta). Always read through this pointer.
    uint64_t* bits = nullptr;
    uint64_t inline_words[kInlineWords] = {};
  };
  static_assert(sizeof(Entry) == 64, "one entry per cache line");

  /// `width_words`: bit-vector width (ceil(maxConc/64)).
  DimensionHashTable(size_t width_words, size_t expected_entries = 64);

  size_t width_words() const { return width_; }
  /// Entry count. Readable without the lock (stats paths sample it while
  /// the Pipeline Manager mutates the table), hence atomic.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Lock taken shared by probing filters, exclusive by structure-changing
  /// admission steps. RETURN_CAPABILITY lets the analysis unify a caller's
  /// `ReaderMutexLock lk(&table->mutex())` with this table's mu_, so the
  /// ProbeLocked/ProbeBatchLocked REQUIRES_SHARED contracts check across
  /// translation units.
  SharedMutex& mutex() RETURN_CAPABILITY(mu_) { return mu_; }

  /// Complementary bitmap b_Dj words; read with bitops::AtomicLoadWord,
  /// written via SetComplementBit.
  const uint64_t* complement() const { return complement_.get(); }

  /// Sets/clears bit `query_id` of b_Dj (atomic; any lock level).
  void SetComplementBit(size_t query_id, bool value);

  // --- Probe path (caller holds shared lock) ------------------------------

  /// Returns the entry for `key` or nullptr. The returned pointer is valid
  /// while the shared lock is held.
  const Entry* ProbeLocked(int64_t key) const REQUIRES_SHARED(mu_);

  /// Batched probe: resolves `keys[0..n)` into `out[0..n)` (entry pointer
  /// or nullptr, same contract as ProbeLocked). Hashes every key first and
  /// software-prefetches each target tag line before resolving, so up to
  /// kMaxBatch probe misses overlap in the memory system instead of
  /// costing one serialized DRAM latency each. Result is element-wise
  /// identical to n ProbeLocked calls.
  void ProbeBatchLocked(const int64_t* keys, const Entry** out, size_t n) const
      REQUIRES_SHARED(mu_);

  // --- Admission / cleanup path (Pipeline Manager thread) -----------------

  /// Inserts `key` if absent, initializing the new entry's bits to the
  /// current complement b_Dj (a tuple not previously stored behaves as
  /// "not selected" for queries that reference D_j and "selected" for
  /// queries that don't — exactly b_Dj, paper §3.3.1). Takes the
  /// exclusive lock internally. Returns the entry (existing or new).
  Entry* InsertOrGet(int64_t key, const uint8_t* row) EXCLUDES(mu_);

  /// Batched InsertOrGet: one exclusive-lock acquisition for the whole
  /// batch, with the same hash-then-prefetch-then-resolve schedule as
  /// ProbeBatchLocked. `out[i]` receives the entry for `keys[i]`
  /// (existing or new, rows[i] attached on first insert). Capacity for
  /// all n keys is reserved before any insert, so every returned pointer
  /// stays valid until the next structural change after the call.
  void InsertBatch(const int64_t* keys, const uint8_t* const* rows,
                   Entry** out, size_t n) EXCLUDES(mu_);

  /// Atomically sets/clears bit `query_id` of the entry's bit-vector
  /// (caller holds shared or exclusive lock).
  static void SetEntryBit(Entry* entry, size_t query_id, bool value);

  /// Sets or clears bit `query_id` across all stored entries (shared lock
  /// taken internally; atomic per word). Used to restore the bit-vector
  /// invariant when a query id is (re)assigned — see DESIGN.md §5.
  void SetBitForAllEntries(size_t query_id, bool value) EXCLUDES(mu_);

  /// Removes entries whose bit-vectors are all-zero across `active_words`
  /// mask (i.e. selected by no live query and irrelevant to all).
  /// Exclusive lock taken internally. Returns entries removed.
  ///
  /// An entry is dead iff (bits & active_mask) == (complement &
  /// active_mask): its vector carries no information beyond b_Dj, so a
  /// probe miss yields the same filtering vector (Algorithm 2's garbage
  /// collection, generalized). Survivors are staged in table-owned
  /// scratch buffers, so periodic GC passes stop allocating once the
  /// scratch has grown to the table's working size.
  size_t RemoveDeadEntries(const uint64_t* active_mask) EXCLUDES(mu_);

  /// Visits every entry under the shared lock: fn(const Entry&).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const EXCLUDES(mu_) {
    ReaderMutexLock lk(&mu_);
    for (size_t i = 0; i < cap_; ++i) {
      if (slots_[i].used) fn(slots_[i]);
    }
  }

 private:
  /// Tag for an occupied slot holding `hash`: full hash with bit 0 forced
  /// on so no occupied tag is ever 0 (the empty marker). Bit 0 does not
  /// feed the slot index beyond the hash's own low bit, and key identity
  /// is always confirmed against Entry::key on a tag match.
  static uint64_t TagFor(uint64_t hash) { return hash | 1; }

  size_t Mask() const REQUIRES_SHARED(mu_) { return cap_ - 1; }
  void RehashLocked() REQUIRES(mu_);
  /// Scalar insert body (caller holds the exclusive lock, capacity
  /// already ensured).
  Entry* InsertOneLocked(int64_t key, const uint8_t* row) REQUIRES(mu_);
  /// Continues a probe chain at `idx` looking for (tag, key); used by the
  /// batched probe to resolve the rare full-64-bit tag collision.
  const Entry* ProbeChainFrom(size_t idx, uint64_t want, int64_t key) const
      REQUIRES_SHARED(mu_);
  /// Grows until `extra` more entries fit under the load-factor bound.
  void ReserveLocked(size_t extra) REQUIRES(mu_);

  struct FreeDeleter {
    void operator()(void* p) const { std::free(p); }
  };
  /// 64-byte-aligned uint64_t array (the tag slot groups). Large arrays
  /// are 2MB-aligned and hugepage-advised: software prefetches are
  /// silently dropped on a TLB miss, so without huge pages a big table's
  /// prefetch schedule does nothing (DRAMHiT §4 makes the same point).
  using AlignedWordArray = std::unique_ptr<uint64_t[], FreeDeleter>;
  static AlignedWordArray AllocTags(size_t n);
  using SlotArray = std::unique_ptr<Entry[], FreeDeleter>;
  static SlotArray AllocSlots(size_t n);

  /// True when width_ <= kInlineWords: bit words live inside the Entry
  /// line and the words arena is not allocated.
  bool InlineBits() const { return width_ <= kInlineWords; }
  /// Points entry i's `bits` at its storage (inline or arena slot i).
  void BindBits(size_t i) REQUIRES(mu_) {
    slots_[i].bits =
        InlineBits() ? slots_[i].inline_words : &words_[i * width_];
  }

  size_t width_;
  mutable SharedMutex mu_;
  /// Slot capacity (power of two); slots_/tags_/words_ all have cap_
  /// elements (x width_ for words_).
  size_t cap_ GUARDED_BY(mu_) = 0;
  SlotArray slots_ GUARDED_BY(mu_);
  /// Probe-path occupancy/identity tags: tags_[i] == 0 iff slot i is
  /// empty, else TagFor(Mix64(slots_[i].key)). 8 tags per 64B line.
  AlignedWordArray tags_ GUARDED_BY(mu_);
  /// Bit-vector arena for widths beyond kInlineWords: one `width_` word
  /// block per slot, same index as slots_. Null when bits are inline.
  std::unique_ptr<uint64_t[]> words_ GUARDED_BY(mu_);
  /// Not guarded: read/written with atomic word ops at any lock level.
  std::unique_ptr<uint64_t[]> complement_;
  /// Mutated under the exclusive lock; read lock-free by size().
  std::atomic<size_t> size_{0};
  /// GC scratch (RemoveDeadEntries staging); retained across passes so
  /// the Pipeline Manager's periodic GC stops heap-allocating.
  std::vector<Entry> gc_survivors_ GUARDED_BY(mu_);
  std::vector<uint64_t> gc_survivor_bits_ GUARDED_BY(mu_);
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_DIM_HASH_TABLE_H_
