#include "cjoin/cjoin_operator.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bitvector.h"
#include "common/trace.h"
#include "obs/flight_recorder.h"

namespace cjoin {

CJoinOperator::CJoinOperator(const StarSchema& star, Options options)
    : star_(star),
      opts_(options),
      width_(bitops::WordsForBits(options.max_concurrent_queries)),
      num_dims_(star.num_dimensions()) {
  assert(width_ > 0 && width_ <= kMaxWidthWords &&
         "max_concurrent_queries must be in [1, 1024]");
  if (!opts_.aggregator_factory) {
    opts_.aggregator_factory = [](const StarQuerySpec& spec) {
      return MakeHashAggregator(spec);
    };
  }

  // Query id freelist: ids [0, maxConc), lowest first (paper: "the first
  // unused query id").
  free_ids_.reserve(opts_.max_concurrent_queries);
  for (size_t i = opts_.max_concurrent_queries; i > 0; --i) {
    free_ids_.push_back(static_cast<uint32_t>(i - 1));
  }
  registry_.resize(opts_.max_concurrent_queries);

  pool_ = std::make_unique<TuplePool>(opts_.pool_capacity,
                                      SlotStride(num_dims_, width_));
  epochs_ = std::make_unique<EpochTracker>();
  cleanup_queue_ = std::make_unique<CleanupQueue>(4096);

  // One Filter per dimension for the pipeline's lifetime (see filter.h).
  filters_.reserve(num_dims_);
  for (size_t d = 0; d < num_dims_; ++d) {
    auto f = std::make_unique<Filter>();
    f->dim_index = d;
    f->fact_fk_col = star_.dimension(d).fact_fk_col;
    f->table = std::make_unique<DimensionHashTable>(width_, 1024);
    filters_.push_back(std::move(f));
  }

  // Queues: preprocessor -> stage0 -> ... -> distributor.
  const size_t num_stages =
      opts_.config == PipelineConfig::kHorizontal
          ? 1
          : std::max<size_t>(1, num_dims_);
  BatchQueue::Options qopts;
  qopts.capacity = opts_.queue_capacity;
  qopts.consumer_wake_depth = opts_.queue_wake_depth;
  for (size_t q = 0; q < num_stages + 1; ++q) {
    qopts.name = opts_.name_prefix + "q" + std::to_string(q);
    queues_.push_back(std::make_unique<BatchQueue>(qopts));
  }

  // Stage boxing.
  for (size_t s = 0; s < num_stages; ++s) {
    auto order = std::make_shared<FilterOrder>();
    if (opts_.config == PipelineConfig::kHorizontal) {
      for (auto& f : filters_) order->push_back(f.get());
    } else {
      if (s < filters_.size()) order->push_back(filters_[s].get());
    }
    stages_.push_back(std::make_unique<Stage>(
        "stage" + std::to_string(s), &star_.fact().schema(), num_dims_,
        width_, std::move(order), queues_[s].get(), queues_[s + 1].get(),
        /*owns_output=*/true, pool_.get(), epochs_.get()));
    stages_.back()->set_thread_label(opts_.name_prefix + "stage" +
                                     std::to_string(s));
    stages_.back()->set_probe_batch_size(opts_.probe_batch_size);
  }

  Preprocessor::Options popts;
  popts.batch_size = opts_.batch_size;
  popts.scan_run_rows = opts_.scan_run_rows;
  popts.disk = opts_.disk;
  popts.reader_id = opts_.disk_reader_id;
  popts.snapshot_probe = opts_.snapshot_probe;
  popts.flight_label = opts_.name_prefix + "scan";
  preprocessor_ = std::make_unique<Preprocessor>(
      star_, width_, pool_.get(), epochs_.get(), queues_.front().get(),
      popts);

  distributor_ = std::make_unique<Distributor>(
      num_dims_, width_, opts_.max_concurrent_queries, pool_.get(),
      epochs_.get(), queues_.back().get(), cleanup_queue_.get());
}

CJoinOperator::~CJoinOperator() { Stop(); }

Status CJoinOperator::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  started_ = true;

  preprocessor_thread_ = std::thread([this] {
    obs::RegisterThread(opts_.name_prefix + "pre");
    preprocessor_->Run(stop_);
  });

  // Distribute worker threads over stages (vertical: at least one each;
  // any surplus goes to the first stages, following §6.2.1).
  const size_t num_stages = stages_.size();
  std::vector<size_t> threads_per_stage(num_stages, 0);
  if (num_stages == 1) {
    threads_per_stage[0] = std::max<size_t>(1, opts_.num_worker_threads);
  } else {
    for (size_t s = 0; s < num_stages; ++s) threads_per_stage[s] = 1;
    size_t extra = opts_.num_worker_threads > num_stages
                       ? opts_.num_worker_threads - num_stages
                       : 0;
    for (size_t s = 0; extra > 0; s = (s + 1) % num_stages, --extra) {
      ++threads_per_stage[s];
    }
  }
  for (size_t s = 0; s < num_stages; ++s) {
    stages_[s]->Start(threads_per_stage[s]);
  }

  distributor_thread_ = std::thread([this] {
    obs::RegisterThread(opts_.name_prefix + "dist");
    distributor_->Run();
  });
  manager_thread_ = std::thread([this] {
    obs::RegisterThread(opts_.name_prefix + "mgr");
    ManagerLoop();
  });
  return Status::OK();
}

void CJoinOperator::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true);
  submissions_.Close();
  {
    // Wake Submit() callers blocked on the id freelist.
    MutexLock lk(&id_mu_);
    id_available_.NotifyAll();
  }

  if (preprocessor_thread_.joinable()) preprocessor_thread_.join();
  // Preprocessor closed queues_.front(); stages cascade-close downstream.
  for (auto& stage : stages_) stage->Join();
  if (distributor_thread_.joinable()) distributor_thread_.join();
  cleanup_queue_->Close();
  if (manager_thread_.joinable()) manager_thread_.join();

  // Abort every query that did not complete.
  MutexLock lk(&registry_mu_);
  for (auto& rt : registry_) {
    if (rt == nullptr) continue;
    QueryPhase phase = rt->phase.load();
    if (phase != QueryPhase::kCompleted && phase != QueryPhase::kAborted &&
        phase != QueryPhase::kCancelled) {
      rt->phase.store(QueryPhase::kAborted);
      rt->Deliver(Status::Aborted("CJOIN operator stopped"));
    }
    rt.reset();
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

uint32_t CJoinOperator::AcquireQueryId() {
  MutexLock lk(&id_mu_);
  // Explicit wait loop (not the predicate overload): the analysis treats
  // a predicate lambda as a separate, unlocked function, so guarded
  // reads belong in the loop body.
  while (free_ids_.empty() && !stop_.load()) {
    id_available_.Wait(id_mu_);
  }
  if (free_ids_.empty()) return UINT32_MAX;
  const uint32_t id = free_ids_.back();
  free_ids_.pop_back();
  return id;
}

uint32_t CJoinOperator::TryAcquireQueryId(int64_t grace_ns) {
  MutexLock lk(&id_mu_);
  if (free_ids_.empty() && grace_ns > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(grace_ns);
    while (free_ids_.empty() && !stop_.load()) {
      if (id_available_.WaitUntil(id_mu_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
  }
  if (free_ids_.empty() || stop_.load()) return UINT32_MAX;
  const uint32_t id = free_ids_.back();
  free_ids_.pop_back();
  return id;
}

void CJoinOperator::ReleaseQueryId(uint32_t qid) {
  MutexLock lk(&id_mu_);
  free_ids_.push_back(qid);
  // Reuse the smallest id first (paper §3.3); keep the freelist sorted
  // descending so back() is the minimum.
  std::sort(free_ids_.begin(), free_ids_.end(),
            std::greater<uint32_t>());
  id_available_.NotifyOne();
}

Result<std::unique_ptr<QueryHandle>> CJoinOperator::Submit(
    StarQuerySpec spec, SubmitOptions options) {
  if (!started_ || stopped_) {
    return Status::FailedPrecondition("operator not running");
  }
  if (spec.schema != &star_) {
    return Status::InvalidArgument(
        "query targets a different star schema than this operator");
  }
  StarQuerySpec normalized = std::move(spec);
  if (!options.assume_normalized) {
    CJOIN_ASSIGN_OR_RETURN(normalized, NormalizeSpec(std::move(normalized)));
  }
  if (options.deadline_ns != 0 &&
      QueryRuntime::NowNs() >= options.deadline_ns) {
    return Status::DeadlineExceeded("deadline expired before submission");
  }

  const uint32_t qid = options.reject_when_full
                           ? TryAcquireQueryId(options.id_acquire_grace_ns)
                           : AcquireQueryId();
  if (qid == UINT32_MAX) {
    if (options.reject_when_full && !stop_.load()) {
      return Status::ResourceExhausted(
          "all " + std::to_string(opts_.max_concurrent_queries) +
          " CJOIN query ids are in flight");
    }
    return Status::Aborted("operator stopped while waiting for a query id");
  }

  auto rt = std::make_shared<QueryRuntime>();
  rt->query_id = qid;
  rt->spec = std::move(normalized);
  rt->custom_aggregator_factory = std::move(options.aggregator_factory);
  rt->completion_observer = std::move(options.completion_observer);
  rt->trace = std::move(options.trace);
  rt->trace_prefix = std::move(options.trace_prefix);
  rt->deadline_ns.store(options.deadline_ns, std::memory_order_relaxed);
  rt->submit_ns.store(QueryRuntime::NowNs());
  std::future<Result<ResultSet>> fut = rt->promise.get_future();
  {
    MutexLock lk(&registry_mu_);
    registry_[qid] = rt;
  }
  auto handle = std::make_unique<QueryHandle>(rt, std::move(fut));
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (!submissions_.Push(rt)) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    MutexLock lk(&registry_mu_);
    registry_[qid].reset();
    ReleaseQueryId(qid);
    return Status::Aborted("operator stopped");
  }
  return handle;
}

void CJoinOperator::AdmitQuery(const std::shared_ptr<QueryRuntime>& rt) {
  TraceLogf(rt->query_id, "mgr", "admit begin");

  // A query cancelled (or expired) while still queued for admission never
  // loaded dimension state: resolve it here and recycle its id directly.
  TerminalReason early = TerminalReason::kNone;
  if (rt->cancel_requested.load(std::memory_order_acquire)) {
    early = TerminalReason::kCancelled;
  } else if (rt->DeadlinePassed(QueryRuntime::NowNs())) {
    early = TerminalReason::kDeadline;
  }
  if (early != TerminalReason::kNone) {
    rt->phase.store(QueryPhase::kCancelled);
    rt->Deliver(
        early == TerminalReason::kDeadline
            ? Status::DeadlineExceeded("query deadline expired before admission")
            : Status::Cancelled("query cancelled before admission"));
    const uint32_t qid = rt->query_id;
    {
      MutexLock lk(&registry_mu_);
      registry_[qid].reset();
    }
    ReleaseQueryId(qid);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    early_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  rt->phase.store(QueryPhase::kLoading);
  const uint32_t qid = rt->query_id;
  const StarQuerySpec& spec = rt->spec;

  // Which dimensions does the query reference?
  std::vector<bool> referenced(num_dims_, false);
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    referenced[dp.dim_index] = true;
  }

  // Algorithm 1 lines 3-10, plus the id-reuse invariant restoration
  // (DESIGN.md §5): bit `qid` of every stored tuple must read as
  // "selected or not referenced" for THIS query before any fact tuple
  // carries the bit.
  for (size_t d = 0; d < num_dims_; ++d) {
    Filter& f = *filters_[d];
    f.table->SetComplementBit(qid, !referenced[d]);
    f.table->SetBitForAllEntries(qid, !referenced[d]);
  }

  // Algorithm 1 lines 11-16: load selected dimension tuples. Rows that
  // pass the predicate are staged and inserted through InsertBatch — one
  // exclusive-lock acquisition and a prefetched bucket schedule per
  // batch, instead of a lock round-trip and a cold bucket per row.
  for (const DimensionPredicate& dp : spec.dim_predicates) {
    const DimensionDef& def = star_.dimension(dp.dim_index);
    const Table& dim = *def.table;
    const Schema& dschema = dim.schema();
    DimensionHashTable& ht = *filters_[dp.dim_index]->table;

    int64_t keys[DimensionHashTable::kMaxBatch];
    const uint8_t* rows[DimensionHashTable::kMaxBatch];
    DimensionHashTable::Entry* ents[DimensionHashTable::kMaxBatch];
    size_t m = 0;
    const auto flush = [&] {
      ht.InsertBatch(keys, rows, ents, m);
      for (size_t j = 0; j < m; ++j) {
        DimensionHashTable::SetEntryBit(ents[j], qid, true);
      }
      m = 0;
    };

    for (uint32_t p = 0; p < dim.num_partitions(); ++p) {
      for (uint64_t i = 0; i < dim.PartitionRows(p); ++i) {
        const RowId id{p, i};
        if (!dim.Header(id)->VisibleAt(spec.snapshot)) continue;
        const uint8_t* row = dim.RowPayload(id);
        if (!dp.predicate->EvalBool(dschema, row)) continue;
        keys[m] = dschema.GetIntAny(row, def.dim_pk_col);
        rows[m] = row;
        if (++m == DimensionHashTable::kMaxBatch) flush();
      }
    }
    if (m > 0) flush();
  }

  rt->aggregator = rt->custom_aggregator_factory
                       ? rt->custom_aggregator_factory(spec)
                       : opts_.aggregator_factory(spec);
  bitops::SetBit(manager_active_mask_, qid);

  // Algorithm 1 lines 17-22: install in the Preprocessor (which emits the
  // query-start control tuple at an exact stream position).
  preprocessor_->RequestAdmission(rt);
  TraceLogf(rt->query_id, "mgr", "admit requested");
}

void CJoinOperator::CleanupQuery(uint32_t qid) {
  TraceLogf(qid, "mgr", "cleanup");
  std::shared_ptr<QueryRuntime> rt;
  {
    MutexLock lk(&registry_mu_);
    rt = registry_[qid];
  }
  if (rt == nullptr) return;

  bitops::ClearBit(manager_active_mask_, qid);

  // Algorithm 2: complement bits revert to 1 ("does not reference"), the
  // query's selections are cleared, and dead tuples are collected.
  std::vector<bool> referenced(num_dims_, false);
  for (const DimensionPredicate& dp : rt->spec.dim_predicates) {
    referenced[dp.dim_index] = true;
  }
  for (size_t d = 0; d < num_dims_; ++d) {
    Filter& f = *filters_[d];
    f.table->SetComplementBit(qid, true);
    if (referenced[d]) {
      f.table->SetBitForAllEntries(qid, false);
    }
    if (opts_.gc_dimension_tuples) {
      f.table->RemoveDeadEntries(manager_active_mask_);
    }
  }

  {
    MutexLock lk(&registry_mu_);
    registry_[qid].reset();
  }
  ReleaseQueryId(qid);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  // End of the query's pipeline lifecycle: emit its ordered debug block.
  TraceFlushQuery(qid);
}

void CJoinOperator::MaybeReorderFilters() {
  // Adaptive ordering applies to the single-stage (horizontal) layout:
  // rank filters by observed drop rate, most selective first (§3.4; with
  // equal per-filter costs the rank ordering is optimal).
  if (!opts_.adaptive_ordering || stages_.size() != 1) return;

  std::shared_ptr<const FilterOrder> current = stages_[0]->filter_order();
  FilterOrder ranked = *current;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Filter* a, const Filter* b) {
                     return a->DropRate() > b->DropRate();
                   });
  if (ranked != *current) {
    stages_[0]->SetFilterOrder(
        std::make_shared<const FilterOrder>(std::move(ranked)));
    reorders_.fetch_add(1, std::memory_order_relaxed);
  }
  for (auto& f : filters_) f->DecayStats();
}

void CJoinOperator::ManagerLoop() {
  auto next_reorder =
      std::chrono::steady_clock::now() + opts_.reorder_interval;
  for (;;) {
    manager_iterations_.fetch_add(1, std::memory_order_relaxed);
    // Serve cleanups first (they release query ids), then submissions.
    bool did_work = false;
    while (auto qid = cleanup_queue_->TryPop()) {
      CleanupQuery(*qid);
      did_work = true;
    }
    if (auto rt = submissions_.TryPop()) {
      AdmitQuery(*rt);
      did_work = true;
    }
    if (!did_work) {
      if (stop_.load() && submissions_.closed() &&
          cleanup_queue_->closed() && cleanup_queue_->empty()) {
        break;
      }
      auto rt = submissions_.PopWithTimeout(std::chrono::milliseconds(2));
      if (rt.has_value()) AdmitQuery(*rt);
    }
    if (opts_.adaptive_ordering &&
        std::chrono::steady_clock::now() >= next_reorder) {
      MaybeReorderFilters();
      next_reorder =
          std::chrono::steady_clock::now() + opts_.reorder_interval;
    }
  }
  // Final drain of cleanups so ids/registry end tidy.
  while (auto qid = cleanup_queue_->TryPop()) CleanupQuery(*qid);
}

CJoinOperator::Stats CJoinOperator::GetStats() const {
  Stats s;
  s.rows_scanned = preprocessor_->rows_scanned();
  s.rows_skipped_at_preprocessor = preprocessor_->rows_skipped();
  s.tuples_routed = distributor_->tuples_routed();
  s.queries_completed = distributor_->queries_completed();
  s.queries_cancelled = distributor_->queries_cancelled() +
                        early_cancelled_.load(std::memory_order_relaxed);
  s.table_laps = preprocessor_->table_laps();
  s.active_queries = preprocessor_->active_queries();
  s.pool_in_use = pool_->InUse();
  s.filter_reorders = reorders_.load(std::memory_order_relaxed);
  s.manager_iterations = manager_iterations_.load(std::memory_order_relaxed);
  s.submissions_pending = submissions_.size();
  s.admissions_pending = preprocessor_->admissions_pending();
  s.cleanups_pending = cleanup_queue_->size();
  s.queue_capacity = opts_.queue_capacity;
  auto& reg = obs::MetricsRegistry::Global();
  for (const auto& q : queues_) {
    const size_t depth = q->size();
    const size_t hwm = q->HighWatermark();
    s.queue_depths.push_back(depth);
    s.queue_high_watermarks.push_back(hwm);
    // Gauge family keyed by the queue's flight-recorder name, so
    // saturation is scrapeable without a trace dump.
    const std::string label = obs::LabelPair("queue", q->name());
    reg.GetGauge("cjoin_queue_depth",
                 "Inter-stage queue depth at last stats scrape", label)
        ->Set(static_cast<int64_t>(depth));
    reg.GetGauge("cjoin_queue_depth_hwm",
                 "Peak inter-stage queue depth since the previous scrape",
                 label)
        ->Set(static_cast<int64_t>(hwm));
  }
  for (const auto& stage : stages_) {
    s.stage_batches.push_back(stage->batches_processed());
  }
  if (!stages_.empty()) {
    auto order = stages_[0]->filter_order();
    for (const Filter* f : *order) s.filter_order.push_back(f->dim_index);
  }
  for (const auto& f : filters_) {
    s.dim_table_sizes.push_back(f->table->size());
    s.filter_tuples_in.push_back(
        f->tuples_in.load(std::memory_order_relaxed));
    s.filter_tuples_dropped.push_back(
        f->tuples_dropped.load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace cjoin
