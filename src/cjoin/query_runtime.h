// Per-query runtime state shared across the pipeline components.

#ifndef CJOIN_CJOIN_QUERY_RUNTIME_H_
#define CJOIN_CJOIN_QUERY_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>

#include "catalog/query_spec.h"
#include "common/status.h"
#include "exec/aggregation.h"
#include "exec/result_set.h"
#include "obs/query_trace.h"

namespace cjoin {

/// Factory for per-query aggregation operators. The operator-wide default
/// is hash aggregation; individual queries may override it (e.g. the
/// galaxy join collects raw joined tuples instead of aggregating, §5).
using AggregatorFactory =
    std::function<std::unique_ptr<StarAggregator>(const StarQuerySpec&)>;

/// Lifecycle of a query inside the CJOIN operator.
enum class QueryPhase : int {
  kSubmitted = 0,   ///< handed to the Pipeline Manager
  kLoading = 1,     ///< dimension hash tables being updated (Algorithm 1)
  kRegistered = 2,  ///< query-start control tuple emitted; filtering live
  kCompleted = 3,   ///< results delivered
  kAborted = 4,     ///< operator shut down before completion
  kCancelled = 5,   ///< terminated early (Cancel() or deadline expiry)
};

/// Why a query was terminated before its natural completion checkpoint.
enum class TerminalReason : int {
  kNone = 0,
  kCancelled = 1,
  kDeadline = 2,
};

/// All state of one in-flight query. Created by Submit(); owned jointly by
/// the operator and the caller's QueryHandle.
struct QueryRuntime {
  uint32_t query_id = 0;
  StarQuerySpec spec;  ///< normalized

  /// Aggregation operator; created by the Pipeline Manager during
  /// admission, consumed by the Distributor thread exclusively between
  /// the query-start and query-end control tuples.
  std::unique_ptr<StarAggregator> aggregator;

  /// Per-query override of the operator's aggregator factory (optional).
  AggregatorFactory custom_aggregator_factory;

  std::promise<Result<ResultSet>> promise;
  std::atomic<QueryPhase> phase{QueryPhase::kSubmitted};

  /// Optional hook invoked with the query's terminal result immediately
  /// before the promise resolves, on whichever pipeline thread terminates
  /// the query (Distributor, Pipeline Manager, or Stop()). Installed at
  /// submission via SubmitOptions; the sharded operator uses it to collect
  /// per-shard completions without dedicating a waiter thread per query.
  std::function<void(const Result<ResultSet>&)> completion_observer;

  /// Optional cancellation fan-out invoked by QueryHandle::Cancel() after
  /// cancel_requested is set. The sharded operator's merge handle forwards
  /// the cancel to every shard's sub-query through this hook. Must be
  /// installed before the handle is exposed to callers.
  std::function<void()> cancel_hook;

  /// Resolves the promise with `result`, notifying the completion observer
  /// first so any cross-query bookkeeping is recorded before a waiter can
  /// observe the result. Each runtime is delivered exactly once (callers
  /// coordinate via phase, as before).
  ///
  /// The observer is moved out and destroyed after its single invocation:
  /// engine-level observers capture owning references back to the caller's
  /// ticket state (e.g. the deferred-admission ticket, whose handle owns
  /// this runtime), so a retained observer would close a shared_ptr cycle
  /// and leak every deferred query. cancel_hook is deliberately NOT
  /// cleared here: QueryHandle::Cancel() may read it concurrently with
  /// delivery, and it only ever captures downstream (shard-side) state.
  void Deliver(Result<ResultSet> result) {
    if (completion_observer) {
      auto observer = std::move(completion_observer);
      completion_observer = nullptr;
      observer(result);
    }
    promise.set_value(std::move(result));
  }

  /// Cooperative cancellation: set by QueryHandle::Cancel(), observed by
  /// the Pipeline Manager (pre-admission) and the Preprocessor (while
  /// registered). A cancelled query is deregistered mid-lap — its
  /// query-end control tuple is emitted at the current stream position —
  /// and its bit-vector slot is reclaimed for reuse by Algorithm 2.
  std::atomic<bool> cancel_requested{false};

  /// Absolute deadline (steady-clock nanos; 0 = none). A query past its
  /// deadline is deregistered the same way and completes with
  /// kDeadlineExceeded.
  std::atomic<int64_t> deadline_ns{0};

  /// Set (by whichever component deregisters the query early) before the
  /// query-end control tuple is emitted; read by the Distributor to pick
  /// the terminal status delivered to the caller.
  std::atomic<TerminalReason> terminal{TerminalReason::kNone};

  /// True once this runtime is past its deadline (no deadline = false).
  bool DeadlinePassed(int64_t now_ns) const {
    const int64_t dl = deadline_ns.load(std::memory_order_relaxed);
    return dl != 0 && now_ns >= dl;
  }

  // Timing (steady-clock nanos) for the paper's submission/response-time
  // metrics (§6.2.2 Table 1: submission time = Submit() until the
  // query-start control tuple enters the pipeline).
  std::atomic<int64_t> submit_ns{0};
  std::atomic<int64_t> registered_ns{0};
  std::atomic<int64_t> completed_ns{0};

  /// Per-query span trace (may be null). Pipeline components append
  /// spans through it: the preprocessor/stages/distributor stamp
  /// `stage:` spans as the query's own control tuples pass them.
  std::shared_ptr<obs::QueryTrace> trace;
  /// Prefix for this runtime's stage span labels ("s2/" on shard 2 of a
  /// sharded operator; empty for the unsharded pipeline). Set before
  /// submission, read-only afterwards.
  std::string trace_prefix;

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Caller-facing handle to a submitted query.
class QueryHandle {
 public:
  QueryHandle(std::shared_ptr<QueryRuntime> rt,
              std::future<Result<ResultSet>> fut)
      : runtime_(std::move(rt)), future_(std::move(fut)) {}

  uint32_t query_id() const { return runtime_->query_id; }
  const std::string& label() const { return runtime_->spec.label; }
  /// The snapshot this query actually reads (after any engine capping).
  SnapshotId snapshot() const { return runtime_->spec.snapshot; }

  /// Blocks until the result is available.
  Result<ResultSet> Wait() { return future_.get(); }

  /// Requests cooperative cancellation. Non-blocking; the query is
  /// deregistered mid-lap by the pipeline and Wait() then returns a
  /// kCancelled status. Safe to call at any time, including after
  /// completion (no-op) and concurrently with the pipeline.
  void Cancel() {
    runtime_->cancel_requested.store(true, std::memory_order_release);
    if (runtime_->cancel_hook) runtime_->cancel_hook();
  }

  bool Ready() const {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  /// Seconds from Submit() to query-start control tuple insertion
  /// (valid once the query is registered; 0 before).
  double SubmissionSeconds() const {
    const int64_t reg = runtime_->registered_ns.load();
    const int64_t sub = runtime_->submit_ns.load();
    return reg > sub ? static_cast<double>(reg - sub) * 1e-9 : 0.0;
  }

  /// Seconds from Submit() to result delivery (valid once completed).
  double ResponseSeconds() const {
    const int64_t done = runtime_->completed_ns.load();
    const int64_t sub = runtime_->submit_ns.load();
    return done > sub ? static_cast<double>(done - sub) * 1e-9 : 0.0;
  }

  QueryPhase phase() const { return runtime_->phase.load(); }

 private:
  std::shared_ptr<QueryRuntime> runtime_;
  std::future<Result<ResultSet>> future_;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_QUERY_RUNTIME_H_
