#include "cjoin/preprocessor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/bitvector.h"
#include "common/trace.h"
#include "obs/flight_recorder.h"

namespace cjoin {

Preprocessor::Preprocessor(const StarSchema& star, size_t width_words,
                           TuplePool* pool, EpochTracker* epochs,
                           BatchQueue* out, Options options)
    : star_(star),
      width_(width_words),
      num_dims_(star.num_dimensions()),
      pool_(pool),
      epochs_(epochs),
      out_(out),
      opts_(options),
      scan_(star.fact(),
            ContinuousScan::Options{options.scan_run_rows, options.disk,
                                    options.reader_id}),
      admissions_(1024) {
  auto& reg = obs::MetricsRegistry::Global();
  obs_rows_scanned_ = reg.GetCounter("cjoin_preprocessor_rows_scanned_total",
                                     "Fact rows consumed from the scan");
  obs_installed_ = reg.GetCounter("cjoin_queries_registered_total",
                                  "Queries installed into the pipeline");
  obs_active_ = reg.GetGauge("cjoin_active_queries",
                             "Currently registered pipeline queries");
  obs_ck_misses_ = reg.GetCounter(
      "cjoin_checkpoint_misses_total",
      "Completion checkpoints that fired past their exact stream position");
  assert(width_ <= kMaxWidthWords);
  active_.resize(width_ * bitops::kBitsPerWord);
  partition_mask_.resize(star.fact().num_partitions());
  for (auto& m : partition_mask_) m.fill(0);
  batch_.slots.reserve(opts_.batch_size);
}

void Preprocessor::RequestAdmission(std::shared_ptr<QueryRuntime> runtime) {
  admissions_.Push(std::move(runtime));
}

void Preprocessor::HandleAdmissions() {
  while (auto rt = admissions_.TryPop()) {
    InstallQuery(std::move(*rt));
  }
}

void Preprocessor::ComputeCheckpoint(const std::vector<uint32_t>& partitions,
                                     ActiveQuery* aq) const {
  const uint32_t num_parts = star_.fact().num_partitions();
  // Needed partitions with a non-empty frozen size this lap.
  std::vector<uint32_t> needed;
  if (partitions.empty()) {
    for (uint32_t p = 0; p < num_parts; ++p) {
      if (scan_.frozen_size(p) > 0) needed.push_back(p);
    }
  } else {
    for (uint32_t p : partitions) {
      if (scan_.frozen_size(p) > 0) needed.push_back(p);
    }
  }
  if (needed.empty()) {
    aq->ck_kind = ActiveQuery::CkKind::kImmediate;
    return;
  }

  const uint32_t p_cur = scan_.current_partition();
  const uint64_t i_cur = scan_.current_index();

  // Rank each candidate completion event by its distance in scan order;
  // the query finishes at the farthest one (see DESIGN.md / §3.3.2).
  uint64_t best_rank = 0;
  bool have = false;
  for (uint32_t p : needed) {
    uint64_t rank;
    ActiveQuery::CkKind kind = ActiveQuery::CkKind::kPassEnd;
    uint64_t lap, index = 0;
    if (p != p_cur) {
      rank = (p + num_parts - p_cur) % num_parts;
      lap = scan_.partition_lap(p) + 1;
    } else if (i_cur == 0) {
      // At the start of p's pass: the current/imminent pass covers it.
      rank = 0;
      lap = scan_.partition_lap(p) + (scan_.pass_started() ? 0 : 1);
    } else if (i_cur >= scan_.frozen_size(p)) {
      // p's pass just ended; the next full pass is a whole lap away.
      rank = num_parts;
      lap = scan_.partition_lap(p) + 1;
    } else {
      // Mid-pass: complete when the scan revisits this exact index.
      rank = num_parts;
      kind = ActiveQuery::CkKind::kRevisitIndex;
      lap = scan_.partition_lap(p) + 1;
      index = i_cur;
    }
    if (!have || rank > best_rank) {
      have = true;
      best_rank = rank;
      aq->ck_kind = kind;
      aq->ck_partition = p;
      aq->ck_lap = lap;
      aq->ck_index = index;
    }
  }
}

void Preprocessor::InstallQuery(std::shared_ptr<QueryRuntime> runtime) {
  const uint32_t qid = runtime->query_id;
  TraceLogf(qid, "pre", "install");
  assert(qid < active_.size() && active_[qid] == nullptr);
  auto aq = std::make_unique<ActiveQuery>();
  aq->runtime = runtime;
  aq->snapshot = runtime->spec.snapshot;
  aq->has_fact_pred = runtime->spec.fact_predicate != nullptr &&
                      !IsTrueLiteral(runtime->spec.fact_predicate);
  ComputeCheckpoint(runtime->spec.partitions, aq.get());

  // The query-start control tuple precedes the query's first fact tuple
  // in the stream (§3.3.1), so emit it before turning the bit on.
  EmitControl(SlotKind::kQueryStart, runtime.get());
  const int64_t now = QueryRuntime::NowNs();
  runtime->registered_ns.store(now);
  runtime->phase.store(QueryPhase::kRegistered);
  if (runtime->trace != nullptr) {
    runtime->trace->BeginSpan(obs::SpanKind::kStage,
                              (runtime->trace_prefix + "pre").c_str(), now);
  }
  obs_installed_->Add();
  obs_active_->Add();

  bitops::SetBit(active_mask_, qid);
  if (runtime->spec.partitions.empty()) {
    for (auto& m : partition_mask_) bitops::SetBit(m.data(), qid);
  } else {
    for (uint32_t p : runtime->spec.partitions) {
      bitops::SetBit(partition_mask_[p].data(), qid);
    }
  }
  snapshot_checks_.emplace_back(qid, aq->snapshot);
  if (aq->has_fact_pred) {
    fact_preds_.push_back(FactPred{qid, runtime->spec.fact_predicate.get()});
  }

  const bool immediate = aq->ck_kind == ActiveQuery::CkKind::kImmediate;
  active_[qid] = std::move(aq);
  active_count_.fetch_add(1, std::memory_order_relaxed);

  if (immediate) {
    // Empty fact table / empty partition set: zero relevant tuples, so
    // the query completes as soon as it starts.
    FinalizeQuery(qid);
  }
}

void Preprocessor::FinalizeQuery(uint32_t qid) {
  TraceLogf(qid, "pre", "finalize");
  ActiveQuery* aq = active_[qid].get();
  assert(aq != nullptr);
  // Close the "pre" span before the end-of-query control leaves this
  // thread: once emitted, the control can race through the pipeline and
  // deliver the query while an after-the-fact EndSpan is still pending,
  // leaving an open span in the completed trace.
  if (aq->runtime->trace != nullptr) {
    aq->runtime->trace->EndSpan(
        obs::SpanKind::kStage, (aq->runtime->trace_prefix + "pre").c_str(),
        QueryRuntime::NowNs());
  }
  // The end-of-query control tuple precedes the wrap-around tuple
  // (§3.3.2), so it is emitted at the current stream position, before
  // clearing the query's bookkeeping.
  EmitControl(SlotKind::kQueryEnd, aq->runtime.get());
  obs_active_->Sub();

  bitops::ClearBit(active_mask_, qid);
  for (auto& m : partition_mask_) bitops::ClearBit(m.data(), qid);
  snapshot_checks_.erase(
      std::remove_if(snapshot_checks_.begin(), snapshot_checks_.end(),
                     [qid](const auto& pr) { return pr.first == qid; }),
      snapshot_checks_.end());
  fact_preds_.erase(
      std::remove_if(fact_preds_.begin(), fact_preds_.end(),
                     [qid](const FactPred& fp) { return fp.qid == qid; }),
      fact_preds_.end());
  active_[qid].reset();
  active_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Preprocessor::PollInterrupts() {
  if (active_count_.load(std::memory_order_relaxed) == 0) return;
  const int64_t now = QueryRuntime::NowNs();
  std::vector<std::pair<uint32_t, TerminalReason>> due;
  for (const auto& pr : snapshot_checks_) {
    const ActiveQuery* aq = active_[pr.first].get();
    if (aq == nullptr) continue;
    QueryRuntime* rt = aq->runtime.get();
    if (rt->cancel_requested.load(std::memory_order_acquire)) {
      due.emplace_back(pr.first, TerminalReason::kCancelled);
    } else if (rt->DeadlinePassed(now)) {
      due.emplace_back(pr.first, TerminalReason::kDeadline);
    }
  }
  for (const auto& [qid, reason] : due) {
    active_[qid]->runtime->terminal.store(reason, std::memory_order_release);
    FinalizeQuery(qid);
  }
}

void Preprocessor::FlushBatch() {
  if (batch_.slots.empty()) return;
  batch_.epoch = cur_epoch_;
  batch_.control = false;
  epochs_->AddProduced(cur_epoch_, batch_.slots.size());
  TupleBatch outgoing = std::move(batch_);
  batch_ = TupleBatch{};
  batch_.slots.reserve(opts_.batch_size);
  const size_t n = outgoing.slots.size();
  if (!out_->Push(std::move(outgoing))) {
    // Queue closed during shutdown; keep epoch accounting balanced. The
    // slots are reclaimed when the pool is destroyed.
    epochs_->AddRetired(cur_epoch_, n);
  }
}

void Preprocessor::EmitControl(SlotKind kind, QueryRuntime* runtime) {
  FlushBatch();
  epochs_->Close(cur_epoch_);

  TupleSlot* slot = static_cast<TupleSlot*>(pool_->Acquire());
  slot->fact_row = nullptr;
  slot->runtime = runtime;
  slot->epoch = cur_epoch_;
  slot->kind = kind;

  TupleBatch cb;
  cb.epoch = cur_epoch_;
  cb.control = true;
  cb.slots.push_back(slot);
  if (!out_->Push(std::move(cb))) {
    pool_->Release(slot);
  }
  ++cur_epoch_;
}

void Preprocessor::ProcessRowRange(const ScanEvent& ev, size_t from,
                                   size_t to) {
  if (from >= to) return;
  const size_t stride = star_.fact().row_stride();
  const Schema& fschema = star_.fact().schema();
  const uint64_t* pmask = partition_mask_[ev.partition].data();

  uint64_t tmp[kMaxWidthWords];
  for (size_t r = from; r < to; ++r) {
    const uint8_t* base = ev.base + r * stride;
    const RowHeader* hdr = reinterpret_cast<const RowHeader*>(base);
    const uint8_t* fact_row = base + sizeof(RowHeader);

    uint64_t any = 0;
    for (size_t w = 0; w < width_; ++w) {
      tmp[w] = active_mask_[w] & pmask[w];
      any |= tmp[w];
    }
    if (any == 0) {
      rows_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    if (!hdr->VisibleToAll()) {
      // Snapshot visibility is a virtual fact predicate (§3.5).
      for (const auto& [qid, snap] : snapshot_checks_) {
        if (bitops::TestBit(tmp, qid) && !hdr->VisibleAt(snap)) {
          bitops::ClearBit(tmp, qid);
        }
      }
    }
    for (const FactPred& fp : fact_preds_) {
      if (bitops::TestBit(tmp, fp.qid) &&
          !fp.pred->EvalBool(fschema, fact_row)) {
        bitops::ClearBit(tmp, fp.qid);
      }
    }
    if (bitops::IsZero(tmp, width_)) {
      rows_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    TupleSlot* slot = static_cast<TupleSlot*>(pool_->Acquire());
    slot->fact_row = fact_row;
    slot->runtime = nullptr;
    slot->epoch = cur_epoch_;
    slot->kind = SlotKind::kData;
    std::memset(slot->dim_rows(), 0, num_dims_ * sizeof(const uint8_t*));
    bitops::Copy(slot->bits(num_dims_), tmp, width_);

    batch_.slots.push_back(slot);
    if (batch_.slots.size() >= opts_.batch_size) FlushBatch();
  }
}

void Preprocessor::ProcessRows(const ScanEvent& ev) {
  rows_scanned_.fetch_add(ev.count, std::memory_order_relaxed);
  obs_rows_scanned_->Add(ev.count);

  // Collect completion checkpoints that fire inside this run. The
  // end-of-query control tuple must precede the wrap-around row, so the
  // run is split at each firing offset.
  std::vector<std::pair<size_t, uint32_t>> fires;  // (offset, qid)
  for (const auto& pr : snapshot_checks_) {
    const uint32_t qid = pr.first;
    const ActiveQuery* aq = active_[qid].get();
    if (aq == nullptr ||
        aq->ck_kind != ActiveQuery::CkKind::kRevisitIndex) {
      continue;
    }
    if (aq->ck_partition != ev.partition || aq->ck_lap != ev.lap) continue;
    if (aq->ck_index < ev.first_index) {
      // Defensive: the exact completion position was already passed (a
      // skipped or re-split run). Finishing at offset 0 is still correct
      // — every row of the query's lap has been seen — but the engine
      // should never get here silently: count and log it.
      obs_ck_misses_->Add(1);
      TraceLogf(qid, "pre",
                "checkpoint miss: ck_index=%llu < run first_index=%llu "
                "(partition=%u lap=%llu); finishing at run start",
                static_cast<unsigned long long>(aq->ck_index),
                static_cast<unsigned long long>(ev.first_index),
                ev.partition, static_cast<unsigned long long>(ev.lap));
      fires.emplace_back(0, qid);
    } else if (aq->ck_index < ev.first_index + ev.count) {
      fires.emplace_back(static_cast<size_t>(aq->ck_index - ev.first_index),
                         qid);
    }
  }
  if (fires.empty()) {
    ProcessRowRange(ev, 0, ev.count);
    return;
  }
  std::sort(fires.begin(), fires.end());
  size_t pos = 0;
  for (const auto& [off, qid] : fires) {
    ProcessRowRange(ev, pos, off);
    pos = off;
    FinalizeQuery(qid);
  }
  ProcessRowRange(ev, pos, ev.count);
}

void Preprocessor::HandlePassEnd(const ScanEvent& ev) {
  std::vector<uint32_t> to_finish;
  for (const auto& pr : snapshot_checks_) {
    const uint32_t qid = pr.first;
    const ActiveQuery* aq = active_[qid].get();
    if (aq == nullptr) continue;
    if (aq->ck_partition != ev.partition) continue;
    if (aq->ck_kind == ActiveQuery::CkKind::kPassEnd &&
        ev.lap >= aq->ck_lap) {
      to_finish.push_back(qid);
    }
  }
  for (uint32_t qid : to_finish) FinalizeQuery(qid);
}

void Preprocessor::Run(const std::atomic<bool>& stop) {
  // Initial coverage: sample the snapshot, then freeze, so every row of
  // the sampled snapshot is inside the frozen ranges (rows are appended
  // before their snapshot is published).
  if (opts_.snapshot_probe) {
    const SnapshotId s = opts_.snapshot_probe();
    scan_.RefreezeNow();
    covered_snapshot_.store(s, std::memory_order_release);
  }

  ScanEvent ev;
  while (!stop.load(std::memory_order_relaxed)) {
    HandleAdmissions();
    PollInterrupts();

    if (active_count_.load(std::memory_order_relaxed) == 0) {
      // Quiescent: the "always-on" scan idles at its current position
      // until a query latches on.
      auto rt = admissions_.PopWithTimeout(std::chrono::milliseconds(2));
      if (rt.has_value()) {
        // No query is mid-cycle, so it is safe to re-freeze here: the
        // incoming query immediately covers everything committed up to
        // now (zero append-visibility staleness from idle).
        if (opts_.snapshot_probe) {
          const SnapshotId s = opts_.snapshot_probe();
          scan_.RefreezeNow();
          covered_snapshot_.store(s, std::memory_order_release);
        }
        InstallQuery(std::move(*rt));
      }
      continue;
    }

    // Pre-sample so that if this Next() wraps the lap (and re-freezes),
    // the coverage bound is a snapshot taken BEFORE the freeze.
    const SnapshotId pre_sample =
        opts_.snapshot_probe ? opts_.snapshot_probe() : kMaxSnapshot;
    const uint64_t laps_before = scan_.table_laps();

    if (!scan_.Next(&ev)) {
      // Fact table empty; any admitted query completes immediately, which
      // InstallQuery already handled. Just wait for work.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (opts_.snapshot_probe && scan_.table_laps() != laps_before) {
      covered_snapshot_.store(pre_sample, std::memory_order_release);
    }
    switch (ev.kind) {
      case ScanEvent::Kind::kRows:
        ProcessRows(ev);
        break;
      case ScanEvent::Kind::kPassEnd:
        HandlePassEnd(ev);
        break;
      case ScanEvent::Kind::kPassStart:
        break;
    }
    const uint64_t laps_now = scan_.table_laps();
    if (laps_now != laps_before) {
      // Lap boundary: every in-flight query's completion checkpoint is one
      // of these; they anchor the timeline's coarse rhythm.
      obs::RecordEvent(obs::EventKind::kLap, opts_.flight_label.c_str(),
                       static_cast<uint32_t>(laps_now));
    }
    laps_done_.store(laps_now, std::memory_order_relaxed);
  }

  // Shutdown: flush what we have and close downstream. Unfinished
  // queries' promises are aborted by CJoinOperator::Stop() after all
  // pipeline threads have joined.
  FlushBatch();
  out_->Close();
  admissions_.Close();
  for (auto& aq : active_) {
    if (aq != nullptr) obs_active_->Sub();
    aq.reset();
  }
}

}  // namespace cjoin
