// The Preprocessor (paper §3.1, §3.2.2, §3.3).
//
// Consumes the continuous scan and turns raw fact rows into in-flight
// tuple slots: it initializes each tuple's bit-vector from the per-query
// fact-table predicates (c_i0), the query's snapshot (§3.5: the snapshot
// association is "a virtual fact table predicate ... evaluated by the
// Preprocessor over the concurrency control information of each fact
// tuple"), and the query's partition set (§5). Tuples relevant to no
// query are dropped before entering the pipeline.
//
// It also owns query registration/finalization within the stream:
// admission requests prepared by the Pipeline Manager (Algorithm 1) are
// installed between scan events — the message handoff provides the
// "stall" of Algorithm 1 line 17 without parking threads — and per-query
// completion checkpoints detect when the scan has wrapped around the
// query's start position (§3.3.2), emitting query-start / query-end
// control tuples at exact stream positions.

#ifndef CJOIN_CJOIN_PREPROCESSOR_H_
#define CJOIN_CJOIN_PREPROCESSOR_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "catalog/star_schema.h"
#include "cjoin/epoch_tracker.h"
#include "cjoin/query_runtime.h"
#include "cjoin/tuple_slot.h"
#include "common/queue.h"
#include "common/tuple_pool.h"
#include "obs/metrics.h"
#include "storage/continuous_scan.h"

namespace cjoin {

/// Maximum supported bit-vector width (16 words = 1024 concurrent
/// queries; the paper's maxConc).
inline constexpr size_t kMaxWidthWords = 16;

class Preprocessor {
 public:
  struct Options {
    size_t batch_size = 256;       ///< data slots per TupleBatch
    size_t scan_run_rows = 1024;   ///< rows per ContinuousScan run
    SimDisk* disk = nullptr;
    uint64_t reader_id = 0;
    /// Optional probe returning the engine's current snapshot. Sampled
    /// before each lap freeze so covered_snapshot() names the newest
    /// snapshot whose rows are guaranteed inside the frozen scan ranges.
    std::function<SnapshotId()> snapshot_probe;
    /// Flight-recorder label for the scan thread's lap-boundary events
    /// ("s2/scan" on shard 2 of a sharded pool).
    std::string flight_label = "scan";
  };

  Preprocessor(const StarSchema& star, size_t width_words, TuplePool* pool,
               EpochTracker* epochs, BatchQueue* out, Options options);

  /// Queues a fully-loaded query for installation (Pipeline Manager
  /// thread; Algorithm 1's final step). Thread-safe.
  void RequestAdmission(std::shared_ptr<QueryRuntime> runtime);

  /// Thread body. Returns when `stop` becomes true (or the output queue
  /// closes). Closes the output queue on exit.
  void Run(const std::atomic<bool>& stop);

  /// Total fact rows scanned (all laps).
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }
  /// Rows dropped before pipeline entry (irrelevant to every query).
  uint64_t rows_skipped() const {
    return rows_skipped_.load(std::memory_order_relaxed);
  }
  /// Number of active (registered, not yet finished) queries.
  size_t active_queries() const {
    return active_count_.load(std::memory_order_relaxed);
  }
  uint64_t table_laps() const {
    return laps_done_.load(std::memory_order_relaxed);
  }
  /// Admission requests queued but not yet installed (diagnostics).
  size_t admissions_pending() const { return admissions_.size(); }

  /// Newest snapshot fully covered by the scan's frozen ranges: a query
  /// reading at most this snapshot sees every row its snapshot includes.
  /// kMaxSnapshot when no probe is configured (append visibility then
  /// lags commits by up to one scan lap).
  SnapshotId covered_snapshot() const {
    return covered_snapshot_.load(std::memory_order_acquire);
  }

 private:
  /// Per-registered-query bookkeeping.
  struct ActiveQuery {
    std::shared_ptr<QueryRuntime> runtime;
    // Completion checkpoint (see DESIGN.md and §3.3.2): either "revisit
    // index X of partition P in pass L" or "end of pass L of partition P".
    enum class CkKind { kRevisitIndex, kPassEnd, kImmediate };
    CkKind ck_kind = CkKind::kImmediate;
    uint32_t ck_partition = 0;
    uint64_t ck_lap = 0;
    uint64_t ck_index = 0;

    bool has_fact_pred = false;
    SnapshotId snapshot = kReadLatestSnapshot;
  };

  void HandleAdmissions();
  void InstallQuery(std::shared_ptr<QueryRuntime> runtime);
  void FinalizeQuery(uint32_t qid);
  /// Deregisters queries whose Cancel() flag is set or whose deadline has
  /// passed: their query-end control tuple is emitted at the current
  /// stream position (mid-lap), after which Algorithm 2 reclaims their
  /// bit-vector slot exactly as for a naturally completed query.
  void PollInterrupts();
  /// Computes the completion checkpoint for a query registered at the
  /// current scan position.
  void ComputeCheckpoint(const std::vector<uint32_t>& partitions,
                         ActiveQuery* aq) const;

  void ProcessRows(const ScanEvent& ev);
  void ProcessRowRange(const ScanEvent& ev, size_t from, size_t to);
  void HandlePassEnd(const ScanEvent& ev);

  void FlushBatch();
  void EmitControl(SlotKind kind, QueryRuntime* runtime);

  const StarSchema& star_;
  const size_t width_;
  const size_t num_dims_;
  TuplePool* pool_;
  EpochTracker* epochs_;
  BatchQueue* out_;
  Options opts_;

  ContinuousScan scan_;

  // Admission mailbox (manager -> preprocessor).
  BoundedQueue<std::shared_ptr<QueryRuntime>> admissions_;

  // --- Stream-thread-only state -------------------------------------------
  std::vector<std::unique_ptr<ActiveQuery>> active_;  // by query id
  uint64_t active_mask_[kMaxWidthWords] = {};
  /// Per-partition mask of queries allowed to see that partition.
  std::vector<std::array<uint64_t, kMaxWidthWords>> partition_mask_;
  /// Queries with snapshots to check on non-trivially-versioned rows.
  std::vector<std::pair<uint32_t, SnapshotId>> snapshot_checks_;
  /// Queries with fact-table predicates.
  struct FactPred {
    uint32_t qid;
    const Expr* pred;
  };
  std::vector<FactPred> fact_preds_;

  uint64_t cur_epoch_ = 0;
  TupleBatch batch_;

  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_skipped_{0};
  std::atomic<size_t> active_count_{0};
  std::atomic<uint64_t> laps_done_{0};
  std::atomic<SnapshotId> covered_snapshot_{kMaxSnapshot};

  /// Engine-wide telemetry (registered in the constructor; lock-free).
  obs::Counter* obs_rows_scanned_ = nullptr;
  obs::Counter* obs_installed_ = nullptr;
  obs::Gauge* obs_active_ = nullptr;
  /// Fires when a completion checkpoint is discovered past its exact
  /// stream position (the defensive branch in ProcessRows).
  obs::Counter* obs_ck_misses_ = nullptr;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_PREPROCESSOR_H_
