// Epoch accounting: enforces the control/data ordering property of §3.3.3.
//
// "If a control tuple tau' is placed in the output queue of the
//  Preprocessor before (respectively after) a fact tuple tau, then tau'
//  is not processed in the Distributor after (respectively before) tau.
//  This property needs to be enforced by the implementation."
//
// With a multi-threaded Stage, data batches can overtake each other, so
// FIFO queues alone do not provide the property. Instead the Preprocessor
// partitions the stream into *epochs* delimited by control tuples: every
// data slot is tagged with the epoch it was produced in, and a control
// tuple closes its epoch. The Distributor processes epochs strictly in
// order: a control tuple is held until every data slot of the epoch it
// closes has been accounted for (consumed by the Distributor or dropped
// by a Filter), and data slots of later epochs are buffered until their
// epoch opens. Within an epoch, data order is free — aggregation is
// order-insensitive.

#ifndef CJOIN_CJOIN_EPOCH_TRACKER_H_
#define CJOIN_CJOIN_EPOCH_TRACKER_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace cjoin {

/// Per-epoch produced/retired counters in a fixed ring. All methods are
/// thread-safe. Epochs must be created in increasing order and are
/// recycled once complete; the ring bounds the number of epochs in
/// flight (in practice: #queries admitted+finished while tuples from one
/// epoch are still in the pipeline — far below the ring size).
class EpochTracker {
 public:
  explicit EpochTracker(size_t ring_size = 4096)
      : ring_size_(ring_size), ring_(new Cell[ring_size]) {}

  /// Registers `n` produced slots in epoch `e` (Preprocessor only).
  void AddProduced(uint64_t e, uint64_t n) {
    Cell& c = cell(e);
    c.produced.fetch_add(n, std::memory_order_relaxed);
  }

  /// Declares that epoch `e` will produce no more slots (Preprocessor,
  /// immediately before emitting the closing control tuple).
  void Close(uint64_t e) {
    cell(e).closed.store(true, std::memory_order_release);
  }

  /// Registers `n` retired slots of epoch `e` (Filters on drop,
  /// Distributor on consume).
  void AddRetired(uint64_t e, uint64_t n) {
    cell(e).retired.fetch_add(n, std::memory_order_release);
  }

  /// True iff epoch e is closed and every produced slot was retired.
  bool Complete(uint64_t e) const {
    const Cell& c = cell(e);
    if (!c.closed.load(std::memory_order_acquire)) return false;
    return c.retired.load(std::memory_order_acquire) ==
           c.produced.load(std::memory_order_acquire);
  }

  /// Resets epoch e's counters for ring reuse (Distributor, after it has
  /// advanced past e).
  void Recycle(uint64_t e) {
    Cell& c = cell(e);
    c.produced.store(0, std::memory_order_relaxed);
    c.retired.store(0, std::memory_order_relaxed);
    c.closed.store(false, std::memory_order_relaxed);
  }

  size_t ring_size() const { return ring_size_; }

 private:
  struct Cell {
    std::atomic<uint64_t> produced{0};
    std::atomic<uint64_t> retired{0};
    std::atomic<bool> closed{false};
  };

  Cell& cell(uint64_t e) { return ring_[e % ring_size_]; }
  const Cell& cell(uint64_t e) const { return ring_[e % ring_size_]; }

  size_t ring_size_;
  std::unique_ptr<Cell[]> ring_;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_EPOCH_TRACKER_H_
