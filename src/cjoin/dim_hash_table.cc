#include "cjoin/dim_hash_table.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "common/hash.h"

namespace cjoin {

namespace {

size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

/// Zeroed allocation for the probe-path arrays. Small arrays are
/// 64B-aligned; arrays of at least one huge page are 2MB-aligned and
/// MADV_HUGEPAGE-advised. The latter is not cosmetic: x86 drops a
/// software prefetch whose address misses the TLB, so with 4K pages a
/// DRAM-resident table's prefetch schedule mostly evaporates — huge
/// pages are what make batched probing effective at size.
void* AllocZeroed(size_t bytes) {
  constexpr size_t kHugePage = 2u << 20;
  if (bytes >= kHugePage) {
    const size_t rounded = (bytes + kHugePage - 1) & ~(kHugePage - 1);
    void* p = std::aligned_alloc(kHugePage, rounded);
    if (p != nullptr) {
#ifdef __linux__
      madvise(p, rounded, MADV_HUGEPAGE);
#endif
      std::memset(p, 0, rounded);
      return p;
    }
    // Fall through to the plain path on allocation failure.
  }
  const size_t rounded = (bytes + 63) & ~size_t{63};
  void* p = std::aligned_alloc(64, rounded);
  std::memset(p, 0, rounded);
  return p;
}

}  // namespace

DimensionHashTable::AlignedWordArray DimensionHashTable::AllocTags(size_t n) {
  // Capacity is a power of two >= 16, so n * 8 is a multiple of 64 and
  // the groups of 8 tags tile cache lines exactly.
  return AlignedWordArray(
      static_cast<uint64_t*>(AllocZeroed(n * sizeof(uint64_t))));
}

DimensionHashTable::SlotArray DimensionHashTable::AllocSlots(size_t n) {
  // Entry is an aggregate whose zero state equals its default state, so
  // the zeroed arena is already "constructed"; BindBits() then points
  // each entry's bits at its storage.
  return SlotArray(static_cast<Entry*>(AllocZeroed(n * sizeof(Entry))));
}

DimensionHashTable::DimensionHashTable(size_t width_words,
                                       size_t expected_entries)
    : width_(width_words) {
  assert(width_ > 0);
  // No other thread can reference the table yet; the lock is taken only
  // so the BindBits() REQUIRES(mu_) contract holds in the analysis.
  WriterMutexLock lk(&mu_);
  cap_ = NextPow2(expected_entries * 2);
  slots_ = AllocSlots(cap_);
  tags_ = AllocTags(cap_);
  if (!InlineBits()) words_.reset(new uint64_t[cap_ * width_]());
  for (size_t i = 0; i < cap_; ++i) BindBits(i);
  complement_.reset(new uint64_t[width_]());
}

void DimensionHashTable::SetComplementBit(size_t query_id, bool value) {
  if (value) {
    bitops::AtomicSetBit(complement_.get(), query_id);
  } else {
    bitops::AtomicClearBit(complement_.get(), query_id);
  }
}

const DimensionHashTable::Entry* DimensionHashTable::ProbeLocked(
    int64_t key) const {
  const size_t mask = Mask();
  const uint64_t h = Mix64(static_cast<uint64_t>(key));
  const uint64_t want = TagFor(h);
  size_t idx = h & mask;
  for (;;) {
    const uint64_t tag = tags_[idx];
    if (tag == 0) return nullptr;
    if (tag == want && slots_[idx].key == key) return &slots_[idx];
    idx = (idx + 1) & mask;
  }
}

const DimensionHashTable::Entry* DimensionHashTable::ProbeChainFrom(
    size_t idx, uint64_t want, int64_t key) const {
  const size_t mask = Mask();
  for (;;) {
    const uint64_t tag = tags_[idx];
    if (tag == 0) return nullptr;
    if (tag == want && slots_[idx].key == key) return &slots_[idx];
    idx = (idx + 1) & mask;
  }
}

void DimensionHashTable::ProbeBatchLocked(const int64_t* keys,
                                          const Entry** out,
                                          size_t n) const {
  const size_t mask = Mask();
  const bool inline_bits = InlineBits();
  // Hoisted raw pointer: the lambda below is analyzed as a separate
  // function by -Wthread-safety, so it reads through this local instead
  // of the GUARDED_BY(mu_) member (the caller holds the shared lock for
  // the whole call).
  const uint64_t* tags = tags_.get();

  // Pass 1: hash every key of a chunk and prefetch its target tag line,
  // so the DRAM misses of the whole chunk overlap.
  const auto hash_chunk = [&](const int64_t* k, size_t m, size_t* idx,
                              uint64_t* want) {
    for (size_t i = 0; i < m; ++i) {
      const uint64_t h = Mix64(static_cast<uint64_t>(k[i]));
      idx[i] = h & mask;
      want[i] = TagFor(h);
      __builtin_prefetch(&tags[idx[i]], /*rw=*/0, /*locality=*/3);
    }
  };

  // Chunks are software-pipelined: chunk k+1's tag prefetches are issued
  // before chunk k resolves, so for n > kMaxBatch every tag line gets a
  // full chunk of prefetch distance instead of one pass.
  size_t idx_bufs[2][kMaxBatch];
  uint64_t want_bufs[2][kMaxBatch];
  int cur = 0;
  size_t m = std::min(n, kMaxBatch);
  hash_chunk(keys, m, idx_bufs[cur], want_bufs[cur]);

  size_t off = 0;
  while (m > 0) {
    size_t* idx = idx_bufs[cur];
    uint64_t* want = want_bufs[cur];
    const size_t m_next = std::min(n - off - m, kMaxBatch);
    if (m_next > 0) {
      hash_chunk(keys + off + m, m_next, idx_bufs[1 - cur],
                 want_bufs[1 - cur]);
    }

    // Pass 2: walk each tag chain to a definite miss or a tag match;
    // prefetch the matched slot's Entry line for pass 3. With inline
    // bits that one line is the whole hit (key, row, filter vector);
    // wider tables also prefetch the arena words, whose address derives
    // from the slot index alone — no Entry load needed.
    for (size_t i = 0; i < m; ++i) {
      size_t j = idx[i];
      for (;;) {
        const uint64_t tag = tags_[j];
        if (tag == 0) {
          idx[i] = SIZE_MAX;  // definite miss
          break;
        }
        if (tag == want[i]) {
          idx[i] = j;
          __builtin_prefetch(&slots_[j], 0, 3);
          if (!inline_bits) __builtin_prefetch(&words_[j * width_], 0, 3);
          break;
        }
        j = (j + 1) & mask;
      }
    }

    // Pass 3: confirm key identity. A tag match that fails the key check
    // is a full-64-bit hash collision — resolve it by continuing the
    // chain scalar-ly (astronomically rare).
    for (size_t i = 0; i < m; ++i) {
      if (idx[i] == SIZE_MAX) {
        out[off + i] = nullptr;
        continue;
      }
      const Entry& e = slots_[idx[i]];
      if (e.key == keys[off + i]) {
        out[off + i] = &e;
      } else {
        out[off + i] =
            ProbeChainFrom((idx[i] + 1) & mask, want[i], keys[off + i]);
      }
    }

    off += m;
    m = m_next;
    cur = 1 - cur;
  }
}

DimensionHashTable::Entry* DimensionHashTable::InsertOneLocked(
    int64_t key, const uint8_t* row) {
  const size_t mask = Mask();
  const uint64_t h = Mix64(static_cast<uint64_t>(key));
  const uint64_t want = TagFor(h);
  size_t idx = h & mask;
  for (;;) {
    const uint64_t tag = tags_[idx];
    if (tag == 0) break;
    if (tag == want && slots_[idx].key == key) return &slots_[idx];
    idx = (idx + 1) & mask;
  }
  tags_[idx] = want;
  Entry& e = slots_[idx];
  e.key = key;
  e.row = row;
  e.used = true;
  // New tuples start as "b_Dj" — not selected by any query referencing
  // D_j, implicitly selected by every query that does not reference it.
  for (size_t w = 0; w < width_; ++w) {
    e.bits[w] = bitops::AtomicLoadWord(complement_.get(), w);
  }
  ++size_;
  return &e;
}

void DimensionHashTable::ReserveLocked(size_t extra) {
  while ((size_.load(std::memory_order_relaxed) + extra) * 10 > cap_ * 7) {
    RehashLocked();
  }
}

void DimensionHashTable::RehashLocked() {
  const size_t old_cap = cap_;
  SlotArray old_slots = std::move(slots_);
  std::unique_ptr<uint64_t[]> old_words = std::move(words_);

  cap_ = old_cap * 2;
  slots_ = AllocSlots(cap_);
  tags_ = AllocTags(cap_);
  if (!InlineBits()) words_.reset(new uint64_t[cap_ * width_]());
  for (size_t i = 0; i < cap_; ++i) BindBits(i);

  const size_t mask = cap_ - 1;
  for (size_t i = 0; i < old_cap; ++i) {
    const Entry& e = old_slots[i];
    if (!e.used) continue;
    const uint64_t h = Mix64(static_cast<uint64_t>(e.key));
    size_t idx = h & mask;
    while (tags_[idx] != 0) idx = (idx + 1) & mask;
    tags_[idx] = TagFor(h);
    Entry& dst = slots_[idx];
    dst.key = e.key;
    dst.row = e.row;
    dst.used = true;
    bitops::Copy(dst.bits, e.bits, width_);
  }
}

DimensionHashTable::Entry* DimensionHashTable::InsertOrGet(
    int64_t key, const uint8_t* row) {
  WriterMutexLock lk(&mu_);
  ReserveLocked(1);
  return InsertOneLocked(key, row);
}

void DimensionHashTable::InsertBatch(const int64_t* keys,
                                     const uint8_t* const* rows, Entry** out,
                                     size_t n) {
  WriterMutexLock lk(&mu_);
  // Worst case every key is new; ensure the whole call fits up front so
  // no mid-call rehash invalidates entry pointers already written to
  // `out` by earlier chunks.
  ReserveLocked(n);
  while (n > 0) {
    const size_t m = std::min(n, kMaxBatch);
    const size_t cur_mask = Mask();
    for (size_t i = 0; i < m; ++i) {
      const uint64_t h = Mix64(static_cast<uint64_t>(keys[i]));
      __builtin_prefetch(&tags_[h & cur_mask], /*rw=*/1, /*locality=*/3);
    }
    for (size_t i = 0; i < m; ++i) {
      out[i] = InsertOneLocked(keys[i], rows[i]);
    }
    keys += m;
    rows += m;
    out += m;
    n -= m;
  }
}

void DimensionHashTable::SetEntryBit(Entry* entry, size_t query_id,
                                     bool value) {
  if (value) {
    bitops::AtomicSetBit(entry->bits, query_id);
  } else {
    bitops::AtomicClearBit(entry->bits, query_id);
  }
}

void DimensionHashTable::SetBitForAllEntries(size_t query_id, bool value) {
  ReaderMutexLock lk(&mu_);
  for (size_t i = 0; i < cap_; ++i) {
    Entry& e = slots_[i];
    if (!e.used) continue;
    if (value) {
      bitops::AtomicSetBit(e.bits, query_id);
    } else {
      bitops::AtomicClearBit(e.bits, query_id);
    }
  }
}

size_t DimensionHashTable::RemoveDeadEntries(const uint64_t* active_mask) {
  WriterMutexLock lk(&mu_);
  size_t removed = 0;
  // Collect surviving entries, then rebuild in place (linear probing does
  // not support in-place deletion without tombstones). The staging
  // buffers are table-owned scratch: cleared, not freed, between passes,
  // so steady-state GC on the Pipeline Manager thread does not allocate.
  gc_survivors_.clear();
  gc_survivor_bits_.clear();
  gc_survivors_.reserve(size_);
  gc_survivor_bits_.reserve(size_ * width_);
  for (size_t s = 0; s < cap_; ++s) {
    const Entry& e = slots_[s];
    if (!e.used) continue;
    bool dead = true;
    for (size_t w = 0; w < width_; ++w) {
      const uint64_t relevant = e.bits[w] & active_mask[w];
      const uint64_t comp =
          bitops::AtomicLoadWord(complement_.get(), w) & active_mask[w];
      if (relevant != comp) {
        dead = false;
        break;
      }
    }
    if (dead) {
      ++removed;
      continue;
    }
    gc_survivors_.push_back(e);
    for (size_t w = 0; w < width_; ++w) {
      gc_survivor_bits_.push_back(e.bits[w]);
    }
  }
  if (removed == 0) return 0;

  for (size_t s = 0; s < cap_; ++s) {
    slots_[s].used = false;
  }
  std::memset(tags_.get(), 0, cap_ * sizeof(uint64_t));
  const size_t mask = Mask();
  for (size_t i = 0; i < gc_survivors_.size(); ++i) {
    const Entry& src = gc_survivors_[i];
    const uint64_t h = Mix64(static_cast<uint64_t>(src.key));
    size_t idx = h & mask;
    while (tags_[idx] != 0) idx = (idx + 1) & mask;
    tags_[idx] = TagFor(h);
    Entry& dst = slots_[idx];
    dst.key = src.key;
    dst.row = src.row;
    dst.used = true;
    bitops::Copy(dst.bits, &gc_survivor_bits_[i * width_], width_);
  }
  size_ = gc_survivors_.size();
  return removed;
}

}  // namespace cjoin
