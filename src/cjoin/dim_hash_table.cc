#include "cjoin/dim_hash_table.h"

#include <cassert>
#include <mutex>

#include "common/hash.h"

namespace cjoin {

namespace {
size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

DimensionHashTable::DimensionHashTable(size_t width_words,
                                       size_t expected_entries)
    : width_(width_words) {
  assert(width_ > 0);
  const size_t cap = NextPow2(expected_entries * 2);
  slots_.assign(cap, Entry{});
  words_.reset(new uint64_t[cap * width_]());
  for (size_t i = 0; i < cap; ++i) slots_[i].bits = &words_[i * width_];
  complement_.reset(new uint64_t[width_]());
}

void DimensionHashTable::SetComplementBit(size_t query_id, bool value) {
  if (value) {
    bitops::AtomicSetBit(complement_.get(), query_id);
  } else {
    bitops::AtomicClearBit(complement_.get(), query_id);
  }
}

const DimensionHashTable::Entry* DimensionHashTable::ProbeLocked(
    int64_t key) const {
  const size_t mask = Mask();
  size_t idx = Mix64(static_cast<uint64_t>(key)) & mask;
  for (;;) {
    const Entry& e = slots_[idx];
    if (!e.used) return nullptr;
    if (e.key == key) return &e;
    idx = (idx + 1) & mask;
  }
}

DimensionHashTable::Entry* DimensionHashTable::FindSlotLocked(int64_t key) {
  const size_t mask = Mask();
  size_t idx = Mix64(static_cast<uint64_t>(key)) & mask;
  for (;;) {
    Entry& e = slots_[idx];
    if (!e.used || e.key == key) return &e;
    idx = (idx + 1) & mask;
  }
}

void DimensionHashTable::RehashLocked() {
  const size_t old_cap = slots_.size();
  const size_t new_cap = old_cap * 2;
  std::vector<Entry> old_slots = std::move(slots_);
  std::unique_ptr<uint64_t[]> old_words = std::move(words_);

  slots_.assign(new_cap, Entry{});
  words_.reset(new uint64_t[new_cap * width_]());
  for (size_t i = 0; i < new_cap; ++i) slots_[i].bits = &words_[i * width_];

  const size_t mask = new_cap - 1;
  for (const Entry& e : old_slots) {
    if (!e.used) continue;
    size_t idx = Mix64(static_cast<uint64_t>(e.key)) & mask;
    while (slots_[idx].used) idx = (idx + 1) & mask;
    Entry& dst = slots_[idx];
    dst.key = e.key;
    dst.row = e.row;
    dst.used = true;
    bitops::Copy(dst.bits, e.bits, width_);
  }
}

DimensionHashTable::Entry* DimensionHashTable::InsertOrGet(
    int64_t key, const uint8_t* row) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  if ((size_ + 1) * 10 > slots_.size() * 7) RehashLocked();
  Entry* e = FindSlotLocked(key);
  if (e->used) return e;
  e->key = key;
  e->row = row;
  e->used = true;
  // New tuples start as "b_Dj" — not selected by any query referencing
  // D_j, implicitly selected by every query that does not reference it.
  for (size_t w = 0; w < width_; ++w) {
    e->bits[w] = bitops::AtomicLoadWord(complement_.get(), w);
  }
  ++size_;
  return e;
}

void DimensionHashTable::SetEntryBit(Entry* entry, size_t query_id,
                                     bool value) {
  if (value) {
    bitops::AtomicSetBit(entry->bits, query_id);
  } else {
    bitops::AtomicClearBit(entry->bits, query_id);
  }
}

void DimensionHashTable::SetBitForAllEntries(size_t query_id, bool value) {
  std::shared_lock<std::shared_mutex> lk(mu_);
  for (Entry& e : slots_) {
    if (!e.used) continue;
    if (value) {
      bitops::AtomicSetBit(e.bits, query_id);
    } else {
      bitops::AtomicClearBit(e.bits, query_id);
    }
  }
}

size_t DimensionHashTable::RemoveDeadEntries(const uint64_t* active_mask) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  size_t removed = 0;
  // Collect surviving entries, then rebuild in place (linear probing does
  // not support in-place deletion without tombstones).
  std::vector<Entry> survivors;
  std::vector<uint64_t> survivor_bits;
  survivors.reserve(size_);
  for (const Entry& e : slots_) {
    if (!e.used) continue;
    bool dead = true;
    for (size_t w = 0; w < width_; ++w) {
      const uint64_t relevant = e.bits[w] & active_mask[w];
      const uint64_t comp =
          bitops::AtomicLoadWord(complement_.get(), w) & active_mask[w];
      if (relevant != comp) {
        dead = false;
        break;
      }
    }
    if (dead) {
      ++removed;
      continue;
    }
    survivors.push_back(e);
    for (size_t w = 0; w < width_; ++w) survivor_bits.push_back(e.bits[w]);
  }
  if (removed == 0) return 0;

  for (Entry& e : slots_) {
    e.used = false;
  }
  const size_t mask = Mask();
  for (size_t i = 0; i < survivors.size(); ++i) {
    const Entry& src = survivors[i];
    size_t idx = Mix64(static_cast<uint64_t>(src.key)) & mask;
    while (slots_[idx].used) idx = (idx + 1) & mask;
    Entry& dst = slots_[idx];
    dst.key = src.key;
    dst.row = src.row;
    dst.used = true;
    bitops::Copy(dst.bits, &survivor_bits[i * width_], width_);
  }
  size_ = survivors.size();
  return removed;
}

}  // namespace cjoin
