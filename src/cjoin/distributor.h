// The Distributor (paper §3.1, §3.2.2, §3.3).
//
// Terminal pipeline component: routes each surviving fact tuple to the
// aggregation operator of every query whose bit is set (one virtual
// "output" per concurrent query), handles query-start control tuples
// (sets up the query's aggregation operator) and query-end control tuples
// (finalizes the operator, delivers the result, and notifies the Pipeline
// Manager to run the cleanup of Algorithm 2).
//
// The Distributor is where the §3.3.3 ordering property is enforced: it
// advances through epochs strictly in order (see EpochTracker), buffering
// early data and holding back control tuples until their epoch drains.

#ifndef CJOIN_CJOIN_DISTRIBUTOR_H_
#define CJOIN_CJOIN_DISTRIBUTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cjoin/epoch_tracker.h"
#include "cjoin/query_runtime.h"
#include "cjoin/tuple_slot.h"
#include "common/queue.h"
#include "common/tuple_pool.h"
#include "obs/metrics.h"

namespace cjoin {

/// Query ids whose Algorithm-2 cleanup is due (distributor -> manager).
using CleanupQueue = BoundedQueue<uint32_t>;

class Distributor {
 public:
  Distributor(size_t num_dims, size_t width_words, size_t max_queries,
              TuplePool* pool, EpochTracker* epochs, BatchQueue* in,
              CleanupQueue* cleanup);

  /// Thread body; returns when the input queue closes and drains.
  void Run();

  uint64_t tuples_routed() const {
    return routed_.load(std::memory_order_relaxed);
  }
  uint64_t queries_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  /// Queries terminated early (cancelled or deadline-expired).
  uint64_t queries_cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  void HandleBatch(TupleBatch batch);
  void ProcessDataBatch(TupleBatch& batch);
  void TryAdvance();
  void ProcessControl(TupleSlot* slot);

  size_t num_dims_;
  size_t width_;
  TuplePool* pool_;
  EpochTracker* epochs_;
  BatchQueue* in_;
  CleanupQueue* cleanup_;

  /// Live queries by id (installed at query-start, removed at query-end).
  std::vector<QueryRuntime*> live_;

  uint64_t current_epoch_ = 0;
  std::map<uint64_t, std::vector<TupleBatch>> pending_data_;
  /// Held-back control tuples keyed by the epoch they close. Keyed (not
  /// FIFO) because a multi-threaded Stage can reorder two back-to-back
  /// control batches in flight; exactly one control closes each epoch.
  std::map<uint64_t, TupleBatch> pending_controls_;

  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cancelled_{0};

  /// Engine-wide telemetry (registered in the constructor; lock-free).
  obs::Counter* obs_routed_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_cancelled_ = nullptr;
};

}  // namespace cjoin

#endif  // CJOIN_CJOIN_DISTRIBUTOR_H_
