#include "cjoin/stage.h"

#include <algorithm>
#include <cstring>

#include "cjoin/query_runtime.h"
#include "common/bitvector.h"
#include "common/mutex.h"
#include "obs/flight_recorder.h"

namespace cjoin {

Stage::Stage(std::string name, const Schema* fact_schema, size_t num_dims,
             size_t width_words, std::shared_ptr<const FilterOrder> filters,
             BatchQueue* in, BatchQueue* out, bool owns_output,
             TuplePool* pool, EpochTracker* epochs)
    : name_(std::move(name)),
      fact_schema_(fact_schema),
      num_dims_(num_dims),
      width_(width_words),
      order_(std::move(filters)),
      in_(in),
      out_(out),
      owns_output_(owns_output),
      pool_(pool),
      epochs_(epochs) {
  auto& reg = obs::MetricsRegistry::Global();
  const std::string label = obs::LabelPair("stage", name_);
  batch_ns_ = reg.GetHistogram("cjoin_stage_batch_ns",
                               "Per-batch filter time by pipeline stage",
                               label);
  tuples_dropped_ = reg.GetCounter(
      "cjoin_stage_tuples_dropped_total",
      "Fact tuples dropped by a stage's filters", label);
}

void Stage::Start(size_t num_threads) {
  live_workers_.store(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    // The worker's flight-recorder track name; fixed here so the loop
    // never touches threads_ concurrently with this emplacing loop.
    std::string track = thread_label_.empty() ? name_ : thread_label_;
    if (num_threads > 1) track += "." + std::to_string(i);
    threads_.emplace_back(
        [this, track = std::move(track)] { WorkerLoop(track); });
  }
}

void Stage::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

namespace {

/// Hoisted foreign-key load: the column's offset and physical width are
/// resolved once per filter, not per tuple (what Schema::GetIntAny would
/// redo for every probe).
inline int64_t LoadFkKey(const uint8_t* row, uint32_t offset, bool is_i32) {
  if (is_i32) {
    int32_t v;
    std::memcpy(&v, row + offset, sizeof(v));
    return static_cast<int64_t>(v);
  }
  int64_t v;
  std::memcpy(&v, row + offset, sizeof(v));
  return v;
}

}  // namespace

size_t Stage::FilterBatch(TupleBatch* batch, const FilterOrder& filters) {
  size_t live = batch->slots.size();
  TupleSlot** slots = batch->slots.data();
  const size_t probe_batch = std::min(probe_batch_, kGatherCap);

  for (Filter* f : filters) {
    if (live == 0) break;
    const size_t in_before = live;
    DimensionHashTable* table = f->table.get();
    const uint64_t* comp = table->complement();
    const size_t dim_index = f->dim_index;
    const Column& fk = fact_schema_->column(f->fact_fk_col);
    const uint32_t fk_offset = fk.offset;
    const bool fk_is_i32 = fk.type == DataType::kInt32;

    // Hold the shared lock for the whole batch: entry pointers stay valid
    // and the per-probe cost is one uncontended atomic in the common case.
    ReaderMutexLock lk(&table->mutex());

    if (probe_batch <= 1) {
      // Scalar arm (probe_batch_size=1): one table probe per tuple, each
      // eating its full memory latency. Kept as the A/B reference for
      // bench_dim_probe and the byte-identity tests.
      size_t i = 0;
      while (i < live) {
        TupleSlot* slot = slots[i];
        uint64_t* bits = slot->bits(num_dims_);

        // Probe-skipping optimization (§3.2.2): if every query this tuple
        // is still relevant to ignores D_j, the filtering vector is
        // all-ones on those bits — skip the probe.
        uint64_t relevant = 0;
        for (size_t w = 0; w < width_; ++w) {
          relevant |= bits[w] & ~bitops::AtomicLoadWord(comp, w);
        }
        if (relevant == 0) {
          ++i;
          continue;
        }

        const int64_t key = LoadFkKey(slot->fact_row, fk_offset, fk_is_i32);
        const DimensionHashTable::Entry* entry = table->ProbeLocked(key);
        const uint64_t* filter_vec = entry != nullptr ? entry->bits : comp;
        const bool alive =
            bitops::AndIntoAtomicSrc(bits, filter_vec, width_);
        if (entry != nullptr) {
          slot->dim_rows()[dim_index] = entry->row;
        }
        if (alive) {
          ++i;
        } else {
          // Dead tuple: release and compact.
          pool_->Release(slot);
          slots[i] = slots[live - 1];
          --live;
        }
      }
    } else {
      // Batched arm: gather -> batch-probe -> resolve. The gather pass
      // applies the §3.2.2 probe-skip test and collects the keys of the
      // tuples that do need a probe; ProbeBatchLocked then overlaps all
      // their bucket fetches via software prefetch; the resolve pass ANDs
      // filtering vectors and compacts. Survivor multiset (and therefore
      // every query result) is identical to the scalar arm — only the
      // within-batch order of survivors differs, which aggregation is
      // insensitive to.
      TupleSlot* cand[kGatherCap];
      int64_t keys[kGatherCap];
      const DimensionHashTable::Entry* ents[kGatherCap];
      size_t out = 0;  // surviving-slot write cursor (always <= read pos)
      size_t r = 0;
      while (r < live) {
        size_t m = 0;
        while (r < live && m < probe_batch) {
          TupleSlot* slot = slots[r++];
          uint64_t* bits = slot->bits(num_dims_);
          uint64_t relevant = 0;
          for (size_t w = 0; w < width_; ++w) {
            relevant |= bits[w] & ~bitops::AtomicLoadWord(comp, w);
          }
          if (relevant == 0) {
            // Probe skipped: the tuple survives this filter unchanged.
            slots[out++] = slot;
            continue;
          }
          keys[m] = LoadFkKey(slot->fact_row, fk_offset, fk_is_i32);
          cand[m++] = slot;
        }
        table->ProbeBatchLocked(keys, ents, m);
        for (size_t j = 0; j < m; ++j) {
          TupleSlot* slot = cand[j];
          uint64_t* bits = slot->bits(num_dims_);
          const DimensionHashTable::Entry* entry = ents[j];
          const uint64_t* filter_vec = entry != nullptr ? entry->bits : comp;
          const bool alive =
              bitops::AndIntoAtomicSrc(bits, filter_vec, width_);
          if (entry != nullptr) {
            slot->dim_rows()[dim_index] = entry->row;
          }
          if (alive) {
            slots[out++] = slot;
          } else {
            pool_->Release(slot);
          }
        }
      }
      live = out;
    }

    f->tuples_in.fetch_add(in_before, std::memory_order_relaxed);
    f->tuples_dropped.fetch_add(in_before - live,
                                std::memory_order_relaxed);
  }

  const size_t dropped = batch->slots.size() - live;
  batch->slots.resize(live);
  return dropped;
}

void Stage::WorkerLoop(const std::string& track) {
  obs::RegisterThread(track);
  for (;;) {
    // Sleep/wake events bracket the blocking pop: the dump pairs each
    // wake with the following sleep into a "busy" timeline slice.
    obs::RecordEvent(obs::EventKind::kStageSleep, track.c_str());
    std::optional<TupleBatch> popped = in_->Pop();
    if (!popped.has_value()) break;  // closed and drained
    TupleBatch batch = std::move(*popped);
    obs::RecordEvent(obs::EventKind::kStageWake, track.c_str(),
                     static_cast<uint32_t>(batch.slots.size()));
    batches_.fetch_add(1, std::memory_order_relaxed);

    if (batch.control) {
      // Control tuples pass through unfiltered (§3.3.1). The query's own
      // start/end controls passing this stage bound its `stage:` span.
      if (!batch.slots.empty()) {
        TupleSlot* slot = batch.slots[0];
        QueryRuntime* rt = slot->runtime;
        if (rt != nullptr && rt->trace != nullptr) {
          const std::string label = rt->trace_prefix + name_;
          if (slot->kind == SlotKind::kQueryStart) {
            rt->trace->BeginSpan(obs::SpanKind::kStage, label.c_str(),
                                 obs::NowNs());
          } else if (slot->kind == SlotKind::kQueryEnd) {
            rt->trace->EndSpan(obs::SpanKind::kStage, label.c_str(),
                               obs::NowNs());
          }
        }
      }
      // Push destroys the moved-from batch on a closed queue, so capture
      // the slot pointers first and return them to the pool on failure.
      // Control slots are not epoch-counted (EmitControl closes the epoch
      // before the control tuple enters the pipeline), so unlike the
      // data path below there is no AddRetired to balance here.
      TupleSlot* const ctrl_slot =
          batch.slots.empty() ? nullptr : batch.slots[0];
      if (!out_->Push(std::move(batch))) {
        if (ctrl_slot != nullptr) pool_->Release(ctrl_slot);
        break;
      }
      continue;
    }

    const int64_t t0 = obs::MetricsEnabled() ? obs::NowNs() : 0;
    std::shared_ptr<const FilterOrder> order = order_.Acquire();
    const size_t dropped = FilterBatch(&batch, *order);
    if (t0 != 0) {
      batch_ns_->Record(static_cast<uint64_t>(obs::NowNs() - t0));
      if (dropped > 0) tuples_dropped_->Add(dropped);
    }
    if (dropped > 0) epochs_->AddRetired(batch.epoch, dropped);
    if (!batch.slots.empty()) {
      const uint64_t epoch = batch.epoch;
      const size_t n = batch.slots.size();
      if (!out_->Push(std::move(batch))) {
        // Downstream closed during shutdown; balance the accounting.
        epochs_->AddRetired(epoch, n);
        break;
      }
    }
  }
  if (live_workers_.fetch_sub(1) == 1 && owns_output_) {
    out_->Close();
  }
}

}  // namespace cjoin
