#include "cjoin/distributor.h"

#include <cassert>

#include "common/bitvector.h"
#include "obs/flight_recorder.h"

namespace cjoin {

Distributor::Distributor(size_t num_dims, size_t width_words,
                         size_t max_queries, TuplePool* pool,
                         EpochTracker* epochs, BatchQueue* in,
                         CleanupQueue* cleanup)
    : num_dims_(num_dims),
      width_(width_words),
      pool_(pool),
      epochs_(epochs),
      in_(in),
      cleanup_(cleanup) {
  live_.assign(max_queries, nullptr);
  auto& reg = obs::MetricsRegistry::Global();
  obs_routed_ = reg.GetCounter("cjoin_tuples_routed_total",
                               "Fact tuples delivered to aggregators");
  obs_completed_ = reg.GetCounter("cjoin_queries_completed_total",
                                  "Pipeline queries completed normally");
  obs_cancelled_ = reg.GetCounter(
      "cjoin_queries_cancelled_total",
      "Pipeline queries terminated early (cancel/deadline)");
}

void Distributor::ProcessDataBatch(TupleBatch& batch) {
  for (TupleSlot* slot : batch.slots) {
    const uint64_t* bits = slot->bits(num_dims_);
    const uint8_t* const* dim_rows = slot->dim_rows();
    bitops::ForEachSetBit(bits, width_, [&](size_t qid) {
      QueryRuntime* rt = live_[qid];
      // A set bit with no live query can only mean a protocol violation;
      // epoch ordering guarantees the start tuple was processed first.
      assert(rt != nullptr && "tuple routed to unregistered query");
      if (rt != nullptr && rt->aggregator != nullptr) {
        rt->aggregator->Consume(slot->fact_row, dim_rows);
      }
    });
    routed_.fetch_add(1, std::memory_order_relaxed);
    pool_->Release(slot);
  }
  obs_routed_->Add(batch.slots.size());
  epochs_->AddRetired(batch.epoch, batch.slots.size());
  batch.slots.clear();
}

void Distributor::ProcessControl(TupleSlot* slot) {
  QueryRuntime* rt = slot->runtime;
  if (slot->kind == SlotKind::kQueryStart) {
    assert(rt->aggregator != nullptr &&
           "admission must create the aggregation operator");
    live_[rt->query_id] = rt;
    if (rt->trace != nullptr) {
      rt->trace->BeginSpan(obs::SpanKind::kStage,
                           (rt->trace_prefix + "dist").c_str(),
                           QueryRuntime::NowNs());
    }
  } else {
    assert(slot->kind == SlotKind::kQueryEnd);
    live_[rt->query_id] = nullptr;
    const int64_t done = QueryRuntime::NowNs();
    rt->completed_ns.store(done);
    obs::RecordEvent(obs::EventKind::kQueryDone,
                     (rt->trace_prefix + "dist").c_str(), rt->query_id);
    if (rt->trace != nullptr) {
      rt->trace->EndSpan(obs::SpanKind::kStage,
                         (rt->trace_prefix + "dist").c_str(), done);
    }
    // A query deregistered early (cancelled / deadline-expired) delivers
    // its terminal status instead of a (partial, meaningless) result.
    const TerminalReason reason = rt->terminal.load(std::memory_order_acquire);
    // Counters are bumped before the promise resolves so a caller that
    // wakes from Wait() observes consistent stats.
    if (reason == TerminalReason::kNone) {
      ResultSet rs = rt->aggregator->Finish();
      rt->phase.store(QueryPhase::kCompleted);
      completed_.fetch_add(1, std::memory_order_relaxed);
      obs_completed_->Add();
      rt->Deliver(std::move(rs));
    } else {
      rt->phase.store(QueryPhase::kCancelled);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      obs_cancelled_->Add();
      rt->Deliver(
          reason == TerminalReason::kDeadline
              ? Status::DeadlineExceeded("query deadline expired mid-lap")
              : Status::Cancelled("query cancelled"));
    }
    cleanup_->Push(rt->query_id);
  }
  pool_->Release(slot);
}

void Distributor::TryAdvance() {
  for (;;) {
    // The control closing the current epoch may fire only once every data
    // slot of that epoch has been consumed or dropped.
    auto ctrl = pending_controls_.find(current_epoch_);
    if (ctrl == pending_controls_.end() ||
        !epochs_->Complete(current_epoch_)) {
      return;
    }
    ProcessControl(ctrl->second.slots[0]);
    pending_controls_.erase(ctrl);
    epochs_->Recycle(current_epoch_);
    ++current_epoch_;
    // Release any data of the newly opened epoch that arrived early.
    auto it = pending_data_.find(current_epoch_);
    if (it != pending_data_.end()) {
      for (TupleBatch& b : it->second) ProcessDataBatch(b);
      pending_data_.erase(it);
    }
  }
}

void Distributor::HandleBatch(TupleBatch batch) {
  if (batch.control) {
    const uint64_t e = batch.epoch;
    pending_controls_.emplace(e, std::move(batch));
  } else if (batch.epoch == current_epoch_) {
    ProcessDataBatch(batch);
  } else {
    assert(batch.epoch > current_epoch_);
    pending_data_[batch.epoch].push_back(std::move(batch));
  }
  TryAdvance();
}

void Distributor::Run() {
  for (;;) {
    // A timed pop, not a blocking one: the epoch that a held-back control
    // tuple is waiting on can complete via a Filter *dropping* the last
    // outstanding tuples, which produces no downstream batch to wake us.
    // Re-checking TryAdvance on timeout guarantees progress.
    std::optional<TupleBatch> popped =
        in_->PopWithTimeout(std::chrono::microseconds(500));
    if (!popped.has_value()) {
      TryAdvance();
      if (in_->closed() && in_->empty()) break;  // closed and drained
      continue;
    }
    HandleBatch(std::move(*popped));
  }
  // Shutdown: release anything left unprocessed.
  for (auto& [epoch, batches] : pending_data_) {
    for (TupleBatch& b : batches) {
      epochs_->AddRetired(b.epoch, b.slots.size());
      for (TupleSlot* s : b.slots) pool_->Release(s);
      b.slots.clear();
    }
  }
  pending_data_.clear();
  for (auto& [epoch, b] : pending_controls_) {
    for (TupleSlot* s : b.slots) pool_->Release(s);
  }
  pending_controls_.clear();
}

}  // namespace cjoin
