// In-flight tuple representation (paper §3.2.2, §4).
//
// Every fact tuple moving through the pipeline is a pool-allocated slot
// holding: the fact row pointer, the epoch tag (for control/data ordering,
// see EpochTracker), attached dimension-row pointers (§3.2.2 "attach to
// tau memory pointers to the joining dimension tuples"), and the query
// bit-vector b_tau inline. Control tuples (query start/end, §3.3) travel
// through the same queues as data so their relative order is preserved.
//
// The slot is a variable-size structure: layout depends on the number of
// dimensions and the bit-vector width, both fixed per pipeline, so slots
// come from a TuplePool with stride SlotStride(dims, words).

#ifndef CJOIN_CJOIN_TUPLE_SLOT_H_
#define CJOIN_CJOIN_TUPLE_SLOT_H_

#include <cstdint>
#include <vector>

#include "common/queue.h"

namespace cjoin {

struct QueryRuntime;

/// What a slot carries.
enum class SlotKind : uint32_t {
  kData = 0,
  kQueryStart = 1,  ///< control: query registered; payload = runtime
  kQueryEnd = 2,    ///< control: query completed; payload = runtime
};

/// Header of a pool slot; dim pointers and bit words follow inline.
struct TupleSlot {
  const uint8_t* fact_row = nullptr;  ///< payload pointer (kData)
  QueryRuntime* runtime = nullptr;    ///< control payload (kQueryStart/End)
  uint64_t epoch = 0;
  SlotKind kind = SlotKind::kData;
  uint32_t pad_ = 0;

  /// Attached dimension row pointers (num_dims entries).
  const uint8_t** dim_rows() {
    return reinterpret_cast<const uint8_t**>(this + 1);
  }
  const uint8_t* const* dim_rows() const {
    return reinterpret_cast<const uint8_t* const*>(this + 1);
  }

  /// Query bit-vector words (width_words entries), after the dim rows.
  uint64_t* bits(size_t num_dims) {
    return reinterpret_cast<uint64_t*>(dim_rows() + num_dims);
  }
  const uint64_t* bits(size_t num_dims) const {
    return reinterpret_cast<const uint64_t*>(dim_rows() + num_dims);
  }
};

/// Pool stride for a pipeline with `num_dims` dimensions and
/// `width_words` bit-vector words.
inline size_t SlotStride(size_t num_dims, size_t width_words) {
  return sizeof(TupleSlot) + num_dims * sizeof(const uint8_t*) +
         width_words * sizeof(uint64_t);
}

/// Unit of queue transfer: a batch of slots from one epoch. Control slots
/// travel alone in their own batch.
struct TupleBatch {
  uint64_t epoch = 0;
  bool control = false;
  std::vector<TupleSlot*> slots;

  bool empty() const { return slots.empty(); }
  size_t size() const { return slots.size(); }
};

using BatchQueue = BoundedQueue<TupleBatch>;

}  // namespace cjoin

#endif  // CJOIN_CJOIN_TUPLE_SLOT_H_
