// Blocking client for the CJOIN wire protocol.
//
// One CjoinClient is one TCP session: Connect() performs the HELLO
// handshake (binding the session to a tenant), then Query / Ingest /
// Stats issue one request at a time and block for the reply. Query
// streams: an optional callback observes each ROW_BATCH as it arrives,
// before the final QUERY_DONE materializes the full ResultSet.
//
// The client is deliberately synchronous — it is the building block for
// the interactive CLI, the loopback tests, and the open-loop bench
// (which gets concurrency from many connections, the workload shape the
// server is built for). Not thread-safe; use one instance per thread.

#ifndef CJOIN_NET_CLIENT_H_
#define CJOIN_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/router.h"
#include "exec/result_set.h"
#include "net/protocol.h"

namespace cjoin {
namespace net {

class CjoinClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Tenant this session submits as ("" = the default tenant).
    std::string tenant;
  };

  struct QueryResult {
    ResultSet result;
    uint64_t snapshot = 0;
    /// Server-side seconds from submission to result delivery.
    double response_seconds = 0.0;
    /// v2: the server's per-query span trace as compact JSON (empty when
    /// the server runs with metrics disabled or speaks v1).
    std::string trace_json;
  };

  explicit CjoinClient(Options options) : opts_(std::move(options)) {}
  CjoinClient() : CjoinClient(Options{}) {}
  ~CjoinClient() { Close(); }

  CjoinClient(const CjoinClient&) = delete;
  CjoinClient& operator=(const CjoinClient&) = delete;

  /// Connects and performs the HELLO handshake.
  Status Connect();

  /// Hard-closes the socket (no protocol goodbye — also how the tests
  /// simulate a client dying mid-query). Idempotent.
  void Close();

  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }

  /// Executes `sql` against the star, streaming ROW_BATCH frames through
  /// `on_batch` (may be null) and returning the materialized result.
  /// Engine-side failures (admission shed, cancel, deadline, parse
  /// errors) surface as the Status carried by the server's ERROR frame.
  Result<QueryResult> Query(
      const std::string& star, const std::string& sql,
      int64_t timeout_ns = 0,
      const std::function<void(const RowBatchFrame&)>& on_batch = nullptr,
      RoutePolicy policy = RoutePolicy::kAuto);

  /// Sends a QUERY frame without waiting for any reply. Returns the
  /// request id. Used to put a query in flight before disconnecting or
  /// cancelling.
  Result<uint64_t> StartQuery(const std::string& star, const std::string& sql,
                              int64_t timeout_ns = 0,
                              RoutePolicy policy = RoutePolicy::kAuto);

  /// Sends CANCEL for an id returned by StartQuery.
  Status Cancel(uint64_t request_id);

  /// Waits for the outcome of a StartQuery id, streaming batches.
  Result<QueryResult> Await(
      uint64_t request_id,
      const std::function<void(const RowBatchFrame&)>& on_batch = nullptr);

  /// Appends typed rows (one Value per fact column) through the server's
  /// MVCC commit path. Returns the commit snapshot.
  Result<uint64_t> Ingest(const std::string& star,
                          std::vector<std::vector<Value>> rows);

  /// Server + engine statistics as a JSON object string.
  Result<std::string> Stats();

  /// Trace JSON carried by the most recent successful Query/Await on this
  /// session ("" when none). Lets the shell's \trace show the last query
  /// without callers threading QueryResult around.
  const std::string& last_trace() const { return last_trace_; }

 private:
  Status SendAll(const std::vector<uint8_t>& bytes);
  /// Reads exactly one frame (blocking).
  Result<Frame> ReadFrame();
  /// Next frame addressed to `request_id` (or a connection-level ERROR,
  /// id 0). Frames of other outstanding requests arriving in between are
  /// stashed for their own Await call — replies demultiplex by id, not
  /// arrival order.
  Result<Frame> NextFrameFor(uint64_t request_id);
  /// Drops stashed frames of a finished request.
  void PurgeStash(uint64_t request_id);

  Options opts_;
  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t next_request_id_ = 1;
  std::deque<Frame> stash_;
  std::string last_trace_;
};

}  // namespace net
}  // namespace cjoin

#endif  // CJOIN_NET_CLIENT_H_
