// The network serving front-end: an epoll-based TCP server over the
// QueryEngine.
//
// CandeaPV09's pitch is predictable performance for thousands of
// concurrent clients; this is the wire those clients arrive on. The
// server speaks the length-prefixed protocol of net/protocol.h and maps
// it onto the engine's unified submission path:
//
//   * every QUERY flows through QueryEngine::Execute(QueryRequest) →
//     QueryTicket, so admission shedding surfaces to the client as an
//     ERROR frame carrying the Status code (kResourceExhausted), never
//     as a stalled connection;
//   * results stream back as ROW_BATCH frames followed by QUERY_DONE,
//     chunked rather than buffered as one giant frame;
//   * a client disconnect mid-query cancels its outstanding tickets
//     through the engine's cooperative-cancellation path, releasing the
//     CJOIN bit-vector registrations;
//   * INGEST appends rows to the fact table through the MVCC commit path
//     (AppendFacts) and acks with the commit snapshot.
//
// Threading model (all TSan-clean):
//   * one event-loop thread: non-blocking accept/read/write on an
//     edge-triggered epoll set, woken by an eventfd for cross-thread
//     sends and close requests; it alone touches socket fds;
//   * a small worker pool decodes frames and runs engine calls; frames
//     of one connection are dispatched to at most one worker at a time,
//     preserving per-connection order;
//   * one completion poller collects finished tickets (non-blocking
//     Ready() sweeps) and enqueues their response frames, so in-flight
//     queries never pin a thread each.

#ifndef CJOIN_NET_SERVER_H_
#define CJOIN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "engine/query_engine.h"
#include "net/protocol.h"

namespace cjoin {
namespace net {

class CjoinServer {
 public:
  struct Options {
    /// Listen address. Port 0 binds an ephemeral port (see port()).
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Frame-decode / engine-submission workers.
    size_t workers = 4;
    /// Rows per ROW_BATCH frame of a streamed result.
    size_t batch_rows = 512;
    /// A connection whose unsent output exceeds this is dropped as a slow
    /// consumer instead of buffering without bound.
    size_t max_outbox_bytes = 64u << 20;
    /// Completion-poller sweep interval while queries are outstanding.
    std::chrono::microseconds poll_interval{200};
    /// Cap on simultaneously open client connections; accepts beyond it
    /// are closed immediately.
    size_t max_connections = 4096;
  };

  /// Monotonic counters (all totals since Start).
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_active = 0;
    uint64_t frames_received = 0;
    uint64_t queries_started = 0;
    uint64_t queries_ok = 0;
    uint64_t queries_error = 0;  ///< ERROR frames sent for queries
    uint64_t rows_streamed = 0;
    uint64_t batches_streamed = 0;
    uint64_t rows_ingested = 0;
    uint64_t cancels_received = 0;
    uint64_t protocol_errors = 0;
  };

  /// The engine must outlive the server.
  CjoinServer(QueryEngine* engine, Options options);
  ~CjoinServer();

  CjoinServer(const CjoinServer&) = delete;
  CjoinServer& operator=(const CjoinServer&) = delete;

  /// Binds, listens, and starts the event loop, workers, and poller.
  Status Start();

  /// Stops accepting, cancels every in-flight query, closes every
  /// connection, and joins all threads. Idempotent; called by ~CjoinServer.
  void Stop();

  /// The bound TCP port (valid after Start; resolves port 0 binds).
  uint16_t port() const { return port_; }

  Stats GetStats() const;

 private:
  struct Connection;

  /// One client query in flight: the engine ticket plus the connection
  /// awaiting its result. Owned by the completion poller; also indexed by
  /// the connection for CANCEL and disconnect.
  struct PendingQuery {
    uint64_t request_id = 0;
    std::unique_ptr<QueryTicket> ticket;
    std::shared_ptr<Connection> conn;
  };

  // --- event-loop thread ---
  void EventLoop();
  void AcceptLoop();
  void ReadLoop(const std::shared_ptr<Connection>& conn);
  /// Writes the outbox until EAGAIN or empty; closes on error / after a
  /// flush that a protocol error requested.
  void FlushOutbox(const std::shared_ptr<Connection>& conn);
  void ProcessWakeups();
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  // --- worker threads ---
  void WorkerLoop();
  void HandleFrames(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, const Frame& f);
  void HandleQuery(const std::shared_ptr<Connection>& conn, QueryFrame f);
  void HandleIngest(const std::shared_ptr<Connection>& conn, IngestFrame f);
  std::string BuildStatsJson();

  // --- completion poller ---
  void PollerLoop();
  void ResolvePending(const std::shared_ptr<PendingQuery>& pq);

  // --- cross-thread helpers ---
  /// Enqueues an encoded frame on the connection's outbox and wakes the
  /// event loop to write it. Drops silently if the connection is closed.
  void SendBytes(const std::shared_ptr<Connection>& conn,
                 std::vector<uint8_t> bytes);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t id,
                 const Status& status);
  /// Connection-level protocol violation: ERROR(id=0) then close.
  void ProtocolError(const std::shared_ptr<Connection>& conn,
                     const std::string& message);
  /// Marks the connection dirty (has output / wants close) and signals
  /// the event loop's eventfd.
  void WakeLoop(const std::shared_ptr<Connection>& conn);

  QueryEngine* engine_;
  Options opts_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread loop_thread_;
  std::vector<std::thread> worker_threads_;
  std::thread poller_thread_;

  /// fd → connection; event-loop thread only.
  std::map<int, std::shared_ptr<Connection>> conns_;

  /// Connections with pending output or a close request, awaiting the
  /// event loop.
  Mutex dirty_mu_;
  std::vector<std::weak_ptr<Connection>> dirty_ GUARDED_BY(dirty_mu_);

  /// Connections with undispatched frames, awaiting a worker.
  Mutex work_mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Connection>> work_queue_ GUARDED_BY(work_mu_);
  bool work_closed_ GUARDED_BY(work_mu_) = false;

  /// Outstanding tickets, awaiting the completion poller.
  Mutex poll_mu_;
  CondVar poll_cv_;
  std::vector<std::shared_ptr<PendingQuery>> polled_ GUARDED_BY(poll_mu_);

  std::atomic<uint64_t> next_session_id_{1};

  // Counters (relaxed; read by GetStats).
  std::atomic<uint64_t> n_accepted_{0};
  std::atomic<uint64_t> n_active_{0};
  std::atomic<uint64_t> n_frames_{0};
  std::atomic<uint64_t> n_queries_{0};
  std::atomic<uint64_t> n_queries_ok_{0};
  std::atomic<uint64_t> n_queries_error_{0};
  std::atomic<uint64_t> n_rows_{0};
  std::atomic<uint64_t> n_batches_{0};
  std::atomic<uint64_t> n_ingested_{0};
  std::atomic<uint64_t> n_cancels_{0};
  std::atomic<uint64_t> n_protocol_errors_{0};
};

}  // namespace net
}  // namespace cjoin

#endif  // CJOIN_NET_SERVER_H_
