#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cjoin {
namespace net {

namespace {

Status Errno(const char* op) {
  return Status::IOError(std::string(op) + ": " + std::strerror(errno));
}

/// Every server frame after HELLO leads with the u64 request id it
/// answers.
Result<uint64_t> FrameRequestId(const Frame& f) {
  WireReader r(f.payload);
  return r.U64();
}

}  // namespace

Status CjoinClient::Connect() {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address '" + opts_.host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect");
    Close();
    return st;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HelloRequest hello;
  hello.tenant = opts_.tenant;
  if (Status st = SendAll(EncodeHelloRequest(hello)); !st.ok()) {
    Close();
    return st;
  }
  auto frame = ReadFrame();
  if (!frame.ok()) {
    Close();
    return frame.status();
  }
  if (frame->type == FrameType::kError) {
    auto err = DecodeError(frame->payload);
    Close();
    return err.ok() ? err->ToStatus()
                    : Status::Internal("undecodable ERROR frame");
  }
  if (frame->type != FrameType::kHello) {
    Close();
    return Status::Internal(std::string("expected HELLO reply, got ") +
                            FrameTypeName(frame->type));
  }
  auto reply = DecodeHelloReply(frame->payload);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  session_id_ = reply->session_id;
  return Status::OK();
}

void CjoinClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stash_.clear();
}

Status CjoinClient::SendAll(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> CjoinClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  uint8_t header[kFrameHeaderSize];
  size_t off = 0;
  while (off < sizeof(header)) {
    const ssize_t n = ::recv(fd_, header + off, sizeof(header) - off, 0);
    if (n == 0) return Status::IOError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    off += static_cast<size_t>(n);
  }
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("server frame exceeds protocol cap");
  }
  Frame f;
  f.type = static_cast<FrameType>(header[4]);
  f.payload.resize(len);
  off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd_, f.payload.data() + off, len - off, 0);
    if (n == 0) return Status::IOError("connection closed mid-frame");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    off += static_cast<size_t>(n);
  }
  return f;
}

Result<Frame> CjoinClient::NextFrameFor(uint64_t request_id) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    auto id = FrameRequestId(*it);
    if (id.ok() && (*id == request_id || *id == 0)) {
      Frame f = std::move(*it);
      stash_.erase(it);
      return f;
    }
  }
  while (true) {
    CJOIN_ASSIGN_OR_RETURN(Frame f, ReadFrame());
    CJOIN_ASSIGN_OR_RETURN(uint64_t id, FrameRequestId(f));
    if (id == request_id || id == 0) return f;
    stash_.push_back(std::move(f));
  }
}

void CjoinClient::PurgeStash(uint64_t request_id) {
  for (auto it = stash_.begin(); it != stash_.end();) {
    auto id = FrameRequestId(*it);
    it = (id.ok() && *id == request_id) ? stash_.erase(it) : it + 1;
  }
}

Result<uint64_t> CjoinClient::StartQuery(const std::string& star,
                                         const std::string& sql,
                                         int64_t timeout_ns,
                                         RoutePolicy policy) {
  QueryFrame q;
  q.id = next_request_id_++;
  q.timeout_ns = timeout_ns;
  q.policy = static_cast<uint8_t>(policy);
  q.star = star;
  q.sql = sql;
  CJOIN_RETURN_IF_ERROR(SendAll(EncodeQuery(q)));
  return q.id;
}

Status CjoinClient::Cancel(uint64_t request_id) {
  CancelFrame c;
  c.id = request_id;
  return SendAll(EncodeCancel(c));
}

Result<CjoinClient::QueryResult> CjoinClient::Await(
    uint64_t request_id,
    const std::function<void(const RowBatchFrame&)>& on_batch) {
  QueryResult out;
  while (true) {
    CJOIN_ASSIGN_OR_RETURN(Frame f, NextFrameFor(request_id));
    switch (f.type) {
      case FrameType::kRowBatch: {
        CJOIN_ASSIGN_OR_RETURN(RowBatchFrame batch, DecodeRowBatch(f.payload));
        if (batch.first) out.result.columns = batch.columns;
        for (auto& row : batch.rows) out.result.rows.push_back(std::move(row));
        if (on_batch) on_batch(batch);
        break;
      }
      case FrameType::kQueryDone: {
        CJOIN_ASSIGN_OR_RETURN(QueryDoneFrame done, DecodeQueryDone(f.payload));
        out.result.tuples_consumed = done.tuples_consumed;
        out.snapshot = done.snapshot;
        out.response_seconds = done.response_seconds;
        out.trace_json = done.trace_json;
        last_trace_ = std::move(done.trace_json);
        if (out.result.rows.size() != done.total_rows) {
          return Status::Internal(
              "row count mismatch: streamed " +
              std::to_string(out.result.rows.size()) + ", QUERY_DONE says " +
              std::to_string(done.total_rows));
        }
        PurgeStash(request_id);
        return out;
      }
      case FrameType::kError: {
        CJOIN_ASSIGN_OR_RETURN(ErrorFrame err, DecodeError(f.payload));
        PurgeStash(request_id);
        return err.ToStatus();
      }
      default:
        return Status::Internal(std::string("unexpected frame ") +
                                FrameTypeName(f.type) +
                                " while awaiting query result");
    }
  }
}

Result<CjoinClient::QueryResult> CjoinClient::Query(
    const std::string& star, const std::string& sql, int64_t timeout_ns,
    const std::function<void(const RowBatchFrame&)>& on_batch,
    RoutePolicy policy) {
  CJOIN_ASSIGN_OR_RETURN(uint64_t id,
                         StartQuery(star, sql, timeout_ns, policy));
  return Await(id, on_batch);
}

Result<uint64_t> CjoinClient::Ingest(const std::string& star,
                                     std::vector<std::vector<Value>> rows) {
  IngestFrame ing;
  ing.id = next_request_id_++;
  ing.star = star;
  ing.rows = std::move(rows);
  CJOIN_RETURN_IF_ERROR(SendAll(EncodeIngest(ing)));
  while (true) {
    CJOIN_ASSIGN_OR_RETURN(Frame f, NextFrameFor(ing.id));
    if (f.type == FrameType::kIngest) {
      CJOIN_ASSIGN_OR_RETURN(IngestReply reply, DecodeIngestReply(f.payload));
      return reply.snapshot;
    }
    if (f.type == FrameType::kError) {
      CJOIN_ASSIGN_OR_RETURN(ErrorFrame err, DecodeError(f.payload));
      return err.ToStatus();
    }
    return Status::Internal(std::string("unexpected frame ") +
                            FrameTypeName(f.type) + " as INGEST reply");
  }
}

Result<std::string> CjoinClient::Stats() {
  StatsRequest req;
  req.id = next_request_id_++;
  CJOIN_RETURN_IF_ERROR(SendAll(EncodeStatsRequest(req)));
  while (true) {
    CJOIN_ASSIGN_OR_RETURN(Frame f, NextFrameFor(req.id));
    if (f.type == FrameType::kStats) {
      CJOIN_ASSIGN_OR_RETURN(StatsReply reply, DecodeStatsReply(f.payload));
      return reply.json;
    }
    if (f.type == FrameType::kError) {
      CJOIN_ASSIGN_OR_RETURN(ErrorFrame err, DecodeError(f.payload));
      return err.ToStatus();
    }
    return Status::Internal(std::string("unexpected frame ") +
                            FrameTypeName(f.type) + " as STATS reply");
  }
}

}  // namespace net
}  // namespace cjoin
