#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "storage/types.h"

namespace cjoin {
namespace net {

namespace {

Status Errno(const char* op) {
  return Status::IOError(std::string(op) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

/// Per-connection state. Socket I/O fields (fd, assembler) belong to the
/// event-loop thread exclusively; everything else is guarded by mu. The
/// fd is closed only by the event loop, so a Connection outliving its
/// socket (held by a PendingQuery) is harmless.
struct CjoinServer::Connection
    : std::enable_shared_from_this<CjoinServer::Connection> {
  explicit Connection(int fd_in) : fd(fd_in) {}

  const int fd;
  uint64_t session_id = 0;  ///< set at accept, read-only afterwards

  FrameAssembler assembler;  ///< event-loop thread only

  Mutex mu;
  std::string tenant GUARDED_BY(mu);
  bool hello_done GUARDED_BY(mu) = false;
  /// Frames parsed but not yet handled. At most one worker drains a
  /// connection at a time (`dispatching`), preserving frame order.
  std::deque<Frame> pending GUARDED_BY(mu);
  bool dispatching GUARDED_BY(mu) = false;
  /// Encoded frames awaiting the socket; head_off is the written prefix
  /// of outbox.front().
  std::deque<std::vector<uint8_t>> outbox GUARDED_BY(mu);
  size_t head_off GUARDED_BY(mu) = 0;
  size_t outbox_bytes GUARDED_BY(mu) = 0;
  bool close_requested GUARDED_BY(mu) = false;  ///< close now (cancel +
                                                ///< drop output)
  bool close_after_flush GUARDED_BY(mu) = false;  ///< close once the
                                                  ///< outbox drains
  bool closed GUARDED_BY(mu) = false;
  /// Queries awaiting results, by client request id.
  std::map<uint64_t, std::shared_ptr<PendingQuery>> inflight GUARDED_BY(mu);
};

CjoinServer::CjoinServer(QueryEngine* engine, Options options)
    : engine_(engine), opts_(options) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.batch_rows == 0) opts_.batch_rows = 1;
}

CjoinServer::~CjoinServer() { Stop(); }

Status CjoinServer::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 1024) < 0) return Errno("listen");
  CJOIN_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(eventfd)");
  }

  loop_thread_ = std::thread([this] {
    obs::RegisterThread("net/loop");
    EventLoop();
  });
  for (size_t i = 0; i < opts_.workers; ++i) {
    worker_threads_.emplace_back([this, i] {
      obs::RegisterThread("net/wk" + std::to_string(i));
      WorkerLoop();
    });
  }
  poller_thread_ = std::thread([this] {
    obs::RegisterThread("net/poll");
    PollerLoop();
  });
  return Status::OK();
}

void CjoinServer::Stop() {
  if (!running_.load()) return;
  if (stopping_.exchange(true)) {
    // A second caller (e.g. the destructor after an explicit Stop) must
    // not re-join the threads.
    return;
  }

  // Wake the event loop; it closes every connection (cancelling their
  // in-flight tickets) and exits.
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();

  {
    MutexLock lk(&work_mu_);
    work_closed_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();

  poll_cv_.NotifyAll();
  if (poller_thread_.joinable()) poller_thread_.join();

  // Reap what the poller left: cancel and drop. Dropping a ticket is
  // safe — the engine resolves its promise independently — but cancel
  // first so pipeline registrations are released promptly.
  std::vector<std::shared_ptr<PendingQuery>> leftover;
  {
    MutexLock lk(&poll_mu_);
    leftover.swap(polled_);
  }
  for (auto& pq : leftover) {
    if (pq->ticket != nullptr) pq->ticket->Cancel();
  }

  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  running_.store(false);
}

CjoinServer::Stats CjoinServer::GetStats() const {
  Stats s;
  s.connections_accepted = n_accepted_.load(std::memory_order_relaxed);
  s.connections_active = n_active_.load(std::memory_order_relaxed);
  s.frames_received = n_frames_.load(std::memory_order_relaxed);
  s.queries_started = n_queries_.load(std::memory_order_relaxed);
  s.queries_ok = n_queries_ok_.load(std::memory_order_relaxed);
  s.queries_error = n_queries_error_.load(std::memory_order_relaxed);
  s.rows_streamed = n_rows_.load(std::memory_order_relaxed);
  s.batches_streamed = n_batches_.load(std::memory_order_relaxed);
  s.rows_ingested = n_ingested_.load(std::memory_order_relaxed);
  s.cancels_received = n_cancels_.load(std::memory_order_relaxed);
  s.protocol_errors = n_protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------ Event loop -----------------------------------

void CjoinServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptLoop();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        ProcessWakeups();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) ReadLoop(conn);
      if (events[i].events & EPOLLOUT) FlushOutbox(conn);
    }
    if (stopping_.load()) break;
  }
  // Shutdown sweep: close every connection, cancelling its queries.
  while (!conns_.empty()) {
    CloseConnection(conns_.begin()->second);
  }
}

void CjoinServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; epoll will retry
    }
    if (conns_.size() >= opts_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    conn->session_id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    n_accepted_.fetch_add(1, std::memory_order_relaxed);
    n_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CjoinServer::ReadLoop(const std::shared_ptr<Connection>& conn) {
  uint8_t buf[64 * 1024];
  bool got_frames = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (Status st = conn->assembler.Feed(buf, static_cast<size_t>(n));
          !st.ok()) {
        ProtocolError(conn, st.message());
        return;
      }
      Frame f;
      while (conn->assembler.Next(&f)) {
        n_frames_.fetch_add(1, std::memory_order_relaxed);
        obs::RecordEvent(obs::EventKind::kNetFrameIn, FrameTypeName(f.type),
                         static_cast<uint32_t>(f.payload.size()));
        MutexLock lk(&conn->mu);
        if (conn->closed || conn->close_requested) return;
        conn->pending.push_back(std::move(f));
        got_frames = true;
      }
      continue;  // edge-triggered: drain until EAGAIN
    }
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  if (got_frames) {
    bool schedule = false;
    {
      MutexLock lk(&conn->mu);
      if (!conn->dispatching && !conn->closed) {
        conn->dispatching = true;
        schedule = true;
      }
    }
    if (schedule) {
      {
        MutexLock lk(&work_mu_);
        work_queue_.push_back(conn);
      }
      work_cv_.NotifyOne();
    }
  }
}

void CjoinServer::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  {
    MutexLock lk(&conn->mu);
    if (conn->closed) return;
    while (!conn->outbox.empty()) {
      const std::vector<uint8_t>& head = conn->outbox.front();
      const ssize_t n =
          ::send(conn->fd, head.data() + conn->head_off,
                 head.size() - conn->head_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->head_off += static_cast<size_t>(n);
        conn->outbox_bytes -= static_cast<size_t>(n);
        if (conn->head_off == head.size()) {
          conn->outbox.pop_front();
          conn->head_off = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // EPOLLOUT edge will resume
      }
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // peer went away
      break;
    }
    if (!close_now && conn->outbox.empty() && conn->close_after_flush) {
      close_now = true;
    }
  }
  if (close_now) CloseConnection(conn);
}

void CjoinServer::ProcessWakeups() {
  std::vector<std::weak_ptr<Connection>> dirty;
  {
    MutexLock lk(&dirty_mu_);
    dirty.swap(dirty_);
  }
  for (auto& weak : dirty) {
    std::shared_ptr<Connection> conn = weak.lock();
    if (conn == nullptr) continue;
    bool close_now = false;
    {
      MutexLock lk(&conn->mu);
      if (conn->closed) continue;
      close_now = conn->close_requested;
    }
    if (close_now) {
      CloseConnection(conn);
    } else {
      FlushOutbox(conn);
    }
  }
}

void CjoinServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  std::map<uint64_t, std::shared_ptr<PendingQuery>> inflight;
  {
    MutexLock lk(&conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->pending.clear();
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    inflight.swap(conn->inflight);
  }
  // Disconnect-driven cancellation: the engine's cooperative path
  // deregisters each query mid-lap and releases its CJOIN registration.
  // The tickets stay with the completion poller, which reaps and
  // discards their terminal results.
  for (auto& [id, pq] : inflight) {
    if (pq->ticket != nullptr) pq->ticket->Cancel();
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  n_active_.fetch_sub(1, std::memory_order_relaxed);
}

// ------------------------------- Workers -------------------------------------

void CjoinServer::WorkerLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    {
      MutexLock lk(&work_mu_);
      while (!work_closed_ && work_queue_.empty()) {
        work_cv_.Wait(work_mu_);
      }
      if (work_queue_.empty()) return;  // closed and drained
      conn = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    HandleFrames(conn);
  }
}

void CjoinServer::HandleFrames(const std::shared_ptr<Connection>& conn) {
  while (true) {
    std::deque<Frame> batch;
    {
      MutexLock lk(&conn->mu);
      if (conn->pending.empty() || conn->closed) {
        conn->dispatching = false;
        return;
      }
      batch.swap(conn->pending);
    }
    for (const Frame& f : batch) HandleFrame(conn, f);
  }
}

void CjoinServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              const Frame& f) {
  bool hello_done;
  {
    MutexLock lk(&conn->mu);
    if (conn->closed || conn->close_requested || conn->close_after_flush) {
      return;
    }
    hello_done = conn->hello_done;
  }

  if (!hello_done && f.type != FrameType::kHello) {
    ProtocolError(conn, std::string("first frame must be HELLO, got ") +
                            FrameTypeName(f.type));
    return;
  }

  switch (f.type) {
    case FrameType::kHello: {
      auto hello = DecodeHelloRequest(f.payload);
      if (!hello.ok()) {
        ProtocolError(conn, hello.status().message());
        return;
      }
      {
        MutexLock lk(&conn->mu);
        conn->tenant = hello->tenant;
        conn->hello_done = true;
      }
      HelloReply reply;
      reply.session_id = conn->session_id;
      SendBytes(conn, EncodeHelloReply(reply));
      return;
    }
    case FrameType::kQuery: {
      auto q = DecodeQuery(f.payload);
      if (!q.ok()) {
        ProtocolError(conn, q.status().message());
        return;
      }
      HandleQuery(conn, std::move(*q));
      return;
    }
    case FrameType::kCancel: {
      auto c = DecodeCancel(f.payload);
      if (!c.ok()) {
        ProtocolError(conn, c.status().message());
        return;
      }
      n_cancels_.fetch_add(1, std::memory_order_relaxed);
      std::shared_ptr<PendingQuery> pq;
      {
        MutexLock lk(&conn->mu);
        auto it = conn->inflight.find(c->id);
        if (it != conn->inflight.end()) pq = it->second;
      }
      // Unknown ids are ignored: the query may have completed while the
      // CANCEL was in flight — exactly the race CANCEL semantics allow.
      if (pq != nullptr && pq->ticket != nullptr) pq->ticket->Cancel();
      return;
    }
    case FrameType::kIngest: {
      auto ing = DecodeIngest(f.payload);
      if (!ing.ok()) {
        ProtocolError(conn, ing.status().message());
        return;
      }
      HandleIngest(conn, std::move(*ing));
      return;
    }
    case FrameType::kStats: {
      auto req = DecodeStatsRequest(f.payload);
      if (!req.ok()) {
        ProtocolError(conn, req.status().message());
        return;
      }
      StatsReply reply;
      reply.id = req->id;
      reply.json = BuildStatsJson();
      SendBytes(conn, EncodeStatsReply(reply));
      return;
    }
    case FrameType::kRowBatch:
    case FrameType::kQueryDone:
    case FrameType::kError:
      ProtocolError(conn, std::string("server-only frame type ") +
                              FrameTypeName(f.type) + " from client");
      return;
  }
  ProtocolError(conn, "unknown frame type " +
                          std::to_string(static_cast<int>(f.type)));
}

void CjoinServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                              QueryFrame f) {
  std::string tenant;
  {
    MutexLock lk(&conn->mu);
    if (conn->inflight.count(f.id) != 0) {
      SendError(conn, f.id,
                Status::InvalidArgument("request id already in flight"));
      return;
    }
    tenant = conn->tenant;
  }

  QueryRequest req = QueryRequest::Sql(f.star, f.sql);
  req.tenant = std::move(tenant);
  req.priority = f.priority;
  req.policy = static_cast<RoutePolicy>(f.policy);
  if (f.timeout_ns > 0) req.timeout = std::chrono::nanoseconds(f.timeout_ns);

  n_queries_.fetch_add(1, std::memory_order_relaxed);
  auto ticket = engine_->Execute(std::move(req));
  if (!ticket.ok()) {
    // Malformed request (parse / binding errors). Admission shedding
    // does NOT land here — it resolves through the ticket below.
    n_queries_error_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, f.id, ticket.status());
    return;
  }

  auto pq = std::make_shared<PendingQuery>();
  pq->request_id = f.id;
  pq->ticket = std::move(*ticket);
  pq->conn = conn;
  {
    MutexLock lk(&conn->mu);
    if (conn->closed) {
      // Raced a disconnect: nobody will read the result.
      pq->ticket->Cancel();
      return;
    }
    conn->inflight.emplace(f.id, pq);
  }
  {
    MutexLock lk(&poll_mu_);
    polled_.push_back(std::move(pq));
  }
  poll_cv_.NotifyOne();
}

void CjoinServer::HandleIngest(const std::shared_ptr<Connection>& conn,
                               IngestFrame f) {
  auto star = engine_->FindStar(f.star);
  if (!star.ok()) {
    SendError(conn, f.id, star.status());
    return;
  }
  const Schema& schema = (*star)->fact().schema();

  // Convert typed wire rows into the fact table's physical row layout.
  std::vector<std::vector<uint8_t>> rows;
  rows.reserve(f.rows.size());
  for (size_t r = 0; r < f.rows.size(); ++r) {
    const std::vector<Value>& in = f.rows[r];
    if (in.size() != schema.num_columns()) {
      SendError(conn, f.id,
                Status::InvalidArgument(
                    "ingest row " + std::to_string(r) + " has " +
                    std::to_string(in.size()) + " values, fact table has " +
                    std::to_string(schema.num_columns()) + " columns"));
      return;
    }
    std::vector<uint8_t> payload(schema.row_size(), 0);
    for (size_t c = 0; c < in.size(); ++c) {
      const Column& col = schema.column(c);
      const Value& v = in[c];
      bool ok = true;
      switch (col.type) {
        case DataType::kInt32:
          ok = v.is_int();
          if (ok) {
            schema.SetInt32(payload.data(), c,
                            static_cast<int32_t>(v.AsInt()));
          }
          break;
        case DataType::kInt64:
          ok = v.is_int();
          if (ok) schema.SetInt64(payload.data(), c, v.AsInt());
          break;
        case DataType::kDouble:
          ok = v.is_numeric();
          if (ok) schema.SetDouble(payload.data(), c, v.AsDouble());
          break;
        case DataType::kChar:
          ok = v.is_string();
          if (ok) schema.SetChar(payload.data(), c, v.AsString());
          break;
      }
      if (!ok) {
        SendError(conn, f.id,
                  Status::InvalidArgument(
                      "ingest row " + std::to_string(r) + " column '" +
                      col.name + "': value kind does not match column type"));
        return;
      }
    }
    rows.push_back(std::move(payload));
  }

  auto snapshot = engine_->AppendFacts(f.star, rows);
  if (!snapshot.ok()) {
    SendError(conn, f.id, snapshot.status());
    return;
  }
  n_ingested_.fetch_add(rows.size(), std::memory_order_relaxed);
  IngestReply reply;
  reply.id = f.id;
  reply.snapshot = *snapshot;
  reply.rows_appended = rows.size();
  SendBytes(conn, EncodeIngestReply(reply));
}

std::string CjoinServer::BuildStatsJson() {
  const AdmissionController::Stats adm = engine_->AdmissionStats();
  const Stats s = GetStats();
  std::string json = "{";
  auto field = [&json](const char* name, uint64_t v, bool first = false) {
    if (!first) json += ",";
    json += "\"";
    json += name;
    json += "\":";
    json += std::to_string(v);
  };
  field("snapshot", engine_->CurrentSnapshot(), true);
  field("cjoin_inflight", adm.total_cjoin_inflight);
  field("baseline_in_system", adm.total_baseline_in_system);
  field("admission_waiting", adm.total_waiting);
  field("connections_active", s.connections_active);
  field("queries_started", s.queries_started);
  field("queries_ok", s.queries_ok);
  field("queries_error", s.queries_error);
  field("rows_streamed", s.rows_streamed);
  field("rows_ingested", s.rows_ingested);
  field("slow_queries_captured",
        engine_->slow_query_log().total_captured());
  // v2: the full engine metrics registry rides along as a nested object,
  // after the flat legacy keys so existing consumers keep working.
  json += ",\"metrics\":";
  json += engine_->metrics().RenderJson();
  // v3: the slow-query log (JSON array, newest first; empty while the
  // threshold is unset).
  json += ",\"slow_queries\":";
  json += engine_->slow_query_log().ToJson();
  json += "}";
  return json;
}

// --------------------------- Completion poller -------------------------------

void CjoinServer::PollerLoop() {
  std::vector<std::shared_ptr<PendingQuery>> ready;
  while (true) {
    {
      MutexLock lk(&poll_mu_);
      if (polled_.empty()) {
        while (!stopping_.load() && polled_.empty()) {
          poll_cv_.Wait(poll_mu_);
        }
      } else {
        // A plain nap between sweeps; an early wakeup (new ticket parked,
        // stop requested) just sweeps sooner.
        poll_cv_.WaitFor(poll_mu_, opts_.poll_interval);
      }
      if (stopping_.load()) return;  // Stop() reaps the leftovers
      // Sweep: move finished tickets out, keep the rest parked.
      ready.clear();
      for (size_t i = 0; i < polled_.size();) {
        if (polled_[i]->ticket->Ready()) {
          ready.push_back(std::move(polled_[i]));
          polled_[i] = std::move(polled_.back());
          polled_.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (auto& pq : ready) ResolvePending(pq);
    ready.clear();
  }
}

void CjoinServer::ResolvePending(const std::shared_ptr<PendingQuery>& pq) {
  Result<ResultSet> result = pq->ticket->Wait();
  const std::shared_ptr<Connection>& conn = pq->conn;

  bool conn_open;
  {
    MutexLock lk(&conn->mu);
    conn->inflight.erase(pq->request_id);
    conn_open = !conn->closed;
  }
  if (!conn_open) {
    // Disconnected client: the result is reaped and discarded (its
    // cancellation already released the engine-side registration).
    n_queries_error_.fetch_add(result.ok() ? 0 : 1, std::memory_order_relaxed);
    return;
  }

  if (!result.ok()) {
    // Admission shedding, cancellation, deadlines, aborts: one uniform
    // ERROR frame carrying the engine's Status code.
    n_queries_error_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, pq->request_id, result.status());
    return;
  }

  // Stream the materialized result as ROW_BATCH chunks + QUERY_DONE.
  const std::shared_ptr<obs::QueryTrace>& trace = pq->ticket->trace();
  const int64_t stream0 = trace != nullptr ? obs::NowNs() : 0;
  std::vector<std::vector<uint8_t>> batches =
      EncodeResultBatches(pq->request_id, *result, opts_.batch_rows);
  for (auto& b : batches) SendBytes(conn, std::move(b));
  n_batches_.fetch_add(batches.size(), std::memory_order_relaxed);
  n_rows_.fetch_add(result->rows.size(), std::memory_order_relaxed);

  QueryDoneFrame done;
  done.id = pq->request_id;
  done.total_rows = result->rows.size();
  done.tuples_consumed = result->tuples_consumed;
  done.snapshot = pq->ticket->snapshot();
  done.response_seconds = pq->ticket->ResponseSeconds();
  if (trace != nullptr) {
    // Serialization + enqueue time; the tail (socket flush) happens
    // after QUERY_DONE is built, so it cannot be in its own payload.
    trace->AddSpan(obs::SpanKind::kNetStream, "", stream0, obs::NowNs());
    done.trace_json = trace->ToJson();
  }
  // Count before the frame goes out: a client that saw QUERY_DONE and
  // immediately asked for STATS must see this query in queries_ok.
  n_queries_ok_.fetch_add(1, std::memory_order_relaxed);
  SendBytes(conn, EncodeQueryDone(done));
}

// ------------------------- Cross-thread helpers ------------------------------

void CjoinServer::SendBytes(const std::shared_ptr<Connection>& conn,
                            std::vector<uint8_t> bytes) {
  obs::RecordEvent(obs::EventKind::kNetFrameOut, "out",
                   static_cast<uint32_t>(bytes.size()));
  {
    MutexLock lk(&conn->mu);
    if (conn->closed || conn->close_requested) return;
    conn->outbox_bytes += bytes.size();
    conn->outbox.push_back(std::move(bytes));
    if (conn->outbox_bytes > opts_.max_outbox_bytes) {
      // Slow consumer: dropping the connection beats buffering without
      // bound. Its in-flight queries are cancelled by the close path.
      conn->close_requested = true;
    }
  }
  WakeLoop(conn);
}

void CjoinServer::SendError(const std::shared_ptr<Connection>& conn,
                            uint64_t id, const Status& status) {
  ErrorFrame err;
  err.id = id;
  err.code = status.code();
  err.message = status.message();
  SendBytes(conn, EncodeError(err));
}

void CjoinServer::ProtocolError(const std::shared_ptr<Connection>& conn,
                                const std::string& message) {
  n_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  ErrorFrame err;
  err.id = 0;
  err.code = StatusCode::kInvalidArgument;
  err.message = message;
  std::vector<uint8_t> bytes = EncodeError(err);
  {
    MutexLock lk(&conn->mu);
    if (conn->closed || conn->close_requested) return;
    conn->outbox_bytes += bytes.size();
    conn->outbox.push_back(std::move(bytes));
    conn->close_after_flush = true;
    conn->pending.clear();  // no further frames from this peer
  }
  WakeLoop(conn);
}

void CjoinServer::WakeLoop(const std::shared_ptr<Connection>& conn) {
  {
    MutexLock lk(&dirty_mu_);
    dirty_.push_back(conn);
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace net
}  // namespace cjoin
