#include "net/protocol.h"

#include <cstring>

namespace cjoin {
namespace net {

namespace {

/// Value kind tags on the wire (independent of Value::Kind's numeric
/// values, which are an in-memory detail).
enum WireValueKind : uint8_t {
  kWireNull = 0,
  kWireInt = 1,
  kWireDouble = 2,
  kWireString = 3,
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated frame payload: ") +
                                 what);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kRowBatch:
      return "ROW_BATCH";
    case FrameType::kQueryDone:
      return "QUERY_DONE";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kCancel:
      return "CANCEL";
    case FrameType::kIngest:
      return "INGEST";
    case FrameType::kStats:
      return "STATS";
  }
  return "UNKNOWN";
}

// ------------------------------ WireWriter -----------------------------------

void WireWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::PutValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      PutU8(kWireNull);
      break;
    case Value::Kind::kInt:
      PutU8(kWireInt);
      PutI64(v.AsInt());
      break;
    case Value::Kind::kDouble:
      PutU8(kWireDouble);
      PutF64(v.AsDouble());
      break;
    case Value::Kind::kString:
      PutU8(kWireString);
      PutString(v.AsString());
      break;
  }
}

// ------------------------------ WireReader -----------------------------------

Result<uint8_t> WireReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return data_[pos_++];
}

Result<uint16_t> WireReader::U16() {
  if (remaining() < 2) return Truncated("u16");
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::U32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> WireReader::I32() {
  CJOIN_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> WireReader::I64() {
  CJOIN_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::F64() {
  CJOIN_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::String() {
  CJOIN_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (len > kMaxStringLen) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds protocol cap");
  }
  if (remaining() < len) return Truncated("string body");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> WireReader::ReadValue() {
  CJOIN_ASSIGN_OR_RETURN(uint8_t kind, U8());
  switch (kind) {
    case kWireNull:
      return Value();
    case kWireInt: {
      CJOIN_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value(v);
    }
    case kWireDouble: {
      CJOIN_ASSIGN_OR_RETURN(double v, F64());
      return Value(v);
    }
    case kWireString: {
      CJOIN_ASSIGN_OR_RETURN(std::string s, String());
      return Value(std::move(s));
    }
    default:
      return Status::InvalidArgument("unknown value kind tag " +
                                     std::to_string(kind));
  }
}

Status WireReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::InvalidArgument(std::to_string(remaining()) +
                                   " trailing bytes after frame payload");
  }
  return Status::OK();
}

// ------------------------------ Encoders -------------------------------------

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& f) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU16(kProtocolVersion);
  w.PutString(f.tenant);
  return EncodeFrame(FrameType::kHello, w.bytes());
}

std::vector<uint8_t> EncodeHelloReply(const HelloReply& f) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU16(kProtocolVersion);
  w.PutU64(f.session_id);
  return EncodeFrame(FrameType::kHello, w.bytes());
}

std::vector<uint8_t> EncodeQuery(const QueryFrame& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutI64(f.timeout_ns);
  w.PutI32(f.priority);
  w.PutU8(f.policy);
  w.PutString(f.star);
  w.PutString(f.sql);
  return EncodeFrame(FrameType::kQuery, w.bytes());
}

std::vector<uint8_t> EncodeRowBatch(const RowBatchFrame& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutU8(f.first ? 1 : 0);
  if (f.first) {
    w.PutU16(static_cast<uint16_t>(f.columns.size()));
    for (const std::string& c : f.columns) w.PutString(c);
  }
  w.PutU32(static_cast<uint32_t>(f.rows.size()));
  if (!f.rows.empty()) {
    w.PutU16(static_cast<uint16_t>(f.rows[0].size()));
    for (const auto& row : f.rows) {
      for (const Value& v : row) w.PutValue(v);
    }
  } else {
    w.PutU16(0);
  }
  return EncodeFrame(FrameType::kRowBatch, w.bytes());
}

std::vector<uint8_t> EncodeQueryDone(const QueryDoneFrame& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutU64(f.total_rows);
  w.PutU64(f.tuples_consumed);
  w.PutU64(f.snapshot);
  w.PutF64(f.response_seconds);
  // v2 tail, omitted entirely when empty (v1-compatible frame).
  if (!f.trace_json.empty()) w.PutString(f.trace_json);
  return EncodeFrame(FrameType::kQueryDone, w.bytes());
}

std::vector<uint8_t> EncodeError(const ErrorFrame& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutU16(static_cast<uint16_t>(f.code));
  w.PutString(f.message);
  return EncodeFrame(FrameType::kError, w.bytes());
}

std::vector<uint8_t> EncodeCancel(const CancelFrame& f) {
  WireWriter w;
  w.PutU64(f.id);
  return EncodeFrame(FrameType::kCancel, w.bytes());
}

std::vector<uint8_t> EncodeIngest(const IngestFrame& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutString(f.star);
  w.PutU32(static_cast<uint32_t>(f.rows.size()));
  w.PutU16(f.rows.empty() ? 0 : static_cast<uint16_t>(f.rows[0].size()));
  for (const auto& row : f.rows) {
    for (const Value& v : row) w.PutValue(v);
  }
  return EncodeFrame(FrameType::kIngest, w.bytes());
}

std::vector<uint8_t> EncodeIngestReply(const IngestReply& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutU64(f.snapshot);
  w.PutU64(f.rows_appended);
  return EncodeFrame(FrameType::kIngest, w.bytes());
}

std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& f) {
  WireWriter w;
  w.PutU64(f.id);
  return EncodeFrame(FrameType::kStats, w.bytes());
}

std::vector<uint8_t> EncodeStatsReply(const StatsReply& f) {
  WireWriter w;
  w.PutU64(f.id);
  w.PutString(f.json);
  return EncodeFrame(FrameType::kStats, w.bytes());
}

// ------------------------------ Decoders -------------------------------------

Result<HelloRequest> DecodeHelloRequest(const std::vector<uint8_t>& p) {
  WireReader r(p);
  CJOIN_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) {
    return Status::InvalidArgument("bad protocol magic");
  }
  CJOIN_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  HelloRequest f;
  CJOIN_ASSIGN_OR_RETURN(f.tenant, r.String());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<HelloReply> DecodeHelloReply(const std::vector<uint8_t>& p) {
  WireReader r(p);
  CJOIN_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) {
    return Status::InvalidArgument("bad protocol magic");
  }
  CJOIN_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  HelloReply f;
  CJOIN_ASSIGN_OR_RETURN(f.session_id, r.U64());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<QueryFrame> DecodeQuery(const std::vector<uint8_t>& p) {
  WireReader r(p);
  QueryFrame f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.timeout_ns, r.I64());
  CJOIN_ASSIGN_OR_RETURN(f.priority, r.I32());
  CJOIN_ASSIGN_OR_RETURN(f.policy, r.U8());
  if (f.policy > 2) {
    return Status::InvalidArgument("unknown route policy " +
                                   std::to_string(f.policy));
  }
  CJOIN_ASSIGN_OR_RETURN(f.star, r.String());
  CJOIN_ASSIGN_OR_RETURN(f.sql, r.String());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<RowBatchFrame> DecodeRowBatch(const std::vector<uint8_t>& p) {
  WireReader r(p);
  RowBatchFrame f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(uint8_t first, r.U8());
  f.first = first != 0;
  if (f.first) {
    CJOIN_ASSIGN_OR_RETURN(uint16_t ncols, r.U16());
    f.columns.reserve(ncols);
    for (uint16_t i = 0; i < ncols; ++i) {
      CJOIN_ASSIGN_OR_RETURN(std::string c, r.String());
      f.columns.push_back(std::move(c));
    }
  }
  CJOIN_ASSIGN_OR_RETURN(uint32_t nrows, r.U32());
  CJOIN_ASSIGN_OR_RETURN(uint16_t width, r.U16());
  // A row is at least `width` kind tags: rejects length words that
  // promise more rows than the payload can physically hold.
  if (width > 0 && nrows > r.remaining() / width) {
    return Status::InvalidArgument("row count exceeds payload size");
  }
  if (nrows > 0 && width == 0) {
    return Status::InvalidArgument("row batch with zero-width rows");
  }
  f.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    std::vector<Value> row;
    row.reserve(width);
    for (uint16_t c = 0; c < width; ++c) {
      CJOIN_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      row.push_back(std::move(v));
    }
    f.rows.push_back(std::move(row));
  }
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<QueryDoneFrame> DecodeQueryDone(const std::vector<uint8_t>& p) {
  WireReader r(p);
  QueryDoneFrame f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.total_rows, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.tuples_consumed, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.snapshot, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.response_seconds, r.F64());
  // Optional v2 trace tail: present iff bytes remain. Garbage that is
  // not a well-formed length-prefixed string fails the String() bounds
  // checks, so hostile trailing bytes are still rejected.
  if (!r.AtEnd()) {
    CJOIN_ASSIGN_OR_RETURN(f.trace_json, r.String());
  }
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<ErrorFrame> DecodeError(const std::vector<uint8_t>& p) {
  WireReader r(p);
  ErrorFrame f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(uint16_t code, r.U16());
  if (code > static_cast<uint16_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  f.code = static_cast<StatusCode>(code);
  CJOIN_ASSIGN_OR_RETURN(f.message, r.String());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<CancelFrame> DecodeCancel(const std::vector<uint8_t>& p) {
  WireReader r(p);
  CancelFrame f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<IngestFrame> DecodeIngest(const std::vector<uint8_t>& p) {
  WireReader r(p);
  IngestFrame f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.star, r.String());
  CJOIN_ASSIGN_OR_RETURN(uint32_t nrows, r.U32());
  CJOIN_ASSIGN_OR_RETURN(uint16_t width, r.U16());
  if (width > 0 && nrows > r.remaining() / width) {
    return Status::InvalidArgument("row count exceeds payload size");
  }
  if (nrows > 0 && width == 0) {
    return Status::InvalidArgument("ingest with zero-width rows");
  }
  f.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    std::vector<Value> row;
    row.reserve(width);
    for (uint16_t c = 0; c < width; ++c) {
      CJOIN_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      row.push_back(std::move(v));
    }
    f.rows.push_back(std::move(row));
  }
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<IngestReply> DecodeIngestReply(const std::vector<uint8_t>& p) {
  WireReader r(p);
  IngestReply f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.snapshot, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.rows_appended, r.U64());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<StatsRequest> DecodeStatsRequest(const std::vector<uint8_t>& p) {
  WireReader r(p);
  StatsRequest f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

Result<StatsReply> DecodeStatsReply(const std::vector<uint8_t>& p) {
  WireReader r(p);
  StatsReply f;
  CJOIN_ASSIGN_OR_RETURN(f.id, r.U64());
  CJOIN_ASSIGN_OR_RETURN(f.json, r.String());
  CJOIN_RETURN_IF_ERROR(r.ExpectEnd());
  return f;
}

std::vector<std::vector<uint8_t>> EncodeResultBatches(uint64_t request_id,
                                                      const ResultSet& rs,
                                                      size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  std::vector<std::vector<uint8_t>> out;
  size_t row = 0;
  bool first = true;
  do {
    RowBatchFrame batch;
    batch.id = request_id;
    batch.first = first;
    if (first) batch.columns = rs.columns;
    const size_t end = std::min(rs.rows.size(), row + batch_rows);
    batch.rows.assign(rs.rows.begin() + row, rs.rows.begin() + end);
    out.push_back(EncodeRowBatch(batch));
    row = end;
    first = false;
  } while (row < rs.rows.size());
  return out;
}

// ---------------------------- FrameAssembler ---------------------------------

Status FrameAssembler::Feed(const uint8_t* data, size_t size) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + consumed_);
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
  // Validate the pending header eagerly: a hostile length word fails the
  // connection now, before Next() would try to buffer 4 GiB.
  if (buf_.size() - consumed_ >= kFrameHeaderSize) {
    uint32_t len = 0;
    for (size_t i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(buf_[consumed_ + i]) << (8 * i);
    }
    if (len > kMaxFramePayload) {
      return Status::InvalidArgument("frame payload length " +
                                     std::to_string(len) +
                                     " exceeds protocol cap");
    }
  }
  return Status::OK();
}

bool FrameAssembler::Next(Frame* out) {
  const size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderSize) return false;
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(buf_[consumed_ + i]) << (8 * i);
  }
  if (avail < kFrameHeaderSize + len) return false;
  out->type = static_cast<FrameType>(buf_[consumed_ + 4]);
  const uint8_t* body = buf_.data() + consumed_ + kFrameHeaderSize;
  out->payload.assign(body, body + len);
  consumed_ += kFrameHeaderSize + len;
  return true;
}

}  // namespace net
}  // namespace cjoin
