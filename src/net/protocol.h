// CJOIN wire protocol: length-prefixed binary frames.
//
// The serving front-end speaks a small binary protocol over TCP. Every
// frame is a 5-byte header — u32 payload length (little-endian, header
// excluded) and a u8 frame type — followed by the payload:
//
//   offset  size  field
//   0       4     payload length N (LE; <= kMaxFramePayload)
//   4       1     frame type (FrameType)
//   5       N     payload
//
// Client-initiated frames (HELLO, QUERY, CANCEL, INGEST, STATS) carry a
// client-assigned u64 request id; every server frame echoes the id of the
// request it answers, so a connection can multiplex queries. Payload
// scalars are little-endian fixed width; strings are u32 length + bytes;
// dynamically typed values are a u8 kind tag followed by the
// representation (see WireWriter::PutValue).
//
// Decoding is defensive end to end: every reader is bounds-checked and
// returns kInvalidArgument on truncated, oversized, or garbage input —
// bytes off the wire are hostile until proven otherwise, and a malformed
// frame must never take the server down.

#ifndef CJOIN_NET_PROTOCOL_H_
#define CJOIN_NET_PROTOCOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/result_set.h"
#include "expr/value.h"

namespace cjoin {
namespace net {

/// First bytes of every session: "CJNP" little-endian.
inline constexpr uint32_t kMagic = 0x504E4A43u;
/// v2: QUERY_DONE may carry an optional trailing trace payload (see
/// QueryDoneFrame::trace_json); STATS replies embed the engine metrics
/// registry snapshot under a "metrics" key. Both extensions are
/// tail-optional, so a v1 peer's frames still decode.
inline constexpr uint16_t kProtocolVersion = 2;

/// Frame header: u32 payload length + u8 type.
inline constexpr size_t kFrameHeaderSize = 5;
/// Hard cap on one frame's payload (hostile length words are rejected
/// before any allocation).
inline constexpr size_t kMaxFramePayload = 64u << 20;
/// Hard cap on one encoded string (SQL text, error message, column name).
inline constexpr size_t kMaxStringLen = 16u << 20;

enum class FrameType : uint8_t {
  kHello = 1,      ///< c→s: magic, version, tenant; s→c: magic, version, session id
  kQuery = 2,      ///< c→s: id, timeout_ns, priority, star, sql
  kRowBatch = 3,   ///< s→c: id, flags(+columns when first), rows
  kQueryDone = 4,  ///< s→c: id, total rows, tuples consumed, snapshot, seconds
  kError = 5,      ///< s→c: id (0 = connection-level), status code, message
  kCancel = 6,     ///< c→s: id of the query to cancel
  kIngest = 7,     ///< c→s: id, star, typed rows; s→c: id, snapshot, row count
  kStats = 8,      ///< c→s: id; s→c: id, JSON text
};

/// Stable name for logs and the client CLI ("HELLO", "QUERY", ...).
const char* FrameTypeName(FrameType type);

/// One complete frame, header already stripped.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

// --------------------------- Typed frames ------------------------------------

struct HelloRequest {
  std::string tenant;  ///< admission/scheduling identity ("" = default)
};

struct HelloReply {
  uint64_t session_id = 0;
};

struct QueryFrame {
  uint64_t id = 0;
  int64_t timeout_ns = 0;  ///< relative deadline (0 = none)
  int32_t priority = 0;    ///< baseline-pool priority
  uint8_t policy = 0;      ///< RoutePolicy: 0 auto, 1 cjoin, 2 baseline
  std::string star;
  std::string sql;
};

struct RowBatchFrame {
  uint64_t id = 0;
  /// Set on the first batch of a result stream, which alone carries the
  /// column header.
  bool first = false;
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
};

struct QueryDoneFrame {
  uint64_t id = 0;
  uint64_t total_rows = 0;
  uint64_t tuples_consumed = 0;
  uint64_t snapshot = 0;
  double response_seconds = 0.0;
  /// v2 optional tail: the query's span trace as compact JSON
  /// (QueryTrace::ToJson), empty when the server runs with metrics
  /// disabled or the frame came from a v1 peer. Encoded as a trailing
  /// length-prefixed string only when non-empty; the decoder reads it
  /// only when bytes remain, so v1 frames (no tail) still decode and
  /// trailing garbage still fails the string's own bounds check.
  std::string trace_json;
};

struct ErrorFrame {
  uint64_t id = 0;  ///< 0 = connection-level error; the server closes after
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const { return Status(code, message); }
};

struct CancelFrame {
  uint64_t id = 0;
};

/// Typed ingest rows: one Value per fact-table column, converted to the
/// star's physical row layout server-side (the client never needs the
/// byte-level schema).
struct IngestFrame {
  uint64_t id = 0;
  std::string star;
  std::vector<std::vector<Value>> rows;
};

struct IngestReply {
  uint64_t id = 0;
  uint64_t snapshot = 0;      ///< commit snapshot the rows became visible at
  uint64_t rows_appended = 0;
};

struct StatsRequest {
  uint64_t id = 0;
};

struct StatsReply {
  uint64_t id = 0;
  std::string json;
};

// ----------------------------- Encoding --------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI32(int32_t v) { PutLE(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  void PutString(std::string_view s);
  void PutValue(const Value& v);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian payload cursor. Every read fails with
/// kInvalidArgument instead of walking past the end.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> String();
  Result<Value> ReadValue();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// kInvalidArgument unless the payload was consumed exactly.
  Status ExpectEnd() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Each Encode* returns a complete frame: header plus payload, ready to
// write to a socket.
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);
std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& f);
std::vector<uint8_t> EncodeHelloReply(const HelloReply& f);
std::vector<uint8_t> EncodeQuery(const QueryFrame& f);
std::vector<uint8_t> EncodeRowBatch(const RowBatchFrame& f);
std::vector<uint8_t> EncodeQueryDone(const QueryDoneFrame& f);
std::vector<uint8_t> EncodeError(const ErrorFrame& f);
std::vector<uint8_t> EncodeCancel(const CancelFrame& f);
std::vector<uint8_t> EncodeIngest(const IngestFrame& f);
std::vector<uint8_t> EncodeIngestReply(const IngestReply& f);
std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& f);
std::vector<uint8_t> EncodeStatsReply(const StatsReply& f);

// Each Decode* parses one frame payload (header already stripped).
Result<HelloRequest> DecodeHelloRequest(const std::vector<uint8_t>& p);
Result<HelloReply> DecodeHelloReply(const std::vector<uint8_t>& p);
Result<QueryFrame> DecodeQuery(const std::vector<uint8_t>& p);
Result<RowBatchFrame> DecodeRowBatch(const std::vector<uint8_t>& p);
Result<QueryDoneFrame> DecodeQueryDone(const std::vector<uint8_t>& p);
Result<ErrorFrame> DecodeError(const std::vector<uint8_t>& p);
Result<CancelFrame> DecodeCancel(const std::vector<uint8_t>& p);
Result<IngestFrame> DecodeIngest(const std::vector<uint8_t>& p);
Result<IngestReply> DecodeIngestReply(const std::vector<uint8_t>& p);
Result<StatsRequest> DecodeStatsRequest(const std::vector<uint8_t>& p);
Result<StatsReply> DecodeStatsReply(const std::vector<uint8_t>& p);

/// Splits a materialized ResultSet into ROW_BATCH frames of at most
/// `batch_rows` rows (>= 1 frame even when empty, so the header always
/// reaches the client), encoded and ready to send.
std::vector<std::vector<uint8_t>> EncodeResultBatches(uint64_t request_id,
                                                      const ResultSet& rs,
                                                      size_t batch_rows);

// --------------------------- Frame assembly ----------------------------------

/// Incremental frame parser over a TCP byte stream: feed whatever the
/// socket produced, pop complete frames. A hostile length word fails the
/// connection (Feed returns kInvalidArgument) before any allocation.
class FrameAssembler {
 public:
  Status Feed(const uint8_t* data, size_t size);

  /// Pops the next complete frame into `out`; false when more bytes are
  /// needed.
  bool Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  ///< prefix of buf_ already returned as frames
};

}  // namespace net
}  // namespace cjoin

#endif  // CJOIN_NET_PROTOCOL_H_
