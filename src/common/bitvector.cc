#include "common/bitvector.h"

#include <algorithm>

namespace cjoin {

BitVector::BitVector(size_t nbits)
    : nbits_(nbits), nwords_(bitops::WordsForBits(nbits)) {
  if (nwords_ > kInlineWords) {
    heap_ = new uint64_t[nwords_];
  }
  bitops::Zero(words(), nwords_);
}

void BitVector::AllocFrom(const BitVector& other) {
  nbits_ = other.nbits_;
  nwords_ = other.nwords_;
  if (nwords_ > kInlineWords) {
    heap_ = new uint64_t[nwords_];
  } else {
    heap_ = nullptr;
  }
  bitops::Copy(words(), other.words(), nwords_);
}

BitVector::BitVector(const BitVector& other) { AllocFrom(other); }

BitVector& BitVector::operator=(const BitVector& other) {
  if (this == &other) return *this;
  delete[] heap_;
  AllocFrom(other);
  return *this;
}

BitVector::BitVector(BitVector&& other) noexcept
    : nbits_(other.nbits_), nwords_(other.nwords_), heap_(other.heap_) {
  std::copy(other.inline_, other.inline_ + kInlineWords, inline_);
  other.heap_ = nullptr;
  other.nbits_ = 0;
  other.nwords_ = 0;
}

BitVector& BitVector::operator=(BitVector&& other) noexcept {
  if (this == &other) return *this;
  delete[] heap_;
  nbits_ = other.nbits_;
  nwords_ = other.nwords_;
  heap_ = other.heap_;
  std::copy(other.inline_, other.inline_ + kInlineWords, inline_);
  other.heap_ = nullptr;
  other.nbits_ = 0;
  other.nwords_ = 0;
  return *this;
}

BitVector::~BitVector() { delete[] heap_; }

void BitVector::SetAll() {
  if (nbits_ == 0) return;
  bitops::Fill(words(), nwords_, ~uint64_t{0});
  // Clear the bits beyond nbits_ in the last word so popcount stays exact.
  const size_t used = nbits_ % bitops::kBitsPerWord;
  if (used != 0) {
    words()[nwords_ - 1] &= (uint64_t{1} << used) - 1;
  }
}

bool BitVector::operator==(const BitVector& other) const {
  if (nbits_ != other.nbits_) return false;
  return std::equal(words(), words() + nwords_, other.words());
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(nbits_);
  for (size_t i = 0; i < nbits_; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

}  // namespace cjoin
