// Query bit-vectors (paper §3.1, §3.2).
//
// Every in-flight fact tuple carries a bit-vector b_tau with one bit per
// registered query id; every dimension hash-table entry carries b_delta, and
// every dimension hash table a complementary bitmap b_Dj. The hot path of
// CJOIN is "AND the tuple's vector with a filtering vector, drop if zero",
// so this file provides two layers:
//
//   * bitops::  — free functions over raw uint64_t word arrays. These are
//     what the pipeline uses: tuple slots embed their words inline in
//     pool-allocated memory, and dimension entries update words with atomic
//     read-modify-writes so query admission can proceed concurrently with
//     filtering (paper §3.3.1).
//   * BitVector — an owning convenience type (small-buffer optimized) used
//     off the hot path: bookkeeping, tests, result reporting.

#ifndef CJOIN_COMMON_BITVECTOR_H_
#define CJOIN_COMMON_BITVECTOR_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace cjoin {
namespace bitops {

inline constexpr size_t kBitsPerWord = 64;

/// Number of 64-bit words needed to hold `bits` bits.
inline constexpr size_t WordsForBits(size_t bits) {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}

inline void SetBit(uint64_t* words, size_t i) {
  words[i / kBitsPerWord] |= uint64_t{1} << (i % kBitsPerWord);
}

inline void ClearBit(uint64_t* words, size_t i) {
  words[i / kBitsPerWord] &= ~(uint64_t{1} << (i % kBitsPerWord));
}

inline bool TestBit(const uint64_t* words, size_t i) {
  return (words[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
}

/// Atomically sets bit i. Safe to run concurrently with readers; used when
/// the Pipeline Manager flips query bits in live dimension hash tables.
inline void AtomicSetBit(uint64_t* words, size_t i) {
  std::atomic_ref<uint64_t> w(words[i / kBitsPerWord]);
  w.fetch_or(uint64_t{1} << (i % kBitsPerWord), std::memory_order_relaxed);
}

/// Atomically clears bit i (query finalization, Algorithm 2).
inline void AtomicClearBit(uint64_t* words, size_t i) {
  std::atomic_ref<uint64_t> w(words[i / kBitsPerWord]);
  w.fetch_and(~(uint64_t{1} << (i % kBitsPerWord)),
              std::memory_order_relaxed);
}

inline uint64_t AtomicLoadWord(const uint64_t* words, size_t w) {
  std::atomic_ref<const uint64_t> r(words[w]);
  return r.load(std::memory_order_relaxed);
}

inline void Fill(uint64_t* words, size_t nwords, uint64_t value) {
  for (size_t i = 0; i < nwords; ++i) words[i] = value;
}

inline void Zero(uint64_t* words, size_t nwords) { Fill(words, nwords, 0); }

inline void Copy(uint64_t* dst, const uint64_t* src, size_t nwords) {
  std::memcpy(dst, src, nwords * sizeof(uint64_t));
}

/// dst &= src. Returns true if dst is non-zero afterwards — the filter
/// hot-path operation ("combine and check relevance", §3.2.2).
inline bool AndInto(uint64_t* dst, const uint64_t* src, size_t nwords) {
  uint64_t any = 0;
  for (size_t i = 0; i < nwords; ++i) {
    dst[i] &= src[i];
    any |= dst[i];
  }
  return any != 0;
}

/// Like AndInto but loads `src` words with relaxed atomics; used when the
/// source is a live dimension bit-vector that admission may be mutating.
inline bool AndIntoAtomicSrc(uint64_t* dst, const uint64_t* src,
                             size_t nwords) {
  uint64_t any = 0;
  for (size_t i = 0; i < nwords; ++i) {
    dst[i] &= AtomicLoadWord(src, i);
    any |= dst[i];
  }
  return any != 0;
}

inline void OrInto(uint64_t* dst, const uint64_t* src, size_t nwords) {
  for (size_t i = 0; i < nwords; ++i) dst[i] |= src[i];
}

inline bool IsZero(const uint64_t* words, size_t nwords) {
  uint64_t any = 0;
  for (size_t i = 0; i < nwords; ++i) any |= words[i];
  return any == 0;
}

/// True iff (a AND NOT b) == 0, i.e. a is a subset of b. This implements the
/// probe-skipping test of §3.2.2: if b_tau AND NOT(b_Dj) is zero, the tuple
/// is only relevant to queries that do not reference D_j, so the probe of
/// H_Dj can be skipped entirely.
inline bool AndNotIsZero(const uint64_t* a, const uint64_t* b,
                         size_t nwords) {
  uint64_t any = 0;
  for (size_t i = 0; i < nwords; ++i) any |= (a[i] & ~b[i]);
  return any == 0;
}

inline size_t PopCount(const uint64_t* words, size_t nwords) {
  size_t n = 0;
  for (size_t i = 0; i < nwords; ++i) n += std::popcount(words[i]);
  return n;
}

/// Invokes fn(bit_index) for every set bit, in increasing order. Used by the
/// Distributor to route a surviving tuple to each interested query.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t nwords, Fn&& fn) {
  for (size_t w = 0; w < nwords; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(w * kBitsPerWord + static_cast<size_t>(bit));
      word &= word - 1;
    }
  }
}

}  // namespace bitops

/// Owning fixed-width bit-vector with small-buffer optimization (vectors of
/// up to 256 bits — the paper's maxConc — never allocate).
class BitVector {
 public:
  BitVector() : nbits_(0), nwords_(0) {}

  /// Creates a vector of `nbits` bits, all clear.
  explicit BitVector(size_t nbits);

  BitVector(const BitVector& other);
  BitVector& operator=(const BitVector& other);
  BitVector(BitVector&& other) noexcept;
  BitVector& operator=(BitVector&& other) noexcept;
  ~BitVector();

  size_t size_bits() const { return nbits_; }
  size_t size_words() const { return nwords_; }
  uint64_t* words() { return heap_ ? heap_ : inline_; }
  const uint64_t* words() const { return heap_ ? heap_ : inline_; }

  void Set(size_t i) { bitops::SetBit(words(), i); }
  void Clear(size_t i) { bitops::ClearBit(words(), i); }
  bool Test(size_t i) const { return bitops::TestBit(words(), i); }
  void SetAll();
  void ClearAll() { bitops::Zero(words(), nwords_); }

  bool none() const { return bitops::IsZero(words(), nwords_); }
  bool any() const { return !none(); }
  size_t count() const { return bitops::PopCount(words(), nwords_); }

  bool operator==(const BitVector& other) const;

  /// e.g. "0110" (bit 0 first). Intended for tests and debugging.
  std::string ToString() const;

 private:
  static constexpr size_t kInlineWords = 4;  // 256 bits inline

  void AllocFrom(const BitVector& other);

  size_t nbits_;
  size_t nwords_;
  uint64_t inline_[kInlineWords] = {0, 0, 0, 0};
  uint64_t* heap_ = nullptr;
};

}  // namespace cjoin

#endif  // CJOIN_COMMON_BITVECTOR_H_
