// Portable Clang thread-safety-analysis annotations (tentpole of the
// lock-discipline PR).
//
// CJOIN's value proposition is predictable behavior under hundreds of
// concurrent queries, and the engine is deeply concurrent: pipeline
// stages, the admission controller, the sharded operator pool, dimension
// hash tables, the net server, and the metrics registry all hold
// mutex-protected state. The TSan CI job is a *dynamic* checker — it can
// only catch races the tests happen to execute. These macros add the
// *static* layer: Clang's `-Wthread-safety` analysis proves, at compile
// time and for every code path, that each GUARDED_BY member is only
// touched with its mutex held and that each REQUIRES method is only
// called under the right lock (the approach Abseil-based production
// engines use).
//
// The macros expand to Clang attributes under Clang and to nothing
// elsewhere (GCC builds are unaffected). They annotate the cjoin::Mutex
// family in common/mutex.h — std::mutex itself carries no capability
// attributes in libstdc++, which is why the engine locks through the
// annotated shim.
//
// Conventions for new code (see README "Correctness tooling"):
//   * every member protected by a mutex is GUARDED_BY(mu_);
//   * every private method that assumes the lock is held is
//     REQUIRES(mu_) — and named *Locked() by existing convention;
//   * methods that take a lock internally and must not be called with it
//     held are EXCLUDES(mu_) where a caller could plausibly hold it;
//   * NO_THREAD_SAFETY_ANALYSIS is reserved for condition-variable wait
//     internals and lock-free seqlock paths, each with a comment saying
//     why the analysis cannot see the invariant.
//
// Gate: configure with -DCJOIN_WERROR_THREAD_SAFETY=ON under Clang to
// build with -Wthread-safety -Werror=thread-safety-analysis (the CI
// `thread-safety` job does). tests/annotations_negative.cc proves the
// gate actually rejects ill-locked code.

#ifndef CJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define CJOIN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CJOIN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CJOIN_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex").
#define CAPABILITY(x) CJOIN_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY CJOIN_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define GUARDED_BY(x) CJOIN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer
/// itself may be read freely).
#define PT_GUARDED_BY(x) CJOIN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function callable only with the listed capabilities held exclusively.
#define REQUIRES(...) \
  CJOIN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function callable only with the listed capabilities held shared (or
/// exclusively).
#define REQUIRES_SHARED(...) \
  CJOIN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability exclusively (and does not
/// release it before returning).
#define ACQUIRE(...) \
  CJOIN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that acquires the capability in shared mode.
#define ACQUIRE_SHARED(...) \
  CJOIN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function that releases an exclusively-held capability.
#define RELEASE(...) \
  CJOIN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that releases a shared-held capability.
#define RELEASE_SHARED(...) \
  CJOIN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function that releases a capability whatever mode it was acquired in
/// (scoped-lock destructors that may hold either mode).
#define RELEASE_GENERIC(...) \
  CJOIN_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(...) \
  CJOIN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  CJOIN_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (it acquires them internally; holding them would deadlock).
#define EXCLUDES(...) CJOIN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares that this function returns a reference to the capability
/// `x` (accessor methods like DimensionHashTable::mutex(); lets the
/// analysis unify `table->mutex()` with the table's private `mu_`).
#define RETURN_CAPABILITY(x) CJOIN_THREAD_ANNOTATION__(lock_returned(x))

/// Documents lock acquisition order between two mutexes (deadlock
/// prevention; checked when both orders are annotated).
#define ACQUIRED_BEFORE(...) \
  CJOIN_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  CJOIN_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (condvar wait helpers).
#define ASSERT_CAPABILITY(x) \
  CJOIN_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CJOIN_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis. ALLOWLISTED USES ONLY — condition-variable wait internals
/// (which release and re-acquire the mutex inside a REQUIRES scope) and
/// lock-free seqlock read paths. Every use carries a justifying comment;
/// the CI thread-safety job greps for undocumented uses.
#define NO_THREAD_SAFETY_ANALYSIS \
  CJOIN_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // CJOIN_COMMON_THREAD_ANNOTATIONS_H_
