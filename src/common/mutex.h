// Annotated mutex shim over <mutex>/<shared_mutex>/<condition_variable>.
//
// libstdc++'s std::mutex carries no thread-safety capability attributes,
// so Clang's -Wthread-safety analysis cannot track it. cjoin::Mutex /
// cjoin::SharedMutex are zero-overhead wrappers (every method is an
// inline forward) that carry the CAPABILITY annotations, and the RAII
// guards below carry the SCOPED_CAPABILITY acquire/release contracts.
// On GCC the annotations compile away and these are exactly std::mutex
// semantics and codegen.
//
// cjoin::CondVar keeps std::condition_variable underneath (NOT
// condition_variable_any, which would add an extra mutex hop): its wait
// methods take the annotated Mutex directly, adopt the already-held
// native handle into a std::unique_lock for the wait, and release the
// adoption before returning — so the REQUIRES(mu) contract is preserved
// across the call from the caller's point of view.
//
// Conventions (README "Correctness tooling"):
//   MutexLock lk(&mu);            // plain scope lock
//   UniqueLock lk(&mu);           // when you need Unlock()/Lock() middles
//   ReaderMutexLock lk(&smu);     // shared_mutex, shared mode
//   WriterMutexLock lk(&smu);     // shared_mutex, exclusive mode
//   cv.Wait(mu);                  // inside a REQUIRES(mu) while-loop;
//                                 // predicate lambdas are NOT used with
//                                 // guarded state (the analysis treats a
//                                 // lambda as a separate function)

#ifndef CJOIN_COMMON_MUTEX_H_
#define CJOIN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace cjoin {

/// std::mutex with thread-safety capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for condition-variable interop (CondVar) only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with thread-safety capability annotations.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// RAII scope lock (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Relockable RAII lock (std::unique_lock equivalent): for scopes that
/// drop the lock in the middle (run callbacks, block on I/O) and
/// re-take it. Follows the relockable-guard pattern from the Clang
/// thread-safety docs: the analysis tracks the underlying mutex through
/// the guard's ACQUIRE/RELEASE methods.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex* mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~UniqueLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }
  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  bool held() const { return held_; }

 private:
  Mutex* const mu_;
  bool held_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  /// release_generic: a scoped guard's destructor releases whatever mode
  /// its constructor acquired; the analysis models shared release this way.
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable over cjoin::Mutex. Still std::condition_variable
/// underneath (no condition_variable_any overhead): each wait adopts the
/// caller's already-held native handle, waits, and un-adopts.
///
/// Waits REQUIRE the mutex and are used in explicit while-loops over the
/// guarded predicate — never with predicate lambdas, which the analysis
/// treats as separate (unlocked) functions.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Atomically releases `mu`, waits, and re-acquires before returning.
  /// NO_THREAD_SAFETY_ANALYSIS (allowlisted: condvar wait internal) — the
  /// body releases and re-acquires the REQUIRES'd mutex through the
  /// adopted std::unique_lock, which the analysis cannot follow; the
  /// external contract (held on entry, held on return) is exactly
  /// REQUIRES(mu).
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Timed wait; returns std::cv_status::timeout on expiry. Same
  /// allowlisted NO_THREAD_SAFETY_ANALYSIS rationale as Wait().
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, d);
    lk.release();
    return st;
  }

  /// Deadline wait; returns std::cv_status::timeout on expiry. Same
  /// allowlisted NO_THREAD_SAFETY_ANALYSIS rationale as Wait().
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& tp)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, tp);
    lk.release();
    return st;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cjoin

#endif  // CJOIN_COMMON_MUTEX_H_
