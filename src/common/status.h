// Status / Result error-handling primitives.
//
// The library does not throw exceptions on expected failure paths (bad user
// input, resource exhaustion, closed pipelines). Fallible operations return
// a Status, or a Result<T> when they also produce a value. This mirrors the
// convention of production storage engines (e.g. RocksDB, Arrow).

#ifndef CJOIN_COMMON_STATUS_H_
#define CJOIN_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cjoin {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kAborted,
  kIOError,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// The outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses carry a message that
/// should name the operation and the offending value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : var_(std::move(value)) {}
  /*implicit*/ Result(Status status) : var_(std::move(status)) {
    assert(!std::get<Status>(var_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// Returns the error status, or OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status from the current function.
#define CJOIN_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::cjoin::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates its
/// error Status from the current function.
#define CJOIN_ASSIGN_OR_RETURN(lhs, expr)        \
  CJOIN_ASSIGN_OR_RETURN_IMPL(                   \
      CJOIN_SR_CONCAT(_result_, __LINE__), lhs, expr)

#define CJOIN_SR_CONCAT_INNER(a, b) a##b
#define CJOIN_SR_CONCAT(a, b) CJOIN_SR_CONCAT_INNER(a, b)
#define CJOIN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

}  // namespace cjoin

#endif  // CJOIN_COMMON_STATUS_H_
