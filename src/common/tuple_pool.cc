#include "common/tuple_pool.h"

#include <cassert>
#include <chrono>

namespace cjoin {

namespace {
constexpr size_t kBitsPerWord = 64;

size_t RoundUp8(size_t v) { return (v + 7) & ~size_t{7}; }
}  // namespace

TuplePool::TuplePool(size_t capacity, size_t stride)
    : capacity_(capacity),
      stride_(RoundUp8(stride)),
      nwords_((capacity + kBitsPerWord - 1) / kBitsPerWord),
      bitmap_(new std::atomic<uint64_t>[nwords_]),
      arena_(new uint8_t[capacity_ * stride_]),
      free_count_(capacity) {
  assert(capacity_ > 0);
  for (size_t w = 0; w < nwords_; ++w) {
    bitmap_[w].store(~uint64_t{0}, std::memory_order_relaxed);
  }
  // Mark the tail bits of the last word as "allocated" so they are never
  // handed out.
  const size_t used = capacity_ % kBitsPerWord;
  if (used != 0) {
    bitmap_[nwords_ - 1].store((uint64_t{1} << used) - 1,
                               std::memory_order_relaxed);
  }
}

void* TuplePool::TryAcquire() {
  const size_t start = search_hint_.load(std::memory_order_relaxed);
  for (size_t probe = 0; probe < nwords_; ++probe) {
    const size_t w = (start + probe) % nwords_;
    uint64_t word = bitmap_[w].load(std::memory_order_relaxed);
    while (word != 0) {
      const int bit = std::countr_zero(word);
      const uint64_t mask = uint64_t{1} << bit;
      // Claim the bit; on failure re-read and retry within this word.
      const uint64_t prev =
          bitmap_[w].fetch_and(~mask, std::memory_order_acquire);
      if (prev & mask) {
        free_count_.fetch_sub(1, std::memory_order_relaxed);
        search_hint_.store(w, std::memory_order_relaxed);
        return arena_.get() + (w * kBitsPerWord + bit) * stride_;
      }
      word = bitmap_[w].load(std::memory_order_relaxed);
    }
  }
  return nullptr;
}

void* TuplePool::Acquire() {
  void* slot = TryAcquire();
  if (slot != nullptr) return slot;
  MutexLock lk(&mu_);
  for (;;) {
    slot = TryAcquire();
    if (slot != nullptr) return slot;
    freed_.WaitFor(mu_, std::chrono::microseconds(200));
  }
}

void TuplePool::Release(void* slot) {
  assert(Owns(slot));
  const size_t idx = SlotIndex(slot);
  const size_t w = idx / kBitsPerWord;
  const uint64_t mask = uint64_t{1} << (idx % kBitsPerWord);
#ifndef NDEBUG
  const uint64_t prev = bitmap_[w].fetch_or(mask, std::memory_order_release);
  assert((prev & mask) == 0 && "double release");
#else
  bitmap_[w].fetch_or(mask, std::memory_order_release);
#endif
  const size_t prior = free_count_.fetch_add(1, std::memory_order_relaxed);
  if (prior == 0) {
    // Pool was exhausted; there may be blocked acquirers.
    MutexLock lk(&mu_);
    freed_.NotifyAll();
  }
}

bool TuplePool::Owns(const void* ptr) const {
  const uint8_t* p = static_cast<const uint8_t*>(ptr);
  if (p < arena_.get() || p >= arena_.get() + capacity_ * stride_) {
    return false;
  }
  return (static_cast<size_t>(p - arena_.get()) % stride_) == 0;
}

size_t TuplePool::SlotIndex(const void* ptr) const {
  return static_cast<size_t>(static_cast<const uint8_t*>(ptr) -
                             arena_.get()) /
         stride_;
}

}  // namespace cjoin
