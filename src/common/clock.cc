#include "common/clock.h"

#include <cmath>

namespace cjoin {

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace cjoin
