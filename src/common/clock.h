// Timing utilities for the benchmark harness and pipeline statistics.

#ifndef CJOIN_COMMON_CLOCK_H_
#define CJOIN_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace cjoin {

/// Monotonic stopwatch measuring wall-clock time.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Now() -
                                                                 start_)
        .count();
  }

 private:
  using ClockT = std::chrono::steady_clock;
  static ClockT::time_point Now() { return ClockT::now(); }
  ClockT::time_point start_;
};

/// Simple online mean / standard deviation accumulator (Welford).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cjoin

#endif  // CJOIN_COMMON_CLOCK_H_
