// Specialized allocator for in-flight fact tuples (paper §4).
//
// "We reduce the cost of memory management synchronization by using a
//  specialized allocator for fact tuples. The specialized allocator
//  preallocates data structures for all in-flight tuples ... the allocator
//  reserves and releases tuples using bitmap operations."
//
// TuplePool preallocates `capacity` fixed-stride slots and tracks free
// slots in a bitmap of atomic words: reserving a slot is a fetch_and that
// clears the lowest set bit of some word, releasing is a fetch_or — single
// atomic instructions on mainstream CPUs. When the pool is exhausted the
// caller blocks (bounding the number of in-flight tuples bounds memory and
// provides natural back-pressure to the scan).

#ifndef CJOIN_COMMON_TUPLE_POOL_H_
#define CJOIN_COMMON_TUPLE_POOL_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/mutex.h"

namespace cjoin {

/// Fixed-capacity pool of fixed-stride memory slots with a lock-free fast
/// path. All methods are thread-safe.
class TuplePool {
 public:
  /// Creates a pool of `capacity` slots of `stride` bytes each (stride is
  /// rounded up to 8-byte alignment).
  TuplePool(size_t capacity, size_t stride);

  TuplePool(const TuplePool&) = delete;
  TuplePool& operator=(const TuplePool&) = delete;

  /// Reserves a slot, blocking while the pool is exhausted. Never returns
  /// nullptr.
  void* Acquire() EXCLUDES(mu_);

  /// Reserves a slot if one is free; nullptr otherwise (never blocks).
  void* TryAcquire();

  /// Returns a slot obtained from Acquire/TryAcquire to the pool.
  void Release(void* slot) EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  size_t stride() const { return stride_; }

  /// Number of currently reserved slots (approximate under concurrency).
  size_t InUse() const {
    return capacity_ - free_count_.load(std::memory_order_relaxed);
  }

  /// True iff `ptr` points at the start of a slot owned by this pool.
  bool Owns(const void* ptr) const;

 private:
  size_t SlotIndex(const void* ptr) const;

  size_t capacity_;
  size_t stride_;
  size_t nwords_;
  std::unique_ptr<std::atomic<uint64_t>[]> bitmap_;  // 1 = free
  std::unique_ptr<uint8_t[]> arena_;
  std::atomic<size_t> free_count_;
  std::atomic<size_t> search_hint_{0};

  // Slow path for exhaustion. mu_ guards no data — it only serializes
  // the exhausted-pool sleep against Release's wakeup (the bitmap itself
  // is lock-free); freed_ waits are re-checked in a loop, so a missed
  // notify costs at most one 200us wait slice.
  Mutex mu_;
  CondVar freed_;
};

}  // namespace cjoin

#endif  // CJOIN_COMMON_TUPLE_POOL_H_
