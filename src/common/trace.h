// Opt-in diagnostic tracing (CJOIN_DEBUG=1 in the environment).
//
// TraceLogf() replaces the old raw fprintf(stderr, ...) call sites: the
// same CJOIN_DEBUG gate, but events buffer per query in the obs layer's
// structured sink (src/obs/trace_sink.cc) and flush as one ordered
// block when the query's lifecycle ends, instead of interleaving with
// every other concurrent query's prints.

#ifndef CJOIN_COMMON_TRACE_H_
#define CJOIN_COMMON_TRACE_H_

#include <cstdint>
#include <cstdlib>

namespace cjoin {

/// True iff CJOIN_DEBUG is set; cached after the first call. Used to gate
/// per-query lifecycle traces.
inline bool TraceEnabled() {
  static const bool enabled = []() {
    const char* v = std::getenv("CJOIN_DEBUG");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

/// Records one debug event for query `qid` (no-op unless CJOIN_DEBUG).
/// `subsys` is a short static tag ("pre", "mgr", ...).
void TraceLogf(uint32_t qid, const char* subsys, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Emits query `qid`'s buffered events to stderr as one ordered block
/// and clears them (call at end-of-lifecycle; no-op unless CJOIN_DEBUG).
void TraceFlushQuery(uint32_t qid);

}  // namespace cjoin

#endif  // CJOIN_COMMON_TRACE_H_
