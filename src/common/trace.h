// Opt-in diagnostic tracing (CJOIN_DEBUG=1 in the environment).

#ifndef CJOIN_COMMON_TRACE_H_
#define CJOIN_COMMON_TRACE_H_

#include <cstdlib>

namespace cjoin {

/// True iff CJOIN_DEBUG is set; cached after the first call. Used to gate
/// per-query lifecycle traces on stderr.
inline bool TraceEnabled() {
  static const bool enabled = []() {
    const char* v = std::getenv("CJOIN_DEBUG");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

}  // namespace cjoin

#endif  // CJOIN_COMMON_TRACE_H_
