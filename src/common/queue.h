// Bounded multi-producer / multi-consumer queue with batch transfer and
// wakeup hysteresis (paper §4).
//
// The CJOIN pipeline links its components (Preprocessor -> Stage(s) ->
// Distributor) with these queues. Two of the paper's implementation
// principles live here:
//
//  * "reduce the overhead of queue synchronization by having each thread
//    retrieve or deposit tuples in batches" — PushBatch/PopBatch move many
//    items under one lock acquisition;
//  * "wake up a consumer thread only when its input queue is almost full
//    [and] resume the producer only when its output queue is almost empty"
//    — the wake watermarks are configurable (Options::consumer_wake_depth /
//    producer_wake_space). To keep the queue live when a producer goes
//    quiet below the watermark, blocked waiters use a bounded timed wait
//    and re-check, so hysteresis is a throughput optimization, never a
//    correctness hazard.

#ifndef CJOIN_COMMON_QUEUE_H_
#define CJOIN_COMMON_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/flight_recorder.h"

namespace cjoin {

/// Bounded blocking FIFO queue. All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  struct Options {
    /// Maximum number of items held.
    size_t capacity = 1024;
    /// A sleeping consumer is signalled once at least this many items are
    /// queued (or the queue is flushed/closed). 1 disables hysteresis.
    size_t consumer_wake_depth = 1;
    /// A sleeping producer is signalled once at least this much free space
    /// exists. 1 disables hysteresis.
    size_t producer_wake_space = 1;
    /// Upper bound on a single sleep; waiters re-check after this long even
    /// without a signal so watermarks cannot strand the last items.
    std::chrono::microseconds wait_slice = std::chrono::microseconds(500);
    /// Flight-recorder identity. When non-empty, every push/pop records
    /// a timeline event carrying the observed depth (one event per
    /// batch call); empty queues stay invisible to the recorder.
    std::string name;
  };

  static Options WithCapacity(size_t capacity) {
    Options o;
    o.capacity = capacity;
    return o;
  }

  BoundedQueue() : BoundedQueue(Options{}) {}
  explicit BoundedQueue(Options opts) : opts_(opts) {
    if (opts_.capacity == 0) opts_.capacity = 1;
    if (opts_.consumer_wake_depth == 0) opts_.consumer_wake_depth = 1;
    if (opts_.producer_wake_space == 0) opts_.producer_wake_space = 1;
  }
  explicit BoundedQueue(size_t capacity) : BoundedQueue(WithCapacity(capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is space, then enqueues. Returns false iff the
  /// queue was closed (the item is dropped).
  bool Push(T item) EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    while (items_.size() >= opts_.capacity && !closed_) {
      not_full_.WaitFor(mu_, opts_.wait_slice);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    NotePush();
    MaybeWakeConsumer();
    return true;
  }

  /// Enqueues all of `batch` (blocking as needed, possibly in chunks).
  /// Returns the number of items accepted; fewer than batch.size() only if
  /// the queue was closed mid-way.
  size_t PushBatch(std::vector<T>& batch) EXCLUDES(mu_) {
    size_t pushed = 0;
    MutexLock lk(&mu_);
    while (pushed < batch.size()) {
      while (items_.size() >= opts_.capacity && !closed_) {
        not_full_.WaitFor(mu_, opts_.wait_slice);
      }
      if (closed_) break;
      while (pushed < batch.size() && items_.size() < opts_.capacity) {
        items_.push_back(std::move(batch[pushed]));
        ++pushed;
      }
      NotePush();
      MaybeWakeConsumer();
    }
    return pushed;
  }

  /// Blocks until an item is available or the queue is closed-and-drained.
  /// Returns nullopt in the latter case.
  std::optional<T> Pop() EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    while (items_.empty() && !closed_) {
      not_empty_.WaitFor(mu_, opts_.wait_slice);
    }
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    NotePop();
    MaybeWakeProducer();
    return out;
  }

  /// Pops up to `max_items` items into `out` (appending). Blocks until at
  /// least one item is available or the queue is closed-and-drained.
  /// Returns the number of items popped (0 means closed and empty).
  size_t PopBatch(std::vector<T>& out, size_t max_items) EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    while (items_.empty() && !closed_) {
      not_empty_.WaitFor(mu_, opts_.wait_slice);
    }
    size_t n = 0;
    while (n < max_items && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    if (n > 0) {
      NotePop();
      MaybeWakeProducer();
    }
    return n;
  }

  /// Pop that waits at most `timeout`; nullopt on timeout, close, or
  /// empty-after-timeout.
  template <typename Rep, typename Period>
  std::optional<T> PopWithTimeout(std::chrono::duration<Rep, Period> timeout)
      EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lk(&mu_);
    while (items_.empty() && !closed_) {
      if (not_empty_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
          items_.empty()) {
        return std::nullopt;
      }
    }
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    NotePop();
    MaybeWakeProducer();
    return out;
  }

  /// Non-blocking pop; nullopt if empty (even when open).
  std::optional<T> TryPop() EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    NotePop();
    MaybeWakeProducer();
    return out;
  }

  /// Wakes all waiters regardless of watermarks. Producers call this after
  /// their final Push when running with hysteresis enabled.
  void Flush() EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  /// Closes the queue: subsequent pushes fail, pops drain remaining items
  /// then return empty. Idempotent.
  void Close() EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return closed_;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

  size_t capacity() const { return opts_.capacity; }
  const std::string& name() const { return opts_.name; }

  /// Highest depth observed since the last call; reading re-arms the
  /// mark at the current depth (reset-on-read), so each scrape reports
  /// the peak within its own interval.
  size_t HighWatermark() EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    const size_t hw = high_watermark_;
    high_watermark_ = items_.size();
    return hw;
  }

 private:
  /// Both hooks run with mu_ held, right after the deque changed.
  void NotePush() REQUIRES(mu_) {
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    if (!opts_.name.empty()) {
      obs::RecordEvent(obs::EventKind::kQueuePush, opts_.name.c_str(),
                       static_cast<uint32_t>(items_.size()));
    }
  }
  void NotePop() REQUIRES(mu_) {
    if (!opts_.name.empty()) {
      obs::RecordEvent(obs::EventKind::kQueuePop, opts_.name.c_str(),
                       static_cast<uint32_t>(items_.size()));
    }
  }

  void MaybeWakeConsumer() REQUIRES(mu_) {
    if (items_.size() >= opts_.consumer_wake_depth ||
        items_.size() >= opts_.capacity) {
      not_empty_.NotifyAll();
    }
  }
  void MaybeWakeProducer() REQUIRES(mu_) {
    const size_t space = opts_.capacity - items_.size();
    if (space >= opts_.producer_wake_space || items_.empty()) {
      not_full_.NotifyAll();
    }
  }

  Options opts_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  size_t high_watermark_ GUARDED_BY(mu_) = 0;  ///< reset on read
};

}  // namespace cjoin

#endif  // CJOIN_COMMON_QUEUE_H_
