// Hashing primitives shared by the dimension hash tables, aggregation hash
// tables, and the baseline engine's join hash tables.

#ifndef CJOIN_COMMON_HASH_H_
#define CJOIN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace cjoin {

/// Finalizer from splitmix64; a strong 64->64 bit mixer suitable for
/// hashing integer join keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes; used for group-by keys and string columns.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  // Final avalanche so low bits are usable as table indices.
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace cjoin

#endif  // CJOIN_COMMON_HASH_H_
