// Deterministic pseudo-random number generation.
//
// The SSB data generator and the workload generator must be reproducible
// across runs for the benchmark harness to be comparable, so everything
// randomized in this repository draws from this seeded generator rather
// than std::random_device.

#ifndef CJOIN_COMMON_RNG_H_
#define CJOIN_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace cjoin {

/// xoshiro256**-style generator seeded via splitmix64. Deterministic for a
/// given seed; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace cjoin

#endif  // CJOIN_COMMON_RNG_H_
