#include "engine/shard_manager.h"

#include <string>

#include "common/hash.h"

namespace cjoin {

Result<std::unique_ptr<ShardManager>> ShardManager::Make(
    const StarSchema& source, size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  auto mgr = std::unique_ptr<ShardManager>(new ShardManager());
  mgr->source_ = &source;

  if (num_shards == 1) {
    // Pass-through: the sole shard is the source star itself.
    mgr->stars_.push_back(source);
    return mgr;
  }

  const Table& fact = source.fact();
  const Schema& schema = fact.schema();
  const size_t row_size = schema.row_size();

  // One replica table per shard: same schema and partition layout, so
  // partition-limited queries (§5) behave identically per shard.
  Table::Options topts;
  topts.rows_per_page = fact.rows_per_page();
  topts.num_partitions = fact.num_partitions();
  std::vector<DimensionDef> dims;
  for (size_t d = 0; d < source.num_dimensions(); ++d) {
    dims.push_back(source.dimension(d));
  }
  for (size_t s = 0; s < num_shards; ++s) {
    mgr->replicas_.push_back(std::make_unique<Table>(
        fact.name() + ".shard" + std::to_string(s), schema, topts));
  }

  // Hash-partition the current contents, preserving MVCC headers so old
  // snapshots read exactly what they would from the source table.
  for (uint32_t p = 0; p < fact.num_partitions(); ++p) {
    const uint64_t n = fact.PartitionRows(p);
    for (uint64_t i = 0; i < n; ++i) {
      const RowId id{p, i};
      const uint8_t* payload = fact.RowPayload(id);
      const RowHeader* hdr = fact.Header(id);
      Table& shard = *mgr->replicas_[HashBytes(payload, row_size) % num_shards];
      const RowId out = shard.AppendRow(payload, p, hdr->xmin);
      const SnapshotId xmax = hdr->LoadXmax();
      if (xmax != kMaxSnapshot) {
        CJOIN_RETURN_IF_ERROR(shard.MarkDeleted(out, xmax));
      }
    }
  }

  for (size_t s = 0; s < num_shards; ++s) {
    CJOIN_ASSIGN_OR_RETURN(
        StarSchema star, StarSchema::Make(mgr->replicas_[s].get(), dims));
    mgr->stars_.push_back(std::move(star));
  }
  return mgr;
}

std::vector<const StarSchema*> ShardManager::shard_stars() const {
  std::vector<const StarSchema*> out;
  out.reserve(stars_.size());
  for (const StarSchema& s : stars_) out.push_back(&s);
  return out;
}

size_t ShardManager::ShardOfRow(const uint8_t* payload) const {
  return HashBytes(payload, source_->fact().schema().row_size()) %
         stars_.size();
}

void ShardManager::MirrorAppend(const uint8_t* payload, uint32_t partition,
                                SnapshotId xmin) {
  if (!replicated()) return;
  replicas_[ShardOfRow(payload)]->AppendRow(payload, partition, xmin);
}

Status ShardManager::MirrorDelete(const Expr& predicate, SnapshotId xmax) {
  if (!replicated()) return Status::OK();
  const Schema& schema = source_->fact().schema();
  for (auto& shard : replicas_) {
    for (uint32_t p = 0; p < shard->num_partitions(); ++p) {
      const uint64_t n = shard->PartitionRows(p);
      for (uint64_t i = 0; i < n; ++i) {
        const RowId id{p, i};
        if (shard->Header(id)->LoadXmax() != kMaxSnapshot) continue;
        if (!predicate.EvalBool(schema, shard->RowPayload(id))) continue;
        CJOIN_RETURN_IF_ERROR(shard->MarkDeleted(id, xmax));
      }
    }
  }
  return Status::OK();
}

uint64_t ShardManager::TotalShardRows() const {
  if (!replicated()) return source_->fact().NumRows();
  uint64_t total = 0;
  for (const auto& shard : replicas_) total += shard->NumRows();
  return total;
}

}  // namespace cjoin
