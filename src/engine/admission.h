// Admission control & multi-tenant scheduling (ROADMAP item).
//
// CJOIN's promise is predictable latency under hundreds of concurrent
// analytical queries — but only if the engine degrades by *rejecting*
// work, not by stalling it. Without admission control any client can
// flood Execute() until the CJOIN bit-vector id freelist blocks the
// submitting thread and the baseline pool backlog grows unboundedly.
//
// The AdmissionController sits between Execute() and the Router. Every
// QueryRequest carries a tenant id; the controller tracks per-tenant
// state and engine-wide limits, and renders one of three verdicts:
//
//   kAdmitted — quota consumed; the engine must call Release() exactly
//               once when the query reaches any terminal state
//               (completion, cancellation, deadline, abort);
//   kQueued   — CJOIN slots exhausted but the tenant's bounded wait
//               queue has room: the submission parks in the controller
//               and is granted a slot (FIFO, deadline-aware) when a
//               release frees one, or times out;
//   kShed     — over quota: the caller's ticket completes immediately
//               with kResourceExhausted. Nothing ever blocks.
//
// Per-tenant knobs (all runtime-reconfigurable via SetTenantQuota, so an
// operator can rebalance a live engine): a token-bucket rate limit, max
// in-flight CJOIN registrations, max in-system baseline jobs, a
// weighted-fair share of the baseline pool, and the wait-queue bound.
// Engine-wide: a total CJOIN registration bound kept at (or under) the
// operator's maxConc so the id freelist never blocks a submitter.

#ifndef CJOIN_ENGINE_ADMISSION_H_
#define CJOIN_ENGINE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "engine/router.h"
#include "obs/metrics.h"

namespace cjoin {

/// Resource limits of one tenant. The convention throughout: 0 means
/// "unlimited" (engine-wide limits still apply).
struct TenantQuota {
  /// Sustained admissions per second (token-bucket refill rate) across
  /// both routes. 0 = no rate limit.
  double rate_per_sec = 0.0;
  /// Token-bucket capacity (burst size). <= 0 defaults to
  /// max(rate_per_sec, 1).
  double burst = 0.0;

  /// Max concurrently registered CJOIN queries (bit-vector slots held
  /// across the pipeline pool). 0 = unlimited.
  size_t max_inflight_cjoin = 0;

  /// Max baseline jobs in the system (queued + running). 0 = unlimited.
  size_t max_queued_baseline = 0;

  /// Weighted-fair share of the baseline worker pool (relative to the
  /// other tenants with baseline work); must be > 0.
  double weight = 1.0;

  /// CJOIN submissions allowed to wait for a slot when
  /// max_inflight_cjoin (or the engine-wide bound) is reached.
  /// 0 = shed immediately.
  size_t max_wait_queue = 0;
  /// Longest a submission may sit in the wait queue, nanoseconds
  /// (deadline-aware: the query's own deadline wins when earlier).
  /// 0 = bounded only by the query deadline.
  int64_t max_wait_ns = 0;
};

/// How a submission fared at the admission gate.
enum class AdmissionOutcome {
  kAdmitted,  ///< quota consumed; Release() owed on terminal state
  kQueued,    ///< parked in the CJOIN wait queue (grant or timeout later)
  kShed,      ///< rejected: ticket resolves kResourceExhausted now
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

/// The gate's verdict plus the evidence behind it (recorded on the
/// RouteDecision so EXPLAIN ROUTE and tickets can surface it).
struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  /// OK when admitted/queued; the rejection status when shed.
  Status status = Status::OK();
  /// One-line rationale ("rate limit", "tenant CJOIN slots", ...).
  std::string reason;
  /// Wait-queue handle when outcome == kQueued (for CancelWaiter).
  uint64_t waiter_id = 0;
};

class AdmissionController {
 public:
  struct Options {
    /// Quota applied to tenants that never had SetTenantQuota() called
    /// (the permissive default: unlimited, weight 1).
    TenantQuota default_quota;
    /// Engine-wide bound on concurrently registered CJOIN queries.
    /// Keep it <= the operator's max_concurrent_queries so the id
    /// freelist never blocks. 0 = unlimited (the non-blocking Submit
    /// still converts freelist exhaustion into kResourceExhausted).
    size_t max_total_cjoin = 0;
    /// Engine-wide bound on baseline jobs in the system. 0 = unlimited.
    size_t max_total_baseline = 0;
  };

  /// Grant callback of a parked CJOIN submission. Invoked exactly once,
  /// off the controller lock: with OK once a slot has been *consumed*
  /// for the waiter (the grantee owes Release()), or with the terminal
  /// error (kDeadlineExceeded / kResourceExhausted on wait timeout,
  /// kCancelled, kAborted on shutdown) — in which case no slot is held.
  /// OK grants are delivered from the controller's service thread, never
  /// from the Release() caller: a release often runs on a pipeline
  /// thread that has not yet recycled the completed query's id, and an
  /// inline re-submission there would stall the pipeline on itself.
  using GrantFn = std::function<void(Status)>;
  /// Deferred construction of a grant callback: invoked (under the
  /// controller lock) only when TryAdmit actually parks the submission,
  /// so the common admitted / shed paths never pay for the closure's
  /// captured state.
  using GrantFactory = std::function<GrantFn()>;

  explicit AdmissionController(Options options);
  AdmissionController() : AdmissionController(Options{}) {}
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// The admission gate. Consumes one rate token and (on kAdmitted) one
  /// slot of the route's per-tenant and engine-wide budgets. For the
  /// CJOIN route, a submission over the slot budget is parked instead of
  /// shed when `make_grant` is non-null and the tenant's wait queue has
  /// room: `deadline_ns` (0 = none) bounds the wait together with the
  /// quota's max_wait_ns. Never blocks.
  AdmissionDecision TryAdmit(const std::string& tenant, RouteChoice route,
                             int64_t deadline_ns = 0,
                             GrantFactory make_grant = nullptr)
      EXCLUDES(mu_);

  /// The verdict TryAdmit would render right now, without consuming
  /// tokens or slots and without queueing (EXPLAIN ROUTE).
  AdmissionDecision Probe(const std::string& tenant, RouteChoice route) const
      EXCLUDES(mu_);

  /// One consistent sample for the Router: fills `inputs` with the
  /// tenant's admission state AND probes both routes' would-be verdicts
  /// under the same lock acquisition, so EXPLAIN ROUTE's admission line
  /// cannot disagree with the load its costs were computed from (the
  /// old FillRouteInputs-then-Probe dance sampled twice). Probe outputs
  /// may be nullptr when not needed.
  void SampleForRouting(const std::string& tenant, RouteInputs* inputs,
                        AdmissionDecision* probe_cjoin,
                        AdmissionDecision* probe_baseline) const EXCLUDES(mu_);

  /// Returns the slots of a terminal query. Must be called exactly once
  /// per kAdmitted decision (and per OK grant). A CJOIN release wakes
  /// the service thread, which grants parked waiters FIFO (skipping
  /// tenants still over budget) — off the releasing thread, which is
  /// typically a pipeline thread mid-delivery.
  void Release(const std::string& tenant, RouteChoice route) EXCLUDES(mu_);

  /// Removes a parked waiter; its grant fires with kCancelled (no-op if
  /// it was already granted or timed out).
  void CancelWaiter(uint64_t waiter_id) EXCLUDES(mu_);

  /// Like Release(), but for an admission that never actually entered
  /// the system (e.g. the baseline pool's own queue cap rejected the
  /// job): the slot returns AND the stats record a shed, not an
  /// admitted+released round trip.
  void ReleaseAsShed(const std::string& tenant, RouteChoice route)
      EXCLUDES(mu_);

  /// Installs / replaces a tenant's quota on the live engine. Existing
  /// in-flight work is unaffected; the next admission sees the new
  /// limits. The token bucket refills under the new rate from now.
  Status SetTenantQuota(const std::string& tenant, TenantQuota quota)
      EXCLUDES(mu_);
  TenantQuota GetTenantQuota(const std::string& tenant) const EXCLUDES(mu_);

  /// This tenant's fraction of the baseline pool: weight over the total
  /// weight of tenants currently holding baseline work (including this
  /// one). 1.0 when it would have the pool to itself.
  double PoolShare(const std::string& tenant) const EXCLUDES(mu_);

  struct TenantStats {
    std::string tenant;
    TenantQuota quota;
    size_t inflight_cjoin = 0;
    size_t baseline_in_system = 0;  ///< queued + running
    size_t waiting = 0;             ///< parked in the CJOIN wait queue
    double tokens = 0.0;            ///< current bucket level (rate > 0)
    uint64_t admitted = 0;
    uint64_t queued = 0;
    uint64_t shed = 0;
    uint64_t released = 0;
  };
  struct Stats {
    size_t total_cjoin_inflight = 0;
    size_t total_baseline_in_system = 0;
    size_t total_waiting = 0;
    /// Earliest expiry (steady-clock nanos) among parked waiters whose
    /// bound is the query's own deadline; 0 when none. The watchdog's
    /// deadline-risk signal.
    int64_t earliest_waiter_deadline_ns = 0;
    std::vector<TenantStats> tenants;  ///< sorted by tenant name
  };
  Stats GetStats() const EXCLUDES(mu_);

  /// Fails every parked waiter with kAborted and stops the expiry
  /// thread. Idempotent. Admissions after shutdown are shed.
  void Shutdown() EXCLUDES(mu_);

 private:
  struct TenantState {
    TenantQuota quota;
    bool explicit_quota = false;  ///< survives stats pruning
    double tokens = 0.0;
    int64_t last_refill_ns = 0;
    size_t inflight_cjoin = 0;
    size_t baseline_in_system = 0;
    size_t waiting = 0;
    uint64_t admitted = 0;
    uint64_t queued = 0;
    uint64_t shed = 0;
    uint64_t released = 0;
  };

  struct Waiter {
    uint64_t id = 0;
    std::string tenant;
    int64_t expire_ns = 0;  ///< 0 = no bound
    bool expire_is_deadline = false;
    GrantFn grant;
  };

  TenantState& StateFor(const std::string& tenant) REQUIRES(mu_);
  /// Drops idle implicit tenant states (no in-flight work, no explicit
  /// quota) once the map outgrows a bound — unique tenant strings from a
  /// hostile client must not grow controller memory without limit.
  void PruneIdleTenantsLocked() REQUIRES(mu_);
  /// Refills `state`'s bucket to `now_ns` and returns whether one token
  /// is available (always true when unlimited).
  static bool RefillAndCheck(TenantState& state, int64_t now_ns);
  /// True when `tenant` may take one more CJOIN slot.
  bool CJoinSlotAvailableLocked(const TenantState& state) const
      REQUIRES(mu_);
  /// The probe logic shared by Probe() and SampleForRouting().
  AdmissionDecision ProbeLocked(const std::string& tenant, RouteChoice route,
                                int64_t now_ns) const REQUIRES(mu_);
  /// PoolShare() body.
  double PoolShareLocked(const std::string& tenant) const REQUIRES(mu_);
  /// Pops every currently grantable / expired waiter. The returned
  /// actions run off the lock (on the service thread).
  struct GrantAction {
    GrantFn grant;
    Status status;
    /// For OK grants: the slot's owner and the waiter's expiry, so the
    /// service thread can re-check the deadline at grant-execution time
    /// (a slot consumed for an already-expired query must be returned,
    /// not briefly held until the pipeline's deadline fan-out reclaims
    /// it) and undo the consumption.
    std::string tenant;
    int64_t expire_ns = 0;
    bool expire_is_deadline = false;
    bool slot_consumed = false;
  };
  void CollectGrantsLocked(int64_t now_ns, std::vector<GrantAction>* out)
      REQUIRES(mu_);
  /// The service thread: expires bounded waiters and delivers grants
  /// signalled by Release() / SetTenantQuota().
  void ServiceLoop() EXCLUDES(mu_);

  Options opts_;
  mutable Mutex mu_;
  std::map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  std::deque<Waiter> wait_queue_ GUARDED_BY(mu_);
  size_t total_cjoin_ GUARDED_BY(mu_) = 0;
  size_t total_baseline_ GUARDED_BY(mu_) = 0;
  uint64_t next_waiter_id_ GUARDED_BY(mu_) = 1;
  /// Bumped whenever wait_queue_ changes, so the service thread re-arms
  /// its expiry timer (a newly parked waiter may expire earlier than the
  /// one it is currently sleeping towards).
  uint64_t waiters_epoch_ GUARDED_BY(mu_) = 0;
  /// Set by Release()/SetTenantQuota() when freed budget may unblock a
  /// parked waiter; consumed by the service thread.
  bool grants_pending_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;
  CondVar service_cv_;
  std::thread service_thread_;

  /// Registry mirrors of the aggregate outcome counters (per-tenant
  /// detail stays in GetStats(); the registry carries engine-wide rates).
  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_queued_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
  obs::Counter* obs_released_ = nullptr;
  obs::Gauge* obs_wait_depth_ = nullptr;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_ADMISSION_H_
