#include "engine/route_feedback.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace cjoin {

namespace {

constexpr size_t RouteIndex(RouteChoice route) {
  return route == RouteChoice::kCJoin ? 0 : 1;
}

/// EWMA weight of the per-observation prediction-error tracker.
constexpr double kErrorEwmaWeight = 0.25;

/// Relative errors are clamped so one pathological observation cannot
/// dominate the EWMA.
constexpr double kMaxRelError = 10.0;

}  // namespace

RouteCalibrator::RouteCalibrator(CalibrationOptions options)
    : opts_(options) {
  opts_.min_observations = std::max(1.0, opts_.min_observations);
  opts_.fit_decay = std::clamp(opts_.fit_decay, 0.0, 1.0);
  opts_.stale_decay = std::clamp(opts_.stale_decay, 0.0, 1.0);
}

void RouteCalibrator::Solve(const LsqState& s, RouteModelSnapshot* out) {
  // Weighted least squares from the decayed sufficient statistics. With
  // (near-)constant x the normal-equation denominator degenerates; fall
  // back to the ratio estimator through the origin, which is exactly
  // what a single operating point can support.
  out->alpha = 0.0;
  out->beta = 0.0;
  if (s.n <= 0.0 || s.sxx <= 0.0) return;
  const double det = s.n * s.sxx - s.sx * s.sx;
  const double mean_xx = s.sxx / s.n;
  if (det > 1e-9 * s.n * mean_xx) {
    double alpha = (s.n * s.sxy - s.sx * s.sy) / det;
    double beta = (s.sy - alpha * s.sx) / s.n;
    if (alpha >= 0.0 && beta >= 0.0) {
      out->alpha = alpha;
      out->beta = beta;
      return;
    }
    // A negative slope or intercept extrapolates nonsense outside the
    // observed range (costs cannot shrink with work); degrade below.
  }
  out->alpha = s.sxy > 0.0 ? s.sxy / s.sxx : 0.0;
  out->beta = 0.0;
}

namespace {

/// Word layout of one RouteModelSnapshot inside the seqlock payload.
void PackModel(const RouteModelSnapshot& m, uint64_t* w) {
  w[0] = std::bit_cast<uint64_t>(m.alpha);
  w[1] = std::bit_cast<uint64_t>(m.beta);
  w[2] = std::bit_cast<uint64_t>(m.evidence);
  w[3] = m.observations;
  w[4] = m.warm ? 1 : 0;
  w[5] = std::bit_cast<uint64_t>(m.rel_error);
  w[6] = std::bit_cast<uint64_t>(m.last_service_seconds);
}

void UnpackModel(const uint64_t* w, RouteModelSnapshot* m) {
  m->alpha = std::bit_cast<double>(w[0]);
  m->beta = std::bit_cast<double>(w[1]);
  m->evidence = std::bit_cast<double>(w[2]);
  m->observations = w[3];
  m->warm = w[4] != 0;
  m->rel_error = std::bit_cast<double>(w[5]);
  m->last_service_seconds = std::bit_cast<double>(w[6]);
}

}  // namespace

void RouteCalibrator::PublishLocked() {
  CalibrationSnapshot fresh;
  RouteModelSnapshot* outs[2] = {&fresh.cjoin, &fresh.baseline};
  for (size_t r = 0; r < 2; ++r) {
    const LsqState& s = models_[r];
    RouteModelSnapshot* out = outs[r];
    Solve(s, out);
    out->evidence = s.mass;
    out->observations = s.count;
    out->rel_error = s.rel_error;
    out->last_service_seconds = s.last_service;
    out->warm = s.mass >= opts_.min_observations &&
                (out->alpha > 0.0 || out->beta > 0.0);
  }
  fresh.decays = decays_;

  uint64_t packed[kSnapWords];
  PackModel(fresh.cjoin, packed);
  PackModel(fresh.baseline, packed + kModelWords);
  packed[2 * kModelWords] = fresh.decays;

  // Seqlock publish: odd while writing. Writers are already serialized
  // by mu_; the release fence pairs with the reader's acquire fence.
  const uint32_t seq = seq_.load(std::memory_order_relaxed);
  seq_.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < kSnapWords; ++i) {
    words_[i].store(packed[i], std::memory_order_relaxed);
  }
  seq_.store(seq + 2, std::memory_order_release);
}

void RouteCalibrator::Observe(const RouteObservation& obs) {
  if (!opts_.enabled) return;
  const double service =
      obs.wall_seconds - std::max(0.0, obs.queue_wait_seconds);
  if (!(obs.work_units > 0.0) || !(service > 0.0)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("route_observations_dropped_total",
                      "Calibration observations rejected as unusable")
          ->Add();
    }
    return;
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("route_observations_total",
                    "Latency observations fed back into route calibration",
                    obs::LabelPair("route", obs.route == RouteChoice::kCJoin
                                                ? "cjoin"
                                                : "baseline"))
        ->Add();
  }
  MutexLock lk(&mu_);
  LsqState& s = models_[RouteIndex(obs.route)];

  // Honest prediction error: score the *pre-update* fit against this
  // observation (1.0 — "no usable prediction" — before the first fit).
  RouteModelSnapshot fit;
  Solve(s, &fit);
  double err = 1.0;
  if (fit.alpha > 0.0 || fit.beta > 0.0) {
    err = std::min(kMaxRelError,
                   std::abs(fit.PredictSeconds(obs.work_units) - service) /
                       service);
  }
  s.rel_error = (1.0 - kErrorEwmaWeight) * s.rel_error +
                kErrorEwmaWeight * err;

  const double d = opts_.fit_decay;
  s.n = d * s.n + 1.0;
  s.sx = d * s.sx + obs.work_units;
  s.sy = d * s.sy + service;
  s.sxx = d * s.sxx + obs.work_units * obs.work_units;
  s.sxy = d * s.sxy + obs.work_units * service;
  s.mass += 1.0;
  s.count++;
  s.last_service = service;
  PublishLocked();
}

CalibrationSnapshot RouteCalibrator::Snapshot() const {
  uint64_t packed[kSnapWords];
  for (;;) {
    const uint32_t before = seq_.load(std::memory_order_acquire);
    if (before & 1u) continue;  // writer in progress
    for (size_t i = 0; i < kSnapWords; ++i) {
      packed[i] = words_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) break;
  }
  CalibrationSnapshot copy;
  UnpackModel(packed, &copy.cjoin);
  UnpackModel(packed + kModelWords, &copy.baseline);
  copy.decays = packed[2 * kModelWords];
  return copy;
}

RouterStats RouteCalibrator::Stats() const {
  RouterStats stats;
  stats.decisions_cjoin = decisions_[0].load(std::memory_order_relaxed);
  stats.decisions_baseline = decisions_[1].load(std::memory_order_relaxed);
  stats.calibrated_decisions =
      calibrated_decisions_.load(std::memory_order_relaxed);
  stats.explored_decisions =
      explored_decisions_.load(std::memory_order_relaxed);
  stats.observations_dropped = dropped_.load(std::memory_order_relaxed);
  stats.calibration = Snapshot();
  return stats;
}

void RouteCalibrator::Decay() {
  if (!opts_.enabled) return;
  MutexLock lk(&mu_);
  for (LsqState& s : models_) {
    const double d = opts_.stale_decay;
    s.n *= d;
    s.sx *= d;
    s.sy *= d;
    s.sxx *= d;
    s.sxy *= d;
    // The warm-up mass is clamped to the threshold before decaying, so
    // a long-running route (arbitrarily large mass) still drops below
    // `min_observations` and re-learns — the documented semantics —
    // instead of staying warm on pre-regime-change evidence.
    s.mass = std::min(s.mass, opts_.min_observations) * d;
  }
  decays_++;
  PublishLocked();
}

bool RouteCalibrator::ShouldExplore(const CalibrationSnapshot& snap,
                                    RouteChoice preferred) {
  if (!opts_.enabled || opts_.explore_every == 0) return false;
  const RouteModelSnapshot& mine = snap.For(preferred);
  const RouteModelSnapshot& other = snap.For(
      preferred == RouteChoice::kCJoin ? RouteChoice::kBaseline
                                       : RouteChoice::kCJoin);
  // Explore only from a warm route toward a cold one: with no evidence at
  // all the static model is the best guess, and with both routes warm the
  // calibrated comparison needs no help.
  if (!mine.warm || other.warm) return false;
  const uint64_t tick =
      explore_tick_.fetch_add(1, std::memory_order_relaxed);
  if ((tick + 1) % opts_.explore_every != 0) return false;
  explored_decisions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RouteCalibrator::CountDecision(const RouteDecision& decision) {
  decisions_[RouteIndex(decision.choice)].fetch_add(
      1, std::memory_order_relaxed);
  if (decision.calibrated) {
    calibrated_decisions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("route_decisions_total",
                   "Routing verdicts for executed queries",
                   obs::LabelPair("route",
                                  decision.choice == RouteChoice::kCJoin
                                      ? "cjoin"
                                      : "baseline"))
        ->Add();
    if (decision.calibrated) {
      reg.GetCounter("route_decisions_calibrated_total",
                     "Decisions made on warm calibrated costs")
          ->Add();
    }
    if (decision.explored) {
      reg.GetCounter("route_decisions_explored_total",
                     "Decisions flipped to warm up a cold route")
          ->Add();
    }
  }
}

std::string RouterStats::ToString() const {
  char buf[640];
  std::string out;
  std::snprintf(
      buf, sizeof(buf),
      "decisions: cjoin %llu | baseline %llu | calibrated %llu | "
      "explored %llu | dropped obs %llu | decays %llu",
      static_cast<unsigned long long>(decisions_cjoin),
      static_cast<unsigned long long>(decisions_baseline),
      static_cast<unsigned long long>(calibrated_decisions),
      static_cast<unsigned long long>(explored_decisions),
      static_cast<unsigned long long>(observations_dropped),
      static_cast<unsigned long long>(calibration.decays));
  out = buf;
  const RouteModelSnapshot* models[2] = {&calibration.cjoin,
                                         &calibration.baseline};
  const char* names[2] = {"cjoin", "baseline"};
  for (size_t r = 0; r < 2; ++r) {
    const RouteModelSnapshot& m = *models[r];
    std::snprintf(buf, sizeof(buf),
                  "\n  %-8s %s | fit t = %.3g * units + %.3g s | "
                  "evidence %.1f (%llu obs) | rel err %.3f | last %.4f s",
                  names[r], m.warm ? "warm" : "cold", m.alpha, m.beta,
                  m.evidence,
                  static_cast<unsigned long long>(m.observations),
                  m.rel_error, m.last_service_seconds);
    out += buf;
  }
  return out;
}

}  // namespace cjoin
