// Engine-owned worker pool for baseline (query-at-a-time) executions.
//
// The unified Execute() API returns a non-blocking QueryTicket for every
// routing choice; baseline queries therefore run on this pool instead of
// the caller's thread. Dequeue order is weighted-fair across tenants
// (start-time fair queueing on a virtual clock: each dequeue charges the
// tenant 1/weight, and the tenant with the smallest virtual time goes
// next), then (priority desc, submission order) within a tenant — so one
// tenant's backlog cannot starve another's, yet a tenant's own jobs still
// honor priorities. Jobs support cooperative cancellation and deadlines:
// a sweeper thread resolves cancelled / deadline-expired jobs promptly
// even while they sit in the queue (matching the CJOIN path's
// responsiveness), and the executor's batch-boundary checks interrupt
// jobs mid-scan. Each job's promise resolves exactly once; an optional
// on_finished hook (the admission controller's quota release) fires with
// it. The queue is optionally bounded: over the cap, Enqueue rejects with
// kResourceExhausted instead of growing without bound.

#ifndef CJOIN_ENGINE_BASELINE_POOL_H_
#define CJOIN_ENGINE_BASELINE_POOL_H_

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/qat_engine.h"
#include "catalog/query_spec.h"
#include "common/mutex.h"
#include "common/status.h"
#include "exec/result_set.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"

namespace cjoin {

/// One queued/running baseline execution. Shared between the pool and the
/// caller's QueryTicket.
struct BaselineJob {
  StarQuerySpec spec;   ///< normalized
  QatOptions options;   ///< per-job executor knobs
  int priority = 0;
  int64_t deadline_ns = 0;  ///< steady-clock nanos; 0 = none
  uint64_t seq = 0;         ///< submission order (set by the pool)

  /// Owner tenant (weighted-fair scheduling key) and its fair-share
  /// weight at submission time.
  std::string tenant;
  double fair_weight = 1.0;

  /// Invoked exactly once with the terminal result, just before the
  /// promise resolves, on whichever thread resolves it (worker, sweeper,
  /// or shutdown). The engine hooks the admission controller's quota
  /// release and the route calibrator's latency observation here, so
  /// cancel / deadline / abort all release on every path.
  std::function<void(const Result<ResultSet>&)> on_finished;

  std::atomic<bool> cancel{false};
  std::promise<Result<ResultSet>> promise;

  /// Per-query span trace (may be null): the pool records queue
  /// residence and run time into it.
  std::shared_ptr<obs::QueryTrace> trace;

  // Steady-clock nanos, for the uniform ticket timing stats.
  std::atomic<int64_t> submit_ns{0};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> completed_ns{0};

  /// Resolves the promise exactly once (first caller wins: worker result,
  /// sweeper cancel/deadline, or pool shutdown). Returns whether this
  /// call resolved it.
  bool TryResolve(Result<ResultSet> result);

 private:
  std::atomic<bool> resolved_{false};
};

class BaselinePool {
 public:
  /// Spawns `workers` threads (at least one) plus the sweeper.
  /// `max_queued` bounds the waiting queue (0 = unbounded).
  explicit BaselinePool(size_t workers, size_t max_queued = 0);
  ~BaselinePool();

  BaselinePool(const BaselinePool&) = delete;
  BaselinePool& operator=(const BaselinePool&) = delete;

  /// Enqueues a job. Its promise resolves when a worker finishes it, when
  /// the sweeper observes its cancellation / deadline expiry (also while
  /// still queued), or with kAborted on pool shutdown. Returns
  /// kResourceExhausted — without resolving the job's promise — when the
  /// queue is at its cap, and kAborted after shutdown (promise resolved).
  Status Enqueue(std::shared_ptr<BaselineJob> job) EXCLUDES(mu_);

  /// Stops workers and sweeper; unresolved jobs resolve with kAborted.
  /// Idempotent.
  void Shutdown() EXCLUDES(mu_);

  size_t queued() const EXCLUDES(mu_);
  size_t workers() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);
  void SweeperLoop() EXCLUDES(mu_);
  /// Removes and returns the next job under weighted-fair order: the
  /// queued tenant with the smallest virtual time goes first; within the
  /// tenant, (max priority, then lowest seq). Advances the tenant's
  /// virtual clock by 1/weight. nullptr if the queue is empty.
  std::shared_ptr<BaselineJob> PopBestLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// Waiting jobs (workers pick the best; small, linear scan).
  std::vector<std::shared_ptr<BaselineJob>> queue_ GUARDED_BY(mu_);
  /// All unresolved jobs — queued and running — watched by the sweeper.
  std::vector<std::shared_ptr<BaselineJob>> watched_ GUARDED_BY(mu_);
  /// Weighted-fair virtual clocks. A tenant's entry is lazily created at
  /// max(vclock floor) so an idle tenant cannot bank unbounded credit.
  std::map<std::string, double> vtimes_ GUARDED_BY(mu_);
  double vclock_floor_ GUARDED_BY(mu_) = 0.0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  const size_t max_queued_;  ///< set once in the constructor
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  std::thread sweeper_;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_BASELINE_POOL_H_
