// Engine-owned worker pool for baseline (query-at-a-time) executions.
//
// The unified Execute() API returns a non-blocking QueryTicket for every
// routing choice; baseline queries therefore run on this pool instead of
// the caller's thread. Jobs are ordered by (priority desc, submission
// order) and support cooperative cancellation and deadlines: a sweeper
// thread resolves cancelled / deadline-expired jobs promptly even while
// they sit in the queue (matching the CJOIN path's responsiveness), and
// the executor's batch-boundary checks interrupt jobs mid-scan. Each
// job's promise resolves exactly once.

#ifndef CJOIN_ENGINE_BASELINE_POOL_H_
#define CJOIN_ENGINE_BASELINE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/qat_engine.h"
#include "catalog/query_spec.h"
#include "common/status.h"
#include "exec/result_set.h"

namespace cjoin {

/// One queued/running baseline execution. Shared between the pool and the
/// caller's QueryTicket.
struct BaselineJob {
  StarQuerySpec spec;   ///< normalized
  QatOptions options;   ///< per-job executor knobs
  int priority = 0;
  int64_t deadline_ns = 0;  ///< steady-clock nanos; 0 = none
  uint64_t seq = 0;         ///< submission order (set by the pool)

  std::atomic<bool> cancel{false};
  std::promise<Result<ResultSet>> promise;

  // Steady-clock nanos, for the uniform ticket timing stats.
  std::atomic<int64_t> submit_ns{0};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> completed_ns{0};

  /// Resolves the promise exactly once (first caller wins: worker result,
  /// sweeper cancel/deadline, or pool shutdown). Returns whether this
  /// call resolved it.
  bool TryResolve(Result<ResultSet> result);

 private:
  std::atomic<bool> resolved_{false};
};

class BaselinePool {
 public:
  /// Spawns `workers` threads (at least one) plus the sweeper.
  explicit BaselinePool(size_t workers);
  ~BaselinePool();

  BaselinePool(const BaselinePool&) = delete;
  BaselinePool& operator=(const BaselinePool&) = delete;

  /// Enqueues a job. Its promise resolves when a worker finishes it, when
  /// the sweeper observes its cancellation / deadline expiry (also while
  /// still queued), or with kAborted on pool shutdown.
  void Enqueue(std::shared_ptr<BaselineJob> job);

  /// Stops workers and sweeper; unresolved jobs resolve with kAborted.
  /// Idempotent.
  void Shutdown();

  size_t queued() const;
  size_t workers() const { return threads_.size(); }

 private:
  void WorkerLoop();
  void SweeperLoop();
  /// Removes and returns the best waiting job (max priority, then lowest
  /// seq); nullptr if none. Caller holds mu_.
  std::shared_ptr<BaselineJob> PopBestLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Waiting jobs (workers pick the best; small, linear scan).
  std::vector<std::shared_ptr<BaselineJob>> queue_;
  /// All unresolved jobs — queued and running — watched by the sweeper.
  std::vector<std::shared_ptr<BaselineJob>> watched_;
  uint64_t next_seq_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  std::thread sweeper_;
};

}  // namespace cjoin

#endif  // CJOIN_ENGINE_BASELINE_POOL_H_
